/**
 * @file
 * Side-channel scenario: a benign victim leaks a key through its
 * *access pattern* (the LRU side-channel framing of Section III, where
 * the "sender" is an unwitting victim).
 *
 * The victim implements a toy table-based cipher: for every input block
 * it reads `table[nibble]`, where the nibble comes from its secret key.
 * Table entries live in distinct L1 sets.  The attacker (receiver) runs
 * Algorithm 2 against each table set — no shared memory, no victim
 * cache misses (the table is fully cached) — and recovers which nibble
 * the victim used, one key nibble at a time.
 *
 *   $ ./sidechannel_keyleak [hex key]
 */

#include <iostream>
#include <string>
#include <vector>

#include "channel/layout.hpp"
#include "core/table.hpp"
#include "sim/hierarchy.hpp"
#include "sim/random.hpp"
#include "timing/pointer_chase.hpp"

using namespace lruleak;

namespace {

/** The victim's lookup table: entry n lives in L1 set kTableSet0 + n. */
constexpr std::uint32_t kTableSet0 = 8;
constexpr sim::Addr kTableBase = 0x6000'0000'0000ULL;

sim::MemRef
tableEntry(const sim::AddressLayout &layout, std::uint32_t nibble)
{
    const sim::Addr a = sim::lineInSet(layout, kTableSet0 + nibble, 0,
                                       kTableBase);
    return sim::MemRef{a, a, /*thread=*/0, false};
}

/** Attacker-owned line i of a set. */
sim::MemRef
attackerLine(const sim::AddressLayout &layout, std::uint32_t set,
             std::uint32_t i)
{
    const sim::Addr a = sim::lineInSet(layout, set, i + 1,
                                       channel::ChannelLayout::kReceiverBase);
    return sim::MemRef{a, a, /*thread=*/1, false};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string key_hex = argc > 1 ? argv[1] : "c0ffee42d00d";
    std::cout << "lruleak side-channel demo: key recovery from a "
                 "table-lookup victim\n\n"
              << "victim key: " << key_hex << " (" << key_hex.size()
              << " nibbles; one table lookup per nibble)\n\n";

    const auto uarch = timing::Uarch::intelXeonE52690();
    sim::CacheHierarchy hierarchy;
    const sim::AddressLayout &layout = hierarchy.l1().layout();
    const timing::MeasurementModel model(uarch);
    sim::Xoshiro256 rng(99);

    // The attacker's chase chain lives in set 0 (away from the table).
    std::vector<sim::MemRef> chase;
    for (std::uint32_t i = 0; i < 7; ++i) {
        const sim::Addr a = sim::lineInSet(
            layout, 0, i, channel::ChannelLayout::kChaseBase);
        chase.push_back(sim::MemRef{a, a, 1, false});
    }

    // Victim warms its table once (all later lookups are L1 hits: the
    // classic case where miss-based channels see nothing).
    for (std::uint32_t n = 0; n < 16; ++n)
        hierarchy.access(tableEntry(layout, n));

    std::string recovered;
    const std::uint32_t d = 4, ways = 8;
    // The victim re-processes its input stream, so the attacker scores
    // each nibble over several encryption rounds: a single Tree-PLRU
    // observation only evicts line 0 with ~62% probability (Table I).
    const std::uint32_t rounds = 7;

    for (char hex : key_hex) {
        const std::uint32_t nibble = static_cast<std::uint32_t>(
            hex >= 'a' ? hex - 'a' + 10 : hex - '0');

        std::vector<std::uint32_t> score(16, 0);
        for (std::uint32_t r = 0; r < rounds; ++r) {
            // --- Attacker: Algorithm 2 init phase on all 16 table sets.
            for (std::uint32_t n = 0; n < 16; ++n)
                for (std::uint32_t i = 0; i < d; ++i)
                    hierarchy.access(
                        attackerLine(layout, kTableSet0 + n, i));

            // --- Victim: one key-dependent table lookup (an L1 HIT).
            hierarchy.access(tableEntry(layout, nibble));

            // --- Attacker: decode phase + timed measurement per set.
            for (std::uint32_t n = 0; n < 16; ++n) {
                const std::uint32_t set = kTableSet0 + n;
                for (std::uint32_t i = d; i < ways; ++i)
                    hierarchy.access(attackerLine(layout, set, i));
                for (const auto &c : chase)
                    hierarchy.access(c);
                const auto res =
                    hierarchy.access(attackerLine(layout, set, 0));
                const auto lat = model.chase(
                    std::vector<sim::HitLevel>(7, sim::HitLevel::L1),
                    res.level, rng);
                // Algorithm 2 polarity: the victim's touch makes the
                // attacker's line 0 the PLRU victim -> a slow (evicted)
                // measurement votes for this nibble.
                if (lat > model.chaseThreshold())
                    ++score[n];
            }
        }
        std::uint32_t best = 0;
        for (std::uint32_t n = 1; n < 16; ++n)
            if (score[n] > score[best])
                best = n;
        recovered += "0123456789abcdef"[best];
    }

    std::cout << "recovered : " << recovered << "\n";
    const bool ok = recovered == key_hex;
    std::cout << (ok ? "FULL KEY RECOVERED" : "partial recovery") << " — "
              << "the victim had ZERO cache misses during the leak\n"
                 "(its table stayed L1-resident the whole time; only the "
                 "LRU state moved).\n";
    return ok ? 0 : 1;
}
