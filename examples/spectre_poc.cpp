/**
 * @file
 * Spectre v1 proof of concept using the LRU channel as the disclosure
 * primitive (paper Section VIII).
 *
 * The victim holds a secret behind a bounds-checked array access.  The
 * attacker trains the branch predictor, triggers one transient
 * out-of-bounds access per probe round, and reads the transiently
 * touched cache set back through the LRU state of the L1D — with an
 * encode that is a cache HIT, so a far smaller speculation window
 * suffices than for the classic Flush+Reload PoC.
 *
 *   $ ./spectre_poc [secret]
 */

#include <iostream>
#include <string>

#include "core/table.hpp"
#include "spectre/attack.hpp"

using namespace lruleak;
using namespace lruleak::spectre;

int
main(int argc, char **argv)
{
    const std::string secret =
        argc > 1 ? argv[1] : "The Magic Words are Squeamish Ossifrage.";

    std::cout << "lruleak Spectre v1 PoC — disclosure through cache LRU "
                 "states\n\n";
    std::cout << "victim secret (" << secret.size() << " bytes) hidden "
              << "behind `if (x < array1_size)`\n\n";

    core::Table table({"Disclosure", "Recovered", "Accuracy",
                       "Victim calls"});
    for (auto d : {Disclosure::LruAlg1, Disclosure::LruAlg2,
                   Disclosure::FlushReloadMem}) {
        SpectreAttackConfig cfg;
        cfg.disclosure = d;
        cfg.rounds = 3;
        cfg.seed = 7;
        const auto res = runSpectreAttack(cfg, secret);
        std::string shown;
        for (char c : res.recovered)
            shown += (c >= 32 && c < 127) ? c : '?';
        table.addRow({disclosureName(d), shown,
                      core::fmtPercent(res.byte_accuracy),
                      std::to_string(res.victim_calls)});
    }
    table.print(std::cout);

    // The speculation-window advantage, measured.
    SpectreAttackConfig lru_cfg;
    lru_cfg.disclosure = Disclosure::LruAlg1;
    SpectreAttackConfig fr_cfg;
    fr_cfg.disclosure = Disclosure::FlushReloadMem;
    std::cout << "\nminimum speculation window:  LRU Alg.1 = "
              << minimumWorkingWindow(lru_cfg) << " cycles,  F+R (mem) = "
              << minimumWorkingWindow(fr_cfg)
              << " cycles\n(the LRU encode is an L1 hit; F+R must pull "
                 "its flushed line from memory)\n";
    return 0;
}
