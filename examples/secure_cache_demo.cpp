/**
 * @file
 * Secure-cache evaluation demo (paper Section IX-B, Figures 10/11).
 *
 * A PL (Partition-Locked) cache pins a victim's lines so they can never
 * be evicted — which stops every eviction-based attack.  But the
 * *original* PL design still updates the LRU state when a locked line is
 * accessed, so the LRU channel walks right through it.  The fixed
 * design (lock the replacement state along with the line) closes it.
 *
 *   $ ./secure_cache_demo
 *
 * The registered `fig11_plcache_attack` experiment
 * (`lruleak run fig11_plcache_attack`) reproduces the same study with
 * parameterized bits/seed and machine-readable output.
 */

#include <iostream>

#include "channel/decoder.hpp"
#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

namespace {

void
evaluate(sim::PlMode mode, const char *name)
{
    const auto trace = plCacheAttack(mode, timing::Uarch::intelXeonE52690(),
                                     /*bits=*/24, /*seed=*/11);
    std::cout << "\n--- " << name << " ---\n";

    std::vector<double> lat;
    for (const auto &s : trace.samples)
        lat.push_back(s.latency);
    std::cout << "receiver's timed accesses to line 0 (sender sends "
                 "0,1,0,1,...):\n"
              << asciiChart(lat, 6, 100);

    if (trace.constant) {
        std::cout << "=> every observation identical: the channel "
                     "carries ZERO information.\n";
    } else {
        std::cout << "=> observations follow the secret; decode error "
                  << fmtPercent(trace.error_rate)
                  << " — the \"secure\" cache leaks.\n";
    }
}

} // namespace

int
main()
{
    std::cout << "lruleak secure-cache demo: LRU attack vs the PL "
                 "cache\n"
              << "(the sender locks its line, then runs Algorithm 2 "
                 "against the lock-protected set)\n";

    evaluate(sim::PlMode::Original,
             "Original PL cache (Wang & Lee 2007): lines locked, LRU "
             "state NOT locked");
    evaluate(sim::PlMode::FixedLruLock,
             "Fixed PL cache (paper's Fig. 10 blue boxes): LRU state "
             "locked too");

    std::cout << "\nLesson: partitioning the *data* is not enough — "
                 "every piece of shared\nmicroarchitectural state "
                 "(including replacement metadata) must be partitioned\n"
                 "or frozen (paper Section IX-B; DAWG is cited as the "
                 "only design that\npartitions the Tree-PLRU state).\n";
    return 0;
}
