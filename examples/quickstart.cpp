/**
 * @file
 * Quickstart: send a text message through the LRU covert channel.
 *
 * Two hyper-threads share an Intel Sandy Bridge L1D.  The sender
 * modulates the Tree-PLRU state of one cache set with *cache hits* on a
 * shared line (Algorithm 1); the receiver reads the bits back by timing
 * a single pointer-chased access per sample.  No sender cache miss ever
 * happens — that is the paper's stealth headline.
 *
 *   $ ./quickstart [message]
 *
 * This example drives the library API directly; the paper's tables and
 * figures are registered experiments behind the `lruleak` CLI
 * (`lruleak list` / `lruleak run <name>`).
 */

#include <iostream>
#include <string>

#include "channel/session.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

int
main(int argc, char **argv)
{
    const std::string message =
        argc > 1 ? argv[1] : "LRU states leak!";

    std::cout << "lruleak quickstart: covert channel over the L1D "
                 "replacement state\n\n";

    // 1. Configure the channel session: CPU model, protocol, timing.
    SessionConfig cfg;
    cfg.uarch = timing::Uarch::intelXeonE52690(); // Table III machine
    cfg.channel = ChannelId::LruAlg1;             // shared `line 0`
    cfg.mode = SharingMode::HyperThreaded;        // SMT co-residency
    cfg.d = 8;         // receiver init-phase depth (paper's d)
    cfg.ts = 6000;     // sender cycles per bit
    cfg.tr = 600;      // receiver sampling period
    cfg.message = textToBits(message);
    cfg.seed = 42;

    // 2. Run the whole transmission in the simulator.
    const SessionResult res = runSession(cfg);

    // 3. Decode and report.
    std::cout << "sent      : \"" << message << "\" ("
              << res.sent.size() << " bits)\n";
    std::cout << "received  : \"" << bitsToText(res.received) << "\"\n";
    std::cout << "error rate: " << core::fmtPercent(res.error_rate)
              << " (Wagner-Fischer edit distance)\n";
    std::cout << "rate      : " << core::fmtKbps(res.kbps)
              << " over one cache set\n";
    std::cout << "threshold : " << res.threshold
              << " cycles (L1-hit/L1-miss decision)\n\n";

    std::cout << "stealth: the sender's L1D miss rate was "
              << core::fmtPercent(res.sender_l1.missRate(), 4) << " ("
              << res.sender_l1.misses << " misses in "
              << res.sender_l1.accesses
              << " accesses) —\nits encode accesses are cache HITS, which "
                 "is what makes the LRU channel hard to\ndetect with "
                 "miss-counting monitors (paper Section VII).\n\n";

    std::cout << "first 80 receiver observations (latency in cycles, "
                 "low = hit = bit 1):\n";
    std::vector<double> lat;
    for (std::size_t i = 0; i < res.samples.size() && i < 80; ++i)
        lat.push_back(res.samples[i].latency);
    std::cout << core::sparkline(lat) << "\n";
    return res.error_rate < 0.05 ? 0 : 1;
}
