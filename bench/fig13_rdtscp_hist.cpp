/**
 * @file
 * Reproduces Fig. 13 (Appendix A): a single access timed with a bare
 * rdtscp pair cannot distinguish an L1 hit from an L1 miss — the
 * histograms coincide, which is why the paper needs pointer chasing.
 */

#include <iostream>

#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

int
main()
{
    std::cout << "=== Fig. 13 (Appendix A): single-access rdtscp "
                 "measurement ===\n";

    for (const auto &u : {timing::Uarch::intelXeonE52690(),
                          timing::Uarch::amdEpyc7571()}) {
        const auto h = singleAccessHistograms(u, 20'000, 3);
        std::cout << "\n--- " << u.name << " ---\n";
        std::cout << Histogram::renderPair(h.hit, h.miss, "L1 hit",
                                           "L1 miss (L2 hit)");
        std::cout << "mean hit " << fmtDouble(h.hit.mean(), 1)
                  << "  mean miss " << fmtDouble(h.miss.mean(), 1)
                  << "  overlap "
                  << fmtPercent(overlapCoefficient(h.hit, h.miss)) << "\n";
    }

    std::cout << "\nPaper reference: the two distributions completely "
                 "overlap on both CPUs — the\nrdtscp serialization floor "
                 "hides the L1/L2 difference.\n";
    return 0;
}
