/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig13_rdtscp_hist" experiment with default parameters.
 * Prefer `lruleak run fig13_rdtscp_hist` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig13_rdtscp_hist");
}
