/**
 * @file
 * Reproduces Fig. 11: LRU attack (Algorithm 2, sender's line locked)
 * against the PL secure cache — the original design leaks through the
 * LRU state; the fixed design (lock the replacement state with the
 * line, Fig. 10 blue boxes) flattens the receiver's trace.
 */

#include <iostream>

#include "channel/decoder.hpp"
#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

namespace {

void
show(sim::PlMode mode, const char *title)
{
    const auto trace = plCacheAttack(mode);
    std::cout << "\n--- " << title << " ---\n";
    std::vector<double> lat;
    for (const auto &s : trace.samples)
        lat.push_back(s.latency);
    std::cout << core::asciiChart(lat, 7, 100);
    const auto bits = channel::thresholdSamples(trace.samples,
                                                trace.threshold,
                                                /*invert=*/true);
    std::cout << "per-sample reads: " << channel::bitsToString(bits)
              << "\n";
    std::cout << "sent bits:        " << channel::bitsToString(trace.sent)
              << "\n";
    std::cout << "decode error " << fmtPercent(trace.error_rate)
              << (trace.constant
                      ? "  [receiver observations CONSTANT -> no leak]"
                      : "  [receiver observations vary with the secret]")
              << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 11: LRU attack Algorithm 2 against the PL "
                 "cache (sender's line locked) ===\n"
              << "(sender transmits alternating 0/1; y: receiver's timed "
                 "access to line 0)\n";

    show(sim::PlMode::Original, "Original PL cache design (Fig. 10 "
                                "white boxes)");
    show(sim::PlMode::FixedLruLock, "Fixed design: LRU state locked too "
                                    "(Fig. 10 blue boxes)");

    std::cout << "\nPaper reference: the original design still transfers "
                 "the secret; with the fix the\nreceiver always observes "
                 "the same latency and the channel is closed.\n";
    return 0;
}
