/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig11_plcache_attack" experiment with default parameters.
 * Prefer `lruleak run fig11_plcache_attack` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig11_plcache_attack");
}
