/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "ablation_speculation_window" experiment with default parameters.
 * Prefer `lruleak run ablation_speculation_window` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("ablation_speculation_window");
}
