/**
 * @file
 * Ablation: the minimum speculation window each disclosure primitive
 * needs (Section VIII's claim that the LRU channel's cache-hit encode
 * makes the Spectre attack work with a much smaller window than
 * Flush+Reload's memory-miss encode).
 */

#include <iostream>

#include "core/table.hpp"
#include "spectre/attack.hpp"

using namespace lruleak;
using namespace lruleak::spectre;

int
main()
{
    std::cout << "=== Ablation: minimum working speculation window per "
                 "disclosure primitive ===\n"
              << "(binary search over the window at which a 1-byte secret "
                 "is still recovered)\n\n";

    core::Table table({"Disclosure", "Min window (cycles)", "Encode is"});
    const char *encode[] = {"memory miss", "L2 hit", "L1 hit", "L1/L2 hit"};
    int i = 0;
    for (auto d : {Disclosure::FlushReloadMem, Disclosure::FlushReloadL1,
                   Disclosure::LruAlg1, Disclosure::LruAlg2}) {
        SpectreAttackConfig cfg;
        cfg.disclosure = d;
        cfg.rounds = 3;
        cfg.seed = 2024;
        const auto window = minimumWorkingWindow(cfg, 4, 2048);
        table.addRow({disclosureName(d),
                      window ? std::to_string(window) : "never in range",
                      encode[i++]});
    }
    table.print(std::cout);

    std::cout << "\nTakeaway: the LRU disclosure works with a speculation "
                 "window an order of magnitude\nsmaller than F+R (mem) — "
                 "more gadgets qualify, making the attack harder to "
                 "defend\n(Section VIII).\n";
    return 0;
}
