/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "tab4_transmission_rates" experiment with default parameters.
 * Prefer `lruleak run tab4_transmission_rates` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("tab4_transmission_rates");
}
