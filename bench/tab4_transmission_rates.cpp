/**
 * @file
 * Reproduces Table IV: transmission rates of the evaluated LRU
 * channels (Intel vs AMD, hyper-threaded vs time-sliced, Alg 1 vs 2).
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

double
hyperThreadedKbps(const timing::Uarch &uarch, LruAlgorithm alg)
{
    CovertConfig cfg;
    cfg.uarch = uarch;
    cfg.alg = alg;
    cfg.d = alg == LruAlgorithm::Alg1Shared ? 8 : 5;
    const bool amd = uarch.way_predictor;
    cfg.ts = amd ? 100'000 : 6000;
    cfg.tr = amd ? 1000 : 600;
    cfg.message = randomBits(96, 17);
    cfg.seed = 3;
    return runCovertChannel(cfg).kbps;
}

double
timeSlicedBps(const timing::Uarch &uarch)
{
    // Paper methodology: with Tr = 1e8 and ~10 measurements needed to
    // tell ~30% of 1s from < 5%, the rate is measurements/10 per second.
    CovertConfig cfg;
    cfg.uarch = uarch;
    cfg.mode = SharingMode::TimeSliced;
    cfg.d = 8;
    cfg.tr = 100'000'000;
    cfg.encode_gap = 20'000;
    cfg.max_samples = 60;
    cfg.seed = 3;
    const double p1 = runPercentOnes(cfg, 1);
    const double p0 = runPercentOnes(cfg, 0);
    if (p1 < p0 + 0.05)
        return 0.0; // indistinguishable
    const double meas_per_sec = uarch.ghz * 1e9 / double(cfg.tr);
    return meas_per_sec / 10.0;
}

} // namespace

int
main()
{
    const auto intel = timing::Uarch::intelXeonE52690();
    const auto amd = timing::Uarch::amdEpyc7571();

    std::cout << "=== Table IV: transmission rate of the evaluated LRU "
                 "channels ===\n\n";
    core::Table table({"Sharing", "Algorithm", "Intel", "AMD"});
    table.addRow({"Hyper-Threaded", "Algorithm 1",
                  core::fmtKbps(hyperThreadedKbps(
                      intel, LruAlgorithm::Alg1Shared)),
                  core::fmtKbps(hyperThreadedKbps(
                      amd, LruAlgorithm::Alg1Shared))});
    table.addRow({"Hyper-Threaded", "Algorithm 2",
                  core::fmtKbps(hyperThreadedKbps(
                      intel, LruAlgorithm::Alg2Disjoint)),
                  core::fmtKbps(hyperThreadedKbps(
                      amd, LruAlgorithm::Alg2Disjoint))});
    table.addRow({"Time-Sliced", "Algorithm 1",
                  core::fmtDouble(timeSlicedBps(intel), 1) + " bps",
                  core::fmtDouble(timeSlicedBps(amd), 2) + " bps"});
    table.addRow({"Time-Sliced", "Algorithm 2", "- (no signal)",
                  "- (no signal)"});
    table.print(std::cout);

    std::cout << "\nPaper reference: ~500 Kbps / ~20 Kbps hyper-threaded, "
                 "~2 bps / ~0.2 bps time-sliced,\nno Algorithm 2 signal "
                 "in time-sliced sharing on either CPU.\n";
    return 0;
}
