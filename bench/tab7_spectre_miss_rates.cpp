/**
 * @file
 * Reproduces Table VII: cache behaviour during a Spectre v1 attack with
 * each disclosure primitive (victim + attacker combined), and confirms
 * every primitive actually recovers the secret.
 */

#include <iostream>

#include "core/table.hpp"
#include "spectre/attack.hpp"

using namespace lruleak;
using namespace lruleak::core;
using namespace lruleak::spectre;

int
main()
{
    std::cout << "=== Table VII: cache miss rates during a Spectre V1 "
                 "attack ===\n";
    const std::string secret = "The Magic Words are ...";

    for (const auto &u : {timing::Uarch::intelXeonE52690(),
                          timing::Uarch::intelXeonE31245v5()}) {
        std::cout << "\n--- " << u.name << " ---\n";
        Table table({"Disclosure", "Recovered", "L1D miss", "L2 miss",
                     "LLC miss", "LLC misses(abs)"});
        for (auto d : {Disclosure::FlushReloadMem, Disclosure::FlushReloadL1,
                       Disclosure::LruAlg1, Disclosure::LruAlg2}) {
            SpectreAttackConfig cfg;
            cfg.uarch = u;
            cfg.disclosure = d;
            cfg.rounds = 3;
            cfg.seed = 1234;
            const auto res = runSpectreAttack(cfg, secret);
            table.addRow({disclosureName(d),
                          res.byte_accuracy == 1.0 ? "yes (100%)"
                                                   : fmtPercent(
                                                         res.byte_accuracy),
                          fmtPercent(res.l1.missRate()),
                          fmtPercent(res.l2.missRate()),
                          fmtPercent(res.llc.missRate()),
                          std::to_string(res.llc.misses)});
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper reference (E5-2690): L1D ~3-5% for all; LLC "
                 "98% for F+R(mem) vs < 1% for the\nLRU channels.  Our "
                 "LLC *rates* are cold-miss dominated (bare-loop "
                 "attacker); the\nabsolute LLC miss column shows the "
                 "paper's contrast: F+R(mem) keeps going back to\nDRAM, "
                 "the LRU attacks do not.\n";
    return 0;
}
