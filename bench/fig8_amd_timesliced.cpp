/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig8_amd_timesliced" experiment with default parameters.
 * Prefer `lruleak run fig8_amd_timesliced` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig8_amd_timesliced");
}
