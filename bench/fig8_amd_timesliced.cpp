/**
 * @file
 * Reproduces Fig. 8: AMD EPYC 7571 time-sliced sharing — percentage of
 * 1s received versus Tr when the sender constantly sends 0 or 1
 * (Algorithm 1 between threads of one address space).
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

int
main()
{
    std::cout << "=== Fig. 8: AMD EPYC 7571, time-sliced, % of 1s "
                 "received, Algorithm 1 ===\n"
              << "(100 measurements per point; threads share one address "
                 "space)\n";

    const std::uint64_t trs[] = {25'000'000, 100'000'000, 200'000'000,
                                 400'000'000};

    for (std::uint8_t bit : {0, 1}) {
        std::cout << "\n--- Sender constantly sending " << int(bit)
                  << " ---\n";
        core::Table table({"Tr (x1e6)", "d=2", "d=4", "d=6", "d=8"});
        for (std::uint64_t tr : trs) {
            std::vector<std::string> row{std::to_string(tr / 1'000'000)};
            for (std::uint32_t d : {2u, 4u, 6u, 8u}) {
                CovertConfig cfg;
                cfg.uarch = timing::Uarch::amdEpyc7571();
                cfg.mode = SharingMode::TimeSliced;
                cfg.d = d;
                cfg.tr = tr;
                cfg.encode_gap = 20'000;
                cfg.max_samples = 100;
                cfg.seed = 51 + d;
                row.push_back(core::fmtPercent(runPercentOnes(cfg, bit)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper reference: ~70% of 1s when sending 0 vs ~77% "
                 "when sending 1 at Tr = 1e8 on\nAMD (the coarse TSC "
                 "biases the threshold); the gap widens with Tr; "
                 "~0.2 bps.\nOur model's absolute percentages differ (the "
                 "threshold bias is calibrated, not\nfitted) but the "
                 "sending-0/sending-1 gap is reproduced.\n";
    return 0;
}
