/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "ablation_policy_channel" experiment with default parameters.
 * Prefer `lruleak run ablation_policy_channel` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("ablation_policy_channel");
}
