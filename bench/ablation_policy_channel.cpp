/**
 * @file
 * Ablation: how the channel behaves under every replacement policy the
 * simulator implements — including the defenses (FIFO, Random) and the
 * policies the paper did not evaluate end-to-end (true LRU, Bit-PLRU,
 * SRRIP).
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

int
main()
{
    std::cout << "=== Ablation: channel error under each L1D replacement "
                 "policy ===\n"
              << "(hyper-threaded, Intel E5-2690, Ts=6000, Tr=600, random "
                 "96-bit message)\n\n";

    core::Table table({"Policy", "Alg.1 d=8 err", "Alg.2 d=5 err",
                       "Sender L1D miss"});
    for (auto policy : {sim::ReplPolicyKind::TrueLru,
                        sim::ReplPolicyKind::TreePlru,
                        sim::ReplPolicyKind::BitPlru,
                        sim::ReplPolicyKind::Srrip,
                        sim::ReplPolicyKind::Fifo,
                        sim::ReplPolicyKind::Random}) {
        CovertConfig cfg;
        cfg.l1_policy = policy;
        cfg.message = randomBits(96, 4242);
        cfg.seed = 11;
        const auto a1 = runCovertChannel(cfg);

        cfg.alg = LruAlgorithm::Alg2Disjoint;
        cfg.d = 5;
        const auto a2 = runCovertChannel(cfg);

        table.addRow({std::string(sim::replPolicyName(policy)),
                      core::fmtPercent(a1.error_rate),
                      core::fmtPercent(a2.error_rate),
                      core::fmtPercent(a1.sender_l1.missRate(), 3)});
    }
    table.print(std::cout);

    std::cout << "\nTakeaways: the hit-encoding channel works under true "
                 "LRU and Tree-PLRU; Bit-PLRU\ndefeats the d=8 protocol "
                 "(the receiver's own measurement pins line 0's MRU "
                 "bit);\nRandom destroys it outright; FIFO leaves only a "
                 "miss-based residual (note the\nsender's miss rate — "
                 "stealth is gone).\n";
    return 0;
}
