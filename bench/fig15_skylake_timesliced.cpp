/**
 * @file
 * Reproduces Fig. 15 (Appendix B): the time-sliced percentage-of-1s
 * experiment on Intel Xeon E3-1245 v5 (Skylake).
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

int
main()
{
    std::cout << "=== Fig. 15 (Appendix B): time-sliced % of 1s, Intel "
                 "Xeon E3-1245 v5, Algorithm 1 ===\n"
              << "(100 measurements per point)\n";

    const std::uint64_t trs[] = {25'000'000, 100'000'000, 200'000'000,
                                 400'000'000};
    for (std::uint8_t bit : {0, 1}) {
        std::cout << "\n--- Sender constantly sending " << int(bit)
                  << " ---\n";
        core::Table table({"Tr (x1e6)", "d=2", "d=4", "d=6", "d=8"});
        for (std::uint64_t tr : trs) {
            std::vector<std::string> row{std::to_string(tr / 1'000'000)};
            for (std::uint32_t d : {2u, 4u, 6u, 8u}) {
                CovertConfig cfg;
                cfg.uarch = timing::Uarch::intelXeonE31245v5();
                cfg.mode = SharingMode::TimeSliced;
                cfg.d = d;
                cfg.tr = tr;
                cfg.encode_gap = 20'000;
                cfg.max_samples = 100;
                cfg.seed = 61 + d;
                row.push_back(core::fmtPercent(runPercentOnes(cfg, bit)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper reference: same shape as the E5-2690 (Fig. 6): "
                 "sending 0 near 0%, sending 1\nclearly above it for "
                 "d = 7-8 around Tr = 1e8.\n";
    return 0;
}
