/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig15_skylake_timesliced" experiment with default parameters.
 * Prefer `lruleak run fig15_skylake_timesliced` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig15_skylake_timesliced");
}
