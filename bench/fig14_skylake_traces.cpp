/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig14_skylake_traces" experiment with default parameters.
 * Prefer `lruleak run fig14_skylake_traces` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig14_skylake_traces");
}
