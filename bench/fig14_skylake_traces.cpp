/**
 * @file
 * Reproduces Fig. 14 (Appendix B): the Fig. 5 traces repeated on Intel
 * Xeon E3-1245 v5 (Skylake) — the attack transfers across Intel
 * generations.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

void
trace(LruAlgorithm alg, std::uint32_t d)
{
    CovertConfig cfg;
    cfg.uarch = timing::Uarch::intelXeonE31245v5();
    cfg.alg = alg;
    cfg.d = d;
    cfg.tr = 600;
    cfg.ts = 6000;
    cfg.message = alternatingBits(20);
    cfg.seed = 14;
    const auto res = runCovertChannel(cfg);

    std::vector<double> lat;
    for (std::size_t i = 0; i < res.samples.size() && i < 200; ++i)
        lat.push_back(res.samples[i].latency);

    std::cout << "\n"
              << (alg == LruAlgorithm::Alg1Shared ? "Algorithm 1"
                                                  : "Algorithm 2")
              << ", Tr=600, Ts=6000, d=" << d << "  (threshold "
              << res.threshold << ", rate " << core::fmtKbps(res.kbps)
              << ", error " << core::fmtPercent(res.error_rate) << ")\n"
              << core::asciiChart(lat, 8, 100);
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 14 (Appendix B): receiver traces on Intel "
                 "Xeon E3-1245 v5 (Skylake) ===\n";
    trace(LruAlgorithm::Alg1Shared, 8);
    trace(LruAlgorithm::Alg2Disjoint, 5);
    std::cout << "\nPaper reference: same behaviour as the E5-2690 with "
                 "a ~580 Kbps effective rate\n(3.9 GHz vs 3.8 GHz) and "
                 "slightly different absolute latencies.\n";
    return 0;
}
