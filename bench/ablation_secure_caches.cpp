/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "ablation_secure_caches" experiment with default parameters.
 * Prefer `lruleak run ablation_secure_caches` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("ablation_secure_caches");
}
