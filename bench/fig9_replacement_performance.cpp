/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig9_replacement_performance" experiment with default parameters.
 * Prefer `lruleak run fig9_replacement_performance` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig9_replacement_performance");
}
