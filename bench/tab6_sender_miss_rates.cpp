/**
 * @file
 * Reproduces Table VI: the sender process's cache miss rates under each
 * channel, plus the "sender & gcc" and "sender only" baselines — the
 * stealth argument of Section VII (an LRU-channel sender looks like
 * benign co-tenancy to performance-counter monitoring).
 */

#include <iostream>

#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

int
main()
{
    std::cout << "=== Table VI: cache miss rate of the sender process "
                 "===\n";

    for (const auto &u : {timing::Uarch::intelXeonE52690(),
                          timing::Uarch::intelXeonE31245v5()}) {
        std::cout << "\n--- " << u.name << " ---\n";
        Table table({"Scenario", "L1D miss", "L2 miss", "LLC miss",
                     "L1D acc", "L2 acc", "LLC acc"});
        for (const auto &row : senderMissRates(u)) {
            table.addRow({row.scenario,
                          fmtPercent(row.l1.missRate(), 3),
                          fmtPercent(row.l2.missRate()),
                          fmtPercent(row.llc.missRate()),
                          std::to_string(row.l1.accesses),
                          std::to_string(row.l2.accesses),
                          std::to_string(row.llc.accesses)});
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper reference (E5-2690 L1D): F+R(mem) 0.07%, "
                 "F+R(L1) 0.04%, LRU Alg.1/2 0.03%,\nsender&gcc 0.03%, "
                 "sender only 0.01%.  Shape: the LRU sender's L1D miss "
                 "rate is\nindistinguishable from benign sharing; "
                 "F+R(mem) stands out.  (Our senders are\nbare loops, so "
                 "absolute rates run higher than a full process's; see "
                 "EXPERIMENTS.md.)\n";
    return 0;
}
