/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "tab6_sender_miss_rates" experiment with default parameters.
 * Prefer `lruleak run tab6_sender_miss_rates` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("tab6_sender_miss_rates");
}
