/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "tab2_cache_latency" experiment with default parameters.
 * Prefer `lruleak run tab2_cache_latency` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("tab2_cache_latency");
}
