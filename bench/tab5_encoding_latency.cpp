/**
 * @file
 * Reproduces Table V: the sender's encoding latency per channel — the
 * LRU channels encode with an L1 hit, Flush+Reload with an L2 hit or a
 * full memory miss.
 */

#include <iostream>

#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

int
main()
{
    std::cout << "=== Table V: latency of encoding (cycles) ===\n\n";

    Table table({"Model", "F+R (mem)", "F+R (L1)", "L1 LRU (Alg.1&2)"});
    for (const auto &u : {timing::Uarch::intelXeonE52690(),
                          timing::Uarch::intelXeonE31245v5(),
                          timing::Uarch::amdEpyc7571()}) {
        const double fr_mem = meanEncodeLatency(u, ChannelKind::FrMem);
        const double fr_l1 = meanEncodeLatency(u, ChannelKind::FrL1);
        const double lru = (meanEncodeLatency(u, ChannelKind::LruAlg1) +
                            meanEncodeLatency(u, ChannelKind::LruAlg2)) /
                           2.0;
        table.addRow({u.name, fmtDouble(fr_mem, 0), fmtDouble(fr_l1, 0),
                      fmtDouble(lru, 0)});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference: E5-2690 336/35/31, E3-1245v5 "
                 "288/40/35, EPYC 7571 232/56/52.\nThe LRU channel's "
                 "short (cache-hit) encode is what shrinks the Spectre "
                 "speculation\nwindow requirement (Section VIII).\n";
    return 0;
}
