/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "tab5_encoding_latency" experiment with default parameters.
 * Prefer `lruleak run tab5_encoding_latency` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("tab5_encoding_latency");
}
