/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's hot paths: raw
 * cache accesses per policy, full-hierarchy walks, channel iterations
 * and victim calls.  These guard the simulator's own performance (the
 * figure benches run millions of simulated ops).
 */

#include <benchmark/benchmark.h>

#include "channel/covert_channel.hpp"
#include "sim/hierarchy.hpp"
#include "spectre/attack.hpp"

using namespace lruleak;

namespace {

void
BM_CacheAccessHit(benchmark::State &state)
{
    const auto policy = static_cast<sim::ReplPolicyKind>(state.range(0));
    sim::Cache cache(sim::CacheConfig::intelL1d(policy));
    const auto ref = sim::MemRef::load(0x40);
    cache.access(ref);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(ref));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_CacheAccessMissStream(benchmark::State &state)
{
    sim::Cache cache(sim::CacheConfig::intelL1d());
    sim::Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(sim::MemRef::load(addr)));
        addr += 64;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_HierarchyWalk(benchmark::State &state)
{
    sim::CacheHierarchy h;
    sim::Xoshiro256 rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            h.access(sim::MemRef::load(rng.below(1 << 22) * 64)));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_CovertChannelBit(benchmark::State &state)
{
    // Cost of simulating one transmitted bit end to end.
    for (auto _ : state) {
        channel::CovertConfig cfg;
        cfg.message = channel::Bits{1, 0, 1, 1};
        cfg.seed = 3;
        benchmark::DoNotOptimize(channel::runCovertChannel(cfg));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4);
}

void
BM_SpectreVictimCall(benchmark::State &state)
{
    sim::CacheHierarchy h;
    spectre::SpectreVictim victim("x");
    spectre::TransientCore core(h, timing::Uarch::intelXeonE52690());
    for (int i = 0; i < 6; ++i)
        core.callVictim(victim, 0, spectre::GadgetPart::LowSixBits);
    for (auto _ : state)
        benchmark::DoNotOptimize(core.callVictim(
            victim, spectre::SpectreVictim::maliciousX(0),
            spectre::GadgetPart::LowSixBits));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

} // namespace

BENCHMARK(BM_CacheAccessHit)
    ->Arg(static_cast<int>(sim::ReplPolicyKind::TrueLru))
    ->Arg(static_cast<int>(sim::ReplPolicyKind::TreePlru))
    ->Arg(static_cast<int>(sim::ReplPolicyKind::BitPlru))
    ->Arg(static_cast<int>(sim::ReplPolicyKind::Fifo))
    ->Arg(static_cast<int>(sim::ReplPolicyKind::Random));
BENCHMARK(BM_CacheAccessMissStream);
BENCHMARK(BM_HierarchyWalk);
BENCHMARK(BM_CovertChannelBit);
BENCHMARK(BM_SpectreVictimCall);
