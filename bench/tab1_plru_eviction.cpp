/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "tab1_plru_eviction" experiment with default parameters.
 * Prefer `lruleak run tab1_plru_eviction` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("tab1_plru_eviction");
}
