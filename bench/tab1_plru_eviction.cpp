/**
 * @file
 * Reproduces Table I: probability of line 0 being evicted under LRU,
 * Tree-PLRU and Bit-PLRU for the two access sequences and two initial
 * conditions of Section IV-C.
 */

#include <iostream>

#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

int
main()
{
    std::cout << "=== Table I: Probability of line 0 being evicted with "
                 "PLRU ===\n"
              << "(10,000 trials per cell; paper Section IV-C)\n\n";

    EvictionStudyConfig cfg;

    Table table({"Init.Cond.", "Iter.", "LRU Seq.1&2", "Tree Seq.1",
                 "Tree Seq.2", "Bit Seq.1", "Bit Seq.2"});

    const struct
    {
        InitCondition init;
        const char *label;
    } inits[] = {{InitCondition::Random, "Random"},
                 {InitCondition::Sequential, "Sequential"}};

    for (const auto &[init, label] : inits) {
        const auto lru1 = evictionProbabilities(
            sim::ReplPolicyKind::TrueLru, init, AccessSequence::Seq1, cfg);
        const auto tree1 = evictionProbabilities(
            sim::ReplPolicyKind::TreePlru, init, AccessSequence::Seq1, cfg);
        const auto tree2 = evictionProbabilities(
            sim::ReplPolicyKind::TreePlru, init, AccessSequence::Seq2, cfg);
        const auto bit1 = evictionProbabilities(
            sim::ReplPolicyKind::BitPlru, init, AccessSequence::Seq1, cfg);
        const auto bit2 = evictionProbabilities(
            sim::ReplPolicyKind::BitPlru, init, AccessSequence::Seq2, cfg);

        for (std::size_t iter : {0u, 1u, 2u, 7u}) {
            table.addRow({label,
                          iter == 7 ? ">=8" : std::to_string(iter + 1),
                          fmtPercent(lru1[iter]),
                          fmtPercent(tree1[iter]),
                          fmtPercent(tree2[iter]),
                          fmtPercent(bit1[iter]),
                          fmtPercent(bit2[iter])});
        }
    }

    table.print(std::cout);
    std::cout << "\nPaper reference (Random, iter 1): LRU 100%, "
                 "Tree Seq.1 50.4%, Tree Seq.2 62.7%\n"
                 "Takeaway: only sequential initialisation makes PLRU "
                 "eviction reliable, so the receiver\n"
                 "must access lines 1-7 in order (Section IV-C).\n";
    return 0;
}
