/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig6_timesliced" experiment with default parameters.
 * Prefer `lruleak run fig6_timesliced` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig6_timesliced");
}
