/**
 * @file
 * Reproduces Fig. 6: time-sliced sharing on Intel Xeon E5-2690 — the
 * percentage of 1s the receiver observes versus its sampling period Tr
 * (x 1e6 cycles) when the sender constantly sends 0 or 1, Algorithm 1.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

int
main(int argc, char **)
{
    (void)argc;
    std::cout << "=== Fig. 6: time-sliced sharing, % of 1s received, "
                 "Intel Xeon E5-2690, Algorithm 1 ===\n"
              << "(100 measurements per point)\n";

    const std::uint64_t trs[] = {25'000'000, 50'000'000, 100'000'000,
                                 200'000'000, 400'000'000};

    for (std::uint8_t bit : {0, 1}) {
        std::cout << "\n--- Sender constantly sending " << int(bit)
                  << " ---\n";
        core::Table table({"Tr (x1e6)", "d=1", "d=2", "d=3", "d=4", "d=5",
                           "d=6", "d=7", "d=8"});
        for (std::uint64_t tr : trs) {
            std::vector<std::string> row{std::to_string(tr / 1'000'000)};
            for (std::uint32_t d = 1; d <= 8; ++d) {
                CovertConfig cfg;
                cfg.mode = SharingMode::TimeSliced;
                cfg.d = d;
                cfg.tr = tr;
                cfg.encode_gap = 20'000;
                cfg.max_samples = 100;
                cfg.seed = 31 + d;
                row.push_back(core::fmtPercent(runPercentOnes(cfg, bit)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper reference: sending 0 -> ~0% of 1s for d = 8; "
                 "sending 1 -> ~30% of 1s around\nTr = 1e8 with d = 7-8 "
                 "strongest (only the first measurement after a sender "
                 "slice\nreflects the sender).  ~2.4 bps effective.\n";
    return 0;
}
