/**
 * @file
 * Reproduces Fig. 7: AMD EPYC 7571 hyper-threaded traces with the
 * coarse timestamp counter — raw samples are noisy, the moving average
 * shows the wave, and the best-fit period recovers the bit length.
 *
 * Algorithm 1 runs between two threads of one address space (the utag
 * way predictor kills the cross-process variant, Section VI-B);
 * Algorithm 2 runs across separate processes.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

void
amdTrace(LruAlgorithm alg, std::uint32_t d, bool same_vaddr)
{
    CovertConfig cfg;
    cfg.uarch = timing::Uarch::amdEpyc7571();
    cfg.alg = alg;
    cfg.d = d;
    cfg.tr = 1000;
    cfg.ts = 100'000;
    cfg.message = alternatingBits(15);
    cfg.shared_same_vaddr = same_vaddr;
    cfg.seed = 77;
    const auto res = runCovertChannel(cfg);

    const auto lat = latencies(res.samples);
    const auto smooth = movingAverage(lat, 97);
    const auto period = bestAlternatingPeriod(lat, 60, 140);

    std::cout << "\n"
              << (alg == LruAlgorithm::Alg1Shared
                      ? "Algorithm 1 (threads, same address space)"
                      : "Algorithm 2 (separate processes)")
              << ", Tr=1000, Ts=1e5, d=" << d << "\n";
    std::cout << "raw trace (first 400 samples):\n"
              << core::asciiChart(std::vector<double>(
                     lat.begin(),
                     lat.begin() + std::min<std::size_t>(400, lat.size())),
                     6, 100);
    std::cout << "moving average (window 97):\n"
              << core::asciiChart(std::vector<double>(
                     smooth.begin(),
                     smooth.begin() +
                         std::min<std::size_t>(1400, smooth.size())),
                     6, 100);
    std::cout << "best-fit samples/bit: " << period << "   error "
              << core::fmtPercent(res.error_rate) << "   effective rate "
              << core::fmtKbps(res.kbps) << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 7: AMD EPYC 7571 hyper-threaded traces, "
                 "sender alternating 0/1 ===\n";

    amdTrace(LruAlgorithm::Alg1Shared, 8, /*same_vaddr=*/true);
    amdTrace(LruAlgorithm::Alg2Disjoint, 4, /*same_vaddr=*/true);

    std::cout << "\nPaper reference: raw samples too coarse to threshold "
                 "directly; the moving average\nshows the wave at ~97 "
                 "samples/bit (Alg 1) / ~85 (Alg 2); effective rates "
                 "22-25 Kbps.\n";
    return 0;
}
