/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig7_amd_traces" experiment with default parameters.
 * Prefer `lruleak run fig7_amd_traces` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig7_amd_traces");
}
