/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig4_error_rate" experiment with default parameters.
 * Prefer `lruleak run fig4_error_rate` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig4_error_rate");
}
