/**
 * @file
 * Reproduces Fig. 4: transmission error rate (edit distance) versus
 * transmission rate for the hyper-threaded LRU channels on Intel Xeon
 * E5-2690 — Algorithms 1 and 2, Tr in {600, 1000, 3000}, d in 1..8,
 * Ts in {4500, 6000, 12000, 30000}.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

void
sweep(LruAlgorithm alg, const char *title)
{
    std::cout << "\n--- " << title << " ---\n";
    // The paper sends a random 128-bit string repeatedly; 4 repeats keep
    // this bench quick while exercising the same decoder path.
    const Bits message = randomBits(128, 20200128);

    for (std::uint64_t tr : {600ULL, 1000ULL, 3000ULL}) {
        core::Table table({"Ts (cyc)", "Rate", "d=1", "d=2", "d=3", "d=4",
                           "d=5", "d=6", "d=7", "d=8"});
        for (std::uint64_t ts : {4500ULL, 6000ULL, 12000ULL, 30000ULL}) {
            std::vector<std::string> row;
            double kbps = 0.0;
            for (std::uint32_t d = 1; d <= 8; ++d) {
                CovertConfig cfg;
                cfg.alg = alg;
                cfg.d = d;
                cfg.tr = tr;
                cfg.ts = ts;
                cfg.message = message;
                cfg.repeats = 4;
                cfg.seed = 7 + d;
                const auto res = runCovertChannel(cfg);
                row.push_back(core::fmtPercent(res.error_rate));
                kbps = res.kbps;
            }
            std::vector<std::string> full{std::to_string(ts),
                                          core::fmtKbps(kbps)};
            full.insert(full.end(), row.begin(), row.end());
            table.addRow(full);
        }
        std::cout << "\nTr = " << tr << " cycles\n";
        table.print(std::cout);
    }
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 4: error rate vs transmission rate, "
                 "hyper-threaded, Intel Xeon E5-2690 ===\n"
              << "(random 128-bit string x4; error = Wagner-Fischer edit "
                 "distance / bits sent)\n";

    sweep(LruAlgorithm::Alg1Shared, "Algorithm 1 (shared memory)");
    sweep(LruAlgorithm::Alg2Disjoint, "Algorithm 2 (no shared memory)");

    std::cout << "\nPaper reference: error grows with rate; Algorithm 2 "
                 "is noisier with the even-d\nTree-PLRU pathology "
                 "(d = 2,4,6 bad); Tr = 3000 is the worst sampling "
                 "period.\n";
    return 0;
}
