/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "appc_prefetcher_noise" experiment with default parameters.
 * Prefer `lruleak run appc_prefetcher_noise` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("appc_prefetcher_noise");
}
