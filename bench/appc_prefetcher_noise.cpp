/**
 * @file
 * Reproduces Appendix C: hardware-prefetcher noise during the Spectre
 * attack's set scans, and the paper's mitigation — scan the probe sets
 * in a fresh random order every round so prefetch pollution averages
 * out.
 */

#include <iostream>

#include "core/table.hpp"
#include "spectre/attack.hpp"

using namespace lruleak;
using namespace lruleak::spectre;

int
main()
{
    std::cout << "=== Appendix C: prefetcher noise vs random-order "
                 "scanning (Spectre + LRU Alg.1) ===\n\n";
    const std::string secret = "Sensitive";

    core::Table table({"Prefetcher", "Probe order", "Recovered",
                       "Byte accuracy"});
    for (bool prefetcher : {false, true}) {
        for (bool random_order : {false, true}) {
            SpectreAttackConfig cfg;
            cfg.disclosure = Disclosure::LruAlg1;
            cfg.enable_prefetcher = prefetcher;
            cfg.random_probe_order = random_order;
            cfg.rounds = 2; // few rounds: noise has less room to average
            cfg.seed = 99;
            const auto res = runSpectreAttack(cfg, secret);
            std::string shown;
            for (char c : res.recovered)
                shown += (c >= 32 && c < 127) ? c : '?';
            table.addRow({prefetcher ? "stride (on)" : "off",
                          random_order ? "random/round" : "sequential",
                          shown, core::fmtPercent(res.byte_accuracy)});
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper reference: sequential scans let the stride "
                 "prefetcher drag neighbouring\nlines into L1 and corrupt "
                 "the LRU states; randomising the order each round\n"
                 "decorrelates the pollution and the averaged scores "
                 "recover the secret.\n";
    return 0;
}
