/**
 * @file
 * Reproduces Fig. 3: histograms of the pointer-chase readout when the
 * timed 8th element is an L1 hit versus an L1 miss, on Intel Xeon
 * E5-2690 and AMD EPYC 7571.
 */

#include <iostream>

#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::core;

int
main()
{
    std::cout << "=== Fig. 3: pointer-chase latency, 7 L1 hits + timed "
                 "8th access ===\n";

    for (const auto &u : {timing::Uarch::intelXeonE52690(),
                          timing::Uarch::amdEpyc7571()}) {
        const auto h = pointerChaseHistograms(u, 20'000, 3);
        std::cout << "\n--- " << u.name << " ---\n";
        std::cout << Histogram::renderPair(h.hit, h.miss, "L1 hit",
                                           "L1 miss");
        std::cout << "mean hit " << fmtDouble(h.hit.mean(), 1)
                  << "  mean miss " << fmtDouble(h.miss.mean(), 1)
                  << "  overlap "
                  << fmtPercent(overlapCoefficient(h.hit, h.miss)) << "\n";
    }

    std::cout << "\nPaper reference: Intel cleanly separable (~35 vs ~43 "
                 "cycles); AMD distributions overlap\nbut differ, so the "
                 "receiver must average repeated measurements "
                 "(Section VI-A).\n";
    return 0;
}
