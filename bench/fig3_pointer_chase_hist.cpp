/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig3_pointer_chase_hist" experiment with default parameters.
 * Prefer `lruleak run fig3_pointer_chase_hist` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig3_pointer_chase_hist");
}
