/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "ablation_chase_length" experiment with default parameters.
 * Prefer `lruleak run ablation_chase_length` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("ablation_chase_length");
}
