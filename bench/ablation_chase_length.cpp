/**
 * @file
 * Ablation: why a 7-element chase chain?  (Paper footnote 3: short
 * chains are dominated by the timer overhead/noise, long chains add
 * their own noise.)  Sweeps the chain length and reports hit/miss
 * distribution overlap plus the end-to-end channel error.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/histogram.hpp"
#include "core/table.hpp"
#include "timing/pointer_chase.hpp"

using namespace lruleak;
using namespace lruleak::core;

int
main()
{
    std::cout << "=== Ablation: pointer-chase chain length (paper "
                 "footnote 3) ===\n\n";

    const auto u = timing::Uarch::amdEpyc7571();
    const timing::MeasurementModel model(u);

    Table table({"Chain len", "AMD overlap", "Intel overlap",
                 "Intel err (Alg.1)"});
    for (std::uint32_t len : {1u, 3u, 5u, 7u, 11u, 15u}) {
        // Distribution overlap on the noisy AMD timer: the longer chain
        // amortizes the noise relative to the L2-L1 delta.
        sim::Xoshiro256 rng(5);
        Histogram amd_hit(16), amd_miss(16);
        for (int i = 0; i < 20000; ++i) {
            amd_hit.add(model.chaseAllL1(len, sim::HitLevel::L1, rng));
            amd_miss.add(model.chaseAllL1(len, sim::HitLevel::L2, rng));
        }

        const auto iu = timing::Uarch::intelXeonE52690();
        const timing::MeasurementModel imodel(iu);
        Histogram i_hit(1), i_miss(1);
        for (int i = 0; i < 20000; ++i) {
            i_hit.add(imodel.chaseAllL1(len, sim::HitLevel::L1, rng));
            i_miss.add(imodel.chaseAllL1(len, sim::HitLevel::L2, rng));
        }

        channel::CovertConfig cfg;
        cfg.message = channel::randomBits(96, 5);
        const auto res = channel::runCovertChannel(cfg);

        table.addRow({std::to_string(len),
                      fmtPercent(overlapCoefficient(amd_hit, amd_miss)),
                      fmtPercent(overlapCoefficient(i_hit, i_miss)),
                      fmtPercent(res.error_rate)});
    }
    table.print(std::cout);

    std::cout << "\nTakeaway: on Intel even short chains separate; on the "
                 "coarse AMD timer the\nhit/miss overlap shrinks as the "
                 "chain grows — 7 elements is already in the\n"
                 "diminishing-returns regime, matching the paper's "
                 "choice.\n";
    return 0;
}
