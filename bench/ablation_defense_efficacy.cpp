/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "ablation_defense_efficacy" experiment with default parameters.
 * Prefer `lruleak run ablation_defense_efficacy` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("ablation_defense_efficacy");
}
