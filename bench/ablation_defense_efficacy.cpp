/**
 * @file
 * Ablation: the three defenses of Section IX side by side — random
 * replacement, FIFO replacement, and the fixed PL cache — scored by
 * channel error rate, sender stealth, and the performance cost from
 * Fig. 9.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/experiments.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

double
meanCpiRatio(sim::ReplPolicyKind policy)
{
    const auto rows = core::replacementPerformance(
        {sim::ReplPolicyKind::TreePlru, policy}, 200'000, 9);
    double ratio_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t w = 0; w * 2 < rows.size(); ++w) {
        ratio_sum += rows[w * 2 + 1].cpi / rows[w * 2].cpi;
        ++n;
    }
    return ratio_sum / static_cast<double>(n);
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: defense efficacy vs cost (Section IX) "
                 "===\n\n";

    core::Table table({"Defense", "Alg.1 error", "Alg.2 error",
                       "Mean CPI vs PLRU"});

    // Baseline: no defense.
    {
        CovertConfig cfg;
        cfg.message = randomBits(96, 77);
        const auto a1 = runCovertChannel(cfg);
        cfg.alg = LruAlgorithm::Alg2Disjoint;
        cfg.d = 5;
        const auto a2 = runCovertChannel(cfg);
        table.addRow({"none (Tree-PLRU)", core::fmtPercent(a1.error_rate),
                      core::fmtPercent(a2.error_rate), "1.000"});
    }

    for (auto policy : {sim::ReplPolicyKind::Random,
                        sim::ReplPolicyKind::Fifo}) {
        CovertConfig cfg;
        cfg.l1_policy = policy;
        cfg.message = randomBits(96, 77);
        const auto a1 = runCovertChannel(cfg);
        cfg.alg = LruAlgorithm::Alg2Disjoint;
        cfg.d = 5;
        const auto a2 = runCovertChannel(cfg);
        table.addRow({std::string(sim::replPolicyName(policy)) +
                          " replacement",
                      core::fmtPercent(a1.error_rate),
                      core::fmtPercent(a2.error_rate),
                      core::fmtDouble(meanCpiRatio(policy), 3)});
    }

    // Fixed PL cache (locked line + locked LRU state).
    {
        const auto fixed = core::plCacheAttack(sim::PlMode::FixedLruLock);
        table.addRow({"PL cache + LRU lock (fixed)", "n/a (Alg.1 dies "
                                                     "when line locked)",
                      fixed.constant ? "no signal (constant)"
                                     : core::fmtPercent(fixed.error_rate),
                      "~1.000 (lock-scoped)"});
    }

    table.print(std::cout);

    std::cout << "\nTakeaway: random replacement closes both channels for "
                 "< a few % CPI; FIFO closes\nthe hit-based channel "
                 "(remaining leak requires detectable misses); the fixed "
                 "PL\ncache protects locked lines completely.\n";
    return 0;
}
