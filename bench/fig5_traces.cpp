/**
 * @file
 * Thin wrapper kept for existing invocation paths: runs the registered
 * "fig5_traces" experiment with default parameters.
 * Prefer `lruleak run fig5_traces` (see `lruleak list`).
 */

#include "core/experiment.hpp"

int
main()
{
    return lruleak::core::runRegisteredExperimentMain("fig5_traces");
}
