/**
 * @file
 * Reproduces Fig. 5: the receiver's raw latency trace while the sender
 * transmits alternating 0/1 on Intel Xeon E5-2690, hyper-threaded,
 * for Algorithm 1 (d = 8) and Algorithm 2.
 *
 * Rendering note: the paper's Fig. 5 bottom uses d = 4; on Tree-PLRU
 * the even-d pathology (their own Fig. 4) makes that trace noisy, so we
 * additionally show d = 5 where the alternation is clean.
 */

#include <iostream>

#include "channel/covert_channel.hpp"
#include "core/table.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

void
trace(LruAlgorithm alg, std::uint32_t d, const timing::Uarch &uarch)
{
    CovertConfig cfg;
    cfg.uarch = uarch;
    cfg.alg = alg;
    cfg.d = d;
    cfg.tr = 600;
    cfg.ts = 6000;
    cfg.message = alternatingBits(20);
    cfg.seed = 5;
    const auto res = runCovertChannel(cfg);

    std::vector<double> lat;
    for (std::size_t i = 0; i < res.samples.size() && i < 200; ++i)
        lat.push_back(res.samples[i].latency);

    std::cout << "\n"
              << (alg == LruAlgorithm::Alg1Shared ? "Algorithm 1"
                                                  : "Algorithm 2")
              << ", Tr=600, Ts=6000, d=" << d << "  (threshold "
              << res.threshold << " cycles, rate "
              << core::fmtKbps(res.kbps) << ", error "
              << core::fmtPercent(res.error_rate) << ")\n";
    std::cout << core::asciiChart(lat, 8, 100);
    std::cout << "decoded: " << bitsToString(res.received) << "\n";
}

} // namespace

int
main()
{
    const auto u = timing::Uarch::intelXeonE52690();
    std::cout << "=== Fig. 5: receiver observations, sender alternating "
                 "0/1, Intel Xeon E5-2690 ===\n"
              << "(y: pointer-chase latency in cycles; x: observation "
                 "sequence)\n";

    trace(LruAlgorithm::Alg1Shared, 8, u);
    trace(LruAlgorithm::Alg2Disjoint, 4, u);
    trace(LruAlgorithm::Alg2Disjoint, 5, u);

    std::cout << "\nPaper reference: Algorithm 1 shows low latency on 1 "
                 "bits (line 0 hits); Algorithm 2\ninverts the polarity "
                 "(1 bit = line 0 evicted = high latency).\n";
    return 0;
}
