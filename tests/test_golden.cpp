/**
 * @file
 * Golden-snapshot suite: every registered experiment, run at smoke
 * scale (its smokeParams()) with its declared default seed, must render
 * byte-identical `--format=json` output to the checked-in golden under
 * tests/golden/.  Any drift in simulator behaviour, experiment logic or
 * output formatting fails here — this is the lock on the whole stack.
 *
 * Updating after an intentional change (also documented in DESIGN.md):
 *
 *   LRULEAK_UPDATE_GOLDEN=1 build/lruleak_tests --gtest_filter='*Golden*'
 *
 * then review and commit the tests/golden/ diff.  On mismatch the test
 * writes the actual output to golden_diff/<name>.json next to the test
 * binary's working directory so CI can upload it as an artifact.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"

#ifndef LRULEAK_GOLDEN_DIR
#error "LRULEAK_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

using namespace lruleak::core;

namespace {

std::filesystem::path
goldenPath(const std::string &name)
{
    return std::filesystem::path(LRULEAK_GOLDEN_DIR) / (name + ".json");
}

std::string
renderSmokeJson(const Experiment &experiment)
{
    std::ostringstream os;
    JsonSink sink(os);
    runExperiment(experiment, experiment.smokeParams(), sink);
    return os.str();
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First line on which two texts differ, 1-based (0 = identical). */
std::size_t
firstDifferingLine(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::size_t line = 0;
    for (;;) {
        ++line;
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return 0;
        if (ga != gb || la != lb)
            return line;
    }
}

class GoldenSnapshot : public ::testing::TestWithParam<std::string>
{};

} // namespace

TEST_P(GoldenSnapshot, SmokeJsonMatchesCheckedInGolden)
{
    const Experiment *experiment = Registry::instance().find(GetParam());
    ASSERT_NE(experiment, nullptr);

    const std::string actual = renderSmokeJson(*experiment);
    const auto golden = goldenPath(experiment->name());

    if (std::getenv("LRULEAK_UPDATE_GOLDEN")) {
        std::filesystem::create_directories(golden.parent_path());
        std::ofstream out(golden, std::ios::binary);
        out << actual;
        ASSERT_TRUE(out.good()) << "cannot write " << golden;
        GTEST_SKIP() << "golden updated: " << golden;
    }

    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing golden " << golden << "; generate it with "
        << "LRULEAK_UPDATE_GOLDEN=1 (see DESIGN.md)";

    const std::string expected = readFile(golden);
    if (actual != expected) {
        // Leave the actual output where CI can pick it up as an
        // artifact, then fail with a pointer at the first delta.
        const std::filesystem::path diff_dir = "golden_diff";
        std::filesystem::create_directories(diff_dir);
        const auto diff_path = diff_dir / (experiment->name() + ".json");
        std::ofstream out(diff_path, std::ios::binary);
        out << actual;
        FAIL() << "output drifted from " << golden << " (first delta at "
               << "line " << firstDifferingLine(actual, expected)
               << "); actual written to " << diff_path << " — if the "
               << "change is intended, re-run with "
               << "LRULEAK_UPDATE_GOLDEN=1 and commit the diff";
    }
}

TEST(GoldenSnapshot, EveryGoldenFileHasALiveExperiment)
{
    // Stale goldens (renamed/removed experiments) must not linger.
    if (!std::filesystem::exists(LRULEAK_GOLDEN_DIR))
        GTEST_SKIP() << "no goldens yet";
    for (const auto &entry :
         std::filesystem::directory_iterator(LRULEAK_GOLDEN_DIR)) {
        if (entry.path().extension() != ".json")
            continue;
        const std::string name = entry.path().stem().string();
        EXPECT_NE(Registry::instance().find(name), nullptr)
            << "golden " << entry.path()
            << " has no registered experiment";
    }
}

namespace {

std::vector<std::string>
registeredNames()
{
    std::vector<std::string> names;
    for (const Experiment *e : Registry::instance().all())
        names.push_back(e->name());
    return names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllExperiments, GoldenSnapshot,
                         ::testing::ValuesIn(registeredNames()),
                         [](const auto &info) { return info.param; });
