/**
 * @file
 * Tests for the 2-bit saturating branch predictor.
 */

#include <gtest/gtest.h>

#include "spectre/branch_predictor.hpp"

using lruleak::spectre::BranchPredictor;

TEST(BranchPredictor, ColdPredictsNotTaken)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.predict(0x400));
}

TEST(BranchPredictor, TwoTakensFlipPrediction)
{
    BranchPredictor bp;
    bp.update(0x400, true);
    EXPECT_FALSE(bp.predict(0x400)) << "counter at 1: still weakly not-taken";
    bp.update(0x400, true);
    EXPECT_TRUE(bp.predict(0x400));
}

TEST(BranchPredictor, SaturatesAtThree)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.update(0x400, true);
    // One not-taken must not flip a saturated counter.
    bp.update(0x400, false);
    EXPECT_TRUE(bp.predict(0x400));
    bp.update(0x400, false);
    EXPECT_FALSE(bp.predict(0x400));
}

TEST(BranchPredictor, BranchesAreIndependent)
{
    BranchPredictor bp;
    bp.update(0x400, true);
    bp.update(0x400, true);
    EXPECT_TRUE(bp.predict(0x400));
    EXPECT_FALSE(bp.predict(0x500));
}

TEST(BranchPredictor, MispredictAfterTrainingIsTheSpectreSetup)
{
    // The attack's core sequence: train taken, then the architecturally
    // not-taken call still predicts taken.
    BranchPredictor bp;
    for (int i = 0; i < 6; ++i)
        bp.update(0x400, true);
    EXPECT_TRUE(bp.predict(0x400)); // the transient window opens here
    bp.update(0x400, false);        // bounds check resolves not-taken
    EXPECT_TRUE(bp.predict(0x400)) << "one resolution does not retrain";
}

TEST(BranchPredictor, ResetForgets)
{
    BranchPredictor bp;
    bp.update(0x400, true);
    bp.update(0x400, true);
    bp.reset();
    EXPECT_FALSE(bp.predict(0x400));
}
