/**
 * @file
 * Tests for the Wagner-Fischer edit distance used to score channel
 * transmissions (flips + insertions + losses).
 */

#include <gtest/gtest.h>

#include "channel/bitstring.hpp"
#include "channel/edit_distance.hpp"
#include "sim/random.hpp"

using namespace lruleak::channel;

namespace {

Bits
b(const std::string &s)
{
    Bits out;
    for (char c : s)
        out.push_back(c == '1' ? 1 : 0);
    return out;
}

} // namespace

TEST(EditDistance, IdenticalStringsZero)
{
    EXPECT_EQ(editDistance(b("10110"), b("10110")), 0u);
    EXPECT_EQ(editDistance({}, {}), 0u);
}

TEST(EditDistance, EmptyVersusNonEmpty)
{
    EXPECT_EQ(editDistance({}, b("1010")), 4u);
    EXPECT_EQ(editDistance(b("1010"), {}), 4u);
}

TEST(EditDistance, SingleFlip)
{
    EXPECT_EQ(editDistance(b("10110"), b("10010")), 1u);
}

TEST(EditDistance, SingleLoss)
{
    EXPECT_EQ(editDistance(b("10110"), b("1010")), 1u);
}

TEST(EditDistance, SingleInsertion)
{
    EXPECT_EQ(editDistance(b("10110"), b("101100")), 1u);
}

TEST(EditDistance, MixedErrors)
{
    // A one-position shift costs one insertion plus one deletion.
    EXPECT_EQ(editDistance(b("101010"), b("010101")), 2u);
}

TEST(EditDistance, Symmetric)
{
    lruleak::sim::Xoshiro256 rng(4);
    for (int i = 0; i < 50; ++i) {
        const auto x = randomBits(20 + rng.below(20), rng());
        const auto y = randomBits(20 + rng.below(20), rng());
        EXPECT_EQ(editDistance(x, y), editDistance(y, x));
    }
}

TEST(EditDistance, BoundedByLongerLength)
{
    lruleak::sim::Xoshiro256 rng(5);
    for (int i = 0; i < 50; ++i) {
        const auto x = randomBits(rng.below(40), rng());
        const auto y = randomBits(rng.below(40), rng());
        EXPECT_LE(editDistance(x, y), std::max(x.size(), y.size()));
        EXPECT_GE(editDistance(x, y),
                  x.size() > y.size() ? x.size() - y.size()
                                      : y.size() - x.size());
    }
}

TEST(EditDistance, TriangleInequality)
{
    lruleak::sim::Xoshiro256 rng(6);
    for (int i = 0; i < 30; ++i) {
        const auto x = randomBits(15 + rng.below(10), rng());
        const auto y = randomBits(15 + rng.below(10), rng());
        const auto z = randomBits(15 + rng.below(10), rng());
        EXPECT_LE(editDistance(x, z),
                  editDistance(x, y) + editDistance(y, z));
    }
}

TEST(EditDistance, KnownPerturbationsScoreExactly)
{
    // Construct a received string with exactly f flips at distinct
    // positions; the distance must be <= f (and usually == f).
    lruleak::sim::Xoshiro256 rng(7);
    const auto sent = randomBits(128, 99);
    Bits recv = sent;
    recv[3] ^= 1;
    recv[64] ^= 1;
    recv[100] ^= 1;
    EXPECT_EQ(editDistance(sent, recv), 3u);
}

TEST(ErrorRate, NormalisedBySentLength)
{
    const auto sent = b("11110000");
    auto recv = sent;
    recv[0] ^= 1;
    recv[4] ^= 1;
    EXPECT_DOUBLE_EQ(editErrorRate(sent, recv), 0.25);
    EXPECT_DOUBLE_EQ(editErrorRate({}, recv), 0.0);
}

TEST(ErrorRate, TotalLossIsOne)
{
    const auto sent = b("1111");
    EXPECT_DOUBLE_EQ(editErrorRate(sent, {}), 1.0);
}
