/**
 * @file
 * Tests for the transient-execution model: misprediction gating, the
 * speculation window, and the cache side effects that survive squash.
 */

#include <gtest/gtest.h>

#include "spectre/transient_core.hpp"

using namespace lruleak;
using namespace lruleak::spectre;

namespace {

struct Rig
{
    sim::CacheHierarchy hierarchy;
    SpectreVictim victim{"Z"};
    TransientCore core;

    explicit Rig(std::uint64_t window = 700)
        : core(hierarchy, timing::Uarch::intelXeonE52690(),
               SpeculationConfig{window, 2})
    {}

    void
    train(int calls = 6)
    {
        for (int i = 0; i < calls; ++i)
            core.callVictim(victim, 0, GadgetPart::LowSixBits);
    }

    void
    warmSecret()
    {
        const sim::Addr s = SpectreVictim::kArray1 +
            SpectreVictim::kSecretOffset;
        hierarchy.access(sim::MemRef{s, s, kVictimThread, false});
    }
};

} // namespace

TEST(TransientCore, ArchitecturalCallAlwaysExecutesGadget)
{
    Rig rig;
    const auto res = rig.core.callVictim(rig.victim, 3,
                                         GadgetPart::LowSixBits);
    EXPECT_TRUE(res.architectural);
    EXPECT_TRUE(res.load1_landed);
    EXPECT_TRUE(res.load2_landed);
    EXPECT_EQ(res.loaded_byte, 3);
}

TEST(TransientCore, UntrainedOutOfBoundsDoesNothing)
{
    Rig rig;
    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::LowSixBits);
    EXPECT_FALSE(res.architectural);
    EXPECT_FALSE(res.predicted_taken);
    EXPECT_FALSE(res.load1_landed);
    EXPECT_FALSE(res.load2_landed);
}

TEST(TransientCore, TrainedOutOfBoundsLeaksIntoCache)
{
    Rig rig;
    rig.train();
    rig.warmSecret();
    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::LowSixBits);
    EXPECT_TRUE(res.predicted_taken);
    EXPECT_FALSE(res.architectural);
    EXPECT_TRUE(res.load2_landed);
    EXPECT_EQ(res.loaded_byte, 'Z');
    EXPECT_EQ(res.encoded_index, 'Z' & 0x3f);
    // The encode line is now cached: that is the whole leak.
    const sim::Addr a2 = SpectreVictim::array2Line('Z' & 0x3f);
    EXPECT_TRUE(rig.hierarchy.inL1(sim::MemRef::load(a2)));
}

TEST(TransientCore, TinyWindowBlocksColdLoad1)
{
    Rig rig(/*window=*/10);
    rig.train();
    // Secret NOT warmed: load1 needs a memory access > 10 cycles.
    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::LowSixBits);
    EXPECT_TRUE(res.predicted_taken);
    EXPECT_FALSE(res.load1_landed);
    EXPECT_FALSE(res.load2_landed);
}

TEST(TransientCore, SmallWindowFitsWarmLoads)
{
    Rig rig(/*window=*/30);
    rig.train();
    rig.warmSecret();
    // Warm the encode target too (the LRU channel's Algorithm 1 state).
    const sim::Addr a2 = SpectreVictim::array2Line('Z' & 0x3f);
    rig.hierarchy.access(sim::MemRef::load(a2));

    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::LowSixBits);
    EXPECT_TRUE(res.load1_landed);
    EXPECT_TRUE(res.load2_landed);
}

TEST(TransientCore, MediumWindowBlocksMemoryEncode)
{
    // The paper's key claim (Section VIII): F+R needs its flushed encode
    // line to come from memory, which needs a much larger window than an
    // L1-hit encode.
    Rig rig(/*window=*/60);
    rig.train();
    rig.warmSecret();
    rig.hierarchy.flush(sim::MemRef::load(
        SpectreVictim::array2Line('Z' & 0x3f)));

    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::LowSixBits);
    EXPECT_TRUE(res.load1_landed);
    EXPECT_FALSE(res.load2_landed) << "memory-latency encode cannot "
                                      "complete in a 60-cycle window";
}

TEST(TransientCore, ArchitecturalOutcomeUpdatesPredictor)
{
    Rig rig;
    rig.train();
    // Repeated out-of-bounds calls eventually retrain to not-taken.
    for (int i = 0; i < 6; ++i)
        rig.core.callVictim(rig.victim, SpectreVictim::maliciousX(0),
                            GadgetPart::LowSixBits);
    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::LowSixBits);
    EXPECT_FALSE(res.predicted_taken);
}

TEST(TransientCore, HighPartEncodesUpperBits)
{
    Rig rig;
    rig.train(6);
    rig.warmSecret();
    const auto res = rig.core.callVictim(
        rig.victim, SpectreVictim::maliciousX(0), GadgetPart::HighTwoBits);
    EXPECT_EQ(res.encoded_index, 'Z' >> 6);
}

TEST(TransientCore, WindowSetterWorks)
{
    Rig rig;
    rig.core.setWindow(123);
    EXPECT_EQ(rig.core.config().window, 123u);
}
