/**
 * @file
 * Tests for the replacement-policy state machines, including exact
 * Tree-PLRU / Bit-PLRU transitions checked against hand-computed vectors
 * (the channel's correctness rests on these).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/replacement.hpp"

using namespace lruleak::sim;

// ------------------------------------------------------------- TrueLru

TEST(TrueLru, VictimIsLeastRecentlyUsed)
{
    TrueLru lru(4);
    // Power-on order: 0 MRU ... 3 LRU.
    EXPECT_EQ(lru.victim(), 3u);
    lru.touch(3);
    EXPECT_EQ(lru.victim(), 2u);
    lru.touch(2);
    lru.touch(1);
    lru.touch(0);
    EXPECT_EQ(lru.victim(), 3u);
}

TEST(TrueLru, AgeTracksRecency)
{
    TrueLru lru(4);
    lru.touch(2);
    EXPECT_EQ(lru.age(2), 0u);
    lru.touch(1);
    EXPECT_EQ(lru.age(1), 0u);
    EXPECT_EQ(lru.age(2), 1u);
}

TEST(TrueLru, SequentialFillEvictsOldest)
{
    // The property the paper's protocols rely on: access 0..N-1 in
    // order, then the victim is way 0.
    TrueLru lru(8);
    for (std::uint32_t w = 0; w < 8; ++w)
        lru.touch(w);
    EXPECT_EQ(lru.victim(), 0u);
}

// ------------------------------------------------------------ TreePlru

TEST(TreePlru, RequiresPowerOfTwoWays)
{
    EXPECT_THROW(TreePlru(6), std::invalid_argument);
    EXPECT_THROW(TreePlru(1), std::invalid_argument);
    EXPECT_NO_THROW(TreePlru(2));
    EXPECT_NO_THROW(TreePlru(16));
}

TEST(TreePlru, HandComputedTransitions4Way)
{
    // 4-way tree: node0 root, node1 = left pair {0,1}, node2 = right
    // pair {2,3}.  Bit semantics: 0 = victim left, 1 = victim right.
    TreePlru t(4);
    EXPECT_EQ(t.victim(), 0u); // all bits 0 -> leftmost

    t.touch(0); // root -> right (1), node1 -> right (1)
    EXPECT_TRUE(t.nodeBit(0));
    EXPECT_TRUE(t.nodeBit(1));
    EXPECT_EQ(t.victim(), 2u); // right subtree, its bit 0 -> way 2

    t.touch(2); // root -> left (0), node2 -> right (1)
    EXPECT_FALSE(t.nodeBit(0));
    EXPECT_TRUE(t.nodeBit(2));
    EXPECT_EQ(t.victim(), 1u); // left subtree, node1 = 1 -> way 1

    t.touch(1); // root -> right, node1 -> left
    EXPECT_EQ(t.victim(), 3u);

    t.touch(3);
    EXPECT_EQ(t.victim(), 0u);
}

TEST(TreePlru, SequentialFillEvictsWay0)
{
    // Core channel property (Algorithm 1 init with d = 8): after touching
    // 0..7 in order, the victim is way 0.
    TreePlru t(8);
    for (std::uint32_t w = 0; w < 8; ++w)
        t.touch(w);
    EXPECT_EQ(t.victim(), 0u);
}

TEST(TreePlru, TouchProtectsWay)
{
    TreePlru t(8);
    for (std::uint32_t w = 0; w < 8; ++w)
        t.touch(w);
    t.touch(0); // the sender's encode access
    EXPECT_NE(t.victim(), 0u); // line 0 is no longer the victim
}

TEST(TreePlru, StateBitsSize)
{
    EXPECT_EQ(TreePlru(8).stateBits().size(), 7u);
    EXPECT_EQ(TreePlru(16).stateBits().size(), 15u);
}

TEST(TreePlru, VictimIsDeterministicAndStateless)
{
    TreePlru t(8);
    t.touch(3);
    t.touch(5);
    const auto v1 = t.victim();
    const auto v2 = t.victim();
    EXPECT_EQ(v1, v2);
}

// ------------------------------------------------------------- BitPlru

TEST(BitPlru, VictimIsLowestClearBit)
{
    BitPlru b(4);
    EXPECT_EQ(b.victim(), 0u);
    b.touch(0);
    EXPECT_EQ(b.victim(), 1u);
    b.touch(2);
    EXPECT_EQ(b.victim(), 1u);
    b.touch(1);
    EXPECT_EQ(b.victim(), 3u);
}

TEST(BitPlru, SaturationResetsAllButAccessed)
{
    BitPlru b(4);
    b.touch(0);
    b.touch(1);
    b.touch(2);
    b.touch(3); // saturates: reset, then set way 3
    EXPECT_FALSE(b.mruBit(0));
    EXPECT_FALSE(b.mruBit(1));
    EXPECT_FALSE(b.mruBit(2));
    EXPECT_TRUE(b.mruBit(3));
    EXPECT_EQ(b.victim(), 0u);
}

TEST(BitPlru, FillDoesNotSetMruBit)
{
    // The behaviour Table I implies (see replacement.hpp).
    BitPlru b(4);
    b.onFill(2);
    EXPECT_FALSE(b.mruBit(2));
    EXPECT_EQ(b.victim(), 0u);
}

TEST(BitPlru, SequenceOneSteadyStateEvictsLine0)
{
    // Steady state of the paper's Sequence 1: line 0 refills into the
    // same way and is chosen again -- 100% eviction (Table I, >= 8
    // iterations).
    BitPlru b(8);
    for (std::uint32_t w = 0; w < 8; ++w)
        b.touch(w); // saturate: only bit 7 remains
    const auto victim_for_8 = b.victim();
    EXPECT_EQ(victim_for_8, 0u);
    b.onFill(victim_for_8); // line 8 fills way 0, bit stays clear
    EXPECT_EQ(b.victim(), 0u); // line 0's refill will evict line 8 again
}

// ---------------------------------------------------------------- Fifo

TEST(Fifo, HitsDoNotChangeState)
{
    // The security property the defense study relies on.
    Fifo f(4);
    const auto before = f.stateBits();
    f.touch(0);
    f.touch(3);
    f.touch(2);
    EXPECT_EQ(f.stateBits(), before);
}

TEST(Fifo, EvictsInFillOrder)
{
    Fifo f(4);
    f.onFill(2);
    f.onFill(0);
    f.onFill(3);
    f.onFill(1);
    EXPECT_EQ(f.victim(), 2u);
    f.onFill(2); // refill: becomes newest
    EXPECT_EQ(f.victim(), 0u);
}

// --------------------------------------------------------------- Srrip

TEST(Srrip, InsertAtLongReReference)
{
    Srrip s(4);
    s.onFill(1);
    EXPECT_EQ(s.rrpv(1), Srrip::kInsertRrpv);
}

TEST(Srrip, HitPromotesToZero)
{
    Srrip s(4);
    s.onFill(1);
    s.touch(1);
    EXPECT_EQ(s.rrpv(1), 0);
}

TEST(Srrip, VictimIsFirstMaxRrpv)
{
    Srrip s(4);
    // Power-on: all at max -> way 0.
    EXPECT_EQ(s.victim(), 0u);
    s.onFill(0);
    s.onFill(1);
    s.onFill(2);
    s.onFill(3);
    s.touch(0);
    // Aging must bring 1..3 (rrpv 2) to max before 0 (rrpv 0).
    EXPECT_EQ(s.victim(), 1u);
}

// ---------------------------------------------------------- RandomRepl

TEST(RandomRepl, DeterministicForSeed)
{
    RandomRepl a(8, 5), b(8, 5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.selectVictim(), b.selectVictim());
}

TEST(RandomRepl, ResetReplaysStream)
{
    RandomRepl r(8, 5);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(r.selectVictim());
    r.reset();
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(r.selectVictim(), first[static_cast<std::size_t>(i)]);
}

TEST(RandomRepl, CoversAllWays)
{
    RandomRepl r(8, 5);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.selectVictim());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomRepl, VictimIsAPureSelectVictimPreview)
{
    // The fixed contract: victim() never advances the stream, and always
    // previews exactly what the next selectVictim() will commit.
    RandomRepl r(8, 5);
    for (int i = 0; i < 50; ++i) {
        const auto preview = r.victim();
        ASSERT_EQ(r.victim(), preview) << "victim() must not mutate";
        ASSERT_EQ(r.selectVictim(), preview);
    }
}

TEST(Srrip, VictimPreviewDoesNotAge)
{
    // The fixed contract for SRRIP: victim() previews the aging outcome
    // without modifying the RRPVs; selectVictim() commits the aging.
    Srrip s(4);
    for (std::uint32_t w = 0; w < 4; ++w)
        s.onFill(w); // all at RRPV=2: victim selection must age
    s.touch(0);
    const auto before = s.stateBits();
    const auto preview = s.victim();
    EXPECT_EQ(s.stateBits(), before) << "victim() must not mutate";
    EXPECT_EQ(s.selectVictim(), preview);
    EXPECT_NE(s.stateBits(), before) << "selectVictim() ages the RRPVs";
    EXPECT_EQ(s.rrpv(preview), Srrip::kMaxRrpv);
}

// ---------------------------------------------------- factory and names

TEST(Factory, CreatesEveryKind)
{
    for (auto kind : {ReplPolicyKind::TrueLru, ReplPolicyKind::TreePlru,
                      ReplPolicyKind::BitPlru, ReplPolicyKind::Fifo,
                      ReplPolicyKind::Random, ReplPolicyKind::Srrip}) {
        auto policy = makeReplacementPolicy(kind, 8, 1);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->kind(), kind);
        EXPECT_EQ(policy->numWays(), 8u);
    }
}

TEST(Factory, NamesRoundTrip)
{
    for (auto kind : {ReplPolicyKind::TrueLru, ReplPolicyKind::TreePlru,
                      ReplPolicyKind::BitPlru, ReplPolicyKind::Fifo,
                      ReplPolicyKind::Random, ReplPolicyKind::Srrip})
        EXPECT_EQ(replPolicyFromName(std::string(replPolicyName(kind))),
                  kind);
    EXPECT_THROW(replPolicyFromName("nonsense"), std::invalid_argument);
}

TEST(VictimUnlocked, SkipsLockedWays)
{
    TrueLru lru(4); // victim would be way 3
    std::vector<bool> locked{false, false, false, true};
    EXPECT_NE(lru.victimUnlocked(locked), 3u);
    std::vector<bool> all_locked{true, true, true, true};
    EXPECT_EQ(lru.victimUnlocked(all_locked), ReplacementPolicy::kNoVictim);
}

// --------------------------------------- property sweeps over policies

struct PolicyCase
{
    ReplPolicyKind kind;
    std::uint32_t ways;
};

class PolicyProperties : public ::testing::TestWithParam<PolicyCase>
{};

TEST_P(PolicyProperties, VictimAlwaysInRange)
{
    const auto [kind, ways] = GetParam();
    auto policy = makeReplacementPolicy(kind, ways, 3);
    Xoshiro256 rng(99);
    for (int i = 0; i < 2000; ++i) {
        if (rng.chance(0.5))
            policy->touch(static_cast<std::uint32_t>(rng.below(ways)));
        else
            policy->onFill(static_cast<std::uint32_t>(rng.below(ways)));
        ASSERT_LT(policy->victim(), ways);
    }
}

TEST_P(PolicyProperties, CloneIsIndependentCopy)
{
    const auto [kind, ways] = GetParam();
    auto policy = makeReplacementPolicy(kind, ways, 3);
    policy->touch(1 % ways);
    auto copy = policy->clone();
    EXPECT_EQ(copy->stateBits(), policy->stateBits());
    copy->touch((ways - 1) % ways);
    // Originals must be unaffected by mutations of the clone (state
    // comparison only meaningful for stateful policies).
    if (kind != ReplPolicyKind::Random) {
        auto again = makeReplacementPolicy(kind, ways, 3);
        again->touch(1 % ways);
        EXPECT_EQ(policy->stateBits(), again->stateBits());
    }
}

TEST_P(PolicyProperties, ResetRestoresPowerOnVictim)
{
    const auto [kind, ways] = GetParam();
    auto policy = makeReplacementPolicy(kind, ways, 3);
    auto fresh = makeReplacementPolicy(kind, ways, 3);
    for (std::uint32_t w = 0; w < ways; ++w)
        policy->touch(w);
    policy->reset();
    EXPECT_EQ(policy->victim(), fresh->victim());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperties,
    ::testing::Values(PolicyCase{ReplPolicyKind::TrueLru, 4},
                      PolicyCase{ReplPolicyKind::TrueLru, 8},
                      PolicyCase{ReplPolicyKind::TreePlru, 4},
                      PolicyCase{ReplPolicyKind::TreePlru, 8},
                      PolicyCase{ReplPolicyKind::TreePlru, 16},
                      PolicyCase{ReplPolicyKind::BitPlru, 4},
                      PolicyCase{ReplPolicyKind::BitPlru, 8},
                      PolicyCase{ReplPolicyKind::Fifo, 8},
                      PolicyCase{ReplPolicyKind::Random, 8},
                      PolicyCase{ReplPolicyKind::Srrip, 8}));

/**
 * Cross-policy invariant of the paper's Section IV-C: the receiver
 * accesses lines 0..7 in order, but the lines sit in *scrambled ways*
 * (wherever earlier fills placed them).  True LRU still always evicts
 * the first-touched way; Tree-PLRU does not — that way-permutation
 * sensitivity is exactly what Table I quantifies.
 */
TEST(PolicyContrast, TrueLruGuaranteesPlrusDoNot)
{
    Xoshiro256 rng(4242);
    int tree_mismatch = 0;
    for (int trial = 0; trial < 200; ++trial) {
        TrueLru lru(8);
        TreePlru tree(8);
        // Random permutation: way holding "line i".
        std::uint32_t perm[8] = {0, 1, 2, 3, 4, 5, 6, 7};
        for (std::uint32_t i = 8; i > 1; --i)
            std::swap(perm[i - 1], perm[rng.below(i)]);
        // Sequence 1 body: touch lines 0..7 in order.
        for (std::uint32_t line = 0; line < 8; ++line) {
            lru.touch(perm[line]);
            tree.touch(perm[line]);
        }
        // True LRU: the victim is always line 0's way.
        ASSERT_EQ(lru.victim(), perm[0]);
        tree_mismatch += tree.victim() != perm[0] ? 1 : 0;
    }
    // Tree-PLRU sometimes picks someone else (that is the whole point of
    // Table I); Table I suggests roughly half the time.
    EXPECT_GT(tree_mismatch, 40);
    EXPECT_LT(tree_mismatch, 160);
}
