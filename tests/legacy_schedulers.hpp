/**
 * @file
 * Test-only reference copies of the three retired ad-hoc schedulers.
 *
 * exec::Engine replaced SmtScheduler / TimeSliceScheduler /
 * MultiCoreScheduler with one shared stepping core and pluggable
 * arbitration policies; the production classes are now thin shims over
 * the engine.  To keep the equivalence claim *testable* (the shims
 * cannot differ from the engine by construction), the seed
 * implementations live on here verbatim — independent stepping loops,
 * independent RNG consumption — as the oracle the randomized
 * differential suite compares the engine against, the same pattern the
 * repo uses for the legacy virtual ReplacementPolicy vs sim::ReplState.
 *
 * Do not "fix" or modernise this code: its value is being the seed
 * behaviour, byte for byte.
 */

#ifndef LRULEAK_TESTS_LEGACY_SCHEDULERS_HPP
#define LRULEAK_TESTS_LEGACY_SCHEDULERS_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "exec/op.hpp"
#include "sim/hierarchy.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "sim/random.hpp"
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

namespace lruleak::legacy {

struct LegacySmtConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL;
    std::uint32_t op_overhead = 10;
    std::uint32_t jitter = 4;
    std::uint64_t seed = 42;
};

/** Seed SmtScheduler, verbatim. */
class LegacySmtScheduler
{
  public:
    using Config = LegacySmtConfig;

    LegacySmtScheduler(sim::CacheHierarchy &hierarchy,
                       const timing::Uarch &uarch,
                       LegacySmtConfig config = {})
        : hierarchy_(hierarchy), uarch_(uarch), model_(uarch),
          config_(config), rng_(config.seed)
    {
    }

    std::uint64_t
    run(exec::ThreadProgram &thread0, exec::ThreadProgram &thread1,
        unsigned primary = 1)
    {
        exec::ThreadProgram *threads[2] = {&thread0, &thread1};
        threads[0]->setThreadId(0);
        threads[1]->setThreadId(1);

        std::uint64_t clock[2] = {now_, now_};
        bool done[2] = {false, false};

        while (now_ < config_.max_cycles) {
            unsigned idx;
            if (done[0] && done[1])
                break;
            if (done[0])
                idx = 1;
            else if (done[1])
                idx = 0;
            else
                idx = clock[0] <= clock[1] ? 0 : 1;

            exec::ThreadProgram &prog = *threads[idx];
            const exec::Op op = prog.next(clock[idx]);

            if (op.kind == exec::OpKind::Done) {
                done[idx] = true;
                if (idx == primary)
                    break;
                continue;
            }
            if (op.kind == exec::OpKind::SpinUntil) {
                clock[idx] = std::max(clock[idx] + 1, op.until);
            } else {
                clock[idx] += executeOp(prog, op, clock[idx]);
            }
            now_ = std::max(now_, clock[idx]);

            if (done[primary])
                break;
        }
        return now_;
    }

    std::uint64_t now() const { return now_; }

  private:
    std::uint64_t
    executeOp(exec::ThreadProgram &prog, const exec::Op &op,
              std::uint64_t start)
    {
        const std::uint64_t jitter =
            config_.jitter ? rng_.below(config_.jitter) : 0;
        switch (op.kind) {
          case exec::OpKind::Access: {
            const auto res = hierarchy_.access(op.ref, op.lock_req);
            exec::OpResult out;
            out.kind = exec::OpKind::Access;
            out.level = res.level;
            out.tsc = start;
            prog.onResult(out);
            return uarch_.latency(res.level) + config_.op_overhead + jitter;
          }
          case exec::OpKind::Measure: {
            const auto res = hierarchy_.access(op.ref, op.lock_req);
            exec::OpResult out;
            out.kind = exec::OpKind::Measure;
            out.level = res.level;
            out.measured = model_.chase(op.chain_levels, res.level, rng_);
            out.tsc = start;
            prog.onResult(out);
            return uarch_.latency(res.level) + config_.op_overhead + jitter;
          }
          case exec::OpKind::Flush: {
            hierarchy_.flush(op.ref);
            exec::OpResult out;
            out.kind = exec::OpKind::Flush;
            out.tsc = start;
            prog.onResult(out);
            return uarch_.mem_latency + config_.op_overhead + jitter;
          }
          case exec::OpKind::SpinUntil:
          case exec::OpKind::Done:
            return 0;
        }
        return 0;
    }

    sim::CacheHierarchy &hierarchy_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    Config config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
};

struct LegacyTimeSliceConfig
{
    std::uint64_t quantum = 150'000'000;
    std::uint64_t quantum_jitter = 80'000'000;
    std::uint32_t switch_cost = 3'000;
    std::uint32_t kernel_noise_lines = 48;
    double background_prob = 0.25;
    std::uint32_t background_lines = 1024;
    std::uint64_t tick_period = 4'000'000;
    std::uint32_t tick_lines = 24;

    std::uint64_t max_cycles = 4'000'000'000'000ULL;
    std::uint32_t op_overhead = 10;
    std::uint32_t jitter = 4;
    std::uint64_t seed = 42;
};

/** Seed TimeSliceScheduler, verbatim. */
class LegacyTimeSliceScheduler
{
  public:
    using Config = LegacyTimeSliceConfig;

    static constexpr sim::ThreadId kKernelThread = 1000;
    static constexpr sim::ThreadId kBackgroundThread = 1001;

    LegacyTimeSliceScheduler(sim::CacheHierarchy &hierarchy,
                             const timing::Uarch &uarch,
                       LegacyTimeSliceConfig config = {})
        : hierarchy_(hierarchy), uarch_(uarch), model_(uarch),
          config_(config), rng_(config.seed)
    {
    }

    std::uint64_t
    run(exec::ThreadProgram &thread0, exec::ThreadProgram &thread1,
        unsigned primary = 1)
    {
        exec::ThreadProgram *threads[2] = {&thread0, &thread1};
        threads[0]->setThreadId(0);
        threads[1]->setThreadId(1);

        bool done[2] = {false, false};
        std::uint64_t spin_until[2] = {0, 0};
        unsigned active = 0;

        while (now_ < config_.max_cycles && !done[primary]) {
            const std::uint64_t slice_end = now_ + config_.quantum +
                (config_.quantum_jitter
                     ? rng_.below(config_.quantum_jitter)
                     : 0);

            if (rng_.chance(config_.background_prob)) {
                backgroundSlice(slice_end);
                now_ += config_.switch_cost;
                contextSwitchNoise();
                continue;
            }

            exec::ThreadProgram &prog = *threads[active];
            while (now_ < slice_end && !done[active]) {
                serviceTicks();
                if (spin_until[active] > now_) {
                    std::uint64_t stop =
                        std::min(spin_until[active], slice_end);
                    if (config_.tick_period != 0)
                        stop = std::min(stop, next_tick_);
                    now_ = std::max(now_ + 1, stop);
                    if (spin_until[active] > now_ && now_ >= slice_end)
                        break;
                    continue;
                }
                const exec::Op op = prog.next(now_);
                if (op.kind == exec::OpKind::Done) {
                    done[active] = true;
                } else if (op.kind == exec::OpKind::SpinUntil) {
                    spin_until[active] = op.until;
                } else {
                    now_ += executeOp(prog, op, now_);
                }
            }

            if (done[primary])
                break;

            now_ += config_.switch_cost;
            contextSwitchNoise();
            const unsigned other = active ^ 1u;
            if (!done[other])
                active = other;
        }
        return now_;
    }

    std::uint64_t now() const { return now_; }

  private:
    static constexpr sim::Addr kKernelBase = 0x7f00'0000'0000ULL;
    static constexpr sim::Addr kBackgroundBase = 0x6e00'0000'0000ULL;
    static constexpr std::uint64_t kKernelLines = 4096;

    std::uint64_t
    executeOp(exec::ThreadProgram &prog, const exec::Op &op,
              std::uint64_t start)
    {
        const std::uint64_t jitter =
            config_.jitter ? rng_.below(config_.jitter) : 0;
        switch (op.kind) {
          case exec::OpKind::Access: {
            const auto res = hierarchy_.access(op.ref, op.lock_req);
            exec::OpResult out;
            out.kind = exec::OpKind::Access;
            out.level = res.level;
            out.tsc = start;
            prog.onResult(out);
            return uarch_.latency(res.level) + config_.op_overhead + jitter;
          }
          case exec::OpKind::Measure: {
            const auto res = hierarchy_.access(op.ref, op.lock_req);
            exec::OpResult out;
            out.kind = exec::OpKind::Measure;
            out.level = res.level;
            out.measured = model_.chase(op.chain_levels, res.level, rng_);
            out.tsc = start;
            prog.onResult(out);
            return uarch_.latency(res.level) + config_.op_overhead + jitter;
          }
          case exec::OpKind::Flush: {
            hierarchy_.flush(op.ref);
            exec::OpResult out;
            out.kind = exec::OpKind::Flush;
            out.tsc = start;
            prog.onResult(out);
            return uarch_.mem_latency + config_.op_overhead + jitter;
          }
          case exec::OpKind::SpinUntil:
          case exec::OpKind::Done:
            return 0;
        }
        return 0;
    }

    void
    kernelBurst(std::uint64_t mean_lines)
    {
        if (mean_lines == 0)
            return;
        const std::uint64_t count =
            mean_lines / 2 + rng_.below(mean_lines + 1);
        burst_refs_.resize(count);
        burst_levels_.resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            const sim::Addr line =
                kKernelBase + rng_.below(kKernelLines) * 64;
            burst_refs_[i] = sim::MemRef{line, line, kKernelThread, false};
        }
        hierarchy_.accessBatch(burst_refs_, burst_levels_);
        for (std::uint64_t i = 0; i < count; ++i)
            now_ += uarch_.latency(burst_levels_[i]);
    }

    void contextSwitchNoise() { kernelBurst(config_.kernel_noise_lines); }

    void
    serviceTicks()
    {
        if (config_.tick_period == 0)
            return;
        if (next_tick_ == 0)
            next_tick_ = now_ + config_.tick_period;
        while (now_ >= next_tick_) {
            kernelBurst(config_.tick_lines);
            next_tick_ += config_.tick_period;
        }
    }

    void
    backgroundSlice(std::uint64_t slice_end)
    {
        for (std::uint32_t i = 0; i < config_.background_lines; ++i) {
            const sim::Addr line = kBackgroundBase +
                rng_.below(config_.background_lines * 4) * 64;
            sim::MemRef ref{line, line, kBackgroundThread, false};
            const auto res = hierarchy_.access(ref);
            now_ += uarch_.latency(res.level) + config_.op_overhead;
            if (now_ >= slice_end)
                break;
        }
        now_ = std::max(now_, slice_end);
    }

    sim::CacheHierarchy &hierarchy_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    Config config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
    std::uint64_t next_tick_ = 0;
    std::vector<sim::MemRef> burst_refs_;
    std::vector<sim::HitLevel> burst_levels_;
};

struct LegacyMultiCoreConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL;
    std::uint32_t op_overhead = 10;
    std::uint32_t jitter = 4;
    std::uint64_t seed = 42;
    std::uint32_t audit_every = 0;
};

/** Seed MultiCoreScheduler, verbatim. */
class LegacyMultiCoreScheduler
{
  public:
    using Config = LegacyMultiCoreConfig;

    LegacyMultiCoreScheduler(sim::MultiCoreHierarchy &hierarchy,
                             const timing::Uarch &uarch,
                       LegacyMultiCoreConfig config = {})
        : hierarchy_(hierarchy), uarch_(uarch), model_(uarch),
          config_(config), rng_(config.seed)
    {
    }

    std::uint64_t
    run(std::span<exec::ThreadProgram *const> programs, unsigned primary)
    {
        const unsigned n = static_cast<unsigned>(programs.size());
        if (n != hierarchy_.cores())
            throw std::invalid_argument(
                "LegacyMultiCoreScheduler: one program per core required");
        if (primary >= n)
            throw std::invalid_argument(
                "LegacyMultiCoreScheduler: bad primary core");

        for (unsigned c = 0; c < n; ++c)
            programs[c]->setThreadId(c);

        std::vector<std::uint64_t> clock(n, now_);
        std::vector<bool> done(n, false);

        while (now_ < config_.max_cycles) {
            unsigned idx = n;
            for (unsigned c = 0; c < n; ++c) {
                if (!done[c] && (idx == n || clock[c] < clock[idx]))
                    idx = c;
            }
            if (idx == n)
                break;

            exec::ThreadProgram &prog = *programs[idx];
            const exec::Op op = prog.next(clock[idx]);

            if (op.kind == exec::OpKind::Done) {
                done[idx] = true;
                if (idx == primary)
                    break;
                continue;
            }
            if (op.kind == exec::OpKind::SpinUntil) {
                clock[idx] = std::max(clock[idx] + 1, op.until);
            } else {
                clock[idx] += executeOp(idx, prog, op, clock[idx]);
            }
            now_ = std::max(now_, clock[idx]);
        }
        return now_;
    }

    std::uint64_t now() const { return now_; }

  private:
    void
    maybeAudit()
    {
        if (config_.audit_every == 0)
            return;
        if (++ops_since_audit_ < config_.audit_every)
            return;
        ops_since_audit_ = 0;
        if (auto violation = hierarchy_.auditInclusion())
            throw std::logic_error(*violation);
    }

    std::uint64_t
    executeOp(unsigned core, exec::ThreadProgram &prog, const exec::Op &op,
              std::uint64_t start)
    {
        const std::uint64_t jitter =
            config_.jitter ? rng_.below(config_.jitter) : 0;
        switch (op.kind) {
          case exec::OpKind::Access: {
            const auto res = hierarchy_.access(core, op.ref);
            exec::OpResult out;
            out.kind = exec::OpKind::Access;
            out.level = res.level;
            out.tsc = start;
            prog.onResult(out);
            maybeAudit();
            return uarch_.latency(res.level) + config_.op_overhead + jitter;
          }
          case exec::OpKind::Measure: {
            const auto res = hierarchy_.access(core, op.ref);
            exec::OpResult out;
            out.kind = exec::OpKind::Measure;
            out.level = res.level;
            out.measured = model_.chase(op.chain_levels, res.level, rng_);
            out.tsc = start;
            prog.onResult(out);
            maybeAudit();
            return uarch_.latency(res.level) + config_.op_overhead + jitter;
          }
          case exec::OpKind::Flush: {
            hierarchy_.flush(op.ref);
            exec::OpResult out;
            out.kind = exec::OpKind::Flush;
            out.tsc = start;
            prog.onResult(out);
            maybeAudit();
            return uarch_.mem_latency + config_.op_overhead + jitter;
          }
          case exec::OpKind::SpinUntil:
          case exec::OpKind::Done:
            return 0;
        }
        return 0;
    }

    sim::MultiCoreHierarchy &hierarchy_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    Config config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
    std::uint64_t ops_since_audit_ = 0;
};

} // namespace lruleak::legacy

#endif // LRULEAK_TESTS_LEGACY_SCHEDULERS_HPP
