/**
 * @file
 * Tests for the trace decoders: thresholding, bit windows, moving
 * average, best-fit period, and the run-length noise filter.
 */

#include <gtest/gtest.h>

#include "channel/decoder.hpp"

using namespace lruleak::channel;

namespace {

std::vector<Sample>
samplesFrom(const std::vector<std::uint32_t> &latencies,
            std::uint64_t t0 = 0, std::uint64_t dt = 100)
{
    std::vector<Sample> out;
    for (std::size_t i = 0; i < latencies.size(); ++i)
        out.push_back(Sample{t0 + i * dt, latencies[i],
                             lruleak::sim::HitLevel::L1});
    return out;
}

} // namespace

TEST(Threshold, Polarity)
{
    const auto samples = samplesFrom({30, 50, 30, 50});
    EXPECT_EQ(bitsToString(thresholdSamples(samples, 40, false)), "1010");
    EXPECT_EQ(bitsToString(thresholdSamples(samples, 40, true)), "0101");
}

TEST(Threshold, BoundaryIsHit)
{
    const auto samples = samplesFrom({40});
    EXPECT_EQ(thresholdSamples(samples, 40, false)[0], 1);
}

TEST(WindowDecode, MajorityVotePerBit)
{
    // Bit period 1000, samples every 100: 10 samples per bit.
    std::vector<std::uint32_t> lat;
    for (int i = 0; i < 10; ++i)
        lat.push_back(30); // bit 1 (hit)
    for (int i = 0; i < 10; ++i)
        lat.push_back(50); // bit 0
    lat[12] = 30; // minority noise in bit 0's window
    const auto bits = windowDecode(samplesFrom(lat), 40, false, 0, 1000, 2);
    EXPECT_EQ(bitsToString(bits), "10");
}

TEST(WindowDecode, LostWindowsAreDropped)
{
    // Three bit periods but samples only in the first and third.
    std::vector<Sample> samples;
    samples.push_back(Sample{100, 30, lruleak::sim::HitLevel::L1});
    samples.push_back(Sample{2100, 30, lruleak::sim::HitLevel::L1});
    const auto bits = windowDecode(samples, 40, false, 0, 1000, 3);
    EXPECT_EQ(bits.size(), 2u); // middle bit lost
}

TEST(WindowDecode, SamplesBeforeStartIgnored)
{
    std::vector<Sample> samples;
    samples.push_back(Sample{50, 30, lruleak::sim::HitLevel::L1});
    samples.push_back(Sample{1500, 50, lruleak::sim::HitLevel::L1});
    const auto bits = windowDecode(samples, 40, false, 1000, 1000, 1);
    ASSERT_EQ(bits.size(), 1u);
    EXPECT_EQ(bits[0], 0);
}

TEST(WindowDecode, EmptyInputs)
{
    EXPECT_TRUE(windowDecode({}, 40, false, 0, 1000, 5).empty());
    EXPECT_TRUE(windowDecode(samplesFrom({30}), 40, false, 0, 0, 5).empty());
    EXPECT_TRUE(windowDecode(samplesFrom({30}), 40, false, 0, 100, 0).empty());
}

TEST(MovingAverage, SmoothsSeries)
{
    const std::vector<double> series{0, 0, 0, 10, 0, 0, 0};
    const auto smooth = movingAverage(series, 3);
    ASSERT_EQ(smooth.size(), series.size());
    EXPECT_NEAR(smooth[3], 10.0 / 3.0, 1e-9);
    EXPECT_NEAR(smooth[2], 10.0 / 3.0, 1e-9);
    EXPECT_NEAR(smooth[0], 0.0, 1e-9);
}

TEST(MovingAverage, WindowOnePassThrough)
{
    const std::vector<double> series{1, 2, 3};
    EXPECT_EQ(movingAverage(series, 1), series);
    EXPECT_EQ(movingAverage(series, 0), series);
}

TEST(BestPeriod, RecoversSquareWave)
{
    // Alternating blocks of 97 low / 97 high, as in the paper's AMD
    // trace analysis (Fig. 7: best fit period 97).
    std::vector<double> series;
    for (int block = 0; block < 14; ++block)
        for (int i = 0; i < 97; ++i)
            series.push_back(block % 2 ? 120.0 : 80.0);
    EXPECT_EQ(bestAlternatingPeriod(series, 50, 150), 97u);
}

TEST(BestPeriod, NoisyWaveStillClose)
{
    lruleak::sim::Xoshiro256 rng(11);
    std::vector<double> series;
    for (int block = 0; block < 20; ++block)
        for (int i = 0; i < 85; ++i)
            series.push_back((block % 2 ? 120.0 : 80.0) +
                             rng.gaussian() * 10.0);
    const auto p = bestAlternatingPeriod(series, 50, 120);
    EXPECT_NEAR(static_cast<double>(p), 85.0, 3.0);
}

TEST(BestPeriod, DegenerateInputs)
{
    EXPECT_EQ(bestAlternatingPeriod({}, 10, 20), 10u);
    EXPECT_EQ(bestAlternatingPeriod({1.0, 2.0}, 0, 5), 0u);
}

TEST(TrimRuns, RemovesLongSaturatedStretches)
{
    // 5 good alternating samples, then 20 stuck-at-one samples (noise
    // burst from another process), then 5 good ones.
    std::vector<std::uint32_t> lat;
    for (int i = 0; i < 6; ++i)
        lat.push_back(i % 2 ? 30 : 50);
    for (int i = 0; i < 20; ++i)
        lat.push_back(30);
    for (int i = 0; i < 6; ++i)
        lat.push_back(i % 2 ? 30 : 50);
    const auto samples = samplesFrom(lat);
    const auto trimmed = trimSaturatedRuns(samples, 40, false, 8);
    EXPECT_LT(trimmed.size(), samples.size());
    // The stray '1' adjoining the burst is trimmed with it: 11 remain.
    EXPECT_GE(trimmed.size(), 10u);
}

TEST(TrimRuns, ShortRunsKept)
{
    const auto samples = samplesFrom({30, 30, 30, 50, 50, 30});
    EXPECT_EQ(trimSaturatedRuns(samples, 40, false, 8).size(),
              samples.size());
}

TEST(Latencies, ExtractsDoubles)
{
    const auto samples = samplesFrom({10, 20, 30});
    const auto vals = latencies(samples);
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_DOUBLE_EQ(vals[1], 20.0);
}
