/**
 * @file
 * End-to-end covert-channel tests: the paper's headline behaviours as
 * executable assertions, driven through the unified channel::Session
 * pipeline (the deprecated runCovertChannel shim keeps its own
 * differential coverage in test_session_differential.cpp).
 */

#include <gtest/gtest.h>

#include "channel/multi_spy.hpp"
#include "channel/session.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

SessionConfig
baseConfig()
{
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.mode = SharingMode::HyperThreaded;
    cfg.message = randomBits(96, 424242);
    cfg.repeats = 1;
    cfg.d = 8;
    cfg.tr = 600;
    cfg.ts = 6000;
    cfg.seed = 7;
    return cfg;
}

} // namespace

TEST(CovertChannel, Alg1HyperThreadedIsClean)
{
    const auto res = runSession(baseConfig());
    EXPECT_EQ(res.sent.size(), 96u);
    EXPECT_LT(res.error_rate, 0.02);
    // Ts = 6000 at 3.8 GHz: effective rate in the paper's 400-650 Kbps
    // band.
    EXPECT_GT(res.kbps, 400.0);
    EXPECT_LT(res.kbps, 700.0);
}

TEST(CovertChannel, Alg2HyperThreadedWorksWithOddD)
{
    auto cfg = baseConfig();
    cfg.channel = ChannelId::LruAlg2;
    cfg.d = 5;
    const auto res = runSession(cfg);
    EXPECT_LT(res.error_rate, 0.05);
}

TEST(CovertChannel, Alg2EvenDPathology)
{
    // Fig. 4 bottom: even d is bad for Algorithm 2 on Tree-PLRU.
    auto cfg = baseConfig();
    cfg.channel = ChannelId::LruAlg2;
    cfg.d = 5;
    const double odd_err = runSession(cfg).error_rate;
    cfg.d = 4;
    const double even_err = runSession(cfg).error_rate;
    EXPECT_GT(even_err, odd_err + 0.05);
}

TEST(CovertChannel, FasterTsRaisesErrorOrKeepsLow)
{
    // Error must not *decrease* when pushing the rate (Fig. 4 trend).
    auto cfg = baseConfig();
    cfg.channel = ChannelId::LruAlg2;
    cfg.d = 5;
    cfg.ts = 30000;
    const double slow_err = runSession(cfg).error_rate;
    cfg.ts = 4500;
    const double fast_err = runSession(cfg).error_rate;
    EXPECT_GE(fast_err + 0.02, slow_err);
}

TEST(CovertChannel, SenderNeverMissesInSteadyState)
{
    // The stealth property: the LRU sender encodes with cache hits.
    const auto res = runSession(baseConfig());
    EXPECT_LT(res.sender_l1.missRate(), 0.01);
}

TEST(CovertChannel, ThresholdMatchesUarch)
{
    const auto res = runSession(baseConfig());
    const timing::MeasurementModel model(
        timing::Uarch::intelXeonE52690());
    EXPECT_EQ(res.threshold, model.chaseThreshold());
}

TEST(CovertChannel, DeterministicForSeed)
{
    const auto a = runSession(baseConfig());
    const auto b = runSession(baseConfig());
    EXPECT_EQ(a.error_rate, b.error_rate);
    EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        EXPECT_EQ(a.samples[i].latency, b.samples[i].latency);
}

TEST(CovertChannel, DifferentSeedsStillDecode)
{
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        auto cfg = baseConfig();
        cfg.seed = seed;
        cfg.message = randomBits(64, seed * 13);
        EXPECT_LT(runSession(cfg).error_rate, 0.03) << "seed " << seed;
    }
}

TEST(CovertChannel, WorksUnderTrueLru)
{
    auto cfg = baseConfig();
    cfg.l1_policy = sim::ReplPolicyKind::TrueLru;
    EXPECT_LT(runSession(cfg).error_rate, 0.02);
}

TEST(CovertChannel, NaiveProtocolDiesUnderBitPlru)
{
    // Emergent simulator finding (see EXPERIMENTS.md): under Bit-PLRU
    // the receiver's own measurement access keeps line 0's MRU bit set,
    // so line 0 is never chosen as victim and the receiver reads a
    // constant -- the d = 8 protocol tuned for Tree-PLRU does not
    // transfer as-is.
    auto cfg = baseConfig();
    cfg.l1_policy = sim::ReplPolicyKind::BitPlru;
    EXPECT_GT(runSession(cfg).error_rate, 0.25);
}

TEST(Defense, RandomReplacementKillsChannel)
{
    // Section IX-A: no LRU state, no channel.  With random replacement
    // line 0's fate is independent of the sender.
    auto cfg = baseConfig();
    cfg.l1_policy = sim::ReplPolicyKind::Random;
    const auto res = runSession(cfg);
    EXPECT_GT(res.error_rate, 0.25);
}

TEST(Defense, FifoRemovesTheHitBasedChannel)
{
    // Under FIFO a *hitting* sender is invisible (state only moves on
    // fills).  The residual channel that remains works through sender
    // MISSES -- i.e., it degenerates into a classic reuse channel that
    // the paper notes is already observable and detectable.  Assert
    // exactly that: the channel only survives because the sender now
    // misses orders of magnitude more often than under Tree-PLRU,
    // destroying the stealth property of Section VII.
    auto plru = baseConfig();
    const auto plru_res = runSession(plru);

    auto fifo = baseConfig();
    fifo.l1_policy = sim::ReplPolicyKind::Fifo;
    const auto fifo_res = runSession(fifo);

    EXPECT_GT(fifo_res.sender_l1.missRate(),
              20 * std::max(plru_res.sender_l1.missRate(), 1e-6));
}

TEST(Defense, DawgL1KillsTheLruChannel)
{
    // Section IX-B: partitioning the ways *and* the replacement state
    // per protection domain removes the cross-thread LRU channel
    // entirely -- the receiver's lines live in their own partition.
    auto cfg = baseConfig();
    cfg.l1_secure = sim::SecureMode::Dawg;
    const auto res = runSession(cfg);
    EXPECT_GT(res.error_rate, 0.25);
}

TEST(Defense, RandomFillL1DegradesTheChannel)
{
    // Random Fill decouples the fill address from the miss address, so
    // the receiver's init phase no longer deterministically plants its
    // lines and the decode collapses.
    auto cfg = baseConfig();
    cfg.l1_secure = sim::SecureMode::RandomFill;
    const auto res = runSession(cfg);
    EXPECT_GT(res.error_rate, 0.25);
}

TEST(Amd, CrossAddressSpaceAlg1IsDead)
{
    // Section VI-B: the utag way predictor makes every receiver reload
    // look like a miss across address spaces.
    auto cfg = baseConfig();
    cfg.uarch = timing::Uarch::amdEpyc7571();
    cfg.message = alternatingBits(24);
    cfg.ts = 100'000;
    cfg.tr = 1000;
    cfg.shared_same_vaddr = false;
    const auto res = runSession(cfg);
    EXPECT_GT(res.error_rate, 0.3);
}

TEST(Amd, SameAddressSpaceAlg1Works)
{
    auto cfg = baseConfig();
    cfg.uarch = timing::Uarch::amdEpyc7571();
    cfg.message = alternatingBits(24);
    cfg.ts = 100'000;
    cfg.tr = 1000;
    cfg.shared_same_vaddr = true; // pthreads in one process
    const auto res = runSession(cfg);
    EXPECT_LT(res.error_rate, 0.1);
    // Table IV: AMD an order of magnitude slower than Intel.
    EXPECT_LT(res.kbps, 50.0);
    EXPECT_GT(res.kbps, 5.0);
}

TEST(Amd, Alg2WorksAcrossProcesses)
{
    auto cfg = baseConfig();
    cfg.uarch = timing::Uarch::amdEpyc7571();
    cfg.channel = ChannelId::LruAlg2;
    cfg.d = 5;
    cfg.message = alternatingBits(24);
    cfg.ts = 100'000;
    cfg.tr = 1000;
    const auto res = runSession(cfg);
    EXPECT_LT(res.error_rate, 0.1);
}

TEST(TimeSliced, Fig6OperatingPoint)
{
    // d = 8, Tr = 1e8: sending 1 is read as 1 in a clearly nonzero
    // fraction of samples; sending 0 almost never (Fig. 6).
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.mode = SharingMode::TimeSliced;
    cfg.d = 8;
    cfg.tr = 100'000'000;
    cfg.encode_gap = 20'000;
    cfg.max_samples = 80;
    cfg.seed = 3;
    const double p1 = sessionPercentOnes(cfg, 1);
    const double p0 = sessionPercentOnes(cfg, 0);
    EXPECT_LT(p0, 0.05);
    EXPECT_GT(p1, 0.10);
    EXPECT_GT(p1, p0 + 0.10);
}

TEST(TimeSliced, TinyTrSeesAlmostNothing)
{
    // Well below the quantum, most measurements never interleave with
    // the sender.
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.mode = SharingMode::TimeSliced;
    cfg.d = 8;
    cfg.tr = 10'000'000;
    cfg.encode_gap = 20'000;
    cfg.max_samples = 80;
    cfg.seed = 3;
    const double p1 = sessionPercentOnes(cfg, 1);
    EXPECT_LT(p1, 0.15);
}

TEST(CovertChannel, SamplesCarryMonotonicTimestamps)
{
    const auto res = runSession(baseConfig());
    for (std::size_t i = 1; i < res.samples.size(); ++i)
        ASSERT_GE(res.samples[i].tsc, res.samples[i - 1].tsc);
}

TEST(CovertChannel, SessionLayoutHonoursConfig)
{
    // The session derives its carrier geometry from the config: an
    // L1-carried channel speaks 8-way L1 geometry on the single-core
    // topology; an LLC-native channel gets the 16-way LLC plan, and
    // cross-core mode forces the multi-core topology.
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    EXPECT_EQ(sessionCarrier(cfg), Carrier::L1);
    EXPECT_FALSE(sessionMultiCore(cfg));
    EXPECT_EQ(sessionLayoutFor(cfg).ways(), 8u);

    cfg.channel = ChannelId::XCoreLruAlg2;
    EXPECT_EQ(sessionCarrier(cfg), Carrier::Llc);
    EXPECT_EQ(sessionLayoutFor(cfg).ways(), 16u);

    cfg.mode = SharingMode::CrossCore;
    EXPECT_TRUE(sessionMultiCore(cfg));
}

TEST(CovertChannel, CollectSymbolsAlignsWithSentBits)
{
    // The leakage plumbing: one decoded symbol per sent bit, erasures
    // included, and on the clean hyper-threaded channel the symbols
    // match the sent bits almost everywhere.
    auto cfg = baseConfig();
    cfg.collect_symbols = true;
    const auto res = runSession(cfg);
    ASSERT_EQ(res.decoded_symbols.size(), res.sent.size());
    std::size_t agree = 0;
    for (std::size_t i = 0; i < res.sent.size(); ++i)
        agree += res.decoded_symbols[i] == res.sent[i] ? 1 : 0;
    EXPECT_GT(agree, res.sent.size() * 9 / 10);
}

// ------------------------------------------------------------ multi-spy

TEST(MultiSpy, MergeFollowsAnySpyWinsContract)
{
    constexpr std::uint8_t E = kErasureSymbol;
    const Bits a = {1, 0, E, E, 0};
    const Bits b = {0, 0, 1, E, E};
    const Bits c = {0, E, E, E, 0};
    const Bits merged = mergeSpySymbols({a, b, c});
    const Bits expected = {1, 0, 1, E, 0};
    EXPECT_EQ(merged, expected);

    // K = 1 degenerates to the single-receiver row unchanged, so the
    // estimator sees exactly what windowSymbols() would have produced.
    EXPECT_EQ(mergeSpySymbols({a}), a);
    EXPECT_EQ(mergeSpySymbols({}), Bits{});
    EXPECT_THROW(mergeSpySymbols({a, Bits{0, 1}}), std::invalid_argument);
}

namespace {

/** The sharp_defense operating point: classic LRU LLC, slow clocks. */
SessionConfig
teamConfig(std::uint32_t spies)
{
    SessionConfig cfg;
    cfg.channel = ChannelId::XCoreLruAlg2;
    cfg.mode = SharingMode::CrossCore;
    cfg.llc_policy = sim::ReplPolicyKind::TrueLru;
    cfg.spies = spies;
    cfg.message = randomBits(16, 4711);
    cfg.d = 12;
    cfg.tr = 3000;
    cfg.ts = 30000;
    cfg.seed = 47;
    cfg.collect_symbols = true;
    return cfg;
}

} // namespace

TEST(MultiSpy, KSpySymbolsAlignOneToOneWithSentBits)
{
    // The satellite guarantee: the K-spy merged trace keeps the exact
    // one-symbol-per-sent-bit alignment collect_symbols gives for K = 1.
    const auto res = runSession(teamConfig(3));
    EXPECT_EQ(res.spies, 3u);
    EXPECT_GE(res.cores, 4u); // sender + three spies
    ASSERT_EQ(res.decoded_symbols.size(), res.sent.size());
    for (std::uint8_t s : res.decoded_symbols)
        EXPECT_TRUE(s == 0 || s == 1 || s == kErasureSymbol) << int(s);
    // On the unprotected LRU LLC the team decodes cleanly.
    EXPECT_LT(res.error_rate, 0.15);
}

TEST(MultiSpy, RequiresCrossCoreAlg2)
{
    auto cfg = teamConfig(2);
    cfg.channel = ChannelId::LruAlg2;
    EXPECT_THROW(runSession(cfg), std::invalid_argument);
    auto smt = teamConfig(2);
    smt.mode = SharingMode::HyperThreaded;
    EXPECT_THROW(runSession(smt), std::invalid_argument);
}

TEST(MultiSpy, PinSlicesTeamRestoresChannelSharpKills)
{
    // SHARP vs the adversary sizes (the sharp_defense headline): the
    // single spy is blinded outright; the three-spy pin-slices team
    // decodes through the defense, paying a loud alarm trail for it.
    auto solo = teamConfig(1);
    solo.llc_secure = sim::SecureMode::Sharp;
    const auto solo_res = runSession(solo);
    EXPECT_GT(solo_res.error_rate, 0.3);

    auto team = teamConfig(3);
    team.llc_secure = sim::SecureMode::Sharp;
    const auto team_res = runSession(team);
    EXPECT_LT(team_res.error_rate, 0.15);
    EXPECT_GT(team_res.sharp_alarms, 0u);
    ASSERT_EQ(team_res.decoded_symbols.size(), team_res.sent.size());
}
