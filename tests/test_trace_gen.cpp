/**
 * @file
 * Tests for the synthetic workload suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/trace_gen.hpp"

using namespace lruleak;
using namespace lruleak::workload;

TEST(Workloads, SuiteHasTenDistinctWorkloads)
{
    const auto names = workloadNames();
    EXPECT_EQ(names.size(), 10u);
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Workloads, FactoryByName)
{
    for (const auto &name : workloadNames()) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
    }
    EXPECT_THROW(makeWorkload("nope"), std::invalid_argument);
}

TEST(Workloads, MemFractionsAreSane)
{
    for (const auto &w : makeWorkloadSuite()) {
        EXPECT_GT(w->memFraction(), 0.1) << w->name();
        EXPECT_LT(w->memFraction(), 0.6) << w->name();
    }
}

TEST(Workloads, StreamIsSequential)
{
    auto w = makeWorkload("stream");
    sim::Xoshiro256 rng(1);
    const auto a = w->next(rng);
    const auto b = w->next(rng);
    EXPECT_EQ(b, a + 8);
}

TEST(Workloads, ResetRestartsDeterministicStreams)
{
    auto w = makeWorkload("stream");
    sim::Xoshiro256 rng(1);
    const auto first = w->next(rng);
    w->next(rng);
    w->reset();
    EXPECT_EQ(w->next(rng), first);
}

TEST(Workloads, HotLoopConcentratesAccesses)
{
    auto w = makeWorkload("hotloop");
    sim::Xoshiro256 rng(2);
    std::set<sim::Addr> lines;
    for (int i = 0; i < 5000; ++i)
        lines.insert(w->next(rng) / 64);
    // Mostly a 256-line hot set plus a cold tail.
    EXPECT_LT(lines.size(), 1200u);
}

TEST(Workloads, PointerChaseSpreadsAccesses)
{
    auto w = makeWorkload("ptrchase");
    sim::Xoshiro256 rng(3);
    std::set<sim::Addr> lines;
    for (int i = 0; i < 5000; ++i)
        lines.insert(w->next(rng) / 64);
    EXPECT_GT(lines.size(), 4500u);
}

TEST(Workloads, SameSeedSameTrace)
{
    for (const auto &name : workloadNames()) {
        auto w1 = makeWorkload(name);
        auto w2 = makeWorkload(name);
        sim::Xoshiro256 r1(7), r2(7);
        for (int i = 0; i < 200; ++i)
            ASSERT_EQ(w1->next(r1), w2->next(r2)) << name;
    }
}

TEST(Workloads, AddressesStayInHeapRange)
{
    for (const auto &w : makeWorkloadSuite()) {
        sim::Xoshiro256 rng(11);
        for (int i = 0; i < 1000; ++i) {
            const auto a = w->next(rng);
            EXPECT_GE(a, 0x0900'0000'0000ULL) << w->name();
            EXPECT_LT(a, 0x0a00'0000'0000ULL) << w->name();
        }
    }
}
