/**
 * @file
 * Tests for the experiment registry: catalog completeness (every seed
 * bench binary's name resolves), metadata sanity, the channel/uarch
 * name tables, and end-to-end runs through runExperiment().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>

#include "sim/repl_state.hpp"

#include "channel/channel_factory.hpp"
#include "core/experiment.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::core;

namespace {

/** The 23 bench binaries the seed repo shipped, one experiment each. */
const std::vector<std::string> kSeedBenchNames = {
    "ablation_chase_length",
    "ablation_defense_efficacy",
    "ablation_policy_channel",
    "ablation_secure_caches",
    "ablation_speculation_window",
    "appc_prefetcher_noise",
    "fig11_plcache_attack",
    "fig13_rdtscp_hist",
    "fig14_skylake_traces",
    "fig15_skylake_timesliced",
    "fig3_pointer_chase_hist",
    "fig4_error_rate",
    "fig5_traces",
    "fig6_timesliced",
    "fig7_amd_traces",
    "fig8_amd_timesliced",
    "fig9_replacement_performance",
    "tab1_plru_eviction",
    "tab2_cache_latency",
    "tab4_transmission_rates",
    "tab5_encoding_latency",
    "tab6_sender_miss_rates",
    "tab7_spectre_miss_rates",
};

/** Sink that records which callbacks fired. */
class RecordingSink : public ResultSink
{
  public:
    void
    begin(const std::string &experiment, const std::string &,
          const ParamMap &params) override
    {
        begun = experiment;
        begin_params = params.values();
    }
    void note(const std::string &) override { ++notes; }
    void
    table(const std::string &, const Table &t) override
    {
        ++tables;
        rows += t.rows();
    }
    void scalar(const std::string &, double) override { ++scalars; }
    void
    series(const std::string &, const std::vector<double> &,
           std::size_t) override
    {
        ++series_count;
    }
    void text(const std::string &, const std::string &) override {}
    void end() override { ended = true; }

    std::string begun;
    std::map<std::string, std::string> begin_params;
    int notes = 0, tables = 0, scalars = 0, series_count = 0;
    std::size_t rows = 0;
    bool ended = false;
};

} // namespace

TEST(Registry, EverySeedBenchNameResolves)
{
    for (const auto &name : kSeedBenchNames) {
        const Experiment *e = Registry::instance().find(name);
        ASSERT_NE(e, nullptr) << name;
        EXPECT_EQ(e->name(), name);
        EXPECT_FALSE(e->description().empty()) << name;
    }
}

TEST(Registry, AtLeastTwentyExperiments)
{
    EXPECT_GE(Registry::instance().size(), 20u);
}

TEST(Registry, AllIsSortedAndMatchesSize)
{
    const auto all = Registry::instance().all();
    EXPECT_EQ(all.size(), Registry::instance().size());
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                               [](const Experiment *a,
                                  const Experiment *b) {
                                   return a->name() < b->name();
                               }));
}

TEST(Registry, UnknownNameReturnsNull)
{
    EXPECT_EQ(Registry::instance().find("no_such_experiment"), nullptr);
}

TEST(Registry, HyphenatedSpellingsResolve)
{
    // The CLI token style uses hyphens; the registry accepts both.
    const Experiment *e = Registry::instance().find("xcore-error-rate");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->name(), "xcore_error_rate");
    EXPECT_EQ(Registry::instance().find("tab1-plru-eviction"),
              Registry::instance().find("tab1_plru_eviction"));
}

TEST(Registry, XCoreExperimentsRegistered)
{
    for (const char *name : {"xcore_traces", "xcore_error_rate"}) {
        const Experiment *e = Registry::instance().find(name);
        ASSERT_NE(e, nullptr) << name;
        EXPECT_FALSE(e->description().empty());
    }
    // The scenario params the cross-core family exposes on the CLI.
    const auto has_param = [](const Experiment *e, const char *param) {
        const auto specs = e->params();
        return std::any_of(specs.begin(), specs.end(),
                           [&](const ParamSpec &s) {
                               return s.name == param;
                           });
    };
    EXPECT_TRUE(has_param(Registry::instance().find("xcore_traces"),
                          "cores"));
    EXPECT_TRUE(has_param(Registry::instance().find("xcore_error_rate"),
                          "noise-cores"));
}

TEST(Registry, SmokeParamsOnlyNameDeclaredKnobsAndValidate)
{
    for (const Experiment *e : Registry::instance().all()) {
        const auto smoke = e->smokeParams();
        // Must resolve cleanly against the declared specs...
        EXPECT_NO_THROW(resolveParams(e->params(), smoke)) << e->name();
        // ...and only ever shrink integer scale knobs, never grow them.
        const auto specs = e->params();
        for (const auto &[name, value] : smoke) {
            const auto it = std::find_if(specs.begin(), specs.end(),
                                         [&](const ParamSpec &s) {
                                             return s.name == name;
                                         });
            ASSERT_NE(it, specs.end()) << e->name() << " " << name;
            if (it->type == ParamType::Int) {
                EXPECT_LE(parseInt(name, value),
                          parseInt(name, it->default_value))
                    << e->name() << " " << name;
            }
        }
    }
}

TEST(Registry, ParamSpecsValidateCleanly)
{
    // Every declared default must survive its own validation.
    for (const Experiment *e : Registry::instance().all())
        EXPECT_NO_THROW(resolveParams(e->params(), {})) << e->name();
}

TEST(Registry, RunTab1EmitsTableThroughSink)
{
    const Experiment *e =
        Registry::instance().find("tab1_plru_eviction");
    ASSERT_NE(e, nullptr);

    RecordingSink sink;
    runExperiment(*e, {{"trials", "200"}}, sink);

    EXPECT_EQ(sink.begun, "tab1_plru_eviction");
    EXPECT_EQ(sink.begin_params.at("trials"), "200");
    EXPECT_EQ(sink.begin_params.at("seed"), "2020");
    EXPECT_TRUE(sink.ended);
    EXPECT_EQ(sink.tables, 1);
    EXPECT_EQ(sink.rows, 8u); // 2 init conditions x 4 iteration rows
    EXPECT_GE(sink.notes, 2);
}

TEST(Registry, RunRejectsUnknownOverride)
{
    const Experiment *e =
        Registry::instance().find("tab1_plru_eviction");
    ASSERT_NE(e, nullptr);
    RecordingSink sink;
    EXPECT_THROW(runExperiment(*e, {{"nope", "1"}}, sink), ParamError);
}

TEST(Registry, UarchParamAcceptsAliasesAndRejectsUnknown)
{
    const Experiment *e = Registry::instance().find("fig5_traces");
    ASSERT_NE(e, nullptr);
    const auto specs = e->params();
    EXPECT_TRUE(std::any_of(specs.begin(), specs.end(),
                            [](const ParamSpec &s) {
                                return s.name == "uarch";
                            }));
    RecordingSink sink;
    EXPECT_THROW(runExperiment(*e, {{"uarch", "vax"}}, sink),
                 ParamError);
}

TEST(ChannelFactory, TokensRoundTrip)
{
    for (auto id : channel::allChannelIds())
        EXPECT_EQ(channel::channelIdFromName(channel::channelIdToken(id)),
                  id);
}

TEST(ChannelFactory, AliasesAndCaseInsensitivity)
{
    using channel::ChannelId;
    EXPECT_EQ(channel::channelIdFromName("LRU_ALG1"), ChannelId::LruAlg1);
    EXPECT_EQ(channel::channelIdFromName("flush-reload-mem"),
              ChannelId::FrMem);
    EXPECT_EQ(channel::channelIdFromName("pp"), ChannelId::PrimeProbe);
    EXPECT_THROW(channel::channelIdFromName("carrier-pigeon"),
                 std::invalid_argument);
}

TEST(ChannelFactory, DisplayNamesMatchPaperTables)
{
    using channel::ChannelId;
    EXPECT_EQ(channel::channelDisplayName(ChannelId::FrMem), "F+R (mem)");
    EXPECT_EQ(channel::channelDisplayName(ChannelId::LruAlg2),
              "L1 LRU Alg.2");
    EXPECT_EQ(channel::channelDisplayName(ChannelId::PrimeProbe),
              "Prime+Probe");
    EXPECT_EQ(channel::channelDisplayName(ChannelId::XCoreLruAlg2),
              "LLC LRU Alg.2 (x-core)");
}

TEST(ChannelFactory, SenderAlgorithmPairing)
{
    using channel::ChannelId;
    using channel::LruAlgorithm;
    EXPECT_EQ(channel::senderAlgorithmFor(ChannelId::LruAlg1),
              LruAlgorithm::Alg1Shared);
    EXPECT_EQ(channel::senderAlgorithmFor(ChannelId::FrMem),
              LruAlgorithm::Alg1Shared);
    EXPECT_EQ(channel::senderAlgorithmFor(ChannelId::LruAlg2),
              LruAlgorithm::Alg2Disjoint);
    EXPECT_EQ(channel::senderAlgorithmFor(ChannelId::PrimeProbe),
              LruAlgorithm::Alg2Disjoint);
}

TEST(ChannelFactory, PairBuildsEveryReceiverOverAnyLayout)
{
    // Since the Session refactor every ChannelId constructs against any
    // carrier geometry — the L1 layout here, the LLC layout below.
    for (const channel::ChannelLayout &layout :
         {channel::ChannelLayout(),
          channel::ChannelLayout(sim::CacheConfig::intelLlc())}) {
        for (auto id : channel::allChannelIds()) {
            channel::ChannelPairConfig cfg;
            cfg.message = channel::Bits{1, 0, 1};
            channel::ChannelPair pair(id, layout, cfg);
            EXPECT_EQ(pair.id(), id);
            EXPECT_TRUE(pair.samples().empty()); // nothing run yet
        }
    }
}

TEST(ChannelFactory, CapsDriveAlgorithmAndDepthDefaults)
{
    using channel::ChannelId;
    for (auto id : channel::allChannelIds()) {
        EXPECT_EQ(channel::channelCaps(id).sender_alg,
                  channel::senderAlgorithmFor(id));
    }
    // Paper defaults: Alg.1 primes the whole 8-way set, Alg.2 half,
    // the cross-core Alg.2 12 of the LLC's 16 ways.
    EXPECT_EQ(channel::defaultInitDepth(ChannelId::LruAlg1, 8), 8u);
    EXPECT_EQ(channel::defaultInitDepth(ChannelId::LruAlg2, 8), 4u);
    EXPECT_EQ(channel::defaultInitDepth(ChannelId::XCoreLruAlg2, 16),
              12u);
    EXPECT_EQ(channel::defaultInitDepth(ChannelId::FrMem, 8), 0u);
    // Shared-memory and polarity capabilities match the designs.
    EXPECT_TRUE(channel::channelCaps(ChannelId::FrMem).shared_memory);
    EXPECT_TRUE(channel::channelCaps(ChannelId::LruAlg1).shared_memory);
    EXPECT_FALSE(channel::channelCaps(ChannelId::LruAlg2).shared_memory);
    EXPECT_TRUE(channel::channelCaps(ChannelId::FrMem).uses_flush);
    EXPECT_TRUE(channel::channelCaps(ChannelId::PrimeProbe).invert);
    EXPECT_FALSE(channel::channelCaps(ChannelId::LruAlg1).invert);
    EXPECT_TRUE(
        channel::channelCaps(ChannelId::XCoreLruAlg2).llc_geometry);
}

TEST(UarchNames, TokensResolve)
{
    for (const auto &token : timing::uarchTokens())
        EXPECT_NO_THROW(timing::uarchFromName(token)) << token;
    EXPECT_EQ(timing::uarchFromName("skylake").microarch, "Skylake");
    EXPECT_EQ(timing::uarchFromName("AMD").name, "AMD EPYC 7571");
    EXPECT_THROW(timing::uarchFromName("m68k"), std::invalid_argument);
}

// ------------------------------- name-table error paths (CLI surface)

TEST(ChannelFactory, EveryTokenParsesCaseInsensitively)
{
    for (auto id : channel::allChannelIds()) {
        std::string upper(channel::channelIdToken(id));
        for (auto &c : upper)
            c = static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        EXPECT_EQ(channel::channelIdFromName(upper), id) << upper;
    }
}

TEST(ChannelFactory, UnknownNameErrorListsValidTokens)
{
    try {
        channel::channelIdFromName("quantum-telepathy");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("quantum-telepathy"), std::string::npos)
            << "message must echo the bad name: " << msg;
        EXPECT_NE(msg.find("lru-alg1"), std::string::npos)
            << "message must list the valid tokens: " << msg;
    }
}

TEST(ChannelFactory, EmptyAndWhitespaceNamesRejected)
{
    EXPECT_THROW(channel::channelIdFromName(""), std::invalid_argument);
    EXPECT_THROW(channel::channelIdFromName("  "), std::invalid_argument);
}

TEST(UarchNames, EveryTokenParsesCaseInsensitively)
{
    for (const auto &token : timing::uarchTokens()) {
        std::string upper = token;
        for (auto &c : upper)
            c = static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        EXPECT_NO_THROW(timing::uarchFromName(upper)) << upper;
        EXPECT_EQ(timing::uarchFromName(upper).name,
                  timing::uarchFromName(token).name);
    }
}

TEST(UarchNames, UnknownNameErrorListsValidTokens)
{
    try {
        timing::uarchFromName("pentium-pro");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("pentium-pro"), std::string::npos)
            << "message must echo the bad name: " << msg;
        EXPECT_NE(msg.find("e5-2690"), std::string::npos)
            << "message must list the valid tokens: " << msg;
    }
}

TEST(UarchNames, EmptyNameRejected)
{
    EXPECT_THROW(timing::uarchFromName(""), std::invalid_argument);
}

TEST(ReplPolicyNames, TokensAndErrorPath)
{
    using lruleak::sim::ReplPolicyKind;
    EXPECT_EQ(lruleak::sim::replPolicyFromName("TREEPLRU"),
              ReplPolicyKind::TreePlru);
    EXPECT_EQ(lruleak::sim::replPolicyFromName("tree-plru"),
              ReplPolicyKind::TreePlru);
    EXPECT_THROW(lruleak::sim::replPolicyFromName("clock"),
                 std::invalid_argument);
}
