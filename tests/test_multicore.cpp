/**
 * @file
 * Tests for the multi-core topology: inclusive-LLC semantics,
 * back-invalidation, the inclusion audit (including fault injection),
 * the multi-core engine's determinism, and the cross-core channel
 * end to end.
 */

#include <gtest/gtest.h>

#include "channel/session.hpp"
#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::sim;

namespace {

/**
 * The canonical cross-core session: Algorithm 2 over the shared LLC
 * with the operating point the legacy runXCoreChannel shim used
 * (Tree-PLRU LLC, d = 12, Tr = 3000, Ts = 30000).
 */
channel::SessionConfig
xcoreConfig()
{
    channel::SessionConfig cfg;
    cfg.channel = channel::ChannelId::XCoreLruAlg2;
    cfg.mode = channel::SharingMode::CrossCore;
    cfg.llc_policy = ReplPolicyKind::TreePlru;
    cfg.d = 12;
    cfg.tr = 3000;
    cfg.ts = 30000;
    return cfg;
}

/** A small topology so eviction pressure is cheap to create. */
MultiCoreConfig
tinyConfig(std::uint32_t cores = 2)
{
    MultiCoreConfig cfg;
    cfg.cores = cores;
    // 2-way, 4-set L1; 4-way, 8-set L2; 8-way, 16-set LLC.
    cfg.l1 = CacheConfig{"L1D", 2 * 4 * 64, 2, 64,
                         ReplPolicyKind::TreePlru, 0};
    cfg.l2 = CacheConfig{"L2", 4 * 8 * 64, 4, 64,
                         ReplPolicyKind::TreePlru, 0};
    cfg.llc = CacheConfig{"LLC", 8 * 16 * 64, 8, 64,
                          ReplPolicyKind::TrueLru, 0};
    return cfg;
}

/** i-th distinct line mapping to @p set of the tiny LLC. */
Addr
llcLine(const MultiCoreHierarchy &h, std::uint32_t set, std::uint32_t i)
{
    return lineInSet(h.llc().layout(), set, i);
}

} // namespace

TEST(MultiCoreHierarchy, MissFillsPrivateAndSharedLevels)
{
    MultiCoreHierarchy h(tinyConfig());
    const MemRef ref = MemRef::load(llcLine(h, 3, 0), 0);

    const auto first = h.access(0, ref);
    EXPECT_EQ(first.level, HitLevel::Memory);
    EXPECT_TRUE(first.llc_filled);
    EXPECT_TRUE(h.l1(0).contains(ref));
    EXPECT_TRUE(h.l2(0).contains(ref));
    EXPECT_TRUE(h.inLlc(ref));
    // The other core's private caches are untouched.
    EXPECT_FALSE(h.l1(1).contains(ref));

    EXPECT_EQ(h.access(0, ref).level, HitLevel::L1);
}

TEST(MultiCoreHierarchy, CrossCoreReadHitsLlcNotPrivate)
{
    MultiCoreHierarchy h(tinyConfig());
    const Addr line = llcLine(h, 3, 0);
    h.access(0, MemRef::load(line, 0));

    // Core 1 misses privately but finds the line in the shared LLC.
    const auto res = h.access(1, MemRef::load(line, 1));
    EXPECT_EQ(res.level, HitLevel::LLC);
    EXPECT_TRUE(h.l1(1).contains(MemRef::load(line, 1)));
}

TEST(MultiCoreHierarchy, LlcEvictionBackInvalidatesEveryCore)
{
    MultiCoreHierarchy h(tinyConfig(3));
    const Addr victim = llcLine(h, 5, 0);

    // Both cores cache the victim line privately.
    h.access(0, MemRef::load(victim, 0));
    h.access(1, MemRef::load(victim, 1));
    ASSERT_TRUE(h.l1(0).contains(MemRef::load(victim)));
    ASSERT_TRUE(h.l1(1).contains(MemRef::load(victim)));

    // Fill LLC set 5 past its 8 ways from core 2.  The victim line is
    // the true-LRU choice, so its eviction must clear both copies.
    for (std::uint32_t i = 1; i <= 8; ++i)
        h.access(2, MemRef::load(llcLine(h, 5, i), 2));

    EXPECT_FALSE(h.inLlc(MemRef::load(victim)));
    EXPECT_FALSE(h.l1(0).contains(MemRef::load(victim)));
    EXPECT_FALSE(h.l1(1).contains(MemRef::load(victim)));
    EXPECT_FALSE(h.l2(0).contains(MemRef::load(victim)));
    EXPECT_FALSE(h.l2(1).contains(MemRef::load(victim)));
    EXPECT_GE(h.backInvalidations(), 4u); // 2 cores x L1+L2
    EXPECT_EQ(h.auditInclusion(), std::nullopt);
}

TEST(MultiCoreHierarchy, DirtyBackInvalidationWritesBackExactlyOnce)
{
    MultiCoreHierarchy h(tinyConfig(3));
    const Addr victim = llcLine(h, 5, 0);

    // Core 0 dirties the line, so its L1, L2 and the LLC all hold a
    // copy (L1's is the dirty one); core 1 holds clean copies.
    h.access(0, MemRef::store(victim, 0));
    h.access(1, MemRef::load(victim, 1));
    ASSERT_EQ(h.dirtyWritebacks(), 0u);

    // Evict the line from LLC set 5 via core 2.  Back-invalidation
    // removes four private copies (two levels x two cores), but the
    // line's data must reach memory exactly once.
    std::uint64_t writebacks_seen = 0;
    for (std::uint32_t i = 1; i <= 8; ++i)
        writebacks_seen +=
            h.access(2, MemRef::load(llcLine(h, 5, i), 2)).writebacks;

    EXPECT_FALSE(h.inLlc(MemRef::load(victim)));
    EXPECT_FALSE(h.l1(0).contains(MemRef::load(victim)));
    EXPECT_EQ(h.dirtyWritebacks(), 1u)
        << "a dirty back-invalidated line must write back exactly once";
    EXPECT_EQ(writebacks_seen, 1u)
        << "the write-back must be charged to the evicting access";
    EXPECT_EQ(h.auditInclusion(), std::nullopt);

    // A second eviction round of the (now clean) set writes back
    // nothing further.
    for (std::uint32_t i = 9; i <= 16; ++i)
        h.access(2, MemRef::load(llcLine(h, 5, i), 2));
    EXPECT_EQ(h.dirtyWritebacks(), 1u);
}

TEST(MultiCoreHierarchy, InclusionHoldsUnderRandomStorm)
{
    MultiCoreHierarchy h(tinyConfig(3));
    Xoshiro256 rng(99);
    for (int i = 0; i < 20'000; ++i) {
        const auto core = static_cast<std::uint32_t>(rng.below(3));
        const Addr line = 0x1000 + rng.below(4096) * 64;
        h.access(core, MemRef::load(line, core));
        if (i % 997 == 0) {
            ASSERT_EQ(h.auditInclusion(), std::nullopt) << "step " << i;
        }
    }
    EXPECT_EQ(h.auditInclusion(), std::nullopt);
    EXPECT_GT(h.backInvalidations(), 0u);
}

TEST(MultiCoreHierarchy, AuditDetectsInjectedViolation)
{
    MultiCoreHierarchy h(tinyConfig());
    const Addr line = llcLine(h, 2, 0);
    h.access(0, MemRef::load(line, 0));
    ASSERT_EQ(h.auditInclusion(), std::nullopt);

    // Break inclusion by removing the line from the LLC only.
    h.llc().flush(MemRef::load(line));
    const auto violation = h.auditInclusion();
    ASSERT_TRUE(violation.has_value());
    EXPECT_NE(violation->find("inclusion violation"), std::string::npos);
    EXPECT_NE(violation->find("core 0"), std::string::npos);
}

TEST(MultiCoreHierarchy, FlushClearsEveryLevelEverywhere)
{
    MultiCoreHierarchy h(tinyConfig());
    const Addr line = llcLine(h, 1, 0);
    h.access(0, MemRef::load(line, 0));
    h.access(1, MemRef::load(line, 1));

    h.flush(MemRef::load(line));
    EXPECT_FALSE(h.inLlc(MemRef::load(line)));
    EXPECT_EQ(h.peekLevel(0, MemRef::load(line)), HitLevel::Memory);
    EXPECT_EQ(h.peekLevel(1, MemRef::load(line)), HitLevel::Memory);
    EXPECT_EQ(h.auditInclusion(), std::nullopt);
}

TEST(MultiCoreHierarchy, ResetClearsStateAndCountersSeparately)
{
    MultiCoreHierarchy h(tinyConfig());
    const MemRef ref = MemRef::load(llcLine(h, 4, 0), 0);
    h.access(0, ref);
    ASSERT_GT(h.l1(0).counters().total().accesses, 0u);

    // resetCounters: tallies go, contents stay.
    h.resetCounters();
    EXPECT_EQ(h.l1(0).counters().total().accesses, 0u);
    EXPECT_EQ(h.llc().counters().total().accesses, 0u);
    EXPECT_TRUE(h.inLlc(ref));

    // reset: everything goes, including the back-invalidation tally.
    h.reset();
    EXPECT_FALSE(h.inLlc(ref));
    EXPECT_EQ(h.peekLevel(0, ref), HitLevel::Memory);
    EXPECT_EQ(h.backInvalidations(), 0u);
    EXPECT_EQ(h.auditInclusion(), std::nullopt);
}

TEST(MultiCoreHierarchy, RejectsZeroCores)
{
    MultiCoreConfig cfg = tinyConfig();
    cfg.cores = 0;
    EXPECT_THROW(MultiCoreHierarchy h(cfg), std::invalid_argument);
}

// ----------------------------------------------------------- scheduler

namespace {

/** Walks a fixed ref sequence, recording the serving levels. */
class WalkProgram : public exec::ThreadProgram
{
  public:
    explicit WalkProgram(std::vector<MemRef> refs)
        : refs_(std::move(refs))
    {}

    exec::Op
    next(std::uint64_t) override
    {
        if (index_ >= refs_.size())
            return exec::Op::done();
        return exec::Op::access(refs_[index_++]);
    }

    void
    onResult(const exec::OpResult &result) override
    {
        levels.push_back(result.level);
    }

    std::vector<HitLevel> levels;

  private:
    std::vector<MemRef> refs_;
    std::size_t index_ = 0;
};

} // namespace

TEST(MultiCoreScheduler, EveryStepAuditPassesOnChannelTraffic)
{
    // Run a real (tiny) cross-core transmission with the audit walk on
    // after EVERY executed operation: the inclusion property must hold
    // at each step of scheduler interleaving, not just at the end.
    auto cfg = xcoreConfig();
    cfg.noise_cores = 1;
    cfg.message = channel::alternatingBits(4);
    cfg.sched.audit_every = 1;
    const auto res = channel::runSession(cfg); // throws on violation
    EXPECT_FALSE(res.samples.empty());
    EXPECT_GT(res.back_invalidations, 0u);
}

TEST(MultiCoreScheduler, RejectsThreadBoundToMissingCore)
{
    MultiCoreHierarchy h(tinyConfig(3));
    WalkProgram a({}), b({});
    sim::MultiCorePort port(h);
    exec::LowestClock policy;
    exec::Engine engine(port, timing::Uarch::intelXeonE52690(), policy);
    const exec::ThreadSpec specs[] = {{&a, 0}, {&b, 3}}; // core 3 of 0..2
    EXPECT_THROW(engine.run(specs, 0), std::invalid_argument);
}

TEST(MultiCoreScheduler, DeterministicForFixedSeed)
{
    auto run = [] {
        auto cfg = xcoreConfig();
        cfg.noise_cores = 2;
        cfg.message = channel::randomBits(16, 7);
        cfg.seed = 21;
        return channel::runSession(cfg);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].latency, b.samples[i].latency) << i;
        EXPECT_EQ(a.samples[i].tsc, b.samples[i].tsc) << i;
    }
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.back_invalidations, b.back_invalidations);
}

// -------------------------------------------------- cross-core channel

TEST(XCoreChannel, TransmitsThroughSharedLlc)
{
    auto cfg = xcoreConfig();
    cfg.message = channel::randomBits(24, 3);
    cfg.repeats = 2;
    const auto res = channel::runSession(cfg);

    EXPECT_EQ(res.cores, 2u);
    EXPECT_EQ(res.sent.size(), 48u);
    EXPECT_LT(res.error_rate, 0.15) << "noise-free cross-core channel "
                                       "should transmit reliably";
    EXPECT_GT(res.kbps, 0.0);
    // The loop-closer: receiver walks must keep kicking the sender's
    // line out of the sender's private caches.
    EXPECT_GT(res.back_invalidations, 0u);
    // The sender's encoding accesses miss its private L1 (they reach
    // the shared LLC) — the stealth profile differs from the L1 channel.
    EXPECT_GT(res.sender_llc.accesses, 0u);
}

TEST(XCoreChannel, ErrorDegradesWithNoiseCoresOnAverage)
{
    // Mean error over a few runs per noise level; monotone on average.
    auto meanError = [](std::uint32_t noise) {
        double sum = 0;
        for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
            auto cfg = xcoreConfig();
            cfg.noise_cores = noise;
            cfg.ts = 15000;
            cfg.message = channel::randomBits(32, 40 + seed);
            cfg.seed = seed;
            sum += channel::runSession(cfg).error_rate;
        }
        return sum / 3;
    };
    const double e0 = meanError(0);
    const double e3 = meanError(3);
    EXPECT_GE(e3 + 1e-9, e0)
        << "3 noise cores must not make the channel cleaner on average";
}

TEST(XCoreChannel, BackInvalidationIsWhatClosesTheLoop)
{
    // Ablation: with a huge LLC set count nothing collides, and with
    // the channel set shared, the receiver's walk is what causes the
    // sender's line to leave its private cache.  Compare sender L1
    // misses with and without a running receiver walk.
    auto cfg = xcoreConfig();
    cfg.message = channel::alternatingBits(8);
    const auto res = channel::runSession(cfg);
    // If the sender's line were never back-invalidated, every encode
    // access after the first would hit its private L1 and the sender
    // would be invisible at the LLC; the channel would decode garbage.
    EXPECT_GT(res.sender_l1.misses, res.sent.size() / 2)
        << "sender must keep missing privately (back-invalidation)";
}

TEST(XCoreChannel, TopologyReflectsNoiseCores)
{
    // Every noise core becomes a real simulated core beyond the pair.
    auto cfg = xcoreConfig();
    cfg.noise_cores = 3;
    cfg.message = channel::alternatingBits(4);
    const auto res = channel::runSession(cfg);
    EXPECT_EQ(res.cores, 5u);
}
