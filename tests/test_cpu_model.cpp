/**
 * @file
 * Tests for the in-order CPI model behind Fig. 9.
 */

#include <gtest/gtest.h>

#include "workload/cpu_model.hpp"

using namespace lruleak;
using namespace lruleak::workload;

namespace {

CpuModelConfig
quickConfig()
{
    CpuModelConfig cfg;
    cfg.instructions = 200'000;
    cfg.warmup_instructions = 20'000;
    return cfg;
}

} // namespace

TEST(CpuModel, CpiAtLeastOne)
{
    auto w = makeWorkload("stream");
    const auto res = runCpuModel(*w, sim::ReplPolicyKind::TreePlru,
                                 quickConfig());
    EXPECT_GE(res.cpi, 1.0);
    EXPECT_EQ(res.instructions, 200'000u);
    EXPECT_EQ(res.workload, "stream");
    EXPECT_EQ(res.policy, "TreePLRU");
}

TEST(CpuModel, HotLoopHitsAlmostAlways)
{
    auto w = makeWorkload("stackheavy");
    const auto res = runCpuModel(*w, sim::ReplPolicyKind::TreePlru,
                                 quickConfig());
    EXPECT_LT(res.l1d_miss_rate, 0.05);
    // The rare (2%) cold accesses stall a full memory latency on the
    // in-order model, so CPI sits well above 1 but far below the
    // pointer-chasing workloads.
    EXPECT_LT(res.cpi, 3.0);
}

TEST(CpuModel, PointerChaseMissesHard)
{
    auto w = makeWorkload("ptrchase");
    const auto res = runCpuModel(*w, sim::ReplPolicyKind::TreePlru,
                                 quickConfig());
    EXPECT_GT(res.l1d_miss_rate, 0.5);
    EXPECT_GT(res.cpi, 1.5);
}

TEST(CpuModel, StreamMissRateMatchesLineReuse)
{
    // Stride 8 over 64-byte lines: one compulsory miss per 8 accesses.
    auto w = makeWorkload("stream");
    const auto res = runCpuModel(*w, sim::ReplPolicyKind::TreePlru,
                                 quickConfig());
    EXPECT_NEAR(res.l1d_miss_rate, 0.125, 0.03);
}

TEST(CpuModel, DeterministicForSeed)
{
    auto w1 = makeWorkload("gccmix");
    auto w2 = makeWorkload("gccmix");
    const auto a = runCpuModel(*w1, sim::ReplPolicyKind::TreePlru,
                               quickConfig());
    const auto b = runCpuModel(*w2, sim::ReplPolicyKind::TreePlru,
                               quickConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.l1d_miss_rate, b.l1d_miss_rate);
}

TEST(CpuModel, Fig9PolicyDeltasAreSmall)
{
    // The defense claim: switching L1D to FIFO or Random costs little.
    for (const auto &name : {"gccmix", "hotloop", "zipfobj"}) {
        auto base_w = makeWorkload(name);
        const auto base = runCpuModel(*base_w, sim::ReplPolicyKind::TreePlru,
                                      quickConfig());
        for (auto policy : {sim::ReplPolicyKind::Fifo,
                            sim::ReplPolicyKind::Random}) {
            auto w = makeWorkload(name);
            const auto res = runCpuModel(*w, policy, quickConfig());
            EXPECT_LT(std::abs(res.cpi - base.cpi) / base.cpi, 0.10)
                << name << " under " << sim::replPolicyName(policy);
        }
    }
}

TEST(CpuModel, WarmupNotCounted)
{
    auto w = makeWorkload("stream");
    CpuModelConfig cfg = quickConfig();
    const auto with_warmup = runCpuModel(*w, sim::ReplPolicyKind::TreePlru,
                                         cfg);
    EXPECT_EQ(with_warmup.instructions, cfg.instructions);
}

TEST(WorkloadProgram, IssuesAccessesAndSpins)
{
    WorkloadProgram prog(makeWorkload("gccmix"), 5, 1);
    int accesses = 0, spins = 0;
    std::uint64_t now = 0;
    for (int i = 0; i < 200; ++i) {
        const auto op = prog.next(now);
        if (op.kind == exec::OpKind::Access) {
            ++accesses;
            EXPECT_EQ(op.ref.thread, 1u);
        } else if (op.kind == exec::OpKind::SpinUntil) {
            ++spins;
            now = op.until;
        }
        now += 10;
    }
    EXPECT_GT(accesses, 30);
    EXPECT_GT(spins, 30);
}

TEST(IdleProgram, OnlySpins)
{
    IdleProgram idle(500);
    std::uint64_t now = 0;
    for (int i = 0; i < 10; ++i) {
        const auto op = idle.next(now);
        ASSERT_EQ(op.kind, exec::OpKind::SpinUntil);
        EXPECT_EQ(op.until, now + 500);
        now = op.until;
    }
}
