/**
 * @file
 * Tests for the AMD utag hash (sim/way_predictor.hpp).
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hpp"
#include "sim/way_predictor.hpp"

using namespace lruleak::sim;

TEST(Utag, DeterministicPerLine)
{
    for (Addr a : {0x0ULL, 0x40ULL, 0x12345040ULL})
        EXPECT_EQ(WayPredictor::utag(a), WayPredictor::utag(a));
}

TEST(Utag, OffsetWithinLineIgnored)
{
    const Addr line = 0x7777'7000;
    for (Addr off = 0; off < 64; ++off)
        EXPECT_EQ(WayPredictor::utag(line + off), WayPredictor::utag(line));
}

TEST(Utag, AdjacentLinesDiffer)
{
    // Not a strict requirement of the hash, but the attack model needs
    // different lines to mostly have different utags.
    int same = 0;
    for (int i = 0; i < 256; ++i) {
        const Addr a = 0x4000'0000 + static_cast<Addr>(i) * 64;
        same += WayPredictor::utag(a) == WayPredictor::utag(a + 64) ? 1 : 0;
    }
    EXPECT_LT(same, 8);
}

TEST(Utag, WellDistributed)
{
    // Chi-square-lite: bucket counts of 4096 hashed lines over the
    // 256 possible utags should be roughly uniform.
    std::map<std::uint16_t, int> counts;
    for (int i = 0; i < 4096; ++i)
        ++counts[WayPredictor::utag(0x1000'0000 +
                                    static_cast<Addr>(i) * 64)];
    int max_bucket = 0;
    for (const auto &[utag, count] : counts)
        max_bucket = std::max(max_bucket, count);
    // Mean 16 per bucket; a pathological hash would concentrate.
    EXPECT_LT(max_bucket, 48);
    EXPECT_GT(static_cast<int>(counts.size()), 200);
}

TEST(Utag, PageAlignedRemapChangesUtag)
{
    // The cross-address-space condition of Section VI-B: two mappings of
    // one physical page have different linear addresses, hence
    // (almost always) different utags.
    int diffs = 0;
    Xoshiro256 rng(3);
    for (int i = 0; i < 100; ++i) {
        const Addr va = rng.below(1ULL << 36) * 0x1000;
        const Addr alias = va + (1 + rng.below(1ULL << 20)) * 0x1000;
        diffs += WayPredictor::utag(va) != WayPredictor::utag(alias) ? 1 : 0;
    }
    EXPECT_GT(diffs, 90);
}
