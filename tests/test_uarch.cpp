/**
 * @file
 * Tests for the microarchitecture presets (Tables II and III).
 */

#include <gtest/gtest.h>

#include "timing/uarch.hpp"

using namespace lruleak;
using timing::Uarch;

TEST(Uarch, TableIILatencies)
{
    // Paper Table II: L1D 4-5 cycles on all three; L2 12 on Intel,
    // 17 on AMD Zen.
    const auto snb = Uarch::intelXeonE52690();
    const auto skl = Uarch::intelXeonE31245v5();
    const auto zen = Uarch::amdEpyc7571();

    for (const auto *u : {&snb, &skl, &zen}) {
        EXPECT_GE(u->l1_latency, 4u);
        EXPECT_LE(u->l1_latency, 5u);
    }
    EXPECT_EQ(snb.l2_latency, 12u);
    EXPECT_EQ(skl.l2_latency, 12u);
    EXPECT_EQ(zen.l2_latency, 17u);
}

TEST(Uarch, TableIIIFrequencies)
{
    EXPECT_DOUBLE_EQ(Uarch::intelXeonE52690().ghz, 3.8);
    EXPECT_DOUBLE_EQ(Uarch::intelXeonE31245v5().ghz, 3.9);
    EXPECT_DOUBLE_EQ(Uarch::amdEpyc7571().ghz, 2.5);
}

TEST(Uarch, OnlyAmdHasWayPredictor)
{
    EXPECT_FALSE(Uarch::intelXeonE52690().way_predictor);
    EXPECT_FALSE(Uarch::intelXeonE31245v5().way_predictor);
    EXPECT_TRUE(Uarch::amdEpyc7571().way_predictor);
}

TEST(Uarch, AmdTimestampIsCoarse)
{
    // Section VI-A: the AMD readout granularity is much coarser.
    EXPECT_EQ(Uarch::intelXeonE52690().tsc_granularity, 1u);
    EXPECT_GE(Uarch::amdEpyc7571().tsc_granularity, 8u);
}

TEST(Uarch, LatencyMapping)
{
    const auto u = Uarch::intelXeonE52690();
    EXPECT_EQ(u.latency(sim::HitLevel::L1), u.l1_latency);
    EXPECT_EQ(u.latency(sim::HitLevel::L2), u.l2_latency);
    EXPECT_EQ(u.latency(sim::HitLevel::LLC), u.llc_latency);
    EXPECT_EQ(u.latency(sim::HitLevel::Memory), u.mem_latency);
    EXPECT_LT(u.l1_latency, u.l2_latency);
    EXPECT_LT(u.l2_latency, u.llc_latency);
    EXPECT_LT(u.llc_latency, u.mem_latency);
}

TEST(Uarch, CyclesToSeconds)
{
    const auto u = Uarch::intelXeonE52690();
    EXPECT_DOUBLE_EQ(u.cyclesToSeconds(3'800'000'000ULL), 1.0);
}

TEST(Uarch, KbpsMath)
{
    const auto u = Uarch::intelXeonE52690();
    // 3800 bits in 1 second = 3.8 kbit/s.
    EXPECT_NEAR(u.kbps(3800, 3'800'000'000ULL), 3.8, 1e-9);
    EXPECT_DOUBLE_EQ(u.kbps(100, 0), 0.0);
}

TEST(Uarch, PaperHeadlineRateIsRepresentable)
{
    // Ts = 6000 cycles/bit at 3.8 GHz ~ 633 kbit/s theoretical ceiling;
    // the paper reports 480-580 kbit/s effective.
    const auto u = Uarch::intelXeonE52690();
    const double ceiling = u.kbps(1, 6000);
    EXPECT_NEAR(ceiling, 633.3, 1.0);
}

TEST(Uarch, HierarchyConfigCarriesWayPredictor)
{
    EXPECT_TRUE(Uarch::amdEpyc7571().hierarchyConfig().l1_way_predictor);
    EXPECT_FALSE(
        Uarch::intelXeonE52690().hierarchyConfig().l1_way_predictor);
}
