/**
 * @file
 * Tests for the histogram utility.
 */

#include <gtest/gtest.h>

#include "core/histogram.hpp"

using namespace lruleak::core;

TEST(Histogram, EmptyByDefault)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, MeanAndExtremes)
{
    Histogram h;
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
}

TEST(Histogram, FrequencySumsToOne)
{
    Histogram h;
    for (std::uint32_t v = 0; v < 100; ++v)
        h.add(v % 10);
    double total = 0;
    for (std::uint32_t v = 0; v < 10; ++v)
        total += h.frequency(v);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(h.frequency(3), 0.1, 1e-9);
    EXPECT_DOUBLE_EQ(h.frequency(55), 0.0);
}

TEST(Histogram, BucketWidthGroupsValues)
{
    Histogram h(16);
    h.add(0);
    h.add(15);
    h.add(16);
    EXPECT_NEAR(h.frequency(7), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(h.frequency(20), 1.0 / 3.0, 1e-9);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (std::uint32_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_NEAR(h.percentile(0.5), 50u, 2u);
    EXPECT_NEAR(h.percentile(0.9), 90u, 2u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, NormalizedSorted)
{
    Histogram h;
    h.add(5);
    h.add(3);
    h.add(5);
    const auto n = h.normalized();
    ASSERT_EQ(n.size(), 2u);
    EXPECT_EQ(n[0].first, 3u);
    EXPECT_NEAR(n[1].second, 2.0 / 3.0, 1e-9);
}

TEST(Overlap, IdenticalIsOne)
{
    Histogram a, b;
    for (std::uint32_t v = 0; v < 50; ++v) {
        a.add(v % 7);
        b.add(v % 7);
    }
    EXPECT_NEAR(overlapCoefficient(a, b), 1.0, 1e-9);
}

TEST(Overlap, DisjointIsZero)
{
    Histogram a, b;
    a.add(1);
    a.add(2);
    b.add(100);
    b.add(200);
    EXPECT_DOUBLE_EQ(overlapCoefficient(a, b), 0.0);
}

TEST(Overlap, EmptyIsZero)
{
    Histogram a, b;
    a.add(1);
    EXPECT_DOUBLE_EQ(overlapCoefficient(a, b), 0.0);
}

TEST(RenderPair, ContainsLabelsAndBars)
{
    Histogram a, b;
    for (int i = 0; i < 10; ++i) {
        a.add(35);
        b.add(43);
    }
    const auto text = Histogram::renderPair(a, b, "L1 hit", "L1 miss");
    EXPECT_NE(text.find("L1 hit"), std::string::npos);
    EXPECT_NE(text.find("L1 miss"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_NE(text.find("35"), std::string::npos);
    EXPECT_NE(text.find("43"), std::string::npos);
}

TEST(RenderPair, HandlesEmpty)
{
    Histogram a, b;
    EXPECT_FALSE(Histogram::renderPair(a, b, "x", "y").empty());
}
