/**
 * @file
 * Tests for the Section IX-B secure-cache designs: DAWG partitioning
 * stops the LRU channel; the Random Fill cache does not (the paper's
 * explicit claim — hits still update the replacement state).
 */

#include <gtest/gtest.h>

#include "sim/secure_caches.hpp"

using namespace lruleak::sim;

namespace {

constexpr DomainId kVictim = 0;
constexpr DomainId kAttacker = 1;

MemRef
line(const AddressLayout &layout, std::uint32_t set, std::uint32_t i,
     Addr base)
{
    const Addr a = lineInSet(layout, set, i, base);
    return MemRef{a, a, 0, false};
}

constexpr Addr kVictimBase = 0x1000'0000'0000ULL;
constexpr Addr kAttackerBase = 0x2000'0000'0000ULL;

} // namespace

TEST(Dawg, RejectsBadPartitioning)
{
    EXPECT_THROW(DawgCache(CacheConfig::intelL1d(), 3),
                 std::invalid_argument);
    EXPECT_NO_THROW(DawgCache(CacheConfig::intelL1d(), 2));
    EXPECT_NO_THROW(DawgCache(CacheConfig::intelL1d(), 4));
}

TEST(Dawg, DomainsDoNotShareLines)
{
    DawgCache cache;
    const auto ref = line(cache.layout(), 3, 0, kVictimBase);
    cache.access(ref, kVictim);
    EXPECT_TRUE(cache.contains(ref, kVictim));
    // The same physical line is NOT visible from the other domain.
    EXPECT_FALSE(cache.contains(ref, kAttacker));
}

TEST(Dawg, DomainFillsCannotEvictOtherDomain)
{
    DawgCache cache;
    const auto victim_line = line(cache.layout(), 5, 0, kVictimBase);
    cache.access(victim_line, kVictim);
    // The attacker thrashes the same set hard.
    for (std::uint32_t i = 0; i < 64; ++i)
        cache.access(line(cache.layout(), 5, i, kAttackerBase), kAttacker);
    EXPECT_TRUE(cache.contains(victim_line, kVictim));
}

TEST(Dawg, ReplacementStateIsPartitioned)
{
    // The property the paper singles DAWG out for: the victim's
    // accesses cannot move the attacker's replacement state.
    DawgCache cache;
    for (std::uint32_t i = 0; i < 4; ++i)
        cache.access(line(cache.layout(), 9, i, kAttackerBase), kAttacker);
    const auto before = cache.replacementState(9, kAttacker);

    for (std::uint32_t i = 0; i < 16; ++i)
        cache.access(line(cache.layout(), 9, i, kVictimBase), kVictim);

    EXPECT_EQ(cache.replacementState(9, kAttacker), before);
}

TEST(Dawg, LruChannelProtocolIsDead)
{
    // Set-level Algorithm 2 mechanics: with and without the sender's
    // touch, the attacker's eviction outcome must be identical.
    for (bool sender_touches : {false, true}) {
        DawgCache cache;
        const auto sender_line = line(cache.layout(), 7, 0, kVictimBase);
        cache.access(sender_line, kVictim);
        // Attacker init: 4 of its own lines.
        for (std::uint32_t i = 0; i < 4; ++i)
            cache.access(line(cache.layout(), 7, i, kAttackerBase),
                         kAttacker);
        if (sender_touches)
            cache.access(sender_line, kVictim);
        // Attacker decode: 4 more lines (forces replacements in its
        // 4-way partition), then check its line 0.
        for (std::uint32_t i = 4; i < 8; ++i)
            cache.access(line(cache.layout(), 7, i, kAttackerBase),
                         kAttacker);
        const bool line0_present = cache.contains(
            line(cache.layout(), 7, 0, kAttackerBase), kAttacker);
        // Record the no-touch outcome and compare.
        static bool baseline;
        if (!sender_touches)
            baseline = line0_present;
        else
            EXPECT_EQ(line0_present, baseline)
                << "sender activity must be invisible across domains";
    }
}

TEST(RandomFill, MissDoesNotInstallDemandLine)
{
    RandomFillCache cache;
    const auto ref = line(cache.layout(), 11, 0, kVictimBase);
    const auto res = cache.access(ref);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(cache.contains(ref)) << "demand line served uncached";
}

TEST(RandomFill, MissFillsSomeNeighbour)
{
    RandomFillCache cache(CacheConfig::intelL1d(), 64, 7);
    int filled = 0;
    for (std::uint32_t i = 0; i < 32; ++i) {
        const auto res =
            cache.access(line(cache.layout(), 11, i, kVictimBase));
        filled += res.filled ? 1 : 0;
    }
    EXPECT_GT(filled, 24) << "misses must fill random neighbour lines";
}

TEST(RandomFill, HitUpdatesReplacementState)
{
    // The paper's point: "if the cache line is already in the cache, on
    // a cache hit, the replacement state will be updated, and the LRU
    // channel could still work."
    RandomFillCache cache;
    // Install a line by making its address the random-fill target:
    // easier — access misses fill neighbours, so seed the set by
    // accessing neighbours until our target line lands.
    const auto target = line(cache.layout(), 13, 0, kVictimBase);
    for (int tries = 0; tries < 4096 && !cache.contains(target); ++tries)
        cache.access(MemRef::load(target.vaddr + 64 * ((tries % 16) + 1)));
    ASSERT_TRUE(cache.contains(target)) << "random fill should land "
                                           "the target eventually";

    // Land a second distinct line in the same set so the two touches
    // must flip their lowest-common-ancestor tree bit.
    const auto other = line(cache.layout(), 13, 1, kVictimBase);
    for (int tries = 0; tries < 4096 && !cache.contains(other); ++tries)
        cache.access(MemRef::load(other.vaddr + 64 * ((tries % 16) + 1)));
    ASSERT_TRUE(cache.contains(other));

    const auto set = cache.layout().setIndex(target.vaddr);
    cache.access(other); // HIT on the other line
    const auto before = cache.replacementState(set);
    cache.access(target); // HIT on the target
    EXPECT_NE(cache.replacementState(set), before)
        << "a hit must move the LRU state -> the channel survives";
}

TEST(RandomFill, SenderHitStillInfluencesVictimChoice)
{
    // End-to-end set-level statement of the paper's claim: with the
    // sender's line resident, its hit changes which line the next fill
    // evicts — observable exactly as in the unprotected cache.
    auto run = [](bool sender_touches) {
        RandomFillCache cache(CacheConfig::intelL1d(), 64, 11);
        const auto set = 13u;
        // Seed the set with 8 known lines by direct neighbour fills.
        for (std::uint32_t i = 0; i < 8; ++i) {
            const auto want = line(CacheConfig::intelL1d().line_size == 64
                                       ? AddressLayout(64, 64)
                                       : AddressLayout(64, 64),
                                   set, i, kVictimBase);
            for (int tries = 0; tries < 4096 && !cache.contains(want);
                 ++tries)
                cache.access(MemRef::load(want.vaddr +
                                          64 * ((tries % 16) + 1)));
        }
        const AddressLayout layout(64, 64);
        // Touch lines 0..7 in order (sequential init).
        for (std::uint32_t i = 0; i < 8; ++i)
            cache.access(line(layout, set, i, kVictimBase));
        if (sender_touches)
            cache.access(line(layout, set, 0, kVictimBase)); // the hit
        // Force one replacement in the set via a direct neighbour fill
        // whose random target lands here... instead, read the policy's
        // victim directly: it is the observable the next fill uses.
        return cache.replacementState(set);
    };
    EXPECT_NE(run(true), run(false))
        << "the sender's hit must leave a visible LRU-state difference";
}
