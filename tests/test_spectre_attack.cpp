/**
 * @file
 * End-to-end Spectre v1 tests: every disclosure primitive recovers the
 * secret; the LRU channels need a far smaller speculation window than
 * Flush+Reload (the paper's Section VIII claim); prefetcher noise and
 * the Appendix C random-order mitigation.
 */

#include <gtest/gtest.h>

#include "spectre/attack.hpp"

using namespace lruleak;
using namespace lruleak::spectre;

namespace {

SpectreAttackConfig
baseConfig(Disclosure d)
{
    SpectreAttackConfig cfg;
    cfg.disclosure = d;
    cfg.rounds = 3;
    cfg.seed = 2024;
    return cfg;
}

} // namespace

/** Parameterized end-to-end recovery across disclosure primitives. */
class SpectreDisclosure : public ::testing::TestWithParam<Disclosure>
{};

TEST_P(SpectreDisclosure, RecoversSecret)
{
    const std::string secret = "Magic Words";
    const auto res = runSpectreAttack(baseConfig(GetParam()), secret);
    EXPECT_EQ(res.recovered, secret) << disclosureName(GetParam());
    EXPECT_DOUBLE_EQ(res.byte_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPrimitives, SpectreDisclosure,
                         ::testing::Values(Disclosure::FlushReloadMem,
                                           Disclosure::FlushReloadL1,
                                           Disclosure::LruAlg1,
                                           Disclosure::LruAlg2));

TEST(SpectreAttack, RecoversFullByteRange)
{
    // Bytes with all four high-part values (avoid low6 == 63 aliases).
    const std::string secret = "\x05\x45\x85\xC5";
    const auto res = runSpectreAttack(baseConfig(Disclosure::LruAlg1),
                                      secret);
    EXPECT_EQ(res.recovered, secret);
}

TEST(SpectreAttack, TableVIIMissShape)
{
    // F+R (mem) flushes and reloads the probe array from memory every
    // round: its DRAM traffic towers over the LRU channels', which hit
    // in L1/L2.  (Paper Table VII reports this as LLC miss *rate*; our
    // attacker is a bare loop without a process's background traffic, so
    // rates are cold-miss-dominated -- the absolute miss counts carry
    // the contrast.  See EXPERIMENTS.md.)
    const std::string secret = "longer key"; // steady state dominates
    const auto fr = runSpectreAttack(baseConfig(Disclosure::FlushReloadMem),
                                     secret);
    const auto lru = runSpectreAttack(baseConfig(Disclosure::LruAlg1),
                                      secret);
    EXPECT_GT(fr.llc.missRate(), 0.5);
    // F+R re-misses to DRAM every round; the LRU attack's misses are a
    // one-time cold footprint that does not grow with the attack.
    EXPECT_GT(fr.llc.misses, 3 * lru.llc.misses);
}

TEST(SpectreAttack, LruNeedsSmallerWindowThanFlushReload)
{
    // The headline Section VIII claim, as a measured inequality.
    auto lru_cfg = baseConfig(Disclosure::LruAlg1);
    auto fr_cfg = baseConfig(Disclosure::FlushReloadMem);
    const auto lru_window = minimumWorkingWindow(lru_cfg);
    const auto fr_window = minimumWorkingWindow(fr_cfg);
    ASSERT_GT(lru_window, 0u) << "LRU attack must work at some window";
    ASSERT_GT(fr_window, 0u) << "F+R attack must work at some window";
    EXPECT_LT(lru_window * 4, fr_window)
        << "LRU encode (L1 hit) must fit a much smaller window than "
           "F+R's memory-miss encode";
}

TEST(SpectreAttack, RandomOrderDefeatsPrefetcherNoise)
{
    // Appendix C: with the stride prefetcher on, scanning the probe sets
    // in sequential order lets prefetch fills corrupt neighbouring sets;
    // a fresh random order per round decorrelates the noise.
    auto noisy = baseConfig(Disclosure::LruAlg1);
    noisy.enable_prefetcher = true;
    noisy.rounds = 5;

    noisy.random_probe_order = true;
    const auto randomized = runSpectreAttack(noisy, "Secret!");

    noisy.random_probe_order = false;
    const auto sequential = runSpectreAttack(noisy, "Secret!");

    EXPECT_GE(randomized.byte_accuracy, sequential.byte_accuracy);
    EXPECT_EQ(randomized.recovered, "Secret!");
}

TEST(SpectreAttack, VictimCallsAccounted)
{
    const auto res = runSpectreAttack(baseConfig(Disclosure::LruAlg1), "xy");
    // Per byte: 2 parts x rounds x (train_calls + 1 transient call).
    EXPECT_EQ(res.victim_calls, 2u * 2u * 3u * (6u + 1u));
}

TEST(SpectreAttack, DeterministicForSeed)
{
    const auto a = runSpectreAttack(baseConfig(Disclosure::LruAlg2), "det");
    const auto b = runSpectreAttack(baseConfig(Disclosure::LruAlg2), "det");
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
}

TEST(SpectreAttack, EmptySecretIsTrivial)
{
    const auto res = runSpectreAttack(baseConfig(Disclosure::LruAlg1), "");
    EXPECT_TRUE(res.recovered.empty());
    EXPECT_DOUBLE_EQ(res.byte_accuracy, 1.0);
}
