/**
 * @file
 * Test-only reference copies of the three retired transmission
 * harnesses.
 *
 * channel::Session replaced runCovertChannel / runXCoreChannel /
 * runSmtMulticore (and the ad-hoc ChannelPair loops) with one pipeline;
 * the production entry points are now thin config-translating shims
 * over runSession.  To keep the equivalence claim *testable* (the shims
 * cannot differ from the Session by construction), the pre-refactor
 * harness bodies live on here verbatim — independent hierarchy
 * construction, engine wiring, calibration and decode — as the oracle
 * tests/test_session_differential.cpp compares the Session against,
 * the same pattern tests/legacy_schedulers.hpp uses for the engine.
 *
 * Do not "fix" or modernise this code: its value is being the
 * pre-Session behaviour, byte for byte.
 */

#ifndef LRULEAK_TESTS_LEGACY_CHANNEL_RUNNERS_HPP
#define LRULEAK_TESTS_LEGACY_CHANNEL_RUNNERS_HPP

#include <algorithm>
#include <memory>
#include <vector>

#include "channel/covert_channel.hpp"
#include "channel/xcore_channel.hpp"
#include "sim/access_port.hpp"
#include "timing/pointer_chase.hpp"

namespace lruleak::legacy {

using namespace lruleak::channel;

// ----------------------------------------------- single-core (covert)

namespace detail {

/** Shared setup for both single-core runners. */
struct RunContext
{
    sim::CacheHierarchy hierarchy;
    ChannelLayout layout;
    LruSender sender;
    LruReceiver receiver;

    RunContext(const CovertConfig &config, const SenderConfig &sc,
               const ReceiverConfig &rc)
        : hierarchy(hierarchyFor(config)),
          layout(sim::CacheConfig::intelL1d(config.l1_policy),
                 config.target_set, config.chase_set,
                 config.shared_same_vaddr),
          sender(layout, sc), receiver(layout, rc)
    {}
};

constexpr std::uint64_t kTimeSlicedMaxCycles = 4'000'000'000'000ULL;

inline std::uint64_t
runScheduler(const CovertConfig &config, RunContext &ctx)
{
    sim::SingleCorePort port(ctx.hierarchy);
    exec::EngineConfig ec;
    ec.seed = config.seed;
    if (config.mode == SharingMode::HyperThreaded) {
        exec::RoundRobinSmt policy;
        exec::Engine engine(port, config.uarch, policy, ec);
        return engine.run(ctx.sender, ctx.receiver, /*primary=*/1);
    }
    ec.max_cycles = kTimeSlicedMaxCycles;
    exec::TimeSlice policy(config.tslice);
    exec::Engine engine(port, config.uarch, policy, ec);
    return engine.run(ctx.sender, ctx.receiver, /*primary=*/1);
}

/**
 * Build one NoiseProgram per noise core, with per-core seed and
 * footprint base so the cores never run in lockstep.
 */
inline std::vector<std::unique_ptr<exec::NoiseProgram>>
makeNoisePrograms(const exec::NoiseConfig &base_config,
                  std::uint32_t noise_cores, std::uint64_t seed)
{
    std::vector<std::unique_ptr<exec::NoiseProgram>> noise;
    noise.reserve(noise_cores);
    for (std::uint32_t i = 0; i < noise_cores; ++i) {
        exec::NoiseConfig nc = base_config;
        nc.seed = seed + 0x6e01'0000ULL + i;
        nc.base = base_config.base + i * 0x0100'0000'0000ULL;
        noise.push_back(std::make_unique<exec::NoiseProgram>(nc));
    }
    return noise;
}

inline exec::TimeSlicePolicyConfig
partyCoreTimeSlice(const XCoreConfig &config, std::uint32_t core)
{
    exec::TimeSlicePolicyConfig tc = config.tslice;
    tc.quantum = config.quantum;
    tc.kernel_thread = 1000 + 2 * core;
    tc.background_thread = 1001 + 2 * core;
    tc.background_base += core * 0x0100'0000'0000ULL;
    return tc;
}

} // namespace detail

inline CovertResult
legacyRunCovertChannel(const CovertConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;
    sc.lock_line = config.sender_locks_line;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    detail::RunContext ctx(config, sc, rc);
    const std::uint64_t end = detail::runScheduler(config, ctx);

    const timing::MeasurementModel model(config.uarch);

    CovertResult res;
    res.samples = ctx.receiver.samples();
    res.sent = ctx.sender.sentBits();
    res.threshold = model.chaseThreshold();
    res.sender_start = ctx.sender.startTsc();

    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    res.received = windowDecode(res.samples, res.threshold, invert,
                                res.sender_start, config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);

    const auto &h = ctx.hierarchy;
    res.sender_l1 = h.l1().counters().forThread(kSenderThread);
    res.sender_l2 = h.l2().counters().forThread(kSenderThread);
    res.sender_llc = h.llc().counters().forThread(kSenderThread);
    res.receiver_l1 = h.l1().counters().forThread(kReceiverThread);
    return res;
}

inline double
legacyRunPercentOnes(const CovertConfig &config, std::uint8_t constant_bit)
{
    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = Bits{constant_bit};
    sc.infinite = true;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples ? config.max_samples : 300;

    detail::RunContext ctx(config, sc, rc);
    detail::runScheduler(config, ctx);

    const timing::MeasurementModel model(config.uarch);
    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    const Bits bits = thresholdSamples(ctx.receiver.samples(),
                                       model.chaseThreshold(), invert);
    const std::size_t skip = std::min<std::size_t>(bits.size(), 4);
    Bits tail(bits.begin() + static_cast<std::ptrdiff_t>(skip), bits.end());
    return fractionOnes(tail);
}

// -------------------------------------------------------- cross-core

inline XCoreResult
legacyRunXCoreChannel(const XCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = LruAlgorithm::Alg2Disjoint;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = LruAlgorithm::Alg2Disjoint;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    sim::MultiCoreConfig mc;
    mc.cores = 2 + config.noise_cores;
    mc.llc.policy = config.llc_policy;
    mc.seed = config.seed;
    sim::MultiCoreHierarchy hierarchy(mc);

    sim::CacheConfig llc = sim::CacheConfig::intelLlc();
    llc.policy = config.llc_policy;
    const ChannelLayout layout(llc, config.target_set, config.chase_set,
                               /*shared_same_vaddr=*/true);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    const auto noise = detail::makeNoisePrograms(
        config.noise, config.noise_cores, config.seed);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}, {&receiver, 1}};
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(), 2 + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    if (config.quantum > 0) {
        policy.nest(0, std::make_unique<exec::TimeSlice>(
                           detail::partyCoreTimeSlice(config, 0)));
        policy.nest(1, std::make_unique<exec::TimeSlice>(
                           detail::partyCoreTimeSlice(config, 1)));
    }

    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    exec::Engine engine(port, config.uarch, policy, ec);
    const std::uint64_t end = engine.run(specs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    XCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    res.threshold = model.chaseThresholdBetween(sim::HitLevel::LLC,
                                                sim::HitLevel::Memory);
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    res.received = windowDecode(res.samples, res.threshold,
                                /*invert=*/true, res.sender_start,
                                config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.sender_llc = hierarchy.llc().counters().forThread(kSenderThread);
    res.receiver_llc =
        hierarchy.llc().counters().forThread(kReceiverThread);
    return res;
}

// --------------------------------------- SMT pair on a multi-core system

inline SmtMultiCoreResult
legacyRunSmtMulticore(const SmtMultiCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    sim::MultiCoreConfig mc;
    mc.cores = 1 + config.noise_cores;
    mc.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
    mc.seed = config.seed;
    sim::MultiCoreHierarchy hierarchy(mc);

    const ChannelLayout layout(sim::CacheConfig::intelL1d(config.l1_policy),
                               config.target_set, config.chase_set,
                               /*shared_same_vaddr=*/true);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    const auto noise = detail::makeNoisePrograms(
        config.noise, config.noise_cores, config.seed);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}, {&receiver, 0}};
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(), 1 + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    policy.nest(0, std::make_unique<exec::RoundRobinSmt>());

    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    exec::Engine engine(port, config.uarch, policy, ec);
    const std::uint64_t end = engine.run(specs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    SmtMultiCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    res.threshold = model.chaseThreshold();
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    res.received = windowDecode(res.samples, res.threshold, invert,
                                res.sender_start, config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.receiver_l1 =
        hierarchy.l1(0).counters().forThread(kReceiverThread);
    return res;
}

} // namespace lruleak::legacy

#endif // LRULEAK_TESTS_LEGACY_CHANNEL_RUNNERS_HPP
