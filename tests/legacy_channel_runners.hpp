/**
 * @file
 * Test-only reference copies of the three retired transmission
 * harnesses, together with the legacy configuration structs and their
 * SessionConfig translations.
 *
 * channel::Session replaced runCovertChannel / runXCoreChannel /
 * runSmtMulticore (and the ad-hoc ChannelPair loops) with one pipeline.
 * The deprecated production shims are gone; what lives on here is the
 * complete pre-refactor world, frozen for the differential suite:
 *
 *  - the legacy config/result structs (CovertConfig, XCoreConfig,
 *    SmtMultiCoreConfig, ...) exactly as they shipped;
 *  - the pre-Session harness bodies verbatim — independent hierarchy
 *    construction, engine wiring, calibration and decode;
 *  - the pure config translations (sessionConfigFor) the shims used,
 *    so tests/test_session_differential.cpp can drive channel::runSession
 *    with the very same randomized legacy configs and compare results
 *    field by field — the same pattern tests/legacy_schedulers.hpp uses
 *    for the engine.
 *
 * Do not "fix" or modernise this code: its value is being the
 * pre-Session behaviour, byte for byte.
 */

#ifndef LRULEAK_TESTS_LEGACY_CHANNEL_RUNNERS_HPP
#define LRULEAK_TESTS_LEGACY_CHANNEL_RUNNERS_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "channel/session.hpp"
#include "sim/access_port.hpp"
#include "timing/pointer_chase.hpp"

namespace lruleak::legacy {

using namespace lruleak::channel;

// ------------------------------------------------ legacy config structs

/** Full configuration of one covert-channel run (pre-Session). */
struct CovertConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    LruAlgorithm alg = LruAlgorithm::Alg1Shared;
    SharingMode mode = SharingMode::HyperThreaded;
    sim::ReplPolicyKind l1_policy = sim::ReplPolicyKind::TreePlru;
    sim::PlMode pl_mode = sim::PlMode::Disabled;

    std::uint32_t d = 8;          //!< receiver init-phase parameter
    std::uint64_t tr = 600;       //!< receiver sampling period (cycles)
    std::uint64_t ts = 6000;      //!< sender per-bit period (cycles)
    Bits message;                 //!< bits to transmit
    std::uint32_t repeats = 1;

    std::uint32_t target_set = 7;
    std::uint32_t chase_set = 63;
    bool shared_same_vaddr = true;  //!< false: separate address spaces
    bool sender_locks_line = false; //!< PL-cache attack (Fig. 11)
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;  //!< 0: derived from bits, Ts and Tr

    exec::TimeSlicePolicyConfig tslice{}; //!< TimeSliced-mode OS knobs
    std::uint64_t seed = 1;
};

/** Everything a figure/table needed from one run (pre-Session). */
struct CovertResult
{
    std::vector<Sample> samples;
    Bits sent;
    Bits received;
    double error_rate = 0.0;
    double kbps = 0.0;
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;
    std::uint64_t sender_start = 0;

    sim::LevelStats sender_l1;
    sim::LevelStats sender_l2;
    sim::LevelStats sender_llc;
    sim::LevelStats receiver_l1;
};

/** Full configuration of one cross-core channel run (pre-Session). */
struct XCoreConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    sim::ReplPolicyKind llc_policy = sim::ReplPolicyKind::TreePlru;
    std::uint32_t noise_cores = 0;

    std::uint32_t d = 12;           //!< receiver init depth (<= LLC ways)
    std::uint64_t tr = 3000;
    std::uint64_t ts = 30000;
    Bits message;
    std::uint32_t repeats = 1;

    std::uint32_t target_set = 7;
    std::uint32_t chase_set = 63;
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;

    exec::NoiseConfig noise{};
    exec::EngineConfig sched{};

    /** 0: parties own their cores; > 0: per-core OS time-slicing. */
    std::uint64_t quantum = 0;
    exec::TimeSlicePolicyConfig tslice{};
    std::uint64_t seed = 1;
};

/** Everything a figure/table needed from one cross-core run. */
struct XCoreResult
{
    std::vector<Sample> samples;
    Bits sent;
    Bits received;
    double error_rate = 0.0;
    double kbps = 0.0;
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;
    std::uint64_t sender_start = 0;
    std::uint64_t back_invalidations = 0;
    std::uint32_t cores = 2;

    sim::LevelStats sender_l1;
    sim::LevelStats sender_llc;
    sim::LevelStats receiver_llc;
};

/** SMT pair on core 0 of an N-core system (pre-Session). */
struct SmtMultiCoreConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    LruAlgorithm alg = LruAlgorithm::Alg1Shared;
    sim::ReplPolicyKind l1_policy = sim::ReplPolicyKind::TreePlru;
    std::uint32_t noise_cores = 2;

    std::uint32_t d = 8;
    std::uint64_t tr = 600;
    std::uint64_t ts = 6000;
    Bits message;
    std::uint32_t repeats = 1;

    std::uint32_t target_set = 7;
    std::uint32_t chase_set = 63;
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;

    exec::NoiseConfig noise{};
    exec::EngineConfig sched{};
    std::uint64_t seed = 1;
};

/** Everything the traces experiment needed from one combined run. */
struct SmtMultiCoreResult
{
    std::vector<Sample> samples;
    Bits sent;
    Bits received;
    double error_rate = 0.0;
    double kbps = 0.0;
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;
    std::uint64_t sender_start = 0;
    std::uint64_t back_invalidations = 0;
    std::uint32_t cores = 1;

    sim::LevelStats sender_l1;
    sim::LevelStats receiver_l1;
};

// --------------------------------------------- shim config translations

/** Derive the hierarchy configuration a CovertConfig implies. */
inline sim::HierarchyConfig
hierarchyFor(const CovertConfig &config)
{
    sim::HierarchyConfig h;
    h.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
    h.l1.seed = config.seed;
    h.l1_way_predictor = config.uarch.way_predictor;
    h.l1_pl_mode = config.pl_mode;
    return h;
}

/** The SessionConfig the retired runCovertChannel shim built. */
inline SessionConfig
sessionConfigFor(const CovertConfig &config)
{
    SessionConfig s;
    s.channel = config.alg == LruAlgorithm::Alg1Shared
                    ? ChannelId::LruAlg1
                    : ChannelId::LruAlg2;
    s.mode = config.mode;
    s.uarch = config.uarch;
    s.l1_policy = config.l1_policy;
    s.pl_mode = config.pl_mode;
    s.d = config.d;
    s.tr = config.tr;
    s.ts = config.ts;
    s.message = config.message;
    s.repeats = config.repeats;
    s.target_set = config.target_set;
    s.chase_set = config.chase_set;
    s.shared_same_vaddr = config.shared_same_vaddr;
    s.sender_locks_line = config.sender_locks_line;
    s.encode_gap = config.encode_gap;
    s.max_samples = config.max_samples;
    s.tslice = config.tslice;
    s.seed = config.seed;
    return s;
}

/** The SessionConfig the retired runXCoreChannel shim built. */
inline SessionConfig
sessionConfigFor(const XCoreConfig &config)
{
    SessionConfig s;
    s.channel = ChannelId::XCoreLruAlg2;
    s.mode = SharingMode::CrossCore;
    s.uarch = config.uarch;
    s.llc_policy = config.llc_policy;
    s.noise_cores = config.noise_cores;
    s.d = config.d;
    s.tr = config.tr;
    s.ts = config.ts;
    s.message = config.message;
    s.repeats = config.repeats;
    s.target_set = config.target_set;
    s.chase_set = config.chase_set;
    s.encode_gap = config.encode_gap;
    s.max_samples = config.max_samples;
    s.noise = config.noise;
    s.quantum = config.quantum;
    s.tslice = config.tslice;
    s.sched = config.sched;
    s.seed = config.seed;
    return s;
}

/** The SessionConfig the retired runSmtMulticore shim built. */
inline SessionConfig
sessionConfigFor(const SmtMultiCoreConfig &config)
{
    SessionConfig s;
    s.channel = config.alg == LruAlgorithm::Alg1Shared
                    ? ChannelId::LruAlg1
                    : ChannelId::LruAlg2;
    s.mode = SharingMode::HyperThreaded;
    s.multicore = true; // core 0's private L1 carries the channel
    s.uarch = config.uarch;
    s.l1_policy = config.l1_policy;
    s.noise_cores = config.noise_cores;
    s.d = config.d;
    s.tr = config.tr;
    s.ts = config.ts;
    s.message = config.message;
    s.repeats = config.repeats;
    s.target_set = config.target_set;
    s.chase_set = config.chase_set;
    s.encode_gap = config.encode_gap;
    s.max_samples = config.max_samples;
    s.noise = config.noise;
    s.sched = config.sched;
    s.seed = config.seed;
    return s;
}

// ----------------------------------------------- single-core (covert)

namespace detail {

/** Shared setup for both single-core runners. */
struct RunContext
{
    sim::CacheHierarchy hierarchy;
    ChannelLayout layout;
    LruSender sender;
    LruReceiver receiver;

    RunContext(const CovertConfig &config, const SenderConfig &sc,
               const ReceiverConfig &rc)
        : hierarchy(hierarchyFor(config)),
          layout(sim::CacheConfig::intelL1d(config.l1_policy),
                 config.target_set, config.chase_set,
                 config.shared_same_vaddr),
          sender(layout, sc), receiver(layout, rc)
    {}
};

constexpr std::uint64_t kTimeSlicedMaxCycles = 4'000'000'000'000ULL;

inline std::uint64_t
runScheduler(const CovertConfig &config, RunContext &ctx)
{
    sim::SingleCorePort port(ctx.hierarchy);
    exec::EngineConfig ec;
    ec.seed = config.seed;
    if (config.mode == SharingMode::HyperThreaded) {
        exec::RoundRobinSmt policy;
        exec::Engine engine(port, config.uarch, policy, ec);
        return engine.run(ctx.sender, ctx.receiver, /*primary=*/1);
    }
    ec.max_cycles = kTimeSlicedMaxCycles;
    exec::TimeSlice policy(config.tslice);
    exec::Engine engine(port, config.uarch, policy, ec);
    return engine.run(ctx.sender, ctx.receiver, /*primary=*/1);
}

/**
 * Build one NoiseProgram per noise core, with per-core seed and
 * footprint base so the cores never run in lockstep.
 */
inline std::vector<std::unique_ptr<exec::NoiseProgram>>
makeNoisePrograms(const exec::NoiseConfig &base_config,
                  std::uint32_t noise_cores, std::uint64_t seed)
{
    std::vector<std::unique_ptr<exec::NoiseProgram>> noise;
    noise.reserve(noise_cores);
    for (std::uint32_t i = 0; i < noise_cores; ++i) {
        exec::NoiseConfig nc = base_config;
        nc.seed = seed + 0x6e01'0000ULL + i;
        nc.base = base_config.base + i * 0x0100'0000'0000ULL;
        noise.push_back(std::make_unique<exec::NoiseProgram>(nc));
    }
    return noise;
}

inline exec::TimeSlicePolicyConfig
partyCoreTimeSlice(const XCoreConfig &config, std::uint32_t core)
{
    exec::TimeSlicePolicyConfig tc = config.tslice;
    tc.quantum = config.quantum;
    tc.kernel_thread = 1000 + 2 * core;
    tc.background_thread = 1001 + 2 * core;
    tc.background_base += core * 0x0100'0000'0000ULL;
    return tc;
}

} // namespace detail

inline CovertResult
legacyRunCovertChannel(const CovertConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;
    sc.lock_line = config.sender_locks_line;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    detail::RunContext ctx(config, sc, rc);
    const std::uint64_t end = detail::runScheduler(config, ctx);

    const timing::MeasurementModel model(config.uarch);

    CovertResult res;
    res.samples = ctx.receiver.samples();
    res.sent = ctx.sender.sentBits();
    res.threshold = model.chaseThreshold();
    res.sender_start = ctx.sender.startTsc();

    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    res.received = windowDecode(res.samples, res.threshold, invert,
                                res.sender_start, config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);

    const auto &h = ctx.hierarchy;
    res.sender_l1 = h.l1().counters().forThread(kSenderThread);
    res.sender_l2 = h.l2().counters().forThread(kSenderThread);
    res.sender_llc = h.llc().counters().forThread(kSenderThread);
    res.receiver_l1 = h.l1().counters().forThread(kReceiverThread);
    return res;
}

inline double
legacyRunPercentOnes(const CovertConfig &config, std::uint8_t constant_bit)
{
    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = Bits{constant_bit};
    sc.infinite = true;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples ? config.max_samples : 300;

    detail::RunContext ctx(config, sc, rc);
    detail::runScheduler(config, ctx);

    const timing::MeasurementModel model(config.uarch);
    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    const Bits bits = thresholdSamples(ctx.receiver.samples(),
                                       model.chaseThreshold(), invert);
    const std::size_t skip = std::min<std::size_t>(bits.size(), 4);
    Bits tail(bits.begin() + static_cast<std::ptrdiff_t>(skip), bits.end());
    return fractionOnes(tail);
}

// -------------------------------------------------------- cross-core

inline XCoreResult
legacyRunXCoreChannel(const XCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = LruAlgorithm::Alg2Disjoint;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = LruAlgorithm::Alg2Disjoint;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    sim::MultiCoreConfig mc;
    mc.cores = 2 + config.noise_cores;
    mc.llc.policy = config.llc_policy;
    mc.seed = config.seed;
    sim::MultiCoreHierarchy hierarchy(mc);

    sim::CacheConfig llc = sim::CacheConfig::intelLlc();
    llc.policy = config.llc_policy;
    const ChannelLayout layout(llc, config.target_set, config.chase_set,
                               /*shared_same_vaddr=*/true);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    const auto noise = detail::makeNoisePrograms(
        config.noise, config.noise_cores, config.seed);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}, {&receiver, 1}};
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(), 2 + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    if (config.quantum > 0) {
        policy.nest(0, std::make_unique<exec::TimeSlice>(
                           detail::partyCoreTimeSlice(config, 0)));
        policy.nest(1, std::make_unique<exec::TimeSlice>(
                           detail::partyCoreTimeSlice(config, 1)));
    }

    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    exec::Engine engine(port, config.uarch, policy, ec);
    const std::uint64_t end = engine.run(specs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    XCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    res.threshold = model.chaseThresholdBetween(sim::HitLevel::LLC,
                                                sim::HitLevel::Memory);
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    res.received = windowDecode(res.samples, res.threshold,
                                /*invert=*/true, res.sender_start,
                                config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.sender_llc = hierarchy.llc().counters().forThread(kSenderThread);
    res.receiver_llc =
        hierarchy.llc().counters().forThread(kReceiverThread);
    return res;
}

// --------------------------------------- SMT pair on a multi-core system

inline SmtMultiCoreResult
legacyRunSmtMulticore(const SmtMultiCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    sim::MultiCoreConfig mc;
    mc.cores = 1 + config.noise_cores;
    mc.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
    mc.seed = config.seed;
    sim::MultiCoreHierarchy hierarchy(mc);

    const ChannelLayout layout(sim::CacheConfig::intelL1d(config.l1_policy),
                               config.target_set, config.chase_set,
                               /*shared_same_vaddr=*/true);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    const auto noise = detail::makeNoisePrograms(
        config.noise, config.noise_cores, config.seed);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}, {&receiver, 0}};
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(), 1 + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    policy.nest(0, std::make_unique<exec::RoundRobinSmt>());

    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    exec::Engine engine(port, config.uarch, policy, ec);
    const std::uint64_t end = engine.run(specs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    SmtMultiCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    res.threshold = model.chaseThreshold();
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    res.received = windowDecode(res.samples, res.threshold, invert,
                                res.sender_start, config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.receiver_l1 =
        hierarchy.l1(0).counters().forThread(kReceiverThread);
    return res;
}

} // namespace lruleak::legacy

#endif // LRULEAK_TESTS_LEGACY_CHANNEL_RUNNERS_HPP
