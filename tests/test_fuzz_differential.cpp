/**
 * @file
 * Randomized differential fuzz: the four ways to drive a cache set —
 * per-access `CacheSet::access`, `accessBatch`, `replayBatch`, and a
 * faithful seed-shape legacy set over the virtual ReplacementPolicy
 * interface — must stay state-bit-identical on long random traces, for
 * every policy and for way counts the targeted unit tests never
 * exercise (including the non-power-of-two 6 and 12).
 *
 * Rationale: the batch paths specialise their inner loops per concrete
 * policy and common way count, so an off-by-one in an uncommon
 * configuration would slip past the existing 8/16-way tests while
 * silently skewing every Monte-Carlo result built on batching.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/cache_set.hpp"
#include "sim/repl_state.hpp"
#include "sim/replacement.hpp"

using namespace lruleak::sim;

namespace {

/**
 * Independent reference: the seed's array-of-structs set over the
 * virtual policy hierarchy (the same shape `lruleak bench`'s legacy
 * lane keeps).  Deliberately separate code from CacheSet.
 */
class LegacyReferenceSet
{
  public:
    LegacyReferenceSet(std::uint32_t ways, ReplPolicyKind kind,
                       std::uint64_t seed)
        : ways_(ways), tags_(ways, 0), valid_(ways, false),
          policy_(makeReplacementPolicy(kind, ways, seed))
    {}

    struct Result
    {
        bool hit = false;
        std::uint32_t way = kNoWay;
        bool filled = false;
        bool evicted = false;
        Addr evicted_tag = 0;
    };

    Result
    access(Addr tag)
    {
        Result res;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (valid_[w] && tags_[w] == tag) {
                res.hit = true;
                res.way = w;
                policy_->touch(w);
                return res;
            }
        }
        std::uint32_t victim = kNoWay;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (!valid_[w]) {
                victim = w;
                break;
            }
        }
        if (victim == kNoWay) {
            victim = policy_->selectVictim();
            res.evicted = true;
            res.evicted_tag = tags_[victim];
        }
        tags_[victim] = tag;
        valid_[victim] = true;
        policy_->onFill(victim);
        res.way = victim;
        res.filled = true;
        return res;
    }

    std::vector<std::uint8_t> stateBits() const
    {
        return policy_->stateBits();
    }
    Addr tag(std::uint32_t w) const { return tags_[w]; }
    bool valid(std::uint32_t w) const { return valid_[w]; }

  private:
    std::uint32_t ways_;
    std::vector<Addr> tags_;
    std::vector<bool> valid_;
    std::unique_ptr<ReplacementPolicy> policy_;
};

struct FuzzCase
{
    ReplPolicyKind kind;
    std::uint32_t ways;
};

std::string
fuzzCaseName(const ::testing::TestParamInfo<FuzzCase> &info)
{
    return std::string(replPolicyName(info.param.kind)) + "_" +
           std::to_string(info.param.ways) + "way";
}

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase>
{};

/**
 * 10k-access trace over a tag space sized to the set: enough reuse for
 * hits, enough churn for steady eviction pressure.
 */
std::vector<Addr>
fuzzTrace(std::size_t n, std::uint32_t ways, std::uint64_t seed)
{
    std::vector<Addr> tags(n);
    Xoshiro256 rng(seed);
    const std::uint64_t space = ways * 3 + 1;
    for (auto &t : tags)
        t = rng.below(space);
    return tags;
}

} // namespace

TEST_P(DifferentialFuzz, FourPathsStayStateBitIdentical)
{
    const auto [kind, ways] = GetParam();
    constexpr std::uint64_t kSeed = 4242;
    constexpr std::size_t kAccesses = 10'000;

    CacheSet per_access(ways, ReplState::make(kind, ways, kSeed));
    CacheSet batched(ways, ReplState::make(kind, ways, kSeed));
    CacheSet replayed(ways, ReplState::make(kind, ways, kSeed));
    LegacyReferenceSet legacy(ways, kind, kSeed);

    const auto trace = fuzzTrace(kAccesses, ways, kSeed ^ ways);

    // Per-access lane, checked against the legacy oracle continuously
    // (a divergence is reported at the access that introduced it).
    std::uint64_t hits = 0, fills = 0, evictions = 0;
    std::vector<SetAccessResult> per_results(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto res =
            per_access.access(trace[i], 0, false, LockReq::None, 0);
        const auto ref = legacy.access(trace[i]);
        ASSERT_EQ(res.hit, ref.hit) << "access " << i;
        ASSERT_EQ(res.way, ref.way) << "access " << i;
        ASSERT_EQ(res.filled, ref.filled) << "access " << i;
        ASSERT_EQ(res.evicted, ref.evicted) << "access " << i;
        if (ref.evicted)
            ASSERT_EQ(res.evicted_tag, ref.evicted_tag) << "access " << i;
        ASSERT_EQ(per_access.repl().stateBits(), legacy.stateBits())
            << "state diverged from the legacy oracle at access " << i;
        per_results[i] = res;
        hits += res.hit ? 1 : 0;
        fills += res.filled ? 1 : 0;
        evictions += res.evicted ? 1 : 0;
    }

    // Batch lane: one accessBatch over the whole trace.
    std::vector<SetAccessResult> batch_results(trace.size());
    batched.accessBatch(trace, batch_results);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(batch_results[i].hit, per_results[i].hit) << i;
        ASSERT_EQ(batch_results[i].way, per_results[i].way) << i;
        ASSERT_EQ(batch_results[i].filled, per_results[i].filled) << i;
        ASSERT_EQ(batch_results[i].evicted, per_results[i].evicted) << i;
        if (per_results[i].evicted)
            ASSERT_EQ(batch_results[i].evicted_tag,
                      per_results[i].evicted_tag) << i;
    }

    // Replay lane: aggregate stats only.
    const auto stats = replayed.replayBatch(trace);
    EXPECT_EQ(stats.accesses, trace.size());
    EXPECT_EQ(stats.hits, hits);
    EXPECT_EQ(stats.fills, fills);
    EXPECT_EQ(stats.evictions, evictions);

    // End state: all four lanes bit-identical.
    EXPECT_EQ(per_access.repl(), batched.repl());
    EXPECT_EQ(per_access.repl(), replayed.repl());
    EXPECT_EQ(per_access.repl().stateBits(), legacy.stateBits());
    for (std::uint32_t w = 0; w < ways; ++w) {
        EXPECT_EQ(per_access.line(w).tag, batched.line(w).tag) << w;
        EXPECT_EQ(per_access.line(w).valid, batched.line(w).valid) << w;
        EXPECT_EQ(per_access.line(w).tag, replayed.line(w).tag) << w;
        EXPECT_EQ(per_access.line(w).valid, legacy.valid(w)) << w;
        if (legacy.valid(w))
            EXPECT_EQ(per_access.line(w).tag, legacy.tag(w)) << w;
    }
}

namespace {

/** Way counts of the fuzz matrix, including the non-power-of-two ones
 *  (6, 12) that Tree-PLRU alone cannot represent. */
constexpr std::uint32_t kFuzzWays[] = {2, 4, 6, 8, 12, 16};

std::vector<FuzzCase>
fuzzMatrix()
{
    std::vector<FuzzCase> cases;
    for (ReplPolicyKind kind : allReplPolicyKinds()) {
        for (std::uint32_t ways : kFuzzWays) {
            // Tree-PLRU is a binary tree: power-of-two ways only (its
            // constructor rejects the rest; covered below).
            if (kind == ReplPolicyKind::TreePlru &&
                (ways & (ways - 1)) != 0)
                continue;
            cases.push_back(FuzzCase{kind, ways});
        }
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllWays, DifferentialFuzz,
                         ::testing::ValuesIn(fuzzMatrix()), fuzzCaseName);

// ------------------------------------------------------ write-path fuzz

namespace {

/** One write-path fuzz configuration: policy x write-policy combo. */
struct WriteFuzzCase
{
    ReplPolicyKind kind;
    WriteHitPolicy write_hit;
    WriteMissPolicy write_miss;
};

std::string
writeFuzzCaseName(const ::testing::TestParamInfo<WriteFuzzCase> &info)
{
    return std::string(replPolicyName(info.param.kind)) + "_" +
           std::string(writeHitPolicyName(info.param.write_hit)) + "_" +
           std::string(writeMissPolicyName(info.param.write_miss));
}

class WritePathFuzz : public ::testing::TestWithParam<WriteFuzzCase>
{};

std::vector<WriteFuzzCase>
writeFuzzMatrix()
{
    std::vector<WriteFuzzCase> cases;
    for (ReplPolicyKind kind : allReplPolicyKinds())
        for (WriteHitPolicy wh :
             {WriteHitPolicy::WriteBack, WriteHitPolicy::WriteThrough})
            for (WriteMissPolicy wm : {WriteMissPolicy::WriteAllocate,
                                       WriteMissPolicy::NoWriteAllocate})
                cases.push_back(WriteFuzzCase{kind, wh, wm});
    return cases;
}

} // namespace

/**
 * Randomized read/write traces: the per-access, accessBatch and
 * replayBatch paths must agree on every dirty bit and every write-back,
 * for all six policies under all four write-policy combinations.  The
 * batch inner loops specialise the write path away entirely for
 * read-only traces, so this is the test that keeps the specialised
 * write-enabled loops honest.
 */
TEST_P(WritePathFuzz, ThreePathsAgreeOnDirtyStateAndWritebacks)
{
    const auto [kind, write_hit, write_miss] = GetParam();
    constexpr std::uint32_t kWays = 8;
    constexpr std::uint64_t kSeed = 20200415;
    constexpr std::size_t kAccesses = 10'000;

    CacheSet per_access(kWays, ReplState::make(kind, kWays, kSeed),
                        PlMode::Disabled, write_hit, write_miss);
    CacheSet batched(kWays, ReplState::make(kind, kWays, kSeed),
                     PlMode::Disabled, write_hit, write_miss);
    CacheSet replayed(kWays, ReplState::make(kind, kWays, kSeed),
                      PlMode::Disabled, write_hit, write_miss);

    // ~1/3 stores over a tag space with steady eviction pressure.
    std::vector<Addr> tags(kAccesses);
    std::vector<std::uint8_t> writes(kAccesses);
    Xoshiro256 rng(kSeed ^ static_cast<std::uint64_t>(kind));
    for (std::size_t i = 0; i < kAccesses; ++i) {
        tags[i] = rng.below(kWays * 3 + 1);
        writes[i] = rng.chance(1.0 / 3.0) ? 1 : 0;
    }

    // Per-access lane (the oracle for the batch lanes).
    std::uint64_t hits = 0, fills = 0, evictions = 0, writebacks = 0;
    std::vector<SetAccessResult> per_results(kAccesses);
    for (std::size_t i = 0; i < kAccesses; ++i) {
        per_results[i] = per_access.access(tags[i], 0, false,
                                           LockReq::None, 0,
                                           writes[i] != 0);
        hits += per_results[i].hit ? 1 : 0;
        fills += per_results[i].filled ? 1 : 0;
        evictions += per_results[i].evicted ? 1 : 0;
        writebacks += per_results[i].dirty_writeback ? 1 : 0;
    }

    // Batch lane: every per-access field, including the write-path ones.
    std::vector<SetAccessResult> batch_results(kAccesses);
    batched.accessBatch(tags, writes, batch_results);
    for (std::size_t i = 0; i < kAccesses; ++i) {
        ASSERT_EQ(batch_results[i].hit, per_results[i].hit) << i;
        ASSERT_EQ(batch_results[i].way, per_results[i].way) << i;
        ASSERT_EQ(batch_results[i].filled, per_results[i].filled) << i;
        ASSERT_EQ(batch_results[i].evicted, per_results[i].evicted) << i;
        ASSERT_EQ(batch_results[i].dirty_writeback,
                  per_results[i].dirty_writeback)
            << "write-back divergence at access " << i;
        ASSERT_EQ(batch_results[i].write_no_alloc,
                  per_results[i].write_no_alloc) << i;
        if (per_results[i].evicted)
            ASSERT_EQ(batch_results[i].evicted_tag,
                      per_results[i].evicted_tag) << i;
    }

    // Replay lane: aggregate write-back tally.
    const auto stats = replayed.replayBatch(tags, writes);
    EXPECT_EQ(stats.accesses, kAccesses);
    EXPECT_EQ(stats.hits, hits);
    EXPECT_EQ(stats.fills, fills);
    EXPECT_EQ(stats.evictions, evictions);
    EXPECT_EQ(stats.dirty_writebacks, writebacks);

    // End state: dirty masks and replacement state bit-identical.
    EXPECT_EQ(per_access.dirtyMask(), batched.dirtyMask());
    EXPECT_EQ(per_access.dirtyMask(), replayed.dirtyMask());
    EXPECT_EQ(per_access.validMask(), batched.validMask());
    EXPECT_EQ(per_access.validMask(), replayed.validMask());
    EXPECT_EQ(per_access.repl(), batched.repl());
    EXPECT_EQ(per_access.repl(), replayed.repl());
    for (std::uint32_t w = 0; w < kWays; ++w) {
        EXPECT_EQ(per_access.line(w).tag, batched.line(w).tag) << w;
        EXPECT_EQ(per_access.line(w).tag, replayed.line(w).tag) << w;
    }

    // Write-policy invariants the whole trace must respect.
    if (write_hit == WriteHitPolicy::WriteThrough) {
        EXPECT_EQ(per_access.dirtyMask(), 0u)
            << "a write-through set must never hold a dirty line";
        EXPECT_EQ(writebacks, 0u);
    }
    EXPECT_EQ(per_access.dirtyMask() & ~per_access.validMask(), 0u)
        << "dirty bits must annotate valid lines only";
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllWritePolicies, WritePathFuzz,
                         ::testing::ValuesIn(writeFuzzMatrix()),
                         writeFuzzCaseName);

// ----------------------------------------------------------- SHARP fuzz

namespace {

class SharpFuzz : public ::testing::TestWithParam<FuzzCase>
{};

std::vector<FuzzCase>
sharpFuzzMatrix()
{
    // SHARP guards the shared LLC, so the interesting way counts are the
    // wide ones; keep one narrow case for the corner where a couple of
    // owners can already wedge the whole set.
    std::vector<FuzzCase> cases;
    for (ReplPolicyKind kind : allReplPolicyKinds())
        for (std::uint32_t ways : {4u, 8u, 16u})
            cases.push_back(FuzzCase{kind, ways});
    return cases;
}

} // namespace

/**
 * With a single accessing domain no way is ever foreign-owned, so the
 * SHARP path must never alarm and must drive the replacement state
 * through exactly the same call sequence as the plain path: results and
 * state bits stay identical access by access (the documented
 * "bit-identical in the single-owner regime" contract of accessSharp).
 */
TEST_P(SharpFuzz, SingleOwnerTraceMatchesPlainAccessBitForBit)
{
    const auto [kind, ways] = GetParam();
    constexpr std::uint64_t kSeed = 77001;
    constexpr std::size_t kAccesses = 10'000;

    CacheSet plain(ways, ReplState::make(kind, ways, kSeed));
    CacheSet sharp(ways, ReplState::make(kind, ways, kSeed));

    Xoshiro256 rng(kSeed ^ ways);
    SharpSetEvents ev;
    for (std::size_t i = 0; i < kAccesses; ++i) {
        const Addr tag = rng.below(ways * 3 + 1);
        const bool write = rng.chance(1.0 / 3.0);
        const auto a = plain.access(tag, 0, false, LockReq::None, 0, write);
        const auto b = sharp.accessSharp(tag, 0, write, /*domain=*/0,
                                         /*flagged=*/false, ev);
        ASSERT_EQ(a.hit, b.hit) << "access " << i;
        ASSERT_EQ(a.way, b.way) << "access " << i;
        ASSERT_EQ(a.filled, b.filled) << "access " << i;
        ASSERT_EQ(a.evicted, b.evicted) << "access " << i;
        if (a.evicted)
            ASSERT_EQ(a.evicted_tag, b.evicted_tag) << "access " << i;
        ASSERT_EQ(a.dirty_writeback, b.dirty_writeback) << "access " << i;
        ASSERT_EQ(plain.repl(), sharp.repl())
            << "replacement state diverged at access " << i;
    }
    EXPECT_EQ(ev.alarms, 0u)
        << "a single-owner trace must never trip a SHARP alarm";
    EXPECT_EQ(plain.validMask(), sharp.validMask());
    EXPECT_EQ(plain.dirtyMask(), sharp.dirtyMask());
    for (std::uint32_t w = 0; w < ways; ++w)
        EXPECT_EQ(plain.line(w).tag, sharp.line(w).tag) << w;
}

/**
 * Multi-owner random traces: a fill may displace a foreign-owned line
 * only through the forced branch (every way foreign-owned), and that
 * branch always raised at least one alarm first.  Flagged domains never
 * get a forced eviction at all — their fill is denied and the set is
 * left untouched.
 */
TEST_P(SharpFuzz, ForeignEvictionImpliesAlarmOrDenial)
{
    const auto [kind, ways] = GetParam();
    constexpr std::uint64_t kSeed = 77002;
    constexpr std::size_t kAccesses = 10'000;
    constexpr std::uint32_t kDomains = 3;

    CacheSet sharp(ways, ReplState::make(kind, ways, kSeed));
    Xoshiro256 rng(kSeed ^ ways);

    std::uint64_t alarms = 0, forced = 0, denied = 0;
    std::vector<std::uint32_t> owners_before(ways);
    for (std::size_t i = 0; i < kAccesses; ++i) {
        const Addr tag = rng.below(ways * 2 + 3);
        const std::uint32_t domain = rng.below(kDomains);
        const bool flagged = domain == kDomains - 1;
        for (std::uint32_t w = 0; w < ways; ++w)
            owners_before[w] = sharp.owner(w);
        const std::uint32_t valid_before = sharp.validMask();

        SharpSetEvents ev;
        const auto res = sharp.accessSharp(tag, 0, false, domain,
                                           flagged, ev);
        alarms += ev.alarms;
        forced += ev.forced ? 1 : 0;
        denied += ev.denied ? 1 : 0;

        if (res.evicted) {
            const std::uint32_t prev = owners_before[res.way];
            if (prev != kNoOwner && prev != domain) {
                ASSERT_TRUE(ev.forced)
                    << "access " << i << ": foreign-owned way " << res.way
                    << " displaced outside the forced branch";
                ASSERT_GE(ev.alarms, 1u)
                    << "access " << i << ": forced eviction without alarm";
            }
        }
        if (ev.denied) {
            ASSERT_TRUE(flagged) << "access " << i;
            ASSERT_TRUE(res.bypassed) << "access " << i;
            ASSERT_FALSE(res.filled) << "access " << i;
            ASSERT_EQ(sharp.validMask(), valid_before)
                << "access " << i << ": a denied fill must not touch the set";
        }
        if (res.hit)
            ASSERT_EQ(sharp.owner(res.way), domain)
                << "access " << i << ": a hit must transfer ownership";
    }
    // The contended trace must actually exercise the refusal machinery,
    // or the invariants above were vacuous.
    EXPECT_GT(alarms, 0u);
    EXPECT_GT(forced + denied, 0u);
}

/** Alarm / forced / denial tallies are a pure function of the seed. */
TEST_P(SharpFuzz, AlarmCountsDeterministicPerSeed)
{
    const auto [kind, ways] = GetParam();

    auto runTrace = [&](std::uint64_t seed) {
        CacheSet sharp(ways, ReplState::make(kind, ways, seed));
        Xoshiro256 rng(seed ^ ways);
        std::uint64_t alarms = 0, forced = 0, denied = 0;
        for (std::size_t i = 0; i < 5'000; ++i) {
            const Addr tag = rng.below(ways * 2 + 3);
            const std::uint32_t domain = rng.below(3u);
            SharpSetEvents ev;
            sharp.accessSharp(tag, 0, false, domain, domain == 2, ev);
            alarms += ev.alarms;
            forced += ev.forced ? 1 : 0;
            denied += ev.denied ? 1 : 0;
        }
        return std::tuple{alarms, forced, denied};
    };

    EXPECT_EQ(runTrace(11), runTrace(11));
    EXPECT_EQ(runTrace(12), runTrace(12));
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesSharp, SharpFuzz,
                         ::testing::ValuesIn(sharpFuzzMatrix()),
                         fuzzCaseName);

TEST(DifferentialFuzz, TreePlruRejectsNonPowerOfTwoWaysEverywhere)
{
    // Both the value core and the legacy oracle must refuse the way
    // counts the fuzz matrix skips, so the skip hides no behaviour.
    for (std::uint32_t ways : {6u, 12u}) {
        EXPECT_THROW(ReplState::make(ReplPolicyKind::TreePlru, ways),
                     std::invalid_argument) << ways;
        EXPECT_THROW(makeReplacementPolicy(ReplPolicyKind::TreePlru, ways),
                     std::invalid_argument) << ways;
    }
}
