/**
 * @file
 * Tests for the Flush+Reload baseline receiver (both variants).
 */

#include <gtest/gtest.h>

#include "channel/decoder.hpp"
#include "channel/edit_distance.hpp"
#include "channel/flush_reload.hpp"
#include "exec/engine.hpp"
#include "sim/access_port.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

struct FrRun
{
    std::vector<Sample> samples;
    Bits sent;
    std::uint64_t sender_start = 0;
    sim::LevelStats sender_l1;
};

FrRun
runFr(FlushKind kind, const Bits &message, std::uint64_t ts = 6000,
      std::uint64_t tr = 600)
{
    sim::CacheHierarchy hierarchy;
    const ChannelLayout layout;

    SenderConfig sc;
    sc.alg = LruAlgorithm::Alg1Shared; // F+R uses the shared line
    sc.message = message;
    sc.ts = ts;

    FrReceiverConfig rc;
    rc.kind = kind;
    rc.tr = tr;
    rc.max_samples = message.size() * ts / tr + 8;

    LruSender sender(layout, sc);
    FrReceiver receiver(layout, rc);
    sim::SingleCorePort port(hierarchy);
    exec::RoundRobinSmt policy;
    exec::Engine engine(port, timing::Uarch::intelXeonE52690(), policy);
    engine.run(sender, receiver, 1);

    FrRun out;
    out.samples = receiver.samples();
    out.sent = sender.sentBits();
    out.sender_start = sender.startTsc();
    out.sender_l1 =
        hierarchy.l1().counters().forThread(kSenderThread);
    return out;
}

/** Reload threshold: cached (any level) vs memory for ToMemory, L1 vs
 *  L2 for FromL1. */
std::uint32_t
thresholdFor(FlushKind kind)
{
    const auto u = timing::Uarch::intelXeonE52690();
    const timing::MeasurementModel model(u);
    if (kind == FlushKind::FromL1)
        return model.chaseThreshold();
    return u.chase_overhead + 7 * u.l1_latency +
           (u.llc_latency + u.mem_latency) / 2;
}

} // namespace

TEST(FlushReload, MemVariantDecodesMessage)
{
    const Bits msg = randomBits(64, 5);
    const auto run = runFr(FlushKind::ToMemory, msg);
    const auto bits = windowDecode(run.samples, thresholdFor(
                                       FlushKind::ToMemory),
                                   false, run.sender_start, 6000,
                                   msg.size());
    EXPECT_LT(editErrorRate(msg, bits), 0.05);
}

TEST(FlushReload, L1VariantDecodesMessage)
{
    const Bits msg = randomBits(64, 6);
    const auto run = runFr(FlushKind::FromL1, msg);
    const auto bits = windowDecode(run.samples,
                                   thresholdFor(FlushKind::FromL1), false,
                                   run.sender_start, 6000, msg.size());
    EXPECT_LT(editErrorRate(msg, bits), 0.08);
}

TEST(FlushReload, MemVariantForcesSenderMemoryMisses)
{
    // Table VI's contrast: the F+R(mem) sender misses L1 far more often
    // than the LRU sender (every post-flush encode is a full miss).
    const auto run = runFr(FlushKind::ToMemory, Bits(64, 1));
    EXPECT_GT(run.sender_l1.missRate(), 0.005);
}

TEST(FlushReload, L1VariantSenderHitsL2)
{
    // The sender's encode misses L1 but not the whole hierarchy.
    sim::CacheHierarchy hierarchy;
    const ChannelLayout layout;
    SenderConfig sc;
    sc.message = Bits(32, 1);
    sc.ts = 6000;
    FrReceiverConfig rc;
    rc.kind = FlushKind::FromL1;
    rc.max_samples = 300;
    LruSender sender(layout, sc);
    FrReceiver receiver(layout, rc);
    sim::SingleCorePort port(hierarchy);
    exec::RoundRobinSmt policy;
    exec::Engine engine(port, timing::Uarch::intelXeonE52690(), policy);
    engine.run(sender, receiver, 1);
    // Encode accesses that missed L1 must all be L2 hits, not memory.
    bool saw_l2 = false;
    for (auto level : sender.encodeLevels()) {
        EXPECT_NE(level, sim::HitLevel::Memory);
        saw_l2 |= level == sim::HitLevel::L2;
    }
    EXPECT_TRUE(saw_l2);
}

TEST(FlushReload, SilentSenderReadsZero)
{
    const auto run = runFr(FlushKind::ToMemory, Bits(32, 0));
    const auto bits = thresholdSamples(run.samples,
                                       thresholdFor(FlushKind::ToMemory),
                                       false);
    EXPECT_LT(fractionOnes(bits), 0.05);
}

TEST(FlushReload, ReceiverSamplesAtRequestedPeriod)
{
    const auto run = runFr(FlushKind::ToMemory, Bits(16, 1), 6000, 1000);
    ASSERT_GT(run.samples.size(), 4u);
    // Median period within 2x of Tr (flush work inflates it slightly).
    std::vector<std::uint64_t> gaps;
    for (std::size_t i = 1; i < run.samples.size(); ++i)
        gaps.push_back(run.samples[i].tsc - run.samples[i - 1].tsc);
    std::sort(gaps.begin(), gaps.end());
    const auto median = gaps[gaps.size() / 2];
    EXPECT_GE(median, 900u);
    EXPECT_LE(median, 2500u);
}
