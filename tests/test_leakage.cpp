/**
 * @file
 * Analytic ground-truth tests for the leakage estimator: channels with
 * known closed-form mutual information / capacity must score correctly,
 * the Blahut-Arimoto bound must dominate the plugin estimate, and the
 * Miller-Madow correction must shrink with sample count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "channel/decoder.hpp"
#include "channel/multi_spy.hpp"
#include "leakage/estimator.hpp"
#include "leakage/report.hpp"

using namespace lruleak::leakage;

namespace {

/** Binary entropy in bits. */
double
h2(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/** A 2x2 BSC(p) matrix with exact counts: n per input row. */
ConfusionMatrix
bscMatrix(double p, std::uint64_t n)
{
    const auto flips = static_cast<std::uint64_t>(
        std::llround(p * static_cast<double>(n)));
    ConfusionMatrix m(2, 2);
    m.add(0, 0, n - flips);
    m.add(0, 1, flips);
    m.add(1, 0, flips);
    m.add(1, 1, n - flips);
    return m;
}

} // namespace

TEST(Estimator, NoiselessBinaryChannelIsOneBitPerUse)
{
    // y = x with a uniform input: I(X;Y) = H(X) = exactly 1 bit/use.
    ConfusionMatrix m(2, 2);
    m.add(0, 0, 500);
    m.add(1, 1, 500);
    EXPECT_NEAR(pluginMutualInformation(m), 1.0, 1e-12);
}

TEST(Estimator, IndependentChannelIsZeroBitsPerUse)
{
    // The joint factorises exactly: I = 0, and the clamped Miller-Madow
    // estimate must not go negative.
    ConfusionMatrix m(2, 2);
    m.add(0, 0, 250);
    m.add(0, 1, 250);
    m.add(1, 0, 250);
    m.add(1, 1, 250);
    EXPECT_NEAR(pluginMutualInformation(m), 0.0, 1e-12);
    EXPECT_GE(millerMadowMutualInformation(m), 0.0);
    EXPECT_NEAR(millerMadowMutualInformation(m), 0.0, 1e-3);
}

TEST(Estimator, BscMatchesOneMinusBinaryEntropy)
{
    // With exact BSC(p) counts and a uniform input, the plugin MI is
    // the analytic I = 1 - H(p) to floating-point accuracy; the
    // Miller-Madow correction moves it by at most O(1/N).
    for (double p : {0.05, 0.11, 0.25, 0.4}) {
        const auto m = bscMatrix(p, 10'000);
        const double analytic = 1.0 - h2(p);
        EXPECT_NEAR(pluginMutualInformation(m), analytic, 1e-9)
            << "p = " << p;
        EXPECT_NEAR(millerMadowMutualInformation(m), analytic, 1e-4)
            << "p = " << p;
    }
}

TEST(Estimator, BscCapacityIsOneMinusBinaryEntropy)
{
    // The BSC's capacity-achieving input is uniform, so capacity equals
    // the uniform-input MI: Blahut-Arimoto must converge to 1 - H(p).
    for (double p : {0.05, 0.2, 0.35}) {
        const auto cap = blahutArimoto(bscMatrix(p, 10'000));
        EXPECT_TRUE(cap.converged) << "p = " << p;
        EXPECT_NEAR(cap.capacity_bits, 1.0 - h2(p), 1e-6) << "p = " << p;
    }
}

TEST(Estimator, ErasureChannelCapacityIsOneMinusErasureRate)
{
    // Binary erasure channel with erasure probability e: C = 1 - e.
    // Exercises the session alphabet ({0,1} in, {0,1,erasure} out).
    const double e = 0.3;
    ConfusionMatrix m(2, 3);
    m.add(0, 0, 700);
    m.add(0, 2, 300);
    m.add(1, 1, 700);
    m.add(1, 2, 300);
    const auto cap = blahutArimoto(m);
    EXPECT_TRUE(cap.converged);
    EXPECT_NEAR(cap.capacity_bits, 1.0 - e, 1e-6);
}

TEST(Estimator, CapacityDominatesPluginMi)
{
    // Capacity optimises over input distributions, so it can only be
    // >= the empirical-input MI — including on skewed and asymmetric
    // (Z-channel) matrices where the empirical input is far from
    // capacity-achieving.
    std::vector<ConfusionMatrix> cases;

    auto skewed_bsc = bscMatrix(0.15, 1000);
    skewed_bsc.add(0, 0, 5000); // input 0 heavily over-represented
    cases.push_back(skewed_bsc);

    ConfusionMatrix z(2, 2); // Z-channel: 0 is clean, 1 flips
    z.add(0, 0, 900);
    z.add(1, 0, 350);
    z.add(1, 1, 650);
    cases.push_back(z);

    ConfusionMatrix ternary(2, 3);
    ternary.add(0, 0, 500);
    ternary.add(0, 2, 120);
    ternary.add(1, 1, 300);
    ternary.add(1, 0, 80);
    ternary.add(1, 2, 40);
    cases.push_back(ternary);

    for (std::size_t i = 0; i < cases.size(); ++i) {
        const double plugin = pluginMutualInformation(cases[i]);
        const auto cap = blahutArimoto(cases[i]);
        EXPECT_GE(cap.capacity_bits + 1e-12, plugin) << "case " << i;
    }
}

TEST(Estimator, MillerMadowCorrectionShrinksWithSampleCount)
{
    // For a fixed channel shape the |corrected - plugin| gap is
    // (Kx + Ky - Kxy - 1) / 2N ln 2: scaling every count by k must
    // shrink it by exactly k, and the estimate converges on the
    // analytic value from below (full 2x2 support => negative bias
    // correction of the upward-biased plugin estimator).
    const double analytic = 1.0 - h2(0.2);
    double prev_gap = 1e9;
    for (std::uint64_t n : {50ULL, 500ULL, 5000ULL, 50'000ULL}) {
        const auto m = bscMatrix(0.2, n);
        const double gap = std::abs(millerMadowMutualInformation(m) -
                                    pluginMutualInformation(m));
        EXPECT_LT(gap, prev_gap) << "n = " << n;
        prev_gap = gap;
        EXPECT_NEAR(millerMadowMutualInformation(m), analytic,
                    1.0 / static_cast<double>(n))
            << "n = " << n;
    }
    EXPECT_LT(prev_gap, 1e-5);
}

TEST(Estimator, DegenerateMatricesScoreZero)
{
    // Empty matrix, and a single-input matrix (capacity needs >= 2
    // observed inputs): both must be well-defined zeros, not NaNs.
    ConfusionMatrix empty(2, 3);
    EXPECT_EQ(pluginMutualInformation(empty), 0.0);
    EXPECT_EQ(millerMadowMutualInformation(empty), 0.0);
    EXPECT_EQ(blahutArimoto(empty).capacity_bits, 0.0);

    ConfusionMatrix one_row(2, 2);
    one_row.add(0, 0, 40);
    one_row.add(0, 1, 10);
    EXPECT_EQ(pluginMutualInformation(one_row), 0.0);
    const auto cap = blahutArimoto(one_row);
    EXPECT_TRUE(cap.converged);
    EXPECT_EQ(cap.capacity_bits, 0.0);
}

TEST(Estimator, MatrixForCountsAlignedPairsAndRejectsBadSymbols)
{
    const Estimator est; // {0,1} -> {0,1,erasure}
    const std::vector<std::uint8_t> sent = {0, 1, 0, 1, 1};
    const std::vector<std::uint8_t> decoded = {0, 1, 2, 1, 0};
    const auto m = est.matrixFor(sent, decoded);
    EXPECT_EQ(m.total(), 5u);
    EXPECT_EQ(m.count(0, 0), 1u);
    EXPECT_EQ(m.count(0, 2), 1u);
    EXPECT_EQ(m.count(1, 1), 2u);
    EXPECT_EQ(m.count(1, 0), 1u);

    ConfusionMatrix strict(2, 2);
    const std::vector<std::uint8_t> bad = {0, 2};
    const std::vector<std::uint8_t> ok = {0, 0};
    EXPECT_THROW(strict.addPairs(bad, ok), std::out_of_range);
    EXPECT_THROW(strict.addPairs(ok, bad), std::out_of_range);
}

TEST(Estimator, ScoreConvertsRateToBitsPerSecond)
{
    const Estimator est(2, 2);
    const auto m = bscMatrix(0.1, 2000);
    const Estimate e = est.score(m, 500'000.0); // 500 K uses/s
    EXPECT_EQ(e.pairs, m.total());
    EXPECT_NEAR(e.bits_per_second,
                e.corrected_bits_per_use * 500'000.0, 1e-6);
    EXPECT_EQ(est.score(m, 0.0).bits_per_second, 0.0);
}

TEST(Report, BootstrapCiIsDeterministicAndBracketsTheMean)
{
    const std::vector<double> values = {0.8, 0.9, 0.85, 0.95, 0.7,
                                        0.88, 0.92, 0.81, 0.9, 0.86};
    const Interval a = bootstrapMeanCi(values, 200, 7);
    const Interval b = bootstrapMeanCi(values, 200, 7);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_LT(a.lo, a.hi);

    double mean = 0.0;
    for (double v : values)
        mean += v;
    mean /= static_cast<double>(values.size());
    EXPECT_LE(a.lo, mean);
    EXPECT_GE(a.hi, mean);

    // Degenerate inputs collapse rather than crash.
    const Interval single = bootstrapMeanCi(std::vector<double>{0.5},
                                            200, 7);
    EXPECT_EQ(single.lo, 0.5);
    EXPECT_EQ(single.hi, 0.5);
}

TEST(Report, PoolsTrialsAndBeatsPerTrialBias)
{
    // Two noiseless 16-pair trials: the pooled matrix has 32 pairs, so
    // its Miller-Madow estimate sits closer to the true 1 bit/use than
    // the per-trial mean does (the whole point of pooling).
    Report::Config cfg;
    cfg.seed = 11;
    Report report(cfg);
    const std::vector<std::uint8_t> half = {0, 1, 0, 1, 0, 1, 0, 1,
                                            0, 1, 0, 1, 0, 1, 0, 1};
    report.addTrial(half, half, 100.0);
    report.addTrial(half, half, 300.0);

    const Aggregate agg = report.aggregate();
    EXPECT_EQ(agg.trials, 2u);
    EXPECT_EQ(agg.pairs, 32u);
    EXPECT_LT(std::abs(agg.pooled.corrected_bits_per_use - 1.0),
              std::abs(agg.mean_bits_per_use - 1.0));
    EXPECT_NEAR(agg.pooled.plugin_bits_per_use, 1.0, 1e-12);
    // Pooled bits/s is scored at the mean trial rate (200 uses/s here).
    EXPECT_NEAR(agg.pooled.bits_per_second,
                agg.pooled.corrected_bits_per_use * 200.0, 1e-9);
    // Identical trials: the CI collapses onto the common value.
    EXPECT_NEAR(agg.bits_per_use_ci.lo, agg.mean_bits_per_use, 1e-12);
    EXPECT_NEAR(agg.bits_per_use_ci.hi, agg.mean_bits_per_use, 1e-12);
}

TEST(Estimator, MergedSpyRowScoresLikeTheSingleReceiverRow)
{
    // The K-spy decode path hands the estimator a mergeSpySymbols() row
    // instead of a windowSymbols() row; both live in the same {0, 1,
    // erasure} output alphabet with the same one-symbol-per-sent-bit
    // alignment, so matrixFor/score need no special casing.  A merge of
    // identical rows must therefore score identically to the single
    // row, and a merge that only fills erasures in can only help.
    const Estimator est;
    const std::vector<std::uint8_t> sent = {0, 1, 0, 1, 1, 0, 1, 0};
    const lruleak::channel::Bits solo = {0, 1, 0, 1, 2, 0, 1, 0};

    const auto merged_same =
        lruleak::channel::mergeSpySymbols({solo, solo, solo});
    EXPECT_EQ(merged_same, solo);
    const auto a = est.score(est.matrixFor(sent, solo), 1.0);
    const auto b = est.score(est.matrixFor(sent, merged_same), 1.0);
    EXPECT_EQ(a.plugin_bits_per_use, b.plugin_bits_per_use);

    // A second spy that saw the bit the first one's window missed.
    lruleak::channel::Bits other(solo.size(),
                                 lruleak::channel::kErasureSymbol);
    other[4] = 1;
    const auto merged = lruleak::channel::mergeSpySymbols({solo, other});
    const auto c = est.score(est.matrixFor(sent, merged), 1.0);
    EXPECT_EQ(est.matrixFor(sent, merged).count(1, 2), 0u);
    EXPECT_GE(c.plugin_bits_per_use, a.plugin_bits_per_use);
}
