/**
 * @file
 * Tests for the sender/receiver protocol state machines, driven
 * manually (no scheduler) so the exact op sequences of Algorithms 1-3
 * can be asserted.
 */

#include <gtest/gtest.h>

#include "channel/lru_channel.hpp"

using namespace lruleak;
using namespace lruleak::channel;
using exec::Op;
using exec::OpKind;
using exec::OpResult;

namespace {

/** Feed a fake L1-hit result back for an access op. */
void
ack(exec::ThreadProgram &prog, const Op &op, std::uint64_t now,
    std::uint32_t measured = 35)
{
    OpResult res;
    res.kind = op.kind;
    res.level = sim::HitLevel::L1;
    res.measured = measured;
    res.tsc = now;
    prog.onResult(res);
}

} // namespace

TEST(Receiver, Algorithm1OpSequence)
{
    const ChannelLayout layout;
    ReceiverConfig cfg;
    cfg.alg = LruAlgorithm::Alg1Shared;
    cfg.d = 8;
    cfg.tr = 600;
    cfg.max_samples = 2;
    LruReceiver recv(layout, cfg);

    std::uint64_t now = 0;

    // Prewarm: 7 chase accesses.
    for (int i = 0; i < 7; ++i) {
        const Op op = recv.next(now);
        ASSERT_EQ(op.kind, OpKind::Access);
        EXPECT_EQ(layout.layout().setIndex(op.ref.vaddr),
                  layout.chaseSet());
        ack(recv, op, now);
        now += 15;
    }

    // Init: lines 0..d-1 of the target set, in order.
    for (std::uint32_t i = 0; i < 8; ++i) {
        const Op op = recv.next(now);
        ASSERT_EQ(op.kind, OpKind::Access);
        EXPECT_EQ(layout.layout().setIndex(op.ref.vaddr),
                  layout.targetSet());
        EXPECT_EQ(op.ref.paddr,
                  layout.receiverLine(cfg.alg, i).paddr)
            << "init must walk lines in order, i = " << i;
        ack(recv, op, now);
        now += 15;
    }

    // Sleep until Tlast + Tr.
    const Op sleep = recv.next(now);
    ASSERT_EQ(sleep.kind, OpKind::SpinUntil);
    now = sleep.until;

    // Decode: Algorithm 1 walks lines d..N (just line 8 for d = 8).
    const Op decode = recv.next(now);
    ASSERT_EQ(decode.kind, OpKind::Access);
    EXPECT_EQ(decode.ref.paddr, layout.receiverLine(cfg.alg, 8).paddr);
    ack(recv, decode, now);

    // Chain warm (7 accesses) then the timed measure of line 0.
    for (int i = 0; i < 7; ++i) {
        const Op op = recv.next(now);
        ASSERT_EQ(op.kind, OpKind::Access);
        ack(recv, op, now);
    }
    const Op measure = recv.next(now);
    ASSERT_EQ(measure.kind, OpKind::Measure);
    EXPECT_EQ(measure.ref.paddr, layout.receiverLine(cfg.alg, 0).paddr);
    EXPECT_EQ(measure.chain_levels.size(), 7u);
    ack(recv, measure, now, 35);

    ASSERT_EQ(recv.samples().size(), 1u);
    EXPECT_EQ(recv.samples()[0].latency, 35u);
}

TEST(Receiver, Algorithm2DecodeStopsAtNMinus1)
{
    const ChannelLayout layout;
    ReceiverConfig cfg;
    cfg.alg = LruAlgorithm::Alg2Disjoint;
    cfg.d = 4;
    cfg.max_samples = 1;
    LruReceiver recv(layout, cfg);

    std::uint64_t now = 0;
    for (int i = 0; i < 7; ++i)
        ack(recv, recv.next(now), now); // prewarm
    for (int i = 0; i < 4; ++i)
        ack(recv, recv.next(now), now); // init 0..3
    const Op sleep = recv.next(now);
    ASSERT_EQ(sleep.kind, OpKind::SpinUntil);
    now = sleep.until;
    // Decode: lines 4..7 only (N-d = 4 accesses).
    for (std::uint32_t i = 4; i < 8; ++i) {
        const Op op = recv.next(now);
        ASSERT_EQ(op.kind, OpKind::Access);
        EXPECT_EQ(op.ref.paddr, layout.receiverLine(cfg.alg, i).paddr);
        ack(recv, op, now);
    }
    // Next op batch: chain warm, not another decode access.
    const Op op = recv.next(now);
    ASSERT_EQ(op.kind, OpKind::Access);
    EXPECT_EQ(layout.layout().setIndex(op.ref.vaddr), layout.chaseSet());
}

TEST(Receiver, StopsAfterMaxSamples)
{
    const ChannelLayout layout;
    ReceiverConfig cfg;
    cfg.max_samples = 1;
    LruReceiver recv(layout, cfg);
    std::uint64_t now = 0;
    for (int guard = 0; guard < 100; ++guard) {
        const Op op = recv.next(now);
        if (op.kind == OpKind::Done)
            break;
        if (op.kind == OpKind::SpinUntil) {
            now = op.until;
            continue;
        }
        ack(recv, op, now);
        now += 15;
    }
    EXPECT_EQ(recv.samples().size(), 1u);
    EXPECT_EQ(recv.next(now).kind, OpKind::Done);
}

TEST(Sender, SendsOneWhenBitIsOne)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{1};
    cfg.ts = 1000;
    cfg.encode_gap = 100;
    cfg.stack_lines = 0;
    LruSender sender(layout, cfg);

    std::uint64_t now = 0;
    const Op prewarm = sender.next(now);
    ASSERT_EQ(prewarm.kind, OpKind::Access);
    EXPECT_EQ(prewarm.ref.paddr,
              layout.senderLine(LruAlgorithm::Alg1Shared).paddr);

    // Encode iterations: access line 0, spin, repeat until Ts expires.
    int encodes = 0;
    for (int guard = 0; guard < 100; ++guard) {
        const Op op = sender.next(now);
        if (op.kind == OpKind::Done)
            break;
        if (op.kind == OpKind::SpinUntil) {
            now = op.until;
            continue;
        }
        ASSERT_EQ(op.kind, OpKind::Access);
        EXPECT_EQ(op.ref.paddr,
                  layout.senderLine(LruAlgorithm::Alg1Shared).paddr);
        ++encodes;
        ack(sender, op, now);
        now += 10;
    }
    // Ts = 1000, gap = 100: about ten encode accesses.
    EXPECT_GE(encodes, 8);
    EXPECT_LE(encodes, 12);
}

TEST(Sender, SilentWhenBitIsZero)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{0};
    cfg.ts = 1000;
    cfg.encode_gap = 100;
    cfg.stack_lines = 0;
    cfg.prewarm = false;
    LruSender sender(layout, cfg);

    std::uint64_t now = 0;
    for (int guard = 0; guard < 100; ++guard) {
        const Op op = sender.next(now);
        if (op.kind == OpKind::Done)
            break;
        ASSERT_NE(op.kind, OpKind::Access)
            << "sending 0 must not touch the target set";
        if (op.kind == OpKind::SpinUntil)
            now = op.until;
    }
}

TEST(Sender, StackWorkDoesNotTouchTargetSet)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{0, 1};
    cfg.ts = 500;
    cfg.encode_gap = 100;
    cfg.stack_lines = 3;
    cfg.prewarm = false;
    LruSender sender(layout, cfg);

    std::uint64_t now = 0;
    const auto sender_line = layout.senderLine(cfg.alg);
    for (int guard = 0; guard < 200; ++guard) {
        const Op op = sender.next(now);
        if (op.kind == OpKind::Done)
            break;
        if (op.kind == OpKind::SpinUntil) {
            now = op.until;
            continue;
        }
        if (op.ref.paddr != sender_line.paddr) {
            EXPECT_NE(layout.layout().setIndex(op.ref.vaddr),
                      layout.targetSet())
                << "stack accesses must avoid the target set";
        }
        ack(sender, op, now);
        now += 10;
    }
}

TEST(Sender, BitPacingFollowsTs)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{1, 0, 1};
    cfg.ts = 1000;
    cfg.encode_gap = 200;
    cfg.stack_lines = 0;
    cfg.prewarm = false;
    LruSender sender(layout, cfg);

    std::uint64_t now = 0;
    std::vector<std::uint64_t> encode_times;
    for (int guard = 0; guard < 300; ++guard) {
        const Op op = sender.next(now);
        if (op.kind == OpKind::Done)
            break;
        if (op.kind == OpKind::SpinUntil) {
            now = op.until;
            continue;
        }
        encode_times.push_back(now);
        ack(sender, op, now);
        now += 10;
    }
    const auto start = sender.startTsc();
    for (auto t : encode_times) {
        const auto bit = (t - start) / cfg.ts;
        EXPECT_NE(bit, 1u) << "no encode accesses during the 0 bit";
        EXPECT_LT(bit, 3u);
    }
}

TEST(Sender, SentBitsRepeats)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{1, 0};
    cfg.repeats = 3;
    LruSender sender(layout, cfg);
    EXPECT_EQ(bitsToString(sender.sentBits()), "101010");
}

TEST(Sender, LockRequestOnPrewarm)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{1};
    cfg.lock_line = true;
    LruSender sender(layout, cfg);
    const Op op = sender.next(0);
    ASSERT_EQ(op.kind, OpKind::Access);
    EXPECT_EQ(op.lock_req, sim::LockReq::Lock);
}

TEST(Sender, EncodeLevelsRecorded)
{
    const ChannelLayout layout;
    SenderConfig cfg;
    cfg.message = Bits{1};
    cfg.ts = 300;
    cfg.encode_gap = 100;
    cfg.stack_lines = 0;
    cfg.prewarm = false;
    LruSender sender(layout, cfg);
    std::uint64_t now = 0;
    for (int guard = 0; guard < 50; ++guard) {
        const Op op = sender.next(now);
        if (op.kind == OpKind::Done)
            break;
        if (op.kind == OpKind::SpinUntil) {
            now = op.until;
            continue;
        }
        ack(sender, op, now);
        now += 10;
    }
    EXPECT_FALSE(sender.encodeLevels().empty());
    for (auto level : sender.encodeLevels())
        EXPECT_EQ(level, sim::HitLevel::L1);
}
