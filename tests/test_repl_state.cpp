/**
 * @file
 * Equivalence tests for the value-semantic replacement core.
 *
 * The legacy virtual classes (sim/replacement.hpp) keep the seed's
 * independent vector-based implementations, so they serve as the oracle:
 * ReplState must match them state-bit-for-state-bit and victim-for-
 * victim on randomized operation traces, for all six policies.  The
 * ReplStatePolicy adapter and the CacheSet batch APIs are checked the
 * same way.
 */

#include <gtest/gtest.h>

#include "sim/cache_set.hpp"
#include "sim/repl_state.hpp"
#include "sim/replacement.hpp"

using namespace lruleak::sim;

namespace {

struct StateCase
{
    ReplPolicyKind kind;
    std::uint32_t ways;
};

class ReplStateEquivalence : public ::testing::TestWithParam<StateCase>
{};

} // namespace

TEST_P(ReplStateEquivalence, MatchesLegacyOnRandomizedTraces)
{
    const auto [kind, ways] = GetParam();
    constexpr std::uint64_t kSeed = 77;

    ReplState state = ReplState::make(kind, ways, kSeed);
    auto legacy = makeReplacementPolicy(kind, ways, kSeed);

    ASSERT_EQ(state.kind(), kind);
    ASSERT_EQ(state.ways(), ways);
    ASSERT_EQ(state.stateBits(), legacy->stateBits())
        << "power-on state differs";

    Xoshiro256 rng(123456);
    for (int op = 0; op < 5000; ++op) {
        const auto way = static_cast<std::uint32_t>(rng.below(ways));
        switch (rng.below(100)) {
          case 0: // occasional reset
            state.reset();
            legacy->reset();
            break;
          case 1:
          case 2: // victim commit (the mutating query)
            ASSERT_EQ(state.selectVictim(), legacy->selectVictim())
                << "op " << op;
            break;
          default:
            if (rng.chance(0.5)) {
                state.touch(way);
                legacy->touch(way);
            } else {
                state.onFill(way);
                legacy->onFill(way);
            }
            break;
        }
        ASSERT_EQ(state.stateBits(), legacy->stateBits())
            << replPolicyName(kind) << " diverged at op " << op;
        ASSERT_EQ(state.victim(), legacy->victim())
            << replPolicyName(kind) << " victim preview at op " << op;
    }
}

TEST_P(ReplStateEquivalence, VictimPreviewIsPure)
{
    const auto [kind, ways] = GetParam();
    ReplState state = ReplState::make(kind, ways, 5);
    Xoshiro256 rng(42);
    for (int op = 0; op < 200; ++op) {
        state.touch(static_cast<std::uint32_t>(rng.below(ways)));
        const ReplState before = state;
        const auto preview = state.victim();
        EXPECT_EQ(state, before) << "victim() must not mutate";
        // The commit must honour the preview.
        EXPECT_EQ(state.selectVictim(), preview);
    }
}

TEST_P(ReplStateEquivalence, AdapterRoundTripsThroughState)
{
    const auto [kind, ways] = GetParam();
    auto legacy = makeReplacementPolicy(kind, ways, 9);
    Xoshiro256 rng(7);
    for (int op = 0; op < 100; ++op)
        legacy->touch(static_cast<std::uint32_t>(rng.below(ways)));

    // Snapshot into the value core and wrap back behind the interface.
    ReplStatePolicy adapter(legacy->state());
    EXPECT_EQ(adapter.stateBits(), legacy->stateBits());
    EXPECT_EQ(adapter.kind(), legacy->kind());
    EXPECT_EQ(adapter.victim(), legacy->victim());

    // Both sides must continue in lockstep after the snapshot.
    for (int op = 0; op < 200; ++op) {
        const auto way = static_cast<std::uint32_t>(rng.below(ways));
        adapter.touch(way);
        legacy->touch(way);
        ASSERT_EQ(adapter.stateBits(), legacy->stateBits());
        ASSERT_EQ(adapter.selectVictim(), legacy->selectVictim());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ReplStateEquivalence,
    ::testing::Values(StateCase{ReplPolicyKind::TrueLru, 4},
                      StateCase{ReplPolicyKind::TrueLru, 8},
                      StateCase{ReplPolicyKind::TreePlru, 4},
                      StateCase{ReplPolicyKind::TreePlru, 8},
                      StateCase{ReplPolicyKind::TreePlru, 16},
                      StateCase{ReplPolicyKind::BitPlru, 8},
                      StateCase{ReplPolicyKind::Fifo, 8},
                      StateCase{ReplPolicyKind::Random, 8},
                      StateCase{ReplPolicyKind::Srrip, 8}));

TEST(ReplState, ValueSemantics)
{
    ReplState a = ReplState::make(ReplPolicyKind::TreePlru, 8);
    a.touch(3);
    ReplState b = a; // copy
    EXPECT_EQ(a, b);
    b.touch(5);
    EXPECT_NE(a, b) << "copies must be independent";
    b = a; // copy-assign
    EXPECT_EQ(a, b);
}

TEST(ReplState, RejectsUnsupportedWays)
{
    EXPECT_THROW(ReplState::make(ReplPolicyKind::TrueLru, 0),
                 std::invalid_argument);
    EXPECT_THROW(ReplState::make(ReplPolicyKind::TrueLru, kMaxWays + 1),
                 std::invalid_argument);
    EXPECT_THROW(ReplState::make(ReplPolicyKind::TreePlru, 6),
                 std::invalid_argument);
    EXPECT_NO_THROW(ReplState::make(ReplPolicyKind::TrueLru, kMaxWays));
}

TEST(ReplState, WhiteBoxAccess)
{
    ReplState state = ReplState::make(ReplPolicyKind::TreePlru, 8);
    auto *tree = state.get<TreePlruState>();
    ASSERT_NE(tree, nullptr);
    state.touch(0);
    EXPECT_TRUE(tree->nodeBit(0));
    EXPECT_EQ(state.get<TrueLruState>(), nullptr);
}

// ---------------------------------------------------------- batch APIs

namespace {

/** Random tag stream over a small space: mixes hits and misses. */
std::vector<Addr>
randomTags(std::size_t n, std::uint64_t seed)
{
    std::vector<Addr> tags(n);
    Xoshiro256 rng(seed);
    for (auto &t : tags)
        t = rng.below(20);
    return tags;
}

class BatchEquivalence
    : public ::testing::TestWithParam<StateCase>
{};

} // namespace

TEST_P(BatchEquivalence, AccessBatchMatchesPerAccessPath)
{
    const auto [kind, ways] = GetParam();
    CacheSet a(ways, ReplState::make(kind, ways, 3));
    CacheSet b(ways, ReplState::make(kind, ways, 3));

    const auto tags = randomTags(2000, 99);
    std::vector<SetAccessResult> batch_results(tags.size());
    a.accessBatch(tags, batch_results);

    for (std::size_t i = 0; i < tags.size(); ++i) {
        const auto res = b.access(tags[i], 0, false, LockReq::None, 0);
        ASSERT_EQ(batch_results[i].hit, res.hit) << "access " << i;
        ASSERT_EQ(batch_results[i].way, res.way) << "access " << i;
        ASSERT_EQ(batch_results[i].filled, res.filled) << "access " << i;
        ASSERT_EQ(batch_results[i].evicted, res.evicted) << "access " << i;
        if (res.evicted) {
            ASSERT_EQ(batch_results[i].evicted_tag, res.evicted_tag);
        }
    }
    EXPECT_EQ(a.repl(), b.repl()) << "replacement state diverged";
    for (std::uint32_t w = 0; w < ways; ++w) {
        EXPECT_EQ(a.line(w).tag, b.line(w).tag);
        EXPECT_EQ(a.line(w).valid, b.line(w).valid);
    }
}

TEST_P(BatchEquivalence, ReplayBatchMatchesAccessBatch)
{
    const auto [kind, ways] = GetParam();
    CacheSet a(ways, ReplState::make(kind, ways, 3));
    CacheSet b(ways, ReplState::make(kind, ways, 3));

    const auto tags = randomTags(2000, 100);
    std::vector<SetAccessResult> results(tags.size());
    a.accessBatch(tags, results);
    const auto stats = b.replayBatch(tags);

    std::uint64_t hits = 0, fills = 0, evictions = 0;
    for (const auto &r : results) {
        hits += r.hit ? 1 : 0;
        fills += r.filled ? 1 : 0;
        evictions += r.evicted ? 1 : 0;
    }
    EXPECT_EQ(stats.accesses, tags.size());
    EXPECT_EQ(stats.hits, hits);
    EXPECT_EQ(stats.fills, fills);
    EXPECT_EQ(stats.evictions, evictions);
    EXPECT_EQ(a.repl(), b.repl());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, BatchEquivalence,
    ::testing::Values(StateCase{ReplPolicyKind::TrueLru, 8},
                      StateCase{ReplPolicyKind::TreePlru, 8},
                      StateCase{ReplPolicyKind::TreePlru, 16},
                      StateCase{ReplPolicyKind::BitPlru, 8},
                      StateCase{ReplPolicyKind::Fifo, 8},
                      StateCase{ReplPolicyKind::Random, 8},
                      StateCase{ReplPolicyKind::Srrip, 8}));

TEST(CacheSetValueSemantics, CopyAssignmentIsDeepAndIndependent)
{
    CacheSet a(8, ReplState::make(ReplPolicyKind::TreePlru, 8));
    for (Addr t = 0; t < 8; ++t)
        a.access(t, 0, false, LockReq::None, 0);

    CacheSet b(8, ReplState::make(ReplPolicyKind::TreePlru, 8));
    b = a; // the seed deleted this operator
    EXPECT_EQ(b.repl(), a.repl());
    EXPECT_EQ(b.occupancy(), a.occupancy());

    // Mutating the copy must not leak back into the original.
    b.access(99, 0, false, LockReq::None, 0);
    EXPECT_TRUE(b.probe(99).has_value());
    EXPECT_FALSE(a.probe(99).has_value());
    EXPECT_NE(b.repl(), a.repl());
}
