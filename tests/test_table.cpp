/**
 * @file
 * Tests for the table/chart rendering helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/table.hpp"

using namespace lruleak::core;

TEST(Table, RendersHeaderAndRows)
{
    Table t({"Channel", "Rate", "Error"});
    t.addRow({"Alg.1", "630 Kbps", "0.0%"});
    t.addRow({"Alg.2", "630 Kbps", "1.2%"});
    std::ostringstream os;
    t.print(os);
    const auto text = os.str();
    EXPECT_NE(text.find("Channel"), std::string::npos);
    EXPECT_NE(text.find("Alg.2"), std::string::npos);
    EXPECT_NE(text.find("630 Kbps"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t({"x", "yyyyyy"});
    t.addRow({"longvalue", "1"});
    std::ostringstream os;
    t.print(os);
    // Header line must be padded to at least the row width.
    const auto text = os.str();
    const auto first_nl = text.find('\n');
    const auto second_nl = text.find('\n', first_nl + 1);
    const auto third_nl = text.find('\n', second_nl + 1);
    const auto header_len = first_nl;
    const auto row_len = third_nl - second_nl - 1;
    EXPECT_EQ(header_len, row_len);
}

TEST(Fmt, Double)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

TEST(Fmt, Percent)
{
    EXPECT_EQ(fmtPercent(0.123, 1), "12.3%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Fmt, Kbps)
{
    EXPECT_EQ(fmtKbps(480.0), "480.0 Kbps");
    EXPECT_EQ(fmtKbps(0.0024), "2.40 bps");
}

TEST(Sparkline, OnePerValue)
{
    const auto line = sparkline({1.0, 2.0, 3.0});
    // Three UTF-8 block glyphs, 3 bytes each.
    EXPECT_EQ(line.size(), 9u);
    EXPECT_TRUE(sparkline({}).empty());
}

TEST(Sparkline, FlatSeriesDoesNotCrash)
{
    EXPECT_FALSE(sparkline({5.0, 5.0, 5.0}).empty());
}

TEST(AsciiChart, HasRequestedHeight)
{
    std::vector<double> vals;
    for (int i = 0; i < 50; ++i)
        vals.push_back(i % 10);
    const auto chart = asciiChart(vals, 6, 40);
    std::size_t lines = 0;
    for (char c : chart)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 6u);
    EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChart, EmptyInput)
{
    EXPECT_TRUE(asciiChart({}, 5, 10).empty());
}
