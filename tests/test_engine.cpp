/**
 * @file
 * Unit tests of the execution engine proper: thread/core binding
 * validation, policy nesting, the generalisations the seed schedulers
 * did not have (TimeSlice over N threads, TimeSlice per core under
 * LowestClock, RoundRobinSmt groups on one core of a multi-core
 * system), and the consolidated exec::ThreadStats telemetry.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/hierarchy.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::exec;

namespace {

/** Records the TSC of every op it issues. */
class StampingProgram : public ThreadProgram
{
  public:
    StampingProgram(sim::Addr addr, std::size_t limit)
        : addr_(addr), limit_(limit)
    {}

    Op
    next(std::uint64_t now) override
    {
        if (stamps_.size() >= limit_)
            return Op::done();
        stamps_.push_back(now);
        return Op::access(sim::MemRef::load(addr_, threadId()));
    }

    std::vector<std::uint64_t> stamps_;

  private:
    sim::Addr addr_;
    std::size_t limit_;
};

TimeSlicePolicyConfig
quietSlices(std::uint64_t quantum)
{
    TimeSlicePolicyConfig pc;
    pc.quantum = quantum;
    pc.quantum_jitter = 0;
    pc.background_prob = 0.0;
    pc.kernel_noise_lines = 0;
    pc.tick_lines = 0;
    return pc;
}

TEST(Engine, RejectsBadBindings)
{
    sim::CacheHierarchy h;
    sim::SingleCorePort port(h);
    RoundRobinSmt policy;
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    StampingProgram a(0x40, 1);
    EXPECT_THROW(engine.run({}, 0), std::invalid_argument);
    {
        const ThreadSpec specs[] = {{&a, 0}};
        EXPECT_THROW(engine.run(specs, 5), std::invalid_argument);
    }
    {
        const ThreadSpec specs[] = {{&a, 3}}; // single-core port
        EXPECT_THROW(engine.run(specs, 0), std::invalid_argument);
    }
    {
        const ThreadSpec specs[] = {{nullptr, 0}};
        EXPECT_THROW(engine.run(specs, 0), std::invalid_argument);
    }
}

TEST(Engine, ThreadStatsCountOpsAndCycles)
{
    sim::CacheHierarchy h;
    sim::SingleCorePort port(h);
    RoundRobinSmt policy;
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    class Mixed : public ThreadProgram
    {
      public:
        Op
        next(std::uint64_t now) override
        {
            switch (step_++) {
              case 0: return Op::access(sim::MemRef::load(0x40));
              case 1: return Op::flush(sim::MemRef::load(0x40));
              case 2: return Op::spinUntil(now + 100);
              case 3:
                return Op::measure(sim::MemRef::load(0x40), chain_);
              default: return Op::done();
            }
        }

      private:
        int step_ = 0;
        std::vector<sim::HitLevel> chain_{sim::HitLevel::L1};
    } mixed;
    StampingProgram other(0x80, 1);
    engine.run(mixed, other, /*primary=*/0);

    const ThreadStats &stats = engine.stats(0);
    EXPECT_EQ(stats.accesses, 1u);
    EXPECT_EQ(stats.flushes, 1u);
    EXPECT_EQ(stats.spins, 1u);
    EXPECT_EQ(stats.measures, 1u);
    EXPECT_EQ(stats.memoryOps(), 3u);
    EXPECT_EQ(stats.totalOps(), 4u);
    EXPECT_GT(stats.busy_cycles, 0u);
}

TEST(TimeSlicePolicy, RotatesThreeThreads)
{
    // The seed scheduler was hard-wired to two threads; the policy
    // rotates any number round-robin.
    sim::CacheHierarchy h;
    sim::SingleCorePort port(h);
    TimeSlice policy(quietSlices(10'000));
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    StampingProgram a(0x1000, 100'000);
    StampingProgram b(0x2000, 100'000);
    StampingProgram c(0x3000, 600);
    const ThreadSpec specs[] = {{&a, 0}, {&b, 0}, {&c, 0}};
    engine.run(specs, /*primary=*/2);

    EXPECT_EQ(c.stamps_.size(), 600u);
    // All three made progress, in disjoint slices.
    EXPECT_GT(a.stamps_.size(), 0u);
    EXPECT_GT(b.stamps_.size(), 0u);
}

TEST(TimeSlicePolicy, RejectsThreadsOnDifferentCores)
{
    sim::MultiCoreHierarchy h(sim::MultiCoreConfig{.cores = 2});
    sim::MultiCorePort port(h);
    TimeSlice policy(quietSlices(10'000));
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    StampingProgram a(0x1000, 10), b(0x2000, 10);
    const ThreadSpec specs[] = {{&a, 0}, {&b, 1}};
    EXPECT_THROW(engine.run(specs, 1), std::invalid_argument);
}

TEST(LowestClock, RejectsDuplicateNest)
{
    LowestClock policy;
    policy.nest(0, std::make_unique<RoundRobinSmt>());
    EXPECT_THROW(policy.nest(0, std::make_unique<RoundRobinSmt>()),
                 std::logic_error);
}

TEST(LowestClock, SmtGroupSharesOneCoreOfMultiCore)
{
    // Two threads on core 0 (nested RoundRobinSmt) plus one on core 1:
    // the pair shares core 0's private L1, the third does not see it.
    sim::MultiCoreHierarchy h(sim::MultiCoreConfig{.cores = 2});
    sim::MultiCorePort port(h);
    LowestClock policy;
    policy.nest(0, std::make_unique<RoundRobinSmt>());
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    StampingProgram warm(0x40, 200);
    StampingProgram sibling(0x40, 100);
    StampingProgram other(0x40, 100);
    const ThreadSpec specs[] = {{&warm, 0}, {&sibling, 0}, {&other, 1}};
    engine.run(specs, /*primary=*/1);

    // The sibling hits core 0's L1 (warmed by thread 0); the core-1
    // thread misses its own private L1 first and is served by the
    // shared LLC after the first fill.
    const auto sib = h.l1(0).counters().forThread(1);
    EXPECT_GT(sib.accesses, 0u);
    EXPECT_LT(sib.missRate(), 0.1);
    const auto oth = h.l1(1).counters().forThread(2);
    EXPECT_GT(oth.accesses, 0u);
}

TEST(LowestClock, TimeSlicedCoresInterleaveOnSharedLlc)
{
    // TimeSlice nests per core: both cores make progress and their
    // kernel bursts land in per-core thread ids.
    sim::MultiCoreHierarchy h(sim::MultiCoreConfig{.cores = 2});
    sim::MultiCorePort port(h);

    TimeSlicePolicyConfig t0 = quietSlices(5'000);
    t0.kernel_noise_lines = 8;
    t0.kernel_thread = 1000;
    TimeSlicePolicyConfig t1 = quietSlices(5'000);
    t1.kernel_noise_lines = 8;
    t1.kernel_thread = 1002;

    LowestClock policy;
    policy.nest(0, std::make_unique<TimeSlice>(t0));
    policy.nest(1, std::make_unique<TimeSlice>(t1));
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    StampingProgram a(0x1000, 100'000);
    StampingProgram b(0x2000, 2'000);
    const ThreadSpec specs[] = {{&a, 0}, {&b, 1}};
    engine.run(specs, /*primary=*/1);

    EXPECT_EQ(b.stamps_.size(), 2'000u);
    EXPECT_GT(a.stamps_.size(), 0u);
    // Each core's kernel noise is attributed to its own thread id and
    // issued from its own core.
    EXPECT_GT(h.l1(0).counters().forThread(1000).accesses, 0u);
    EXPECT_GT(h.l1(1).counters().forThread(1002).accesses, 0u);
    EXPECT_EQ(h.l1(1).counters().forThread(1000).accesses, 0u);
}

TEST(LowestClock, DefaultLeavesMatchCoreOrder)
{
    // Without explicit nesting, each core gets a leaf and stepping is
    // globally lowest-clock: with identical programs the cores finish
    // within one op of each other.
    sim::MultiCoreHierarchy h(sim::MultiCoreConfig{.cores = 3});
    sim::MultiCorePort port(h);
    LowestClock policy;
    Engine engine(port, timing::Uarch::intelXeonE52690(), policy);

    StampingProgram a(0x1000, 500), b(0x1000, 500), c(0x1000, 500);
    const ThreadSpec specs[] = {{&a, 0}, {&b, 1}, {&c, 2}};
    engine.run(specs, /*primary=*/0);
    EXPECT_EQ(a.stamps_.size(), 500u);
    EXPECT_GE(b.stamps_.size(), 499u);
    EXPECT_GE(c.stamps_.size(), 499u);
}

TEST(Engine, DeterministicForSeed)
{
    auto run = [](std::uint64_t seed) {
        sim::CacheHierarchy h;
        sim::SingleCorePort port(h);
        RoundRobinSmt policy;
        EngineConfig ec;
        ec.seed = seed;
        Engine engine(port, timing::Uarch::intelXeonE52690(), policy, ec);
        StampingProgram a(0x1000, 5'000);
        StampingProgram b(0x2000, 1'000);
        return engine.run(a, b, 1);
    };
    EXPECT_EQ(run(3), run(3));
}

} // namespace
