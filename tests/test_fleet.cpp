/**
 * @file
 * Fleet mode: shard partitioning, the shared run-all renderer, the
 * shard-JSON merge and the content-addressed result cache.
 *
 * The load-bearing property is byte-stability: the union of any N
 * shards' `run-all --format=json` documents must be byte-identical to
 * the unsharded document, and a cache hit must reproduce the fresh
 * run's bytes exactly.  The suite proves both against the real
 * registry at smoke scale — one full catalog pass populates a cache,
 * and every shard sweep after it replays from the store, so testing
 * four different shard counts costs one run-all.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/result_cache.hpp"
#include "util/hash.hpp"

using namespace lruleak;
using namespace lruleak::core;

namespace {

// ---------------------------------------------------------------- shards

TEST(ShardSpec, ParsesWellFormedSpecs)
{
    const ShardSpec s = parseShardSpec("2/5");
    EXPECT_EQ(s.index, 2u);
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(parseShardSpec("0/1").count, 1u);
    EXPECT_EQ(parseShardSpec("63/64").index, 63u);
}

TEST(ShardSpec, RejectsMalformedSpecs)
{
    for (const char *bad : {"", "3", "/3", "1/", "a/3", "1/b", "1//3",
                            "1/3x", "-1/3", "3/3", "4/3", "0/0", "1/0"})
        EXPECT_THROW(parseShardSpec(bad), std::invalid_argument)
            << "accepted '" << bad << "'";
}

TEST(Shard, HashIsPinnedFnv1a)
{
    // shardOf must stay a pure, stable function of the name — pin the
    // underlying FNV-1a against its published test vectors so a switch
    // to an order- or platform-dependent hash (std::hash, list
    // position) fails loudly.
    EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(util::fnv1a64("foobar"), 0x85944171f73967e8ULL);
    EXPECT_EQ(shardOf("foobar", 3),
              static_cast<std::uint32_t>(0x85944171f73967e8ULL % 3));
}

TEST(Shard, EveryExperimentLandsInExactlyOneShard)
{
    for (const std::uint32_t n : {1u, 2u, 3u, 7u}) {
        for (const Experiment *e : Registry::instance().all()) {
            std::uint32_t homes = 0;
            for (std::uint32_t i = 0; i < n; ++i)
                homes += inShard(e->name(), ShardSpec{i, n}) ? 1 : 0;
            EXPECT_EQ(homes, 1u) << e->name() << " under /" << n;
        }
    }
}

TEST(Shard, AssignmentIgnoresTheRestOfTheCatalog)
{
    // The shard of a name is decided by the name alone; computing it
    // before/after/among other names changes nothing.
    const std::uint32_t solo = shardOf("leakage_matrix", 5);
    for (const Experiment *e : Registry::instance().all())
        (void)shardOf(e->name(), 5);
    EXPECT_EQ(shardOf("leakage_matrix", 5), solo);
}

// ----------------------------------------------------------------- merge

/** A renderer-shaped object ('{' .. '}\n' like JsonSink emits). */
std::string
fakeObject(const std::string &name)
{
    return "{\n  \"experiment\": \"" + name +
           "\",\n  \"results\": [\n    {\"kind\": \"note\", \"text\": "
           "\"b{r}ace \\\" soup\"}\n  ]\n}\n";
}

/** Assemble rendered objects exactly like the run-all JSON renderer. */
std::string
fakeDocument(const std::vector<std::string> &names)
{
    std::string doc = "[\n";
    bool first = true;
    for (const auto &n : names) {
        doc += (first ? "" : ",\n") + fakeObject(n);
        first = false;
    }
    return doc + "]\n";
}

TEST(Merge, UnionReassemblesInNameOrder)
{
    const std::string expected = fakeDocument({"alpha", "beta", "gamma"});
    EXPECT_EQ(mergeRunAllJson({fakeDocument({"beta"}),
                               fakeDocument({"gamma", "alpha"})}),
              expected);
    // Order of the documents themselves is irrelevant too.
    EXPECT_EQ(mergeRunAllJson({fakeDocument({"gamma", "alpha"}),
                               fakeDocument({"beta"})}),
              expected);
}

TEST(Merge, EmptyShardsAreHarmless)
{
    EXPECT_EQ(mergeRunAllJson({"[\n]\n", "[\n]\n"}), "[\n]\n");
    EXPECT_EQ(mergeRunAllJson({fakeDocument({"solo"}), "[\n]\n"}),
              fakeDocument({"solo"}));
}

TEST(Merge, RejectsDuplicatesAndMalformedDocuments)
{
    EXPECT_THROW(mergeRunAllJson({fakeDocument({"dup"}),
                                  fakeDocument({"dup"})}),
                 std::invalid_argument);
    for (const char *bad :
         {"not json", "[\n{\n  \"experiment\": \"x\"\n}\n", // unterminated
          "[\n{\n  \"name\": \"x\"\n}\n]\n",                // no field
          "[\n]\ntrailing", "[\n42\n]\n"})
        EXPECT_THROW(mergeRunAllJson({bad}), std::invalid_argument)
            << "accepted: " << bad;
}

// ------------------------------------------------ cache keys and store

TEST(ResultCache, KeyChangesWithEveryTupleField)
{
    const ResultCache cache("unused-dir", "hashA");
    const std::map<std::string, std::string> params{{"seed", "1"},
                                                    {"trials", "2"}};
    const std::string base = cache.keyFor("exp", params, "json");

    EXPECT_EQ(cache.keyFor("exp", params, "json"), base); // stable
    EXPECT_NE(cache.keyFor("exp2", params, "json"), base);
    EXPECT_NE(cache.keyFor("exp", params, "table"), base);
    EXPECT_NE(cache.keyFor("exp", {{"seed", "2"}, {"trials", "2"}},
                           "json"),
              base);
    EXPECT_NE(cache.keyFor("exp", {{"seed", "1"}}, "json"), base);
    const ResultCache rebuilt("unused-dir", "hashB");
    EXPECT_NE(rebuilt.keyFor("exp", params, "json"), base);
}

TEST(ResultCache, KeySerializationIsUnambiguous)
{
    // Length-prefixing: a value containing what looks like the next
    // field must not alias it.
    const ResultCache cache("unused-dir", "h");
    EXPECT_NE(cache.keyFor("exp", {{"a", "1"}, {"b", "2"}}, "json"),
              cache.keyFor("exp", {{"a", "1b2"}}, "json"));
    EXPECT_NE(cache.keyFor("expjson", {}, ""),
              cache.keyFor("exp", {}, "json"));
}

TEST(ResultCache, StoreFetchRoundTripsArbitraryBytes)
{
    const std::string dir =
        (std::filesystem::path(testing::TempDir()) / "lruleak-cache-rt")
            .string();
    std::filesystem::remove_all(dir);
    const ResultCache cache(dir, "h");
    const std::string key = cache.keyFor("exp", {}, "json");

    EXPECT_FALSE(cache.fetch(key).has_value()); // cold
    std::string artifact = "line1\nline2\r\n";
    artifact += '\0';
    artifact += "\xff tail";
    ASSERT_TRUE(cache.store(key, artifact));
    const auto fetched = cache.fetch(key);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, artifact); // byte-identical, embedded NUL kept
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, ResolveCacheDirPrecedence)
{
    ASSERT_EQ(unsetenv("LRULEAK_CACHE"), 0);
    EXPECT_EQ(resolveCacheDir("flag"), "flag");
    EXPECT_EQ(resolveCacheDir(""), "");
    ASSERT_EQ(setenv("LRULEAK_CACHE", "/from/env", 1), 0);
    EXPECT_EQ(resolveCacheDir(""), "/from/env");
    EXPECT_EQ(resolveCacheDir("flag"), "flag"); // flag wins
    ASSERT_EQ(unsetenv("LRULEAK_CACHE"), 0);
}

// --------------------------- the real catalog, sharded and cached

/**
 * One unsharded smoke-scale pass over the real registry (populating a
 * cache), then shard sweeps for several N replaying from that cache.
 * Everything downstream compares against `all`.
 */
class FleetCatalogTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cache_dir_ = (std::filesystem::path(testing::TempDir()) /
                      "lruleak-fleet-cache")
                         .string();
        std::filesystem::remove_all(cache_dir_);
        cache_ = new ResultCache(cache_dir_, "fleet-test-binary");

        RunAllOptions options;
        options.format = OutputFormat::Json;
        options.smoke = true;
        options.cache = cache_;
        std::ostringstream out, err;
        outcome_ = runAllCatalog(options, out, err);
        all_ = out.str();
        errors_ = err.str();
    }

    static void
    TearDownTestSuite()
    {
        delete cache_;
        cache_ = nullptr;
        std::filesystem::remove_all(cache_dir_);
    }

    static RunAllOptions
    shardOptions(std::uint32_t i, std::uint32_t n)
    {
        RunAllOptions options;
        options.format = OutputFormat::Json;
        options.smoke = true;
        options.shard = ShardSpec{i, n};
        options.cache = cache_;
        return options;
    }

    static std::string cache_dir_;
    static ResultCache *cache_;
    static RunAllOutcome outcome_;
    static std::string all_;
    static std::string errors_;
};

std::string FleetCatalogTest::cache_dir_;
ResultCache *FleetCatalogTest::cache_ = nullptr;
RunAllOutcome FleetCatalogTest::outcome_;
std::string FleetCatalogTest::all_;
std::string FleetCatalogTest::errors_;

TEST_F(FleetCatalogTest, UnshardedPassRanEverythingCold)
{
    EXPECT_EQ(errors_, "");
    EXPECT_EQ(outcome_.failures, 0u);
    EXPECT_EQ(outcome_.skipped, 0u);
    EXPECT_EQ(outcome_.ran, Registry::instance().size());
    EXPECT_EQ(outcome_.cache.misses, Registry::instance().size());
    EXPECT_EQ(outcome_.cache.hits, 0u);
    EXPECT_EQ(outcome_.cache.skips, 0u);
}

TEST_F(FleetCatalogTest, ShardUnionIsByteIdenticalForManyCounts)
{
    const std::uint64_t catalog = Registry::instance().size();
    // 64 > catalog size: some shards must come out empty and still
    // merge cleanly.
    ASSERT_GT(64u, catalog);
    for (const std::uint32_t n : {2u, 3u, 5u, 64u}) {
        std::vector<std::string> documents;
        std::uint64_t ran = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::ostringstream out, err;
            const auto outcome =
                runAllCatalog(shardOptions(i, n), out, err);
            EXPECT_EQ(err.str(), "");
            EXPECT_EQ(outcome.failures, 0u);
            EXPECT_EQ(outcome.ran + outcome.skipped, catalog);
            // Warm cache: the shard replays, it never re-executes.
            EXPECT_EQ(outcome.cache.hits, outcome.ran);
            EXPECT_EQ(outcome.cache.misses, 0u);
            ran += outcome.ran;
            documents.push_back(out.str());
        }
        EXPECT_EQ(ran, catalog) << "N=" << n;
        EXPECT_EQ(mergeRunAllJson(documents), all_) << "N=" << n;
    }
}

TEST_F(FleetCatalogTest, WarmCacheRerunIsByteIdenticalWithZeroExecutions)
{
    RunAllOptions options;
    options.format = OutputFormat::Json;
    options.smoke = true;
    options.cache = cache_;
    std::ostringstream out, err;
    const auto outcome = runAllCatalog(options, out, err);
    EXPECT_EQ(out.str(), all_);
    EXPECT_EQ(outcome.cache.hits, Registry::instance().size());
    EXPECT_EQ(outcome.cache.misses, 0u);
    EXPECT_EQ(runAllSummary(options, outcome),
              "run-all: ran " +
                  std::to_string(Registry::instance().size()) +
                  ", skipped 0; cache: " +
                  std::to_string(Registry::instance().size()) +
                  " hit, 0 miss, 0 skip");
}

TEST_F(FleetCatalogTest, RebuiltBinaryMissesEveryEntry)
{
    // Same store, different binary hash: nothing may be served.
    const ResultCache rebuilt(cache_dir_, "another-binary");
    const Experiment *e = Registry::instance().all().front();
    const ParamMap resolved = resolveParams(e->params(), e->smokeParams());
    EXPECT_TRUE(cache_
                    ->fetch(cache_->keyFor(e->name(), resolved.values(),
                                           "json"))
                    .has_value());
    EXPECT_FALSE(rebuilt
                     .fetch(rebuilt.keyFor(e->name(), resolved.values(),
                                           "json"))
                     .has_value());
}

TEST_F(FleetCatalogTest, ParamAndSeedChangesMiss)
{
    const Experiment *e = Registry::instance().find("trace_replay");
    ASSERT_NE(e, nullptr);
    auto smoke = e->smokeParams();
    const std::string hot_key = cache_->keyFor(
        e->name(), resolveParams(e->params(), smoke).values(), "json");
    EXPECT_TRUE(cache_->fetch(hot_key).has_value());

    auto reseeded = smoke;
    reseeded["seed"] = "987654";
    EXPECT_FALSE(
        cache_
            ->fetch(cache_->keyFor(
                e->name(),
                resolveParams(e->params(), reseeded).values(), "json"))
            .has_value());

    auto retuned = smoke;
    retuned["accesses"] = "4321";
    EXPECT_FALSE(
        cache_
            ->fetch(cache_->keyFor(
                e->name(),
                resolveParams(e->params(), retuned).values(), "json"))
            .has_value());
}

TEST_F(FleetCatalogTest, CacheHitMatchesAFreshRender)
{
    // Serve one experiment from the store and re-render it live; the
    // bytes must agree (the stored artifact IS the rendering).
    const Experiment *e = Registry::instance().all().front();
    const auto smoke = e->smokeParams();
    const auto cached = cache_->fetch(cache_->keyFor(
        e->name(), resolveParams(e->params(), smoke).values(), "json"));
    ASSERT_TRUE(cached.has_value());

    std::ostringstream os;
    const auto sink = makeSink(OutputFormat::Json, os);
    runExperiment(*e, smoke, *sink);
    EXPECT_EQ(*cached, os.str());
}

} // namespace
