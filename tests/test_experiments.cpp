/**
 * @file
 * Tests for the experiment runners: Table I shapes, Fig. 3/13
 * separability, Table V ordering, Table VI contrasts, Fig. 9 deltas.
 */

#include <gtest/gtest.h>

#include "core/experiments.hpp"

using namespace lruleak;
using namespace lruleak::core;

namespace {

EvictionStudyConfig
quickStudy()
{
    EvictionStudyConfig cfg;
    cfg.trials = 3000;
    return cfg;
}

} // namespace

TEST(TableI, TrueLruAlwaysEvicts)
{
    for (auto init : {InitCondition::Random, InitCondition::Sequential}) {
        for (auto seq : {AccessSequence::Seq1, AccessSequence::Seq2}) {
            const auto probs = evictionProbabilities(
                sim::ReplPolicyKind::TrueLru, init, seq, quickStudy());
            for (double p : probs)
                EXPECT_DOUBLE_EQ(p, 1.0);
        }
    }
}

TEST(TableI, TreePlruRandomSeq1ConvergesToCertainEviction)
{
    // Paper row: 50.4% -> 82.8% -> 99.2% -> 100%.
    const auto probs = evictionProbabilities(
        sim::ReplPolicyKind::TreePlru, InitCondition::Random,
        AccessSequence::Seq1, quickStudy());
    EXPECT_NEAR(probs[0], 0.52, 0.10);
    EXPECT_NEAR(probs[1], 0.83, 0.10);
    EXPECT_GT(probs[2], 0.95);
    EXPECT_DOUBLE_EQ(probs[7], 1.0);
}

TEST(TableI, TreePlruSeq2PlateausAroundSixtyPercent)
{
    // Paper: ~62% regardless of iteration count.
    const auto probs = evictionProbabilities(
        sim::ReplPolicyKind::TreePlru, InitCondition::Random,
        AccessSequence::Seq2, quickStudy());
    EXPECT_NEAR(probs[7], 0.60, 0.12);
    EXPECT_LT(probs[7], 0.8) << "Seq 2 must NOT converge to certainty";
}

TEST(TableI, BitPlruSequentialInitIsReliable)
{
    // Paper: Seq 1 -> 100%, Seq 2 -> ~99%.
    const auto seq1 = evictionProbabilities(
        sim::ReplPolicyKind::BitPlru, InitCondition::Sequential,
        AccessSequence::Seq1, quickStudy());
    EXPECT_GT(seq1[7], 0.99);
    const auto seq2 = evictionProbabilities(
        sim::ReplPolicyKind::BitPlru, InitCondition::Sequential,
        AccessSequence::Seq2, quickStudy());
    EXPECT_GT(seq2[7], 0.95);
}

TEST(TableI, SequentialInitBeatsRandomInit)
{
    // The receiver-design takeaway of Section IV-C.
    const auto cfg = quickStudy();
    for (auto policy : {sim::ReplPolicyKind::TreePlru,
                        sim::ReplPolicyKind::BitPlru}) {
        const auto seq = evictionProbabilities(
            policy, InitCondition::Sequential, AccessSequence::Seq1, cfg);
        const auto rnd = evictionProbabilities(
            policy, InitCondition::Random, AccessSequence::Seq1, cfg);
        EXPECT_GE(seq[7] + 1e-9, rnd[7]) << sim::replPolicyName(policy);
    }
}

TEST(Fig3, ChaseSeparatesOnIntel)
{
    const auto h = pointerChaseHistograms(
        timing::Uarch::intelXeonE52690(), 10'000, 3);
    EXPECT_LT(overlapCoefficient(h.hit, h.miss), 0.05);
    EXPECT_LT(h.hit.mean(), h.miss.mean());
}

TEST(Fig13, SingleAccessOverlapsCompletely)
{
    const auto h = singleAccessHistograms(
        timing::Uarch::intelXeonE52690(), 10'000, 3);
    EXPECT_GT(overlapCoefficient(h.hit, h.miss), 0.85);
}

TEST(TableV, EncodeLatencyOrdering)
{
    // F+R (mem) >> F+R (L1) > LRU; LRU Alg 1 == Alg 2 (both L1 hits).
    const auto u = timing::Uarch::intelXeonE52690();
    const double fr_mem = meanEncodeLatency(u, ChannelKind::FrMem);
    const double fr_l1 = meanEncodeLatency(u, ChannelKind::FrL1);
    const double lru1 = meanEncodeLatency(u, ChannelKind::LruAlg1);
    const double lru2 = meanEncodeLatency(u, ChannelKind::LruAlg2);
    EXPECT_GT(fr_mem, 5 * fr_l1);
    EXPECT_GT(fr_l1, lru1);
    EXPECT_NEAR(lru1, lru2, 1.0);
    // Paper Table V, E5-2690 row: 336 / 35 / 31.
    EXPECT_NEAR(fr_mem, 336.0, 40.0);
    EXPECT_NEAR(lru1, 31.0, 4.0);
}

TEST(TableV, AmdEncodeCostsMore)
{
    const double intel = meanEncodeLatency(
        timing::Uarch::intelXeonE52690(), ChannelKind::LruAlg1);
    const double amd = meanEncodeLatency(
        timing::Uarch::amdEpyc7571(), ChannelKind::LruAlg1);
    EXPECT_GT(amd, intel);
}

TEST(TableVI, SixScenariosReported)
{
    const auto rows = senderMissRates(timing::Uarch::intelXeonE52690());
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].scenario, "F+R (mem)");
    EXPECT_EQ(rows[4].scenario, "sender & gcc");
    EXPECT_EQ(rows[5].scenario, "sender only");
}

TEST(TableVI, LruSenderStealthierThanFlushReload)
{
    const auto rows = senderMissRates(timing::Uarch::intelXeonE52690());
    const double fr_mem = rows[0].l1.missRate();
    const double lru1 = rows[2].l1.missRate();
    const double lru2 = rows[3].l1.missRate();
    EXPECT_GT(fr_mem, 5 * lru1);
    EXPECT_GT(fr_mem, 5 * lru2);
    // And the sender-only baseline is the quietest of all.
    EXPECT_LE(rows[5].l1.missRate(), lru1 + 1e-9);
}

TEST(Fig9, MissRatesDifferAcrossPoliciesButCpiBarely)
{
    const std::vector<sim::ReplPolicyKind> policies{
        sim::ReplPolicyKind::TreePlru, sim::ReplPolicyKind::Fifo,
        sim::ReplPolicyKind::Random};
    const auto rows = replacementPerformance(policies, 150'000, 9);
    ASSERT_EQ(rows.size(), 10u * 3u);

    for (std::size_t w = 0; w < 10; ++w) {
        const auto &plru = rows[w * 3 + 0];
        for (std::size_t p = 1; p < 3; ++p) {
            const auto &alt = rows[w * 3 + p];
            EXPECT_EQ(alt.workload, plru.workload);
            // Normalized CPI within a few percent (paper: < 2%; our
            // in-order core overweights misses, so allow a bit more).
            EXPECT_LT(std::abs(alt.cpi - plru.cpi) / plru.cpi, 0.08)
                << plru.workload << " " << alt.policy;
        }
    }
}

TEST(Fig11, PlAttackTraceShapes)
{
    const auto original = plCacheAttack(sim::PlMode::Original);
    EXPECT_FALSE(original.constant);
    EXPECT_FALSE(original.samples.empty());
    EXPECT_EQ(original.sent.size(), 24u);

    const auto fixed = plCacheAttack(sim::PlMode::FixedLruLock);
    EXPECT_TRUE(fixed.constant);
}

TEST(ChannelKindNames, AllDistinct)
{
    EXPECT_EQ(channelKindName(ChannelKind::FrMem), "F+R (mem)");
    EXPECT_EQ(channelKindName(ChannelKind::FrL1), "F+R (L1)");
    EXPECT_EQ(channelKindName(ChannelKind::LruAlg1), "L1 LRU Alg.1");
    EXPECT_EQ(channelKindName(ChannelKind::LruAlg2), "L1 LRU Alg.2");
}
