/**
 * @file
 * Tests for the Spectre-v1 victim's address map and gadget transform.
 */

#include <gtest/gtest.h>

#include "sim/cache_config.hpp"
#include "spectre/victim.hpp"

using namespace lruleak;
using namespace lruleak::spectre;

TEST(Victim, InBoundsReadsReturnIndex)
{
    SpectreVictim v("secret");
    for (std::uint64_t i = 0; i < SpectreVictim::kArray1Size; ++i)
        EXPECT_EQ(v.readByte(SpectreVictim::kArray1 + i),
                  static_cast<std::uint8_t>(i));
}

TEST(Victim, MaliciousXReachesSecret)
{
    SpectreVictim v("KEY");
    EXPECT_EQ(v.readByte(SpectreVictim::kArray1 +
                         SpectreVictim::maliciousX(0)), 'K');
    EXPECT_EQ(v.readByte(SpectreVictim::kArray1 +
                         SpectreVictim::maliciousX(2)), 'Y');
}

TEST(Victim, OutOfRangeReadsZero)
{
    SpectreVictim v("KEY");
    EXPECT_EQ(v.readByte(SpectreVictim::kArray1 +
                         SpectreVictim::maliciousX(10)), 0);
    EXPECT_EQ(v.readByte(0xdead'0000), 0);
}

TEST(Victim, GadgetIndexSplitsByte)
{
    EXPECT_EQ(SpectreVictim::gadgetIndex(0xff, GadgetPart::LowSixBits),
              0x3f);
    EXPECT_EQ(SpectreVictim::gadgetIndex(0xff, GadgetPart::HighTwoBits), 3);
    EXPECT_EQ(SpectreVictim::gadgetIndex('A', GadgetPart::LowSixBits),
              'A' & 0x3f);
    EXPECT_EQ(SpectreVictim::gadgetIndex('A', GadgetPart::HighTwoBits), 1);
}

TEST(Victim, ByteReassemblesFromParts)
{
    for (int c = 0; c < 256; ++c) {
        const auto byte = static_cast<std::uint8_t>(c);
        const auto low = SpectreVictim::gadgetIndex(byte,
                                                    GadgetPart::LowSixBits);
        const auto high = SpectreVictim::gadgetIndex(
            byte, GadgetPart::HighTwoBits);
        EXPECT_EQ(static_cast<std::uint8_t>((high << 6) | low), byte);
    }
}

TEST(Victim, Array2LinesAvoidSetZero)
{
    // Set 0 is reserved for the attacker's chase chain; the array2 base
    // is offset so symbol v maps to set (v + 1) mod 64.
    const sim::AddressLayout layout(64, 64);
    for (int v = 0; v < 63; ++v)
        EXPECT_EQ(layout.setIndex(SpectreVictim::array2Line(
                      static_cast<std::uint8_t>(v))),
                  (static_cast<std::uint32_t>(v) + 1) % 64);
}

TEST(Victim, Array2LinesAreLineAligned)
{
    for (int v = 0; v < 64; ++v)
        EXPECT_EQ(SpectreVictim::array2Line(
                      static_cast<std::uint8_t>(v)) % 64, 0u);
}

TEST(Victim, SecretAccessors)
{
    SpectreVictim v("hello");
    EXPECT_EQ(v.secret(), "hello");
    EXPECT_EQ(v.secretLength(), 5u);
}
