/**
 * @file
 * Tests for the PL-cache facade and the end-to-end Fig. 11 property:
 * the original design leaks through the LRU state, the fixed design
 * does not.
 */

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "sim/plcache.hpp"

using namespace lruleak;
using namespace lruleak::sim;

TEST(PlCache, LockPinsLine)
{
    PlCache pl(PlMode::Original);
    const auto line = MemRef::load(0x40);
    pl.lock(line);
    EXPECT_TRUE(pl.isLocked(line));
    // Heavy same-set pressure cannot evict it.
    const auto &layout = pl.hierarchy().l1().layout();
    const auto set = layout.setIndex(line.vaddr);
    for (std::uint32_t i = 0; i < 64; ++i)
        pl.access(MemRef::load(lineInSet(layout, set, i + 1)));
    EXPECT_TRUE(pl.hierarchy().inL1(line));
}

TEST(PlCache, UnlockMakesLineEvictable)
{
    PlCache pl(PlMode::Original);
    const auto line = MemRef::load(0x40);
    pl.lock(line);
    pl.unlock(line);
    EXPECT_FALSE(pl.isLocked(line));
    const auto &layout = pl.hierarchy().l1().layout();
    const auto set = layout.setIndex(line.vaddr);
    for (std::uint32_t i = 0; i < 64; ++i)
        pl.access(MemRef::load(lineInSet(layout, set, i + 1)));
    EXPECT_FALSE(pl.hierarchy().inL1(line));
}

TEST(PlCache, ModeIsReported)
{
    EXPECT_EQ(PlCache(PlMode::Original).mode(), PlMode::Original);
    EXPECT_EQ(PlCache(PlMode::FixedLruLock).mode(), PlMode::FixedLruLock);
}

TEST(PlCache, IsLockedFalseForAbsentLine)
{
    PlCache pl(PlMode::Original);
    EXPECT_FALSE(pl.isLocked(MemRef::load(0x4000)));
}

/**
 * The set-level leak of Section IX-B: with the original PL cache, a
 * sender touching its locked line changes which receiver line gets
 * evicted; with the fix it cannot.
 */
TEST(PlCache, OriginalLeaksThroughLruStateFixedDoesNot)
{
    for (PlMode mode : {PlMode::Original, PlMode::FixedLruLock}) {
        // Two hierarchies, identical histories except the sender's
        // locked-line touch.
        PlCache with_touch(mode), without_touch(mode);
        const auto &layout = with_touch.hierarchy().l1().layout();
        const std::uint32_t set = 11;
        const auto locked = MemRef::load(lineInSet(layout, set, 100), 0);

        auto prepare = [&](PlCache &pl) {
            pl.lock(locked);
            for (std::uint32_t i = 0; i < 8; ++i)
                pl.access(MemRef::load(lineInSet(layout, set, i), 1));
        };
        prepare(with_touch);
        prepare(without_touch);

        with_touch.access(locked); // the sender's encode touch

        // Drive one replacement in each and compare which line died.
        const auto filler = MemRef::load(lineInSet(layout, set, 200), 1);
        with_touch.access(filler);
        without_touch.access(filler);

        int diff = 0;
        for (std::uint32_t i = 0; i < 8; ++i) {
            const auto probe = MemRef::load(lineInSet(layout, set, i), 1);
            diff += with_touch.hierarchy().inL1(probe) !=
                            without_touch.hierarchy().inL1(probe)
                        ? 1
                        : 0;
        }
        if (mode == PlMode::Original)
            EXPECT_GT(diff, 0) << "original PL cache must leak";
        else
            EXPECT_EQ(diff, 0) << "fixed PL cache must not leak";
    }
}

/** End-to-end Fig. 11: original shows the secret, fixed is constant. */
TEST(PlCacheAttack, OriginalLeaksFixedConstant)
{
    const auto original = core::plCacheAttack(PlMode::Original);
    const auto fixed = core::plCacheAttack(PlMode::FixedLruLock);

    // Fixed design: every observation identical -> zero information.
    EXPECT_TRUE(fixed.constant);

    // Original design: the receiver's observations vary with the bits.
    EXPECT_FALSE(original.constant);
    // And decode recognisably better than chance.
    EXPECT_LT(original.error_rate, 0.45);
}
