/**
 * @file
 * Tests for bit-string helpers.
 */

#include <gtest/gtest.h>

#include "channel/bitstring.hpp"

using namespace lruleak::channel;

TEST(Bitstring, RandomBitsDeterministic)
{
    EXPECT_EQ(randomBits(128, 1), randomBits(128, 1));
    EXPECT_NE(randomBits(128, 1), randomBits(128, 2));
}

TEST(Bitstring, RandomBitsBalanced)
{
    const auto bits = randomBits(10'000, 3);
    EXPECT_NEAR(fractionOnes(bits), 0.5, 0.03);
}

TEST(Bitstring, Alternating)
{
    EXPECT_EQ(bitsToString(alternatingBits(6)), "010101");
    EXPECT_EQ(bitsToString(alternatingBits(6, 1)), "101010");
}

TEST(Bitstring, RepeatBits)
{
    const Bits unit{1, 0, 1};
    EXPECT_EQ(bitsToString(repeatBits(unit, 3)), "101101101");
    EXPECT_TRUE(repeatBits({}, 5).empty());
}

TEST(Bitstring, TextRoundTrip)
{
    const std::string msg = "Hello, LRU!";
    EXPECT_EQ(bitsToText(textToBits(msg)), msg);
}

TEST(Bitstring, TextToBitsMsbFirst)
{
    // 'A' = 0x41 = 01000001.
    EXPECT_EQ(bitsToString(textToBits("A")), "01000001");
}

TEST(Bitstring, BitsToTextTruncatesPartialByte)
{
    Bits bits = textToBits("AB");
    bits.pop_back();
    EXPECT_EQ(bitsToText(bits), "A");
}

TEST(Bitstring, FractionOnesEdgeCases)
{
    EXPECT_DOUBLE_EQ(fractionOnes({}), 0.0);
    EXPECT_DOUBLE_EQ(fractionOnes({1, 1, 1}), 1.0);
    EXPECT_DOUBLE_EQ(fractionOnes({0, 1}), 0.5);
}
