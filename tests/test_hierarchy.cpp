/**
 * @file
 * Tests for the three-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/hierarchy.hpp"

using namespace lruleak::sim;

TEST(Hierarchy, ColdAccessGoesToMemoryAndFillsAllLevels)
{
    CacheHierarchy h;
    const auto ref = MemRef::load(0x1000);
    EXPECT_EQ(h.access(ref).level, HitLevel::Memory);
    EXPECT_TRUE(h.l1().contains(ref));
    EXPECT_TRUE(h.l2().contains(ref));
    EXPECT_TRUE(h.llc().contains(ref));
    EXPECT_EQ(h.access(ref).level, HitLevel::L1);
}

TEST(Hierarchy, L1EvictionFallsBackToL2)
{
    CacheHierarchy h;
    const AddressLayout &layout = h.l1().layout();
    const auto victim = MemRef::load(lineInSet(layout, 9, 0));
    h.access(victim);
    // Evict it from L1 with 8 more same-set lines.
    for (std::uint32_t i = 1; i <= 8; ++i)
        h.access(MemRef::load(lineInSet(layout, 9, i)));
    EXPECT_FALSE(h.inL1(victim));
    EXPECT_EQ(h.access(victim).level, HitLevel::L2);
}

TEST(Hierarchy, FlushRemovesFromEveryLevel)
{
    CacheHierarchy h;
    const auto ref = MemRef::load(0x2000);
    h.access(ref);
    h.flush(ref);
    EXPECT_FALSE(h.inAnyLevel(ref));
    EXPECT_EQ(h.access(ref).level, HitLevel::Memory);
}

TEST(Hierarchy, PeekLevelDoesNotMutate)
{
    CacheHierarchy h;
    const auto ref = MemRef::load(0x3000);
    EXPECT_EQ(h.peekLevel(ref), HitLevel::Memory);
    EXPECT_FALSE(h.inAnyLevel(ref)); // peek must not install
    h.access(ref);
    EXPECT_EQ(h.peekLevel(ref), HitLevel::L1);
    const auto l1_before = h.l1().counters().total().accesses;
    h.peekLevel(ref);
    EXPECT_EQ(h.l1().counters().total().accesses, l1_before);
}

TEST(Hierarchy, LowerLevelCountersTickOnlyOnMiss)
{
    // Matches hardware perf events: L2 accesses == L1 misses.
    CacheHierarchy h;
    const auto ref = MemRef::load(0x4000, 2);
    h.access(ref); // miss everywhere
    h.access(ref); // L1 hit
    h.access(ref); // L1 hit
    EXPECT_EQ(h.l1().counters().forThread(2).accesses, 3u);
    EXPECT_EQ(h.l1().counters().forThread(2).misses, 1u);
    EXPECT_EQ(h.l2().counters().forThread(2).accesses, 1u);
    EXPECT_EQ(h.llc().counters().forThread(2).accesses, 1u);
}

TEST(Hierarchy, ResetCountersKeepsContents)
{
    CacheHierarchy h;
    const auto ref = MemRef::load(0x5000);
    h.access(ref);
    h.resetCounters();
    EXPECT_TRUE(h.inL1(ref));
    EXPECT_EQ(h.l1().counters().total().accesses, 0u);
}

TEST(Hierarchy, WayPredictorMismatchChargesL2Latency)
{
    HierarchyConfig cfg;
    cfg.l1_way_predictor = true;
    CacheHierarchy h(cfg);
    const Addr paddr = 0x0040;
    h.access(MemRef{0x7000'0040, paddr, 0, false});
    const auto res = h.access(MemRef{0x9000'0040, paddr, 1, false});
    EXPECT_TRUE(res.l1_utag_mismatch);
    EXPECT_EQ(res.level, HitLevel::L2);
    // No architectural L2 access happens for a predictor mishap.
    EXPECT_EQ(h.l2().counters().forThread(1).accesses, 0u);
}

TEST(Hierarchy, PrefetcherPullsStridedLines)
{
    HierarchyConfig cfg;
    cfg.enable_prefetcher = true;
    CacheHierarchy h(cfg);
    // Walk a steady stride; after training, upcoming lines are in L1.
    const Addr base = 0x10'0000;
    for (int i = 0; i < 8; ++i)
        h.access(MemRef::load(base + static_cast<Addr>(i) * 64));
    EXPECT_TRUE(h.inL1(MemRef::load(base + 9 * 64)));
}

TEST(Hierarchy, NoPrefetchWhenDisabled)
{
    CacheHierarchy h;
    const Addr base = 0x10'0000;
    for (int i = 0; i < 8; ++i)
        h.access(MemRef::load(base + static_cast<Addr>(i) * 64));
    EXPECT_FALSE(h.inL1(MemRef::load(base + 9 * 64)));
}

TEST(Hierarchy, PlBypassDoesNotFillL1)
{
    HierarchyConfig cfg;
    cfg.l1_pl_mode = PlMode::Original;
    CacheHierarchy h(cfg);
    const AddressLayout &layout = h.l1().layout();
    // Lock the whole set.
    for (std::uint32_t i = 0; i < 8; ++i)
        h.access(MemRef::load(lineInSet(layout, 2, i)), LockReq::Lock);
    const auto ref = MemRef::load(lineInSet(layout, 2, 20));
    const auto res = h.access(ref);
    EXPECT_TRUE(res.l1_bypassed);
    EXPECT_FALSE(h.inL1(ref));
    // The data still came from somewhere below L1.
    EXPECT_NE(res.level, HitLevel::L1);
    // And is served from L2 next time (still bypassing L1).
    EXPECT_EQ(h.access(ref).level, HitLevel::L2);
}

TEST(Hierarchy, GeometryMatchesTestedCpus)
{
    CacheHierarchy h;
    EXPECT_EQ(h.l1().config().size_bytes, 32u * 1024);
    EXPECT_EQ(h.l1().config().ways, 8u);
    EXPECT_EQ(h.l1().numSets(), 64u);
}
