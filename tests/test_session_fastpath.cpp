/**
 * @file
 * The Session per-bit fast path must never change results:
 *
 *  - the calibration memo returns byte-identical Calibrations to a
 *    fresh derivation for every uarch x channel x carrier (a fresh
 *    derivation is obtained on a new thread — the memo is
 *    thread_local), and keys on the numeric formula inputs, not the
 *    uarch's name;
 *  - the thread-local topology pool makes a reused (reset) hierarchy
 *    indistinguishable from a freshly constructed one, for both the
 *    single-core and the multi-core topology;
 *  - batch_walks (AccessRun walk batching) preserves the decoded
 *    transmission of every LRU channel.
 */

#include <gtest/gtest.h>

#include <thread>

#include "channel/calibration.hpp"
#include "channel/session.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

bool
sameCalibration(const Calibration &a, const Calibration &b)
{
    return a.threshold == b.threshold && a.invert == b.invert &&
           a.fast == b.fast && a.slow == b.slow;
}

/** Derive on a brand-new thread: its thread_local memo starts empty, so
 *  the first call is a guaranteed fresh derivation. */
Calibration
deriveFresh(const timing::Uarch &uarch, ChannelId id, Carrier carrier,
            std::uint32_t ways, std::uint32_t chain_len)
{
    Calibration out;
    std::thread worker([&] {
        out = calibrationFor(uarch, id, carrier, ways, chain_len);
    });
    worker.join();
    return out;
}

TEST(CalibrationMemo, CachedMatchesFreshForEveryUarchChannelCarrier)
{
    const timing::Uarch uarchs[] = {timing::Uarch::intelXeonE52690(),
                                    timing::Uarch::intelXeonE31245v5(),
                                    timing::Uarch::amdEpyc7571()};
    for (const timing::Uarch &uarch : uarchs) {
        for (ChannelId id : allChannelIds()) {
            for (Carrier carrier : {Carrier::L1, Carrier::Llc}) {
                for (std::uint32_t ways : {8u, 16u}) {
                    // First call derives and memoizes; the repeat is a
                    // memo hit.
                    const Calibration first =
                        calibrationFor(uarch, id, carrier, ways, 7);
                    const Calibration cached =
                        calibrationFor(uarch, id, carrier, ways, 7);
                    const Calibration fresh =
                        deriveFresh(uarch, id, carrier, ways, 7);
                    EXPECT_TRUE(sameCalibration(first, cached))
                        << uarch.name << " " << channelIdToken(id);
                    EXPECT_TRUE(sameCalibration(cached, fresh))
                        << uarch.name << " " << channelIdToken(id);
                }
            }
        }
    }
}

TEST(CalibrationMemo, KeysOnTimingNotOnName)
{
    // Two models sharing a name but differing in a formula input must
    // not alias in the memo (tests build modified uarchs all the time).
    const timing::Uarch base = timing::Uarch::intelXeonE52690();
    timing::Uarch slow_llc = base;
    slow_llc.llc_latency += 60;

    const Calibration a = calibrationFor(base, ChannelId::XCoreLruAlg2,
                                         Carrier::Llc, 16, 7);
    const Calibration b = calibrationFor(slow_llc, ChannelId::XCoreLruAlg2,
                                         Carrier::Llc, 16, 7);
    EXPECT_NE(a.threshold, b.threshold);

    // And the original's entry must have survived unchanged.
    const Calibration a2 = calibrationFor(base, ChannelId::XCoreLruAlg2,
                                          Carrier::Llc, 16, 7);
    EXPECT_TRUE(sameCalibration(a, a2));
}

// --------------------------------------------------------- topology pool

void
expectSameSession(const SessionResult &a, const SessionResult &b)
{
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.error_rate, b.error_rate);
    EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
    EXPECT_EQ(a.threshold, b.threshold);
    EXPECT_EQ(a.sender_start, b.sender_start);
    EXPECT_EQ(a.back_invalidations, b.back_invalidations);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].tsc, b.samples[i].tsc) << i;
        EXPECT_EQ(a.samples[i].latency, b.samples[i].latency) << i;
        EXPECT_EQ(a.samples[i].level, b.samples[i].level) << i;
    }
    EXPECT_EQ(a.sender_l1.accesses, b.sender_l1.accesses);
    EXPECT_EQ(a.sender_l1.misses, b.sender_l1.misses);
    EXPECT_EQ(a.receiver_l1.accesses, b.receiver_l1.accesses);
    EXPECT_EQ(a.receiver_l1.misses, b.receiver_l1.misses);
    EXPECT_EQ(a.sender_stats.accesses, b.sender_stats.accesses);
    EXPECT_EQ(a.receiver_stats.accesses, b.receiver_stats.accesses);
    EXPECT_EQ(a.sender_stats.busy_cycles, b.sender_stats.busy_cycles);
    EXPECT_EQ(a.receiver_stats.busy_cycles, b.receiver_stats.busy_cycles);
}

SessionConfig
smtConfig()
{
    SessionConfig config;
    config.channel = ChannelId::LruAlg1;
    config.mode = SharingMode::HyperThreaded;
    config.message = Bits{1, 0, 1, 1, 0, 0, 1, 0};
    config.repeats = 2;
    config.seed = 7;
    return config;
}

SessionConfig
xcoreConfig()
{
    SessionConfig config;
    config.channel = ChannelId::XCoreLruAlg2;
    config.mode = SharingMode::CrossCore;
    config.d = 12;
    config.tr = 3000;
    config.ts = 30000;
    config.llc_policy = sim::ReplPolicyKind::TreePlru;
    config.message = Bits{1, 0, 1, 1};
    config.seed = 9;
    return config;
}

TEST(TopologyPool, PooledSessionMatchesFreshThread)
{
    for (const SessionConfig &config : {smtConfig(), xcoreConfig()}) {
        // A brand-new thread has an empty pool, so its run constructs
        // the topology from scratch.
        SessionResult fresh;
        std::thread worker([&] { fresh = runSession(config); });
        worker.join();

        // These two runs share this thread's pool: the first fills it
        // (or reuses an earlier test's), the second definitely reuses.
        const SessionResult pooled1 = runSession(config);
        const SessionResult pooled2 = runSession(config);

        expectSameSession(fresh, pooled1);
        expectSameSession(fresh, pooled2);
    }
}

TEST(TopologyPool, SurvivesInterleavedTopologies)
{
    const SessionConfig smt = smtConfig();
    const SessionConfig xcore = xcoreConfig();

    const SessionResult smt_a = runSession(smt);
    const SessionResult xcore_a = runSession(xcore);
    // The cross-core run displaced the single-core pool entry (and vice
    // versa), so both of these rebuild — results must not change.
    const SessionResult smt_b = runSession(smt);
    const SessionResult xcore_b = runSession(xcore);

    expectSameSession(smt_a, smt_b);
    expectSameSession(xcore_a, xcore_b);
}

// ----------------------------------------------------------- batch walks

TEST(BatchWalks, LruChannelsDecodeIdentically)
{
    SessionConfig configs[] = {smtConfig(), smtConfig(), xcoreConfig()};
    configs[1].channel = ChannelId::LruAlg2; // disjoint-address variant
    configs[1].d = 5; // Alg.2 needs odd d on Tree-PLRU (Fig. 4)
    for (SessionConfig config : configs) {
        SessionConfig per_op = config;
        per_op.batch_walks = false;
        SessionConfig batched = config;
        batched.batch_walks = true;

        const SessionResult a = runSession(per_op);
        const SessionResult b = runSession(batched);

        // Batching coarsens the interleaving (a walk is one engine
        // event), so timestamps may differ — but the transmission must
        // decode bit-for-bit identically.
        EXPECT_EQ(a.sent, b.sent) << channelIdToken(config.channel);
        EXPECT_EQ(a.received, b.received)
            << channelIdToken(config.channel);
        EXPECT_EQ(a.error_rate, b.error_rate);
        EXPECT_EQ(a.threshold, b.threshold);
        // The SMT carriers are clean here; the cross-core channel
        // deterministically loses only its first bit to startup sync.
        EXPECT_LE(a.error_rate * static_cast<double>(a.sent.size()), 1.0)
            << channelIdToken(config.channel);
    }
}

TEST(BatchWalks, SenderPacingKeepsChannelClean)
{
    // The bench lanes pace the sender at the receiver's sampling period
    // (encode_gap = tr) on top of batching; the channel must stay
    // error-free there too.
    for (SessionConfig config : {smtConfig(), xcoreConfig()}) {
        config.batch_walks = true;
        config.encode_gap = static_cast<std::uint32_t>(config.tr);
        const SessionResult res = runSession(config);
        ASSERT_EQ(res.sent.size(), res.received.size());
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < res.sent.size(); ++i)
            mismatches += res.sent[i] != res.received[i];
        // At most the cross-core channel's one startup-sync bit.
        EXPECT_LE(mismatches, 1u) << channelIdToken(config.channel);
    }
}

} // namespace
