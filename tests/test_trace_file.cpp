/**
 * @file
 * Trace files and their replay: format round trips, malformed-input
 * rejection, and the equivalence of export-then-replay with running
 * the synthetic generator live — on both topologies, write path
 * included.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exec/trace_program.hpp"
#include "sim/access_port.hpp"
#include "sim/hierarchy.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "sim/random.hpp"
#include "workload/trace_file.hpp"
#include "workload/trace_gen.hpp"

using namespace lruleak;
using workload::TraceFile;
using workload::TraceRecord;

namespace {

std::string
tempPath(const std::string &leaf)
{
    return (std::filesystem::path(testing::TempDir()) / leaf).string();
}

// ----------------------------------------------------------- round trips

TEST(TraceFile, TextRoundTripPreservesRecords)
{
    const auto trace = workload::generateTrace("gccmix", 2000, 7, 0.3);
    const std::string path = tempPath("rt.trace");
    workload::saveTextTrace(trace, path);
    const TraceFile loaded = workload::loadTrace(path);
    EXPECT_EQ(loaded.records, trace.records);
    std::filesystem::remove(path);
}

TEST(TraceFile, BinaryRoundTripPreservesRecords)
{
    auto trace = workload::generateTrace("ptrchase", 2000, 11, 0.5);
    // Edge addresses the packing must keep intact.
    trace.records.push_back(TraceRecord{0, true});
    trace.records.push_back(TraceRecord{workload::kTraceAddrMax, false});
    trace.records.push_back(TraceRecord{workload::kTraceAddrMax, true});
    const std::string path = tempPath("rt.bintrace");
    workload::saveBinaryTrace(trace, path);
    const TraceFile loaded = workload::loadTrace(path);
    EXPECT_EQ(loaded.records, trace.records);
    std::filesystem::remove(path);
}

TEST(TraceFile, TextAndBinaryLoadIdentically)
{
    const auto trace = workload::generateTrace("stencil3d", 1500, 3, 0.2);
    const std::string text_path = tempPath("same.trace");
    const std::string bin_path = tempPath("same.bintrace");
    workload::saveTextTrace(trace, text_path);
    workload::saveBinaryTrace(trace, bin_path);
    EXPECT_EQ(workload::loadTrace(text_path).records,
              workload::loadTrace(bin_path).records);
    std::filesystem::remove(text_path);
    std::filesystem::remove(bin_path);
}

TEST(TraceFile, TextParserAcceptsCommentsBlanksAndBothBases)
{
    std::istringstream in("# header comment\n"
                          "\n"
                          "R 0x1000\n"
                          "  W 4096\r\n" // indented, CRLF
                          "\t#indented comment\n"
                          "W 0xABCDEF\n");
    const TraceFile trace = workload::parseTextTrace(in, "inline");
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.records[0], (TraceRecord{0x1000, false}));
    EXPECT_EQ(trace.records[1], (TraceRecord{4096, true}));
    EXPECT_EQ(trace.records[2], (TraceRecord{0xABCDEF, true}));
}

// ------------------------------------------------------ malformed input

TEST(TraceFile, TextParserRejectsMalformedLines)
{
    for (const char *bad : {"X 0x1000\n",      // bad opcode
                            "R\n",             // missing address
                            "R zzz\n",         // unparsable address
                            "R 0x10 extra\n",  // trailing token
                            "read 0x10\n"}) {
        std::istringstream in(bad);
        EXPECT_THROW(workload::parseTextTrace(in, "inline"),
                     std::runtime_error)
            << "accepted: " << bad;
    }
}

TEST(TraceFile, BinaryParserRejectsCorruptStreams)
{
    const auto trace = workload::generateTrace("stream", 16, 5, 0.0);
    const std::string path = tempPath("corrupt.bintrace");
    workload::saveBinaryTrace(trace, path);
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        bytes = os.str();
    }
    std::filesystem::remove(path);

    const auto expectBad = [](std::string data, const char *what) {
        std::istringstream in(data);
        EXPECT_THROW(workload::parseBinaryTrace(in, "inline"),
                     std::runtime_error)
            << what;
    };
    expectBad(bytes.substr(0, 10), "truncated header");
    expectBad(bytes.substr(0, bytes.size() - 3), "truncated payload");
    expectBad(bytes + "x", "trailing bytes");
    {
        std::string wrong_magic = bytes;
        wrong_magic[0] = 'X';
        expectBad(wrong_magic, "bad magic");
    }
    {
        std::string wrong_version = bytes;
        wrong_version[4] = 9;
        expectBad(wrong_version, "unsupported version");
    }
    {
        std::string dirty_pad = bytes;
        dirty_pad[5] = 1;
        expectBad(dirty_pad, "nonzero padding");
    }
}

TEST(TraceFile, LoadRejectsMissingFile)
{
    EXPECT_THROW(workload::loadTrace(tempPath("no-such.trace")),
                 std::runtime_error);
}

// ----------------------------------------------------------- generation

TEST(TraceGen, DeterministicAndSeedSensitive)
{
    const auto a = workload::generateTrace("hashjoin", 1000, 42, 0.25);
    const auto b = workload::generateTrace("hashjoin", 1000, 42, 0.25);
    const auto c = workload::generateTrace("hashjoin", 1000, 43, 0.25);
    EXPECT_EQ(a.records, b.records);
    EXPECT_NE(a.records, c.records);
}

TEST(TraceGen, WriteFractionControlsStoresNotAddresses)
{
    const auto loads = workload::generateTrace("zipfobj", 1000, 9, 0.0);
    const auto mixed = workload::generateTrace("zipfobj", 1000, 9, 0.5);
    const auto stores = workload::generateTrace("zipfobj", 1000, 9, 1.0);
    ASSERT_EQ(loads.size(), mixed.size());
    std::size_t mixed_stores = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        // The address stream is identical across write fractions: the
        // store promotion draws from its own RNG stream.
        EXPECT_EQ(loads.records[i].addr, mixed.records[i].addr);
        EXPECT_EQ(loads.records[i].addr, stores.records[i].addr);
        EXPECT_FALSE(loads.records[i].is_write);
        EXPECT_TRUE(stores.records[i].is_write);
        mixed_stores += mixed.records[i].is_write ? 1 : 0;
    }
    EXPECT_GT(mixed_stores, 350u);
    EXPECT_LT(mixed_stores, 650u);
}

TEST(TraceGen, RejectsBadArguments)
{
    EXPECT_THROW(workload::generateTrace("no-such-workload", 10, 1, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(workload::generateTrace("stream", 10, 1, 1.5),
                 std::invalid_argument);
    EXPECT_THROW(workload::generateTrace("stream", 10, 1, -0.1),
                 std::invalid_argument);
}

// ---------------------------------------- replay equals live execution

/** Issue the trace record-by-record and collect the exact outcome. */
struct DirectStats
{
    std::vector<sim::HitLevel> levels;
    std::uint64_t writebacks = 0;
};

DirectStats
accessDirect(sim::AccessPort &port, std::uint32_t core,
             const TraceFile &trace)
{
    DirectStats stats;
    stats.levels.reserve(trace.size());
    for (const TraceRecord &r : trace.records) {
        const auto res = port.access(core, r.ref(core));
        stats.levels.push_back(res.level);
        stats.writebacks += res.writebacks;
    }
    return stats;
}

/** Run the generator live against the port, exactly as generateTrace
 *  would have recorded it. */
DirectStats
runGeneratorLive(sim::AccessPort &port, std::uint32_t core,
                 const std::string &workload, std::size_t count,
                 std::uint64_t seed, double write_fraction)
{
    const auto generator = workload::makeWorkload(workload);
    sim::Xoshiro256 addr_rng(seed);
    sim::Xoshiro256 write_rng(seed ^ 0x57524954'45532121ULL);
    DirectStats stats;
    stats.levels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const sim::Addr addr = generator->next(addr_rng);
        const bool is_write = write_fraction > 0.0 &&
                              write_rng.uniform() < write_fraction;
        const sim::MemRef ref{addr, addr, core, is_write};
        const auto res = port.access(core, ref);
        stats.levels.push_back(res.level);
        stats.writebacks += res.writebacks;
    }
    return stats;
}

TEST(TraceReplay, ExportThenReplayEqualsLiveGeneratorSingleCore)
{
    // A write-heavy mix so dirty lines and write-backs are part of
    // what must match.
    const std::string workload = "gccmix";
    const std::size_t count = 6000;
    const std::uint64_t seed = 77;
    const double writes = 0.4;
    const auto trace =
        workload::generateTrace(workload, count, seed, writes);

    sim::CacheHierarchy live_h, replay_h, batch_h;
    sim::SingleCorePort live(live_h), replay(replay_h), batch(batch_h);

    const auto direct =
        runGeneratorLive(live, 0, workload, count, seed, writes);
    const auto replayed = accessDirect(replay, 0, trace);
    EXPECT_EQ(replayed.levels, direct.levels);
    EXPECT_EQ(replayed.writebacks, direct.writebacks);
    ASSERT_GT(direct.writebacks, 0u); // the write path actually ran

    // The chunked accessBatch fast path sees the same hit/miss totals.
    const auto stats = exec::replayTrace(batch, 0, trace, 512);
    std::uint64_t live_misses = 0;
    for (const auto level : direct.levels)
        live_misses += level == sim::HitLevel::Memory ? 1 : 0;
    EXPECT_EQ(stats.accesses, count);
    EXPECT_EQ(stats.misses, live_misses);
    EXPECT_EQ(stats.hits, count - live_misses);
}

TEST(TraceReplay, ExportThenReplayEqualsLiveGeneratorMultiCore)
{
    const std::string workload = "dualstream";
    const std::size_t count = 4000;
    const std::uint64_t seed = 13;
    const double writes = 0.3;
    const auto trace =
        workload::generateTrace(workload, count, seed, writes);

    sim::MultiCoreHierarchy live_h, replay_h;
    sim::MultiCorePort live(live_h), replay(replay_h);
    const std::uint32_t core = live.cores() - 1;

    const auto direct =
        runGeneratorLive(live, core, workload, count, seed, writes);
    const auto replayed = accessDirect(replay, core, trace);
    EXPECT_EQ(replayed.levels, direct.levels);
    EXPECT_EQ(replayed.writebacks, direct.writebacks);
    EXPECT_EQ(replay.auditInclusion(), std::nullopt);
}

// ------------------------------------------------------- TraceProgram

TEST(TraceProgram, ReplaysInOrderThenStops)
{
    auto trace = std::make_shared<TraceFile>();
    trace->records = {TraceRecord{0x100, false}, TraceRecord{0x200, true},
                      TraceRecord{0x300, false}};
    exec::TraceProgram program(trace);
    program.setThreadId(5);
    for (const auto &expected : trace->records) {
        const exec::Op op = program.next(0);
        ASSERT_EQ(op.kind, exec::OpKind::Access);
        EXPECT_EQ(op.ref.vaddr, expected.addr);
        EXPECT_EQ(op.ref.is_write, expected.is_write);
        EXPECT_EQ(op.ref.thread, 5u);
    }
    EXPECT_EQ(program.next(0).kind, exec::OpKind::Done);
    EXPECT_EQ(program.replayed(), 3u);
}

TEST(TraceProgram, LoopsWithStaggeredOffset)
{
    auto trace = std::make_shared<TraceFile>();
    trace->records = {TraceRecord{0xA, false}, TraceRecord{0xB, false},
                      TraceRecord{0xC, false}};
    exec::TraceProgram program(trace, /*start_offset=*/5, /*loop=*/true);
    // 5 % 3 = 2: starts at the third record, then wraps forever.
    const sim::Addr expected[] = {0xC, 0xA, 0xB, 0xC, 0xA, 0xB, 0xC};
    for (const sim::Addr addr : expected) {
        const exec::Op op = program.next(0);
        ASSERT_EQ(op.kind, exec::OpKind::Access);
        EXPECT_EQ(op.ref.vaddr, addr);
    }
}

TEST(TraceProgram, EmptyTraceIsDone)
{
    exec::TraceProgram no_trace(nullptr);
    EXPECT_EQ(no_trace.next(0).kind, exec::OpKind::Done);
    exec::TraceProgram empty(std::make_shared<TraceFile>(),
                             /*start_offset=*/3, /*loop=*/true);
    EXPECT_EQ(empty.next(0).kind, exec::OpKind::Done);
}

} // namespace
