/**
 * @file
 * channel::Calibration tests: for every ChannelId x every registered
 * CPU model x both carriers, the derived threshold must lie strictly
 * between the noise-free readouts of the latency pair it separates;
 * the cross-core thresholds must match the
 * MeasurementModel::chaseThresholdBetween values the legacy runner
 * used, and the Prime+Probe thresholds the historical
 * PpReceiver::probeThreshold formula.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "channel/calibration.hpp"
#include "channel/prime_probe.hpp"
#include "timing/pointer_chase.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

std::vector<timing::Uarch>
allUarchs()
{
    std::vector<timing::Uarch> uarchs;
    for (const auto &token : timing::uarchTokens())
        uarchs.push_back(timing::uarchFromName(token));
    return uarchs;
}

/** Carrier-set associativity the layouts use. */
std::uint32_t
waysFor(Carrier carrier)
{
    return carrier == Carrier::L1 ? sim::CacheConfig::intelL1d().ways
                                  : sim::CacheConfig::intelLlc().ways;
}

/**
 * Noise-free readout of one sample when the timed access is served at
 * @p level: what MeasurementModel::chase computes with zero jitter —
 * or, for Prime+Probe, the whole probe walk served at @p level —
 * floored to the CPU's timestamp granularity exactly as the attacker
 * observes it (the AMD model reads in 16-cycle granules).
 */
double
noiselessReadout(const timing::Uarch &u, ChannelId id, Carrier carrier,
                 sim::HitLevel level)
{
    const std::uint32_t ways = waysFor(carrier);
    double total = 0.0;
    if (id == ChannelId::DirtyEvict || id == ChannelId::FlushDirty) {
        // The dirty channels are carrier-independent: the receiver
        // times either a pinned L1-hit readout access that absorbs the
        // pending write-back stall (dirty-evict) or a clflush
        // (flush-dirty).  cal.fast/cal.slow encode clean/dirty, not
        // serving levels; the dirty readout adds one write-back.
        total = id == ChannelId::DirtyEvict
                    ? u.chase_overhead + u.l1_latency
                    : u.single_overhead + u.serialize_floor;
        if (level == sim::HitLevel::Memory)
            total += u.wb_latency;
    } else if (id == ChannelId::PrimeProbe) {
        // All ways served at the fast level, except (for the slow
        // readout) the one line the sender evicted.
        const Calibration cal = carrierLevels(id, carrier);
        const std::uint32_t fast = u.latency(cal.fast);
        total = u.chase_overhead + ways * fast;
        if (level == cal.slow)
            total += u.latency(cal.slow) - fast;
    } else {
        total = u.chase_overhead +
                timing::MeasurementModel::kChainLength * u.l1_latency +
                u.latency(level);
    }
    const auto g = std::max<std::uint32_t>(u.tsc_granularity, 1);
    return static_cast<double>(
        (static_cast<std::uint64_t>(total) / g) * g);
}

} // namespace

TEST(Calibration, ThresholdStrictlySeparatesItsLatencyPair)
{
    for (const auto &u : allUarchs()) {
        for (ChannelId id : allChannelIds()) {
            for (Carrier carrier : {Carrier::L1, Carrier::Llc}) {
                const Calibration cal =
                    calibrationFor(u, id, carrier, waysFor(carrier));
                const double fast =
                    noiselessReadout(u, id, carrier, cal.fast);
                const double slow =
                    noiselessReadout(u, id, carrier, cal.slow);
                SCOPED_TRACE(u.name + " / " +
                             std::string(channelIdToken(id)) +
                             (carrier == Carrier::L1 ? " / L1"
                                                     : " / LLC"));
                EXPECT_LT(fast, slow);
                EXPECT_GT(static_cast<double>(cal.threshold), fast);
                EXPECT_LT(static_cast<double>(cal.threshold), slow);
            }
        }
    }
}

TEST(Calibration, XCoreThresholdMatchesChaseThresholdBetween)
{
    for (const auto &u : allUarchs()) {
        const timing::MeasurementModel model(u);
        const Calibration cal = calibrationFor(
            u, ChannelId::XCoreLruAlg2, Carrier::Llc, waysFor(Carrier::Llc));
        EXPECT_EQ(cal.threshold,
                  model.chaseThresholdBetween(sim::HitLevel::LLC,
                                              sim::HitLevel::Memory))
            << u.name;
        EXPECT_EQ(cal.fast, sim::HitLevel::LLC) << u.name;
        EXPECT_EQ(cal.slow, sim::HitLevel::Memory) << u.name;
        EXPECT_TRUE(cal.invert) << u.name;
    }
}

TEST(Calibration, SingleCoreLruThresholdMatchesChaseThreshold)
{
    for (const auto &u : allUarchs()) {
        const timing::MeasurementModel model(u);
        for (ChannelId id : {ChannelId::LruAlg1, ChannelId::LruAlg2}) {
            const Calibration cal =
                calibrationFor(u, id, Carrier::L1, waysFor(Carrier::L1));
            EXPECT_EQ(cal.threshold, model.chaseThreshold())
                << u.name << " " << channelIdToken(id);
        }
        // Polarity: Algorithm 1 signals with a hit, Algorithm 2 with an
        // eviction.
        EXPECT_FALSE(calibrationFor(u, ChannelId::LruAlg1, Carrier::L1, 8)
                         .invert);
        EXPECT_TRUE(calibrationFor(u, ChannelId::LruAlg2, Carrier::L1, 8)
                        .invert);
    }
}

TEST(Calibration, PrimeProbeMatchesHistoricalProbeThreshold)
{
    for (const auto &u : allUarchs()) {
        for (std::uint32_t ways : {4u, 8u, 16u}) {
            // The historical formula, inlined: all-ways L1 hits plus
            // half the L2 delta.
            const std::uint32_t expected = u.chase_overhead +
                                           ways * u.l1_latency +
                                           (u.l2_latency - u.l1_latency) / 2;
            EXPECT_EQ(calibrationFor(u, ChannelId::PrimeProbe, Carrier::L1,
                                     ways)
                          .threshold,
                      expected)
                << u.name << " ways=" << ways;
            EXPECT_EQ(PpReceiver::probeThreshold(u, ways), expected)
                << u.name << " ways=" << ways;
        }
    }
}

TEST(Calibration, DirtyThresholdsSeparateCleanFromDirtyReadout)
{
    // The dirty-state channels read the victim line's dirty bit, not
    // its presence: the clean and dirty readouts differ by exactly one
    // write-back.  The threshold must fall strictly between the two
    // quantized noise-free readouts on every CPU model, and must not
    // depend on the carrier (the dirty bit lives in whatever level
    // holds the line).
    for (const auto &u : allUarchs()) {
        for (ChannelId id :
             {ChannelId::DirtyEvict, ChannelId::FlushDirty}) {
            const Calibration l1 =
                calibrationFor(u, id, Carrier::L1, waysFor(Carrier::L1));
            const Calibration llc = calibrationFor(
                u, id, Carrier::Llc, waysFor(Carrier::Llc));
            SCOPED_TRACE(u.name + " / " +
                         std::string(channelIdToken(id)));
            EXPECT_EQ(l1.threshold, llc.threshold);
            EXPECT_TRUE(l1.invert); // slow readout = dirty = bit 1

            const double clean =
                noiselessReadout(u, id, Carrier::L1, l1.fast);
            const double dirty =
                noiselessReadout(u, id, Carrier::L1, l1.slow);
            EXPECT_LT(clean, dirty);
            EXPECT_GT(static_cast<double>(l1.threshold), clean);
            EXPECT_LT(static_cast<double>(l1.threshold), dirty);
        }
    }
}

TEST(Calibration, FlushReloadMemSeparatesL1FromMemory)
{
    for (const auto &u : allUarchs()) {
        const Calibration cal =
            calibrationFor(u, ChannelId::FrMem, Carrier::L1, 8);
        EXPECT_EQ(cal.fast, sim::HitLevel::L1) << u.name;
        EXPECT_EQ(cal.slow, sim::HitLevel::Memory) << u.name;
        EXPECT_FALSE(cal.invert) << u.name;
    }
}
