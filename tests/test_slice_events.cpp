/**
 * @file
 * Randomized differential suite for the TimeSlice slice-event fast
 * path: with `slice_events` on, one step() advances a whole quantum,
 * but the op order, every RNG draw, every measured latency, the final
 * clocks and the per-thread telemetry must be identical to per-op
 * stepping.  The suite sweeps quantum/jitter/tick grids, random program
 * mixes and both engine shapes (root TimeSlice; TimeSlice nested under
 * LowestClock, where the fast path must disable itself).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/hierarchy.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::exec;

namespace {

/** Replays a pre-generated random op script; records every result. */
class RandomProgram : public ThreadProgram
{
  public:
    RandomProgram(std::uint64_t seed, std::size_t ops, sim::Addr base)
    {
        sim::Xoshiro256 rng(seed);
        script_.reserve(ops);
        for (std::size_t i = 0; i < ops; ++i) {
            const std::uint64_t kind = rng.below(100);
            const sim::Addr line = base + rng.below(96) * 64;
            if (kind < 55) {
                script_.push_back(Op::access(sim::MemRef::load(line)));
            } else if (kind < 70) {
                script_.push_back(
                    Op::measure(sim::MemRef::load(line), chain_));
            } else if (kind < 80) {
                script_.push_back(Op::flush(sim::MemRef::load(line)));
            } else {
                spin_gaps_[script_.size()] = 50 + rng.below(700);
                script_.push_back(Op::spinUntil(0));
            }
        }
    }

    Op
    next(std::uint64_t now) override
    {
        if (index_ >= script_.size())
            return Op::done();
        Op op = script_[index_];
        const auto gap = spin_gaps_.find(index_);
        if (gap != spin_gaps_.end())
            op.until = now + gap->second;
        ++index_;
        op.ref.thread = threadId();
        yield_times_.push_back(now);
        return op;
    }

    void
    onResult(const OpResult &result) override
    {
        results_.push_back(result);
    }

    const std::vector<OpResult> &results() const { return results_; }
    const std::vector<std::uint64_t> &yieldTimes() const
    {
        return yield_times_;
    }

  private:
    std::vector<sim::HitLevel> chain_ =
        std::vector<sim::HitLevel>(7, sim::HitLevel::L1);
    std::vector<Op> script_;
    std::map<std::size_t, std::uint64_t> spin_gaps_;
    std::size_t index_ = 0;
    std::vector<OpResult> results_;
    std::vector<std::uint64_t> yield_times_;
};

void
expectSameTrace(const RandomProgram &a, const RandomProgram &b)
{
    ASSERT_EQ(a.results().size(), b.results().size());
    for (std::size_t i = 0; i < a.results().size(); ++i) {
        EXPECT_EQ(a.results()[i].kind, b.results()[i].kind) << i;
        EXPECT_EQ(a.results()[i].level, b.results()[i].level) << i;
        EXPECT_EQ(a.results()[i].measured, b.results()[i].measured) << i;
        EXPECT_EQ(a.results()[i].tsc, b.results()[i].tsc) << i;
    }
    ASSERT_EQ(a.yieldTimes().size(), b.yieldTimes().size());
    for (std::size_t i = 0; i < a.yieldTimes().size(); ++i)
        EXPECT_EQ(a.yieldTimes()[i], b.yieldTimes()[i]) << i;
}

void
expectSameStats(const ThreadStats &a, const ThreadStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.measures, b.measures);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.spins, b.spins);
    EXPECT_EQ(a.busy_cycles, b.busy_cycles);
}

void
expectSameCounters(const sim::Cache &a, const sim::Cache &b,
                   sim::ThreadId thread)
{
    const auto sa = a.counters().forThread(thread);
    const auto sb = b.counters().forThread(thread);
    EXPECT_EQ(sa.accesses, sb.accesses);
    EXPECT_EQ(sa.misses, sb.misses);
    EXPECT_EQ(sa.writebacks, sb.writebacks);
}

/** One (quantum, jitter, tick) cell of the differential grid. */
struct GridCell
{
    std::uint64_t quantum;
    std::uint64_t quantum_jitter;
    std::uint64_t tick_period;
    double background_prob;
};

/** Run both stepping modes for one config+seed; compare everything. */
void
runCell(const GridCell &cell, std::uint64_t seed)
{
    TimeSlicePolicyConfig base;
    base.quantum = cell.quantum;
    base.quantum_jitter = cell.quantum_jitter;
    base.switch_cost = 300;
    base.kernel_noise_lines = 8;
    base.background_prob = cell.background_prob;
    base.background_lines = 32;
    base.tick_period = cell.tick_period;
    base.tick_lines = 4;

    struct RunOut
    {
        std::unique_ptr<RandomProgram> p0, p1;
        std::unique_ptr<sim::CacheHierarchy> h;
        std::uint64_t end = 0;
        ThreadStats s0, s1;
    };
    auto run = [&](bool slice_events) {
        RunOut out;
        out.p0 = std::make_unique<RandomProgram>(seed * 17, 1500, 0x10000);
        out.p1 = std::make_unique<RandomProgram>(seed * 19, 1200, 0x50000);
        out.h = std::make_unique<sim::CacheHierarchy>();
        sim::SingleCorePort port(*out.h);
        TimeSlicePolicyConfig pc = base;
        pc.slice_events = slice_events;
        TimeSlice policy(pc);
        EngineConfig ec;
        ec.seed = seed;
        Engine engine(port, timing::Uarch::intelXeonE52690(), policy, ec);
        out.end = engine.run(*out.p0, *out.p1, 1);
        out.s0 = engine.stats(0);
        out.s1 = engine.stats(1);
        return out;
    };

    const RunOut per_op = run(false);
    const RunOut sliced = run(true);

    EXPECT_EQ(per_op.end, sliced.end)
        << "quantum " << cell.quantum << " seed " << seed;
    expectSameTrace(*per_op.p0, *sliced.p0);
    expectSameTrace(*per_op.p1, *sliced.p1);
    expectSameStats(per_op.s0, sliced.s0);
    expectSameStats(per_op.s1, sliced.s1);
    for (sim::ThreadId t : {sim::ThreadId{0}, sim::ThreadId{1},
                            base.kernel_thread, base.background_thread}) {
        expectSameCounters(per_op.h->l1(), sliced.h->l1(), t);
        expectSameCounters(per_op.h->l2(), sliced.h->l2(), t);
        expectSameCounters(per_op.h->llc(), sliced.h->llc(), t);
    }
}

TEST(SliceEvents, EquivalentToPerOpSteppingAcrossQuantumGrid)
{
    const GridCell grid[] = {
        // Small quanta: many slices, switches, background slices.
        {5'000, 2'000, 2'500, 0.3},
        // Quantum smaller than a typical op run: degenerate slices.
        {500, 0, 0, 0.0},
        // Tick-dominated: several ticks per slice.
        {20'000, 5'000, 1'000, 0.2},
        // No jitter, no background: pure rotation.
        {8'000, 0, 4'000, 0.0},
        // Large quantum: whole program inside one slice.
        {50'000'000, 10'000'000, 1'000'000, 0.25},
    };
    for (const GridCell &cell : grid) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed)
            runCell(cell, seed);
    }
}

TEST(SliceEvents, TrueQuantumScaleMatchesPerOpStepping)
{
    // The production scale: paper-faithful 1.5e8-cycle quanta with the
    // default jitter/tick knobs.  Per-op stepping can still afford this
    // at test sizes; the equality here is what licenses the fast path
    // for the fig6/fig15/channel_matrix experiments.
    GridCell cell{150'000'000, 80'000'000, 4'000'000, 0.25};
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        runCell(cell, seed);
}

TEST(SliceEvents, NestedUnderLowestClockIgnoresSliceEvents)
{
    // Nested TimeSlice must stay per-op no matter what the flag says:
    // the parent has to interleave the other core's LLC traffic between
    // ops.  Equality of the two flag settings proves the flag is inert
    // when nested.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto run = [&](bool slice_events) {
            struct Out
            {
                std::unique_ptr<RandomProgram> p0, p1, p2;
                std::unique_ptr<sim::MultiCoreHierarchy> h;
                std::uint64_t end = 0;
            };
            Out out;
            sim::MultiCoreConfig mc;
            mc.cores = 2;
            mc.seed = seed;
            out.p0 = std::make_unique<RandomProgram>(seed * 5, 900,
                                                     0x10000);
            out.p1 = std::make_unique<RandomProgram>(seed * 7, 800,
                                                     0x50000);
            out.p2 = std::make_unique<RandomProgram>(seed * 9, 700,
                                                     0x90000);
            out.h = std::make_unique<sim::MultiCoreHierarchy>(mc);
            sim::MultiCorePort port(*out.h);

            TimeSlicePolicyConfig pc;
            pc.quantum = 5'000;
            pc.quantum_jitter = 2'000;
            pc.switch_cost = 300;
            pc.kernel_noise_lines = 8;
            pc.background_prob = 0.3;
            pc.background_lines = 32;
            pc.tick_period = 2'500;
            pc.tick_lines = 4;
            pc.slice_events = slice_events;

            LowestClock policy;
            policy.nest(0, std::make_unique<TimeSlice>(pc));
            EngineConfig ec;
            ec.seed = seed;
            Engine engine(port, timing::Uarch::intelXeonE52690(), policy,
                          ec);
            const ThreadSpec specs[3] = {
                {out.p0.get(), 0}, {out.p1.get(), 0}, {out.p2.get(), 1}};
            out.end = engine.run(specs, 1);
            return out;
        };
        const auto off = run(false);
        const auto on = run(true);
        EXPECT_EQ(off.end, on.end) << "seed " << seed;
        expectSameTrace(*off.p0, *on.p0);
        expectSameTrace(*off.p1, *on.p1);
        expectSameTrace(*off.p2, *on.p2);
        EXPECT_EQ(off.h->backInvalidations(), on.h->backInvalidations());
    }
}

} // namespace
