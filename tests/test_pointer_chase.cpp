/**
 * @file
 * Tests for the measurement primitives (Section IV-D, Appendix A):
 * the pointer chase separates L1 hits from misses, a bare rdtscp pair
 * does not.
 */

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/histogram.hpp"
#include "timing/pointer_chase.hpp"

using namespace lruleak;
using namespace lruleak::timing;

TEST(PointerChase, HitBelowThresholdMissAbove)
{
    const auto u = Uarch::intelXeonE52690();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(1);
    const auto threshold = model.chaseThreshold();
    int hit_ok = 0, miss_ok = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        hit_ok += model.chaseAllL1(7, sim::HitLevel::L1, rng) <= threshold;
        miss_ok += model.chaseAllL1(7, sim::HitLevel::L2, rng) > threshold;
    }
    EXPECT_GT(hit_ok, n * 98 / 100);
    EXPECT_GT(miss_ok, n * 98 / 100);
}

TEST(PointerChase, MeansMatchFig3Calibration)
{
    // Fig. 3 left (E5-2690): hits ~ 35 cycles, misses ~ 43.
    const auto u = Uarch::intelXeonE52690();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(2);
    double hit_sum = 0, miss_sum = 0;
    for (int i = 0; i < 5000; ++i) {
        hit_sum += model.chaseAllL1(7, sim::HitLevel::L1, rng);
        miss_sum += model.chaseAllL1(7, sim::HitLevel::L2, rng);
    }
    EXPECT_NEAR(hit_sum / 5000, 35.0, 1.5);
    EXPECT_NEAR(miss_sum / 5000, 43.0, 1.5);
}

TEST(SingleAccess, CannotSeparateL1FromL2)
{
    // Appendix A: the serialization floor hides the L1/L2 difference.
    const auto u = Uarch::intelXeonE52690();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(3);
    double hit_sum = 0, miss_sum = 0;
    for (int i = 0; i < 5000; ++i) {
        hit_sum += model.single(sim::HitLevel::L1, rng);
        miss_sum += model.single(sim::HitLevel::L2, rng);
    }
    EXPECT_NEAR(hit_sum / 5000, miss_sum / 5000, 0.5);
}

TEST(SingleAccess, StillSeparatesMemoryMisses)
{
    // Flush+Reload (mem) survives rdtscp because a memory miss towers
    // over the serialization floor.
    const auto u = Uarch::intelXeonE52690();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(4);
    double l1 = 0, mem = 0;
    for (int i = 0; i < 1000; ++i) {
        l1 += model.single(sim::HitLevel::L1, rng);
        mem += model.single(sim::HitLevel::Memory, rng);
    }
    EXPECT_GT(mem / 1000, l1 / 1000 + 100);
}

TEST(Quantization, AmdReadoutIsCoarse)
{
    const auto u = Uarch::amdEpyc7571();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(5);
    for (int i = 0; i < 200; ++i) {
        const auto v = model.chaseAllL1(7, sim::HitLevel::L1, rng);
        EXPECT_EQ(v % u.tsc_granularity, 0u)
            << "readout must be a multiple of the TSC granularity";
    }
}

TEST(Quantization, AmdDistributionsOverlapButDiffer)
{
    // Fig. 3 right: AMD hit/miss overlap substantially (hence the paper
    // needs averaging) yet are distinguishable in distribution.
    const auto u = Uarch::amdEpyc7571();
    const auto h = core::pointerChaseHistograms(u, 20000, 6);
    const double overlap = core::overlapCoefficient(h.hit, h.miss);
    EXPECT_GT(overlap, 0.10);
    EXPECT_LT(overlap, 0.95);
    EXPECT_LT(h.hit.mean(), h.miss.mean());
}

TEST(Quantization, IntelDistributionsSeparate)
{
    const auto u = Uarch::intelXeonE52690();
    const auto h = core::pointerChaseHistograms(u, 20000, 6);
    EXPECT_LT(core::overlapCoefficient(h.hit, h.miss), 0.05);
}

TEST(Fig13, SingleAccessDistributionsOverlapCompletely)
{
    const auto u = Uarch::intelXeonE52690();
    const auto h = core::singleAccessHistograms(u, 20000, 6);
    EXPECT_GT(core::overlapCoefficient(h.hit, h.miss), 0.85);
}

TEST(Threshold, BetweenHitAndMissMeans)
{
    for (const auto &u : {Uarch::intelXeonE52690(),
                          Uarch::intelXeonE31245v5(),
                          Uarch::amdEpyc7571()}) {
        const MeasurementModel model(u);
        sim::Xoshiro256 rng(7);
        double hit = 0, miss = 0;
        for (int i = 0; i < 2000; ++i) {
            hit += model.chaseAllL1(7, sim::HitLevel::L1, rng);
            miss += model.chaseAllL1(7, sim::HitLevel::L2, rng);
        }
        EXPECT_GT(model.chaseThreshold(), hit / 2000);
        EXPECT_LT(model.chaseThreshold(), miss / 2000);
    }
}

TEST(ChainLength, LongerChainsAmortizeNothingExtra)
{
    // The chain's purpose is serialization; the measured delta between
    // hit and miss must be the L2-L1 gap regardless of chain length.
    const auto u = Uarch::intelXeonE52690();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(8);
    for (std::uint32_t len : {3u, 7u, 15u}) {
        double hit = 0, miss = 0;
        for (int i = 0; i < 2000; ++i) {
            hit += model.chaseAllL1(len, sim::HitLevel::L1, rng);
            miss += model.chaseAllL1(len, sim::HitLevel::L2, rng);
        }
        EXPECT_NEAR((miss - hit) / 2000, u.l2_latency - u.l1_latency, 0.5);
    }
}

TEST(MeasurementModel, ChaseUsesReportedChainLevels)
{
    // A polluted chain (elements demoted to L2) inflates the readout —
    // the reason the paper keeps the chain in its own set.
    const auto u = Uarch::intelXeonE52690();
    const MeasurementModel model(u);
    sim::Xoshiro256 rng(9);
    const std::vector<sim::HitLevel> clean(7, sim::HitLevel::L1);
    std::vector<sim::HitLevel> polluted(7, sim::HitLevel::L2);
    double c = 0, p = 0;
    for (int i = 0; i < 1000; ++i) {
        c += model.chase(clean, sim::HitLevel::L1, rng);
        p += model.chase(polluted, sim::HitLevel::L1, rng);
    }
    EXPECT_GT(p / 1000, c / 1000 + 7 * (u.l2_latency - u.l1_latency) - 1);
}
