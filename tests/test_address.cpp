/**
 * @file
 * Tests for address decomposition (sim/address.hpp).
 */

#include <gtest/gtest.h>

#include "sim/address.hpp"

using namespace lruleak::sim;

TEST(AddressLayout, Log2)
{
    EXPECT_EQ(AddressLayout::log2i(1), 0u);
    EXPECT_EQ(AddressLayout::log2i(2), 1u);
    EXPECT_EQ(AddressLayout::log2i(64), 6u);
    EXPECT_EQ(AddressLayout::log2i(4096), 12u);
}

TEST(AddressLayout, FieldWidths)
{
    const AddressLayout layout(64, 64);
    EXPECT_EQ(layout.lineBits(), 6u);
    EXPECT_EQ(layout.setBits(), 6u);
    EXPECT_EQ(layout.numSets(), 64u);
    EXPECT_EQ(layout.lineSize(), 64u);
}

TEST(AddressLayout, SetIndexUsesBits6To11)
{
    const AddressLayout layout(64, 64);
    // Bits 0-5 are the line offset and must not affect the index.
    EXPECT_EQ(layout.setIndex(0x0000), 0u);
    EXPECT_EQ(layout.setIndex(0x003f), 0u);
    EXPECT_EQ(layout.setIndex(0x0040), 1u);
    EXPECT_EQ(layout.setIndex(0x0fc0), 63u);
    // Bit 12 wraps around.
    EXPECT_EQ(layout.setIndex(0x1000), 0u);
}

TEST(AddressLayout, PageOffsetInvariant)
{
    // The VIPT property Algorithm 2 depends on: any page-aligned
    // remapping preserves the set index.
    const AddressLayout layout(64, 64);
    const Addr va = 0x1234'5678'9a40ULL;
    for (Addr page_delta : {0x1000ULL, 0x20000ULL, 0x40000000ULL})
        EXPECT_EQ(layout.setIndex(va), layout.setIndex(va + page_delta * 0x1000));
}

TEST(AddressLayout, ComposeRoundTrips)
{
    const AddressLayout layout(64, 64);
    const Addr addr = layout.compose(0xabcde, 37);
    EXPECT_EQ(layout.setIndex(addr), 37u);
    EXPECT_EQ(layout.tag(addr), 0xabcdeULL);
    EXPECT_EQ(layout.lineBase(addr + 17), addr);
}

TEST(AddressLayout, LineBaseMasksOffset)
{
    const AddressLayout layout(64, 64);
    EXPECT_EQ(layout.lineBase(0x1fff), 0x1fc0ULL);
    EXPECT_EQ(layout.lineBase(0x1fc0), 0x1fc0ULL);
}

TEST(MemRef, Factories)
{
    const auto load = MemRef::load(0x1000, 3);
    EXPECT_EQ(load.vaddr, 0x1000ULL);
    EXPECT_EQ(load.paddr, 0x1000ULL);
    EXPECT_EQ(load.thread, 3u);
    EXPECT_FALSE(load.is_write);

    const auto vapa = MemRef::loadVaPa(0x2000, 0x9000, 1);
    EXPECT_EQ(vapa.vaddr, 0x2000ULL);
    EXPECT_EQ(vapa.paddr, 0x9000ULL);
}

/** Property sweep: lineInSet always lands in the requested set with a
 *  distinct tag per index. */
class LineInSetProperty : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(LineInSetProperty, MapsToSetWithDistinctTags)
{
    const AddressLayout layout(64, 64);
    const std::uint32_t set = GetParam();
    Addr prev_tag = ~0ULL;
    for (std::uint32_t i = 0; i < 16; ++i) {
        const Addr a = lineInSet(layout, set, i, 0x7000'0000ULL);
        EXPECT_EQ(layout.setIndex(a), set);
        const Addr tag = layout.tag(a);
        EXPECT_NE(tag, prev_tag);
        prev_tag = tag;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSets, LineInSetProperty,
                         ::testing::Values(0u, 1u, 7u, 31u, 32u, 63u));

/** Property sweep over cache geometries. */
class LayoutGeometry
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>>
{};

TEST_P(LayoutGeometry, ComposeDecomposeIdentity)
{
    const auto [line, sets] = GetParam();
    const AddressLayout layout(line, sets);
    for (Addr tag : {0ULL, 1ULL, 0x5555ULL, 0xdeadbeefULL}) {
        for (std::uint32_t set = 0; set < sets; set += sets / 4 + 1) {
            const Addr a = layout.compose(tag, set);
            EXPECT_EQ(layout.tag(a), tag);
            EXPECT_EQ(layout.setIndex(a), set);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutGeometry,
    ::testing::Values(std::make_pair(32u, 64u), std::make_pair(64u, 64u),
                      std::make_pair(64u, 128u), std::make_pair(128u, 16u)));
