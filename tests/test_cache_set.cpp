/**
 * @file
 * Tests for CacheSet, including the PL-cache flow chart (Fig. 10).
 */

#include <gtest/gtest.h>

#include "sim/cache_set.hpp"

using namespace lruleak::sim;

namespace {

CacheSet
makeSet(std::uint32_t ways = 8,
        ReplPolicyKind kind = ReplPolicyKind::TreePlru,
        PlMode mode = PlMode::Disabled)
{
    return CacheSet(ways, makeReplacementPolicy(kind, ways, 1), mode);
}

SetAccessResult
access(CacheSet &set, Addr tag, LockReq req = LockReq::None)
{
    return set.access(tag, 0, false, req, 0);
}

} // namespace

TEST(CacheSet, MissThenHit)
{
    auto set = makeSet();
    const auto first = access(set, 42);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(first.filled);
    const auto second = access(set, 42);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.way, first.way);
}

TEST(CacheSet, FillsInvalidWaysFirstInOrder)
{
    auto set = makeSet();
    for (Addr t = 0; t < 8; ++t) {
        const auto res = access(set, 100 + t);
        EXPECT_FALSE(res.hit);
        EXPECT_EQ(res.way, t) << "cold fills must use invalid ways 0..7";
        EXPECT_FALSE(res.evicted);
    }
    EXPECT_EQ(set.occupancy(), 8u);
}

TEST(CacheSet, EvictionReportsVictimTag)
{
    auto set = makeSet();
    for (Addr t = 0; t < 8; ++t)
        access(set, t);
    const auto res = access(set, 99);
    EXPECT_FALSE(res.hit);
    ASSERT_TRUE(res.evicted);
    // Sequential fill + TreePLRU: victim is way 0 holding tag 0.
    EXPECT_EQ(res.evicted_tag, 0u);
    EXPECT_FALSE(set.probe(0).has_value());
}

TEST(CacheSet, ProbeDoesNotTouchState)
{
    auto set = makeSet();
    for (Addr t = 0; t < 8; ++t)
        access(set, t);
    const auto before = set.repl().stateBits();
    set.probe(3);
    set.probe(999);
    EXPECT_EQ(set.repl().stateBits(), before);
}

TEST(CacheSet, InvalidateRemovesLine)
{
    auto set = makeSet();
    access(set, 7);
    EXPECT_TRUE(set.invalidate(7));
    EXPECT_FALSE(set.probe(7).has_value());
    EXPECT_FALSE(set.invalidate(7));
}

TEST(CacheSet, PrefetchFillInstallsAndPromotes)
{
    auto set = makeSet();
    const auto fill = set.prefetchFill(5, 0, 0);
    EXPECT_TRUE(fill.filled);
    const auto again = set.prefetchFill(5, 0, 0);
    EXPECT_TRUE(again.hit);
}

TEST(CacheSet, ResetClearsEverything)
{
    auto set = makeSet();
    for (Addr t = 0; t < 8; ++t)
        access(set, t);
    set.reset();
    EXPECT_EQ(set.occupancy(), 0u);
    for (Addr t = 0; t < 8; ++t)
        EXPECT_FALSE(set.probe(t).has_value());
}

TEST(CacheSet, CopyIsDeep)
{
    auto set = makeSet();
    access(set, 1);
    CacheSet copy(set);
    access(copy, 2);
    EXPECT_TRUE(copy.probe(2).has_value());
    EXPECT_FALSE(set.probe(2).has_value());
}

TEST(CacheSet, TracksFillingThread)
{
    auto set = makeSet();
    set.access(11, 0, false, LockReq::None, 3);
    const auto way = set.probe(11);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(set.line(*way).filled_by, 3u);
}

// --------------------------------------------------------- lock bits

TEST(PlCacheSet, LockBitSetAndCleared)
{
    auto set = makeSet(8, ReplPolicyKind::TreePlru, PlMode::Original);
    access(set, 1, LockReq::Lock);
    const auto way = set.probe(1);
    ASSERT_TRUE(way.has_value());
    EXPECT_TRUE(set.line(*way).locked);
    access(set, 1, LockReq::Unlock);
    EXPECT_FALSE(set.line(*way).locked);
}

TEST(PlCacheSet, LockIgnoredWhenDisabled)
{
    auto set = makeSet(8, ReplPolicyKind::TreePlru, PlMode::Disabled);
    access(set, 1, LockReq::Lock);
    const auto way = set.probe(1);
    ASSERT_TRUE(way.has_value());
    EXPECT_FALSE(set.line(*way).locked);
}

TEST(PlCacheSet, LockedLineSurvivesPressure)
{
    auto set = makeSet(8, ReplPolicyKind::TreePlru, PlMode::Original);
    access(set, 42, LockReq::Lock);
    for (Addr t = 100; t < 140; ++t)
        access(set, t);
    EXPECT_TRUE(set.probe(42).has_value());
}

TEST(PlCacheSet, OriginalBypassesWhenVictimLocked)
{
    auto set = makeSet(2, ReplPolicyKind::TrueLru, PlMode::Original);
    access(set, 1, LockReq::Lock);
    access(set, 2, LockReq::Lock);
    // Both ways locked: an incoming miss is handled uncached.
    const auto res = access(set, 3);
    EXPECT_TRUE(res.bypassed);
    EXPECT_FALSE(res.filled);
    EXPECT_FALSE(set.probe(3).has_value());
}

TEST(PlCacheSet, OriginalUpdatesLruOnLockedHit)
{
    // The vulnerability: a hit on a locked line still updates the
    // replacement state (white-box behaviour of Fig. 10).
    auto set = makeSet(8, ReplPolicyKind::TreePlru, PlMode::Original);
    for (Addr t = 0; t < 8; ++t)
        access(set, t);
    access(set, 0, LockReq::Lock);
    const auto before = set.repl().stateBits();
    access(set, 0); // locked hit
    // Touching way 0 right after touching it is idempotent; touch way 1
    // then the locked way and expect a state change.
    access(set, 1);
    const auto mid = set.repl().stateBits();
    access(set, 0);
    EXPECT_NE(set.repl().stateBits(), mid);
    (void)before;
}

TEST(PlCacheSet, FixedDoesNotUpdateLruOnLockedHit)
{
    // The paper's fix (blue boxes): locked hits leave the state alone.
    auto set = makeSet(8, ReplPolicyKind::TreePlru, PlMode::FixedLruLock);
    for (Addr t = 0; t < 8; ++t)
        access(set, t);
    access(set, 0, LockReq::Lock);
    access(set, 1);
    const auto mid = set.repl().stateBits();
    access(set, 0); // locked hit: must NOT change the replacement state
    EXPECT_EQ(set.repl().stateBits(), mid);
}

TEST(PlCacheSet, FixedExcludesLockedWaysFromVictimSelection)
{
    auto set = makeSet(2, ReplPolicyKind::TrueLru, PlMode::FixedLruLock);
    access(set, 1, LockReq::Lock);
    access(set, 2);
    // Way with tag 1 is locked; repeated misses must churn the other way.
    for (Addr t = 10; t < 20; ++t) {
        const auto res = access(set, t);
        EXPECT_TRUE(res.filled);
        EXPECT_TRUE(set.probe(1).has_value());
    }
}

// ----------------------------------------------- utag (AMD) behaviour

TEST(CacheSetUtag, MismatchFlaggedAndRetrained)
{
    auto set = makeSet();
    set.access(9, /*utag=*/0xaa, /*check_utag=*/true, LockReq::None, 0);
    // Same tag, different utag: flagged once, then retrained.
    const auto first = set.access(9, 0xbb, true, LockReq::None, 1);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(first.utag_mismatch);
    const auto second = set.access(9, 0xbb, true, LockReq::None, 1);
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.utag_mismatch);
}

TEST(CacheSetUtag, NoCheckNoFlag)
{
    auto set = makeSet();
    set.access(9, 0xaa, false, LockReq::None, 0);
    const auto res = set.access(9, 0xbb, false, LockReq::None, 0);
    EXPECT_FALSE(res.utag_mismatch);
}

/** Property: occupancy never exceeds associativity. */
class SetChurn : public ::testing::TestWithParam<ReplPolicyKind>
{};

TEST_P(SetChurn, OccupancyBounded)
{
    auto set = makeSet(8, GetParam());
    Xoshiro256 rng(5);
    for (int i = 0; i < 5000; ++i) {
        access(set, rng.below(32));
        ASSERT_LE(set.occupancy(), 8u);
    }
    EXPECT_EQ(set.occupancy(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Policies, SetChurn,
                         ::testing::Values(ReplPolicyKind::TrueLru,
                                           ReplPolicyKind::TreePlru,
                                           ReplPolicyKind::BitPlru,
                                           ReplPolicyKind::Fifo,
                                           ReplPolicyKind::Random,
                                           ReplPolicyKind::Srrip));
