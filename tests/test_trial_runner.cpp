/**
 * @file
 * Tests for the trial-parallel runner: results must be bit-identical
 * for any worker count, trials must see independent counter-seeded
 * streams, and exceptions must propagate.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/trial_runner.hpp"

using namespace lruleak;
using namespace lruleak::core;

TEST(TrialRunner, ResultsAreInTrialOrder)
{
    const auto results = runTrials(
        100, 1,
        [](std::uint32_t trial, sim::Xoshiro256 &) { return trial * 3; },
        4);
    ASSERT_EQ(results.size(), 100u);
    for (std::uint32_t t = 0; t < 100; ++t)
        EXPECT_EQ(results[t], t * 3);
}

TEST(TrialRunner, DeterministicAcrossThreadCounts)
{
    auto draw = [](std::uint32_t, sim::Xoshiro256 &rng) {
        // A value that depends on the trial's whole stream.
        std::uint64_t acc = 0;
        for (int i = 0; i < 16; ++i)
            acc ^= rng();
        return acc;
    };
    const auto serial = runTrials(64, 7, draw, 1);
    for (unsigned threads : {2u, 3u, 8u}) {
        const auto parallel = runTrials(64, 7, draw, threads);
        EXPECT_EQ(parallel, serial) << threads << " threads";
    }
}

TEST(TrialRunner, TrialStreamsAreIndependentOfEachOther)
{
    // Counter-based seeding: distinct trials yield distinct streams,
    // and the same (seed, trial) always yields the same stream.
    std::set<std::uint64_t> firsts;
    for (std::uint64_t t = 0; t < 100; ++t) {
        auto rng = trialStream(5, t);
        firsts.insert(rng());
    }
    EXPECT_EQ(firsts.size(), 100u) << "trial streams collide";

    auto a = trialStream(5, 42);
    auto b = trialStream(5, 42);
    EXPECT_EQ(a(), b());
}

TEST(TrialRunner, DifferentSeedsGiveDifferentStreams)
{
    auto a = trialStream(1, 0);
    auto b = trialStream(2, 0);
    EXPECT_NE(a(), b());
}

TEST(TrialRunner, ReduceFoldsInTrialOrder)
{
    // A non-commutative fold exposes any ordering violation.
    const auto digits = runTrialsReduce(
        6, 0,
        [](std::uint32_t trial, sim::Xoshiro256 &) {
            return std::to_string(trial);
        },
        std::string{},
        [](std::string acc, std::string d) { return acc + d; }, 4);
    EXPECT_EQ(digits, "012345");
}

TEST(TrialRunner, PropagatesExceptions)
{
    EXPECT_THROW(
        runTrials(
            16, 0,
            [](std::uint32_t trial, sim::Xoshiro256 &) -> int {
                if (trial == 7)
                    throw std::runtime_error("trial 7 failed");
                return 0;
            },
            4),
        std::runtime_error);
}

TEST(TrialRunner, ZeroTrials)
{
    const auto results = runTrials(
        0, 1, [](std::uint32_t, sim::Xoshiro256 &) { return 1; });
    EXPECT_TRUE(results.empty());
}
