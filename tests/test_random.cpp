/**
 * @file
 * Tests for the deterministic RNG (sim/random.hpp).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.hpp"

using lruleak::sim::Xoshiro256;

TEST(Random, SameSeedSameStream)
{
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Random, BelowStaysInRange)
{
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Random, BelowZeroBoundYieldsZero)
{
    Xoshiro256 rng(7);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Random, BelowCoversAllValues)
{
    Xoshiro256 rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, RangeInclusive)
{
    Xoshiro256 rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformIsInUnitInterval)
{
    Xoshiro256 rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceRespectsProbability)
{
    Xoshiro256 rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Random, GaussianMoments)
{
    Xoshiro256 rng(17);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Random, GaussianBounded)
{
    // Irwin-Hall sum of 12 uniforms is bounded by +-6 sigma.
    Xoshiro256 rng(19);
    for (int i = 0; i < 10000; ++i) {
        const double g = rng.gaussian();
        ASSERT_GE(g, -6.0);
        ASSERT_LE(g, 6.0);
    }
}

TEST(Random, ForkProducesIndependentStream)
{
    Xoshiro256 a(21);
    Xoshiro256 b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Random, UsableWithStdShuffleConcepts)
{
    // min/max bounds declared correctly for UniformRandomBitGenerator.
    EXPECT_EQ(Xoshiro256::min(), 0u);
    EXPECT_EQ(Xoshiro256::max(), ~0ULL);
}
