/**
 * @file
 * Randomized differential suite: exec::Engine with each arbitration
 * policy must be trace-identical — operation order, result levels,
 * measured latencies, timestamps, final clock, per-thread cache
 * counters — to the ad-hoc scheduler it replaced.  The oracles are the
 * seed implementations preserved verbatim in legacy_schedulers.hpp
 * (the production schedulers are shims over the engine, so comparing
 * against *them* would prove nothing).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "exec/engine.hpp"
#include "legacy_schedulers.hpp"
#include "sim/access_port.hpp"
#include "sim/hierarchy.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::exec;

namespace {

/** Replays a pre-generated random op script; records every result. */
class RandomProgram : public ThreadProgram
{
  public:
    RandomProgram(std::uint64_t seed, std::size_t ops, sim::Addr base)
    {
        // Materialise the script up front so both runs consume an
        // identical op sequence regardless of scheduling.
        sim::Xoshiro256 rng(seed);
        script_.reserve(ops);
        for (std::size_t i = 0; i < ops; ++i) {
            const std::uint64_t kind = rng.below(100);
            const sim::Addr line = base + rng.below(96) * 64;
            if (kind < 60) {
                script_.push_back(Op::access(sim::MemRef::load(line)));
            } else if (kind < 75) {
                script_.push_back(
                    Op::measure(sim::MemRef::load(line), chain_));
            } else if (kind < 85) {
                script_.push_back(Op::flush(sim::MemRef::load(line)));
            } else {
                // Relative spin; the deadline is fixed at yield time.
                spin_gaps_[script_.size()] = 50 + rng.below(400);
                script_.push_back(Op::spinUntil(0));
            }
        }
    }

    Op
    next(std::uint64_t now) override
    {
        if (index_ >= script_.size())
            return Op::done();
        Op op = script_[index_];
        const auto gap = spin_gaps_.find(index_);
        if (gap != spin_gaps_.end())
            op.until = now + gap->second;
        ++index_;
        // Thread id is assigned by the scheduler under test; stamp the
        // refs here so counter attribution matches.
        op.ref.thread = threadId();
        yield_times_.push_back(now);
        return op;
    }

    void
    onResult(const OpResult &result) override
    {
        results_.push_back(result);
    }

    /** Reset for the next run of the same script. */
    void
    rewind()
    {
        index_ = 0;
        results_.clear();
        yield_times_.clear();
    }

    const std::vector<OpResult> &results() const { return results_; }
    const std::vector<std::uint64_t> &yieldTimes() const
    {
        return yield_times_;
    }

  private:
    /** Owns the chain the measure ops' spans view. */
    std::vector<sim::HitLevel> chain_ =
        std::vector<sim::HitLevel>(7, sim::HitLevel::L1);
    std::vector<Op> script_;
    std::map<std::size_t, std::uint64_t> spin_gaps_;
    std::size_t index_ = 0;
    std::vector<OpResult> results_;
    std::vector<std::uint64_t> yield_times_;
};

void
expectSameTrace(const RandomProgram &a, const RandomProgram &b)
{
    ASSERT_EQ(a.results().size(), b.results().size());
    for (std::size_t i = 0; i < a.results().size(); ++i) {
        EXPECT_EQ(a.results()[i].kind, b.results()[i].kind) << i;
        EXPECT_EQ(a.results()[i].level, b.results()[i].level) << i;
        EXPECT_EQ(a.results()[i].measured, b.results()[i].measured) << i;
        EXPECT_EQ(a.results()[i].tsc, b.results()[i].tsc) << i;
    }
    ASSERT_EQ(a.yieldTimes().size(), b.yieldTimes().size());
    for (std::size_t i = 0; i < a.yieldTimes().size(); ++i)
        EXPECT_EQ(a.yieldTimes()[i], b.yieldTimes()[i]) << i;
}

void
expectSameCounters(const sim::Cache &a, const sim::Cache &b,
                   sim::ThreadId thread)
{
    const auto sa = a.counters().forThread(thread);
    const auto sb = b.counters().forThread(thread);
    EXPECT_EQ(sa.accesses, sb.accesses);
    EXPECT_EQ(sa.misses, sb.misses);
}

// ----------------------------------------------------------------- SMT

TEST(EngineDifferential, RoundRobinSmtMatchesLegacySmtScheduler)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RandomProgram a0(seed * 11, 2500, 0x10000);
        RandomProgram a1(seed * 13, 2000, 0x50000);
        sim::CacheHierarchy legacy_h;
        legacy::LegacySmtScheduler::Config lc;
        lc.seed = seed;
        legacy::LegacySmtScheduler legacy(
            legacy_h, timing::Uarch::intelXeonE52690(), lc);
        const auto legacy_end = legacy.run(a0, a1, 1);

        RandomProgram b0(seed * 11, 2500, 0x10000);
        RandomProgram b1(seed * 13, 2000, 0x50000);
        sim::CacheHierarchy engine_h;
        sim::SingleCorePort port(engine_h);
        RoundRobinSmt policy;
        EngineConfig ec;
        ec.seed = seed;
        Engine engine(port, timing::Uarch::intelXeonE52690(), policy, ec);
        const auto engine_end = engine.run(b0, b1, 1);

        EXPECT_EQ(legacy_end, engine_end) << "seed " << seed;
        expectSameTrace(a0, b0);
        expectSameTrace(a1, b1);
        for (sim::ThreadId t : {0u, 1u}) {
            expectSameCounters(legacy_h.l1(), engine_h.l1(), t);
            expectSameCounters(legacy_h.l2(), engine_h.l2(), t);
            expectSameCounters(legacy_h.llc(), engine_h.llc(), t);
        }
    }
}

// ----------------------------------------------------------- TimeSlice

TEST(EngineDifferential, TimeSliceMatchesLegacyTimeSliceScheduler)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        // Small quanta and busy OS knobs so a run crosses many slices,
        // background slices, ticks and spin fast-forwards.
        legacy::LegacyTimeSliceScheduler::Config lc;
        lc.quantum = 5'000;
        lc.quantum_jitter = 2'000;
        lc.switch_cost = 300;
        lc.kernel_noise_lines = 8;
        lc.background_prob = 0.3;
        lc.background_lines = 32;
        lc.tick_period = 2'500;
        lc.tick_lines = 4;
        lc.seed = seed;

        RandomProgram a0(seed * 17, 1500, 0x10000);
        RandomProgram a1(seed * 19, 1200, 0x50000);
        sim::CacheHierarchy legacy_h;
        legacy::LegacyTimeSliceScheduler legacy(
            legacy_h, timing::Uarch::intelXeonE52690(), lc);
        const auto legacy_end = legacy.run(a0, a1, 1);

        TimeSlicePolicyConfig pc;
        pc.quantum = lc.quantum;
        pc.quantum_jitter = lc.quantum_jitter;
        pc.switch_cost = lc.switch_cost;
        pc.kernel_noise_lines = lc.kernel_noise_lines;
        pc.background_prob = lc.background_prob;
        pc.background_lines = lc.background_lines;
        pc.tick_period = lc.tick_period;
        pc.tick_lines = lc.tick_lines;

        RandomProgram b0(seed * 17, 1500, 0x10000);
        RandomProgram b1(seed * 19, 1200, 0x50000);
        sim::CacheHierarchy engine_h;
        sim::SingleCorePort port(engine_h);
        TimeSlice policy(pc);
        EngineConfig ec;
        ec.seed = seed;
        ec.max_cycles = lc.max_cycles;
        Engine engine(port, timing::Uarch::intelXeonE52690(), policy, ec);
        const auto engine_end = engine.run(b0, b1, 1);

        EXPECT_EQ(legacy_end, engine_end) << "seed " << seed;
        expectSameTrace(a0, b0);
        expectSameTrace(a1, b1);
        for (sim::ThreadId t :
             {sim::ThreadId{0}, sim::ThreadId{1},
              legacy::LegacyTimeSliceScheduler::kKernelThread,
              legacy::LegacyTimeSliceScheduler::kBackgroundThread}) {
            expectSameCounters(legacy_h.l1(), engine_h.l1(), t);
            expectSameCounters(legacy_h.l2(), engine_h.l2(), t);
            expectSameCounters(legacy_h.llc(), engine_h.llc(), t);
        }
    }
}

// ----------------------------------------------------------- MultiCore

TEST(EngineDifferential, LowestClockMatchesLegacyMultiCoreScheduler)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        constexpr std::uint32_t kCores = 4;
        sim::MultiCoreConfig mc;
        mc.cores = kCores;
        mc.seed = seed;

        std::vector<std::unique_ptr<RandomProgram>> as, bs;
        std::vector<ThreadProgram *> a_ptrs;
        std::vector<ThreadSpec> b_specs;
        for (std::uint32_t c = 0; c < kCores; ++c) {
            const std::uint64_t pseed = seed * 23 + c;
            const std::size_t ops = 1200 - 100 * c;
            const sim::Addr base = 0x10000 + c * 0x40000;
            as.push_back(
                std::make_unique<RandomProgram>(pseed, ops, base));
            bs.push_back(
                std::make_unique<RandomProgram>(pseed, ops, base));
            a_ptrs.push_back(as.back().get());
            b_specs.push_back(ThreadSpec{bs.back().get(), c});
        }

        sim::MultiCoreHierarchy legacy_h(mc);
        legacy::LegacyMultiCoreScheduler::Config lc;
        lc.seed = seed;
        lc.audit_every = 64;
        legacy::LegacyMultiCoreScheduler legacy(
            legacy_h, timing::Uarch::intelXeonE52690(), lc);
        const auto legacy_end = legacy.run(a_ptrs, /*primary=*/1);

        sim::MultiCoreHierarchy engine_h(mc);
        sim::MultiCorePort port(engine_h);
        LowestClock policy;
        EngineConfig ec;
        ec.seed = seed;
        ec.audit_every = 64;
        Engine engine(port, timing::Uarch::intelXeonE52690(), policy, ec);
        const auto engine_end = engine.run(b_specs, /*primary=*/1);

        EXPECT_EQ(legacy_end, engine_end) << "seed " << seed;
        for (std::uint32_t c = 0; c < kCores; ++c) {
            expectSameTrace(*as[c], *bs[c]);
            expectSameCounters(legacy_h.l1(c), engine_h.l1(c), c);
            expectSameCounters(legacy_h.l2(c), engine_h.l2(c), c);
            expectSameCounters(legacy_h.llc(), engine_h.llc(), c);
        }
        EXPECT_EQ(legacy_h.backInvalidations(),
                  engine_h.backInvalidations());
    }
}

} // namespace
