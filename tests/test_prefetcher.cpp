/**
 * @file
 * Tests for the prefetcher models (Appendix C noise source).
 */

#include <gtest/gtest.h>

#include "sim/prefetcher.hpp"
#include "sim/random.hpp"

using namespace lruleak::sim;

TEST(NextLine, PrefetchesOnMissOnly)
{
    NextLinePrefetcher pf(64);
    const auto on_hit = pf.observe(MemRef::load(0x1000), true);
    EXPECT_TRUE(on_hit.empty());
    const auto on_miss = pf.observe(MemRef::load(0x1000), false);
    ASSERT_EQ(on_miss.size(), 1u);
    EXPECT_EQ(on_miss[0], 0x1040u);
}

TEST(NextLine, AlignsToLineBase)
{
    NextLinePrefetcher pf(64);
    const auto out = pf.observe(MemRef::load(0x1037), false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1040u);
}

TEST(Stride, NeedsTwoConfirmations)
{
    StridePrefetcher pf(64, 2);
    EXPECT_TRUE(pf.observe(MemRef::load(0x0000), false).empty());
    EXPECT_TRUE(pf.observe(MemRef::load(0x0040), false).empty());
    EXPECT_TRUE(pf.observe(MemRef::load(0x0080), false).empty());
    const auto out = pf.observe(MemRef::load(0x00c0), false);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x0100u);
    EXPECT_EQ(out[1], 0x0140u);
}

TEST(Stride, DetectsNegativeStride)
{
    StridePrefetcher pf(64, 1);
    pf.observe(MemRef::load(0x1000), false);
    pf.observe(MemRef::load(0x0fc0), false);
    pf.observe(MemRef::load(0x0f80), false);
    const auto out = pf.observe(MemRef::load(0x0f40), false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x0f00u);
}

TEST(Stride, RandomPatternStaysQuiet)
{
    StridePrefetcher pf(64, 2);
    Xoshiro256 rng(8);
    std::size_t prefetches = 0;
    for (int i = 0; i < 200; ++i)
        prefetches += pf.observe(
            MemRef::load(rng.below(1 << 20) * 64), false).size();
    // Occasional accidental stride pairs are fine; a flood is not.
    EXPECT_LT(prefetches, 20u);
}

TEST(Stride, StreamsArePerThread)
{
    StridePrefetcher pf(64, 1);
    // Thread 0 walks evenly; thread 1 interleaves randomly.
    pf.observe(MemRef::load(0x0000, 0), false);
    pf.observe(MemRef::load(0x9000, 1), false);
    pf.observe(MemRef::load(0x0040, 0), false);
    pf.observe(MemRef::load(0x5000, 1), false);
    pf.observe(MemRef::load(0x0080, 0), false);
    const auto out = pf.observe(MemRef::load(0x00c0, 0), false);
    EXPECT_FALSE(out.empty());
}

TEST(Stride, ResetForgetsTraining)
{
    StridePrefetcher pf(64, 1);
    pf.observe(MemRef::load(0x0000), false);
    pf.observe(MemRef::load(0x0040), false);
    pf.observe(MemRef::load(0x0080), false);
    pf.reset();
    EXPECT_TRUE(pf.observe(MemRef::load(0x00c0), false).empty());
}
