/**
 * @file
 * Tests for the Cache level: VIPT indexing, counters, flush, and the
 * AMD way-predictor integration.
 */

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/way_predictor.hpp"

using namespace lruleak::sim;

namespace {

Cache
makeL1(ReplPolicyKind kind = ReplPolicyKind::TreePlru,
       bool way_predictor = false)
{
    return Cache(CacheConfig::intelL1d(kind), PlMode::Disabled,
                 way_predictor);
}

} // namespace

TEST(CacheConfigTest, GeometryDerivation)
{
    const auto cfg = CacheConfig::intelL1d();
    EXPECT_EQ(cfg.numSets(), 64u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(CacheConfigTest, RejectsNonPowerOfTwo)
{
    CacheConfig cfg;
    cfg.size_bytes = 3000;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_THROW({ Cache bad(cfg); }, std::invalid_argument);
}

TEST(CacheTest, VirtualIndexPhysicalTag)
{
    auto cache = makeL1();
    // Same paddr accessed through two vaddrs with equal page-offset bits
    // must land in the same set and hit.
    const Addr paddr = 0x1234'0040;
    const MemRef a{0x5000'0040, paddr, 0, false};
    const MemRef b{0x9999'0040, paddr, 1, false};
    EXPECT_FALSE(cache.access(a).hit);
    EXPECT_TRUE(cache.access(b).hit);
}

TEST(CacheTest, DifferentSetsDoNotConflict)
{
    auto cache = makeL1();
    // Fill set 0 to capacity; set 1 lines must be untouched.
    const AddressLayout &layout = cache.layout();
    for (std::uint32_t i = 0; i < 8; ++i)
        cache.access(MemRef::load(lineInSet(layout, 1, i)));
    for (std::uint32_t i = 0; i < 64; ++i)
        cache.access(MemRef::load(lineInSet(layout, 0, i)));
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.contains(MemRef::load(lineInSet(layout, 1, i))));
}

TEST(CacheTest, CountersSplitPerThread)
{
    auto cache = makeL1();
    cache.access(MemRef::load(0x40, 0)); // miss
    cache.access(MemRef::load(0x40, 0)); // hit
    cache.access(MemRef::load(0x40, 1)); // hit
    EXPECT_EQ(cache.counters().forThread(0).accesses, 2u);
    EXPECT_EQ(cache.counters().forThread(0).misses, 1u);
    EXPECT_EQ(cache.counters().forThread(1).hits, 1u);
    EXPECT_EQ(cache.counters().total().accesses, 3u);
}

TEST(CacheTest, FlushRemovesLine)
{
    auto cache = makeL1();
    const auto ref = MemRef::load(0x7c0);
    cache.access(ref);
    EXPECT_TRUE(cache.flush(ref));
    EXPECT_FALSE(cache.contains(ref));
    EXPECT_FALSE(cache.flush(ref));
}

TEST(CacheTest, EvictedLineAddressIsReconstructed)
{
    auto cache = makeL1();
    const AddressLayout &layout = cache.layout();
    for (std::uint32_t i = 0; i < 8; ++i)
        cache.access(MemRef::load(lineInSet(layout, 5, i)));
    const auto res = cache.access(MemRef::load(lineInSet(layout, 5, 8)));
    ASSERT_TRUE(res.evicted_line.has_value());
    EXPECT_EQ(layout.setIndex(*res.evicted_line), 5u);
    EXPECT_EQ(*res.evicted_line, lineInSet(layout, 5, 0));
}

TEST(CacheTest, ResetClearsContentsAndCounters)
{
    auto cache = makeL1();
    cache.access(MemRef::load(0x40));
    cache.reset();
    EXPECT_FALSE(cache.contains(MemRef::load(0x40)));
    EXPECT_EQ(cache.counters().total().accesses, 0u);
}

TEST(CacheTest, PerSetPolicySeedsDiffer)
{
    // Random-policy sets must not evict in lockstep.
    CacheConfig cfg = CacheConfig::intelL1d(ReplPolicyKind::Random);
    Cache cache(cfg);
    const AddressLayout &layout = cache.layout();
    // Fill two sets, then force one eviction in each.
    std::uint32_t victims[2] = {};
    for (std::uint32_t s = 0; s < 2; ++s) {
        for (std::uint32_t i = 0; i < 8; ++i)
            cache.access(MemRef::load(lineInSet(layout, s, i)));
        victims[s] = cache.access(
            MemRef::load(lineInSet(layout, s, 8))).way;
    }
    // Weak check: over many sets, victim ways must not all be equal.
    bool differ = victims[0] != victims[1];
    for (std::uint32_t s = 2; s < 16 && !differ; ++s) {
        for (std::uint32_t i = 0; i < 8; ++i)
            cache.access(MemRef::load(lineInSet(layout, s, i)));
        differ = cache.access(MemRef::load(lineInSet(layout, s, 8))).way !=
                 victims[0];
    }
    EXPECT_TRUE(differ);
}

// ----------------------------------------------------- way predictor

TEST(WayPredictorTest, SameVaddrSameUtag)
{
    EXPECT_EQ(WayPredictor::utag(0x1000), WayPredictor::utag(0x1000));
    // Same line, different offset: same utag.
    EXPECT_EQ(WayPredictor::utag(0x1000), WayPredictor::utag(0x103f));
}

TEST(WayPredictorTest, DistinctVaddrsUsuallyDiffer)
{
    int collisions = 0;
    const Addr base = 0x4000'0000;
    for (int i = 1; i <= 200; ++i) {
        if (WayPredictor::utag(base) ==
            WayPredictor::utag(base + static_cast<Addr>(i) * 0x10000))
            ++collisions;
    }
    // 8-bit utag: expect ~200/256 < 5 collisions on average.
    EXPECT_LT(collisions, 10);
}

TEST(CacheTest, UtagMismatchOnVaddrAlias)
{
    // Section VI-B: same physical line accessed via two linear addresses
    // behaves like a miss on AMD even though the data is in L1.
    auto cache = makeL1(ReplPolicyKind::TreePlru, /*way_predictor=*/true);
    const Addr paddr = 0x0040;
    const MemRef sender{0x7000'0040, paddr, 0, false};
    const MemRef receiver{0x9000'0040, paddr, 1, false};

    cache.access(receiver);             // fill, utag = receiver's
    cache.access(sender);               // hit but utag mismatch, retrain
    const auto res = cache.access(receiver); // mismatch again
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.utag_mismatch);
}

TEST(CacheTest, NoUtagCheckWhenPredictorDisabled)
{
    auto cache = makeL1(ReplPolicyKind::TreePlru, false);
    const Addr paddr = 0x0040;
    cache.access(MemRef{0x7000'0040, paddr, 0, false});
    const auto res = cache.access(MemRef{0x9000'0040, paddr, 1, false});
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.utag_mismatch);
}

/** Property sweep: with N-way sets, N distinct same-set lines coexist
 *  and the (N+1)-th evicts exactly one. */
class Associativity : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(Associativity, FullSetPlusOne)
{
    CacheConfig cfg;
    cfg.ways = GetParam();
    cfg.size_bytes = cfg.ways * 64 * 64;
    Cache cache(cfg);
    const AddressLayout &layout = cache.layout();
    for (std::uint32_t i = 0; i < cfg.ways; ++i)
        EXPECT_FALSE(cache.access(
            MemRef::load(lineInSet(layout, 3, i))).hit);
    for (std::uint32_t i = 0; i < cfg.ways; ++i)
        EXPECT_TRUE(cache.access(
            MemRef::load(lineInSet(layout, 3, i))).hit);
    const auto res = cache.access(
        MemRef::load(lineInSet(layout, 3, cfg.ways)));
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.evicted_line.has_value());
}

INSTANTIATE_TEST_SUITE_P(Ways, Associativity,
                         ::testing::Values(2u, 4u, 8u, 16u));

// ------------------------------------------------------------ batch API

TEST(CacheBatch, MatchesPerAccessPathAndCounters)
{
    auto batched = makeL1();
    auto serial = makeL1();
    const AddressLayout &layout = batched.layout();

    std::vector<MemRef> refs;
    Xoshiro256 rng(17);
    for (int i = 0; i < 3000; ++i) {
        const auto set = static_cast<std::uint32_t>(rng.below(4));
        const auto line = static_cast<std::uint32_t>(rng.below(12));
        refs.push_back(MemRef::load(lineInSet(layout, set, line)));
    }

    std::vector<CacheAccessResult> results(refs.size());
    batched.accessBatch(refs, results);

    for (std::size_t i = 0; i < refs.size(); ++i) {
        const auto res = serial.access(refs[i]);
        ASSERT_EQ(results[i].hit, res.hit) << "access " << i;
        ASSERT_EQ(results[i].set, res.set) << "access " << i;
        ASSERT_EQ(results[i].way, res.way) << "access " << i;
        ASSERT_EQ(results[i].evicted_line, res.evicted_line)
            << "access " << i;
    }

    // Bulk counter tallies must equal the per-access ones.
    EXPECT_EQ(batched.counters().total().accesses,
              serial.counters().total().accesses);
    EXPECT_EQ(batched.counters().total().hits,
              serial.counters().total().hits);
    EXPECT_EQ(batched.counters().forThread(0).misses,
              serial.counters().forThread(0).misses);
}

TEST(CacheBatch, PerThreadCounterRuns)
{
    auto cache = makeL1();
    const AddressLayout &layout = cache.layout();
    std::vector<MemRef> refs;
    for (std::uint32_t i = 0; i < 4; ++i)
        refs.push_back(MemRef{lineInSet(layout, 1, i),
                              lineInSet(layout, 1, i), /*thread=*/0,
                              false});
    for (std::uint32_t i = 0; i < 3; ++i)
        refs.push_back(MemRef{lineInSet(layout, 2, i),
                              lineInSet(layout, 2, i), /*thread=*/7,
                              false});
    refs.push_back(MemRef{lineInSet(layout, 1, 0),
                          lineInSet(layout, 1, 0), /*thread=*/0, false});

    std::vector<CacheAccessResult> results(refs.size());
    cache.accessBatch(refs, results);

    EXPECT_EQ(cache.counters().forThread(0).accesses, 5u);
    EXPECT_EQ(cache.counters().forThread(0).hits, 1u);
    EXPECT_EQ(cache.counters().forThread(7).accesses, 3u);
    EXPECT_EQ(cache.counters().total().accesses, 8u);
}
