/**
 * @file
 * Tests for the ResultSink emitters, including a JSON golden test for
 * the cheap Table I experiment: stable structure, stable numbers for a
 * fixed seed, and run-to-run determinism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/result_sink.hpp"

using namespace lruleak::core;

namespace {

std::string
runToString(const std::string &experiment, OutputFormat format,
            const std::map<std::string, std::string> &overrides)
{
    const Experiment *e = Registry::instance().find(experiment);
    EXPECT_NE(e, nullptr) << experiment;
    std::ostringstream os;
    const auto sink = makeSink(format, os);
    runExperiment(*e, overrides, *sink);
    return os.str();
}

/** Minimal structural JSON check: balanced braces/brackets outside
 *  strings, and the whole document is one object. */
bool
jsonBalanced(const std::string &s)
{
    int brace = 0, bracket = 0;
    bool in_string = false, escaped = false;
    for (char c : s) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': ++brace; break;
          case '}': --brace; break;
          case '[': ++bracket; break;
          case ']': --bracket; break;
          default: break;
        }
        if (brace < 0 || bracket < 0)
            return false;
    }
    return brace == 0 && bracket == 0 && !in_string;
}

} // namespace

TEST(JsonEscape, ControlAndQuoteHandling)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(OutputFormats, ParseAndReject)
{
    EXPECT_EQ(outputFormatFromName("table"), OutputFormat::Table);
    EXPECT_EQ(outputFormatFromName("json"), OutputFormat::Json);
    EXPECT_EQ(outputFormatFromName("csv"), OutputFormat::Csv);
    EXPECT_THROW(outputFormatFromName("yaml"), std::invalid_argument);
}

TEST(TableSinkOutput, RendersTableAndNotes)
{
    const auto out = runToString("tab1_plru_eviction",
                                 OutputFormat::Table,
                                 {{"trials", "300"}});
    EXPECT_NE(out.find("Table I"), std::string::npos);
    EXPECT_NE(out.find("Init.Cond."), std::string::npos);
    // True LRU always evicts line 0 once the set wraps.
    EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(JsonGolden, Tab1StructureAndNumbers)
{
    const auto out = runToString("tab1_plru_eviction", OutputFormat::Json,
                                 {{"trials", "300"}});

    EXPECT_TRUE(jsonBalanced(out)) << out;
    EXPECT_EQ(out.find("{"), 0u);

    // Header block.
    EXPECT_NE(out.find("\"experiment\": \"tab1_plru_eviction\""),
              std::string::npos);
    EXPECT_NE(out.find("\"trials\": \"300\""), std::string::npos);
    EXPECT_NE(out.find("\"seed\": \"2020\""), std::string::npos);

    // One table with the paper's column set.
    EXPECT_NE(out.find("\"kind\": \"table\""), std::string::npos);
    EXPECT_NE(out.find("\"LRU Seq.1&2\""), std::string::npos);
    EXPECT_NE(out.find("\"Tree Seq.2\""), std::string::npos);

    // Golden numbers: the True-LRU column is exactly 100% in every row
    // (Sequence 1 accesses 9 distinct lines into an 8-way set), and the
    // row labels are the paper's iteration milestones.
    EXPECT_NE(out.find("\"100.0%\""), std::string::npos);
    EXPECT_NE(out.find("[\"Random\", \"1\", \"100.0%\""),
              std::string::npos);
    EXPECT_NE(out.find("[\"Sequential\", \">=8\", \"100.0%\""),
              std::string::npos);
}

TEST(JsonGolden, DeterministicAcrossRuns)
{
    const std::map<std::string, std::string> overrides{
        {"trials", "300"}};
    const auto a = runToString("tab1_plru_eviction", OutputFormat::Json,
                               overrides);
    const auto b = runToString("tab1_plru_eviction", OutputFormat::Json,
                               overrides);
    EXPECT_EQ(a, b);
}

TEST(JsonGolden, SeedChangesMonteCarloCells)
{
    // Different seed -> different Tree-PLRU sample proportions (the
    // deterministic LRU column stays at 100%).
    const auto a = runToString("tab1_plru_eviction", OutputFormat::Json,
                               {{"trials", "300"}, {"seed", "1"}});
    const auto b = runToString("tab1_plru_eviction", OutputFormat::Json,
                               {{"trials", "300"}, {"seed", "2"}});
    EXPECT_NE(a, b);
}

TEST(CsvOutput, TableBecomesCommaRows)
{
    const auto out = runToString("tab1_plru_eviction", OutputFormat::Csv,
                                 {{"trials", "300"}});
    EXPECT_NE(out.find("# experiment: tab1_plru_eviction"),
              std::string::npos);
    EXPECT_NE(out.find("Init.Cond.,Iter.,LRU Seq.1&2"),
              std::string::npos);
    EXPECT_NE(out.find("Random,1,100.0%"), std::string::npos);
}

TEST(Sinks, ScalarAndSeriesRendering)
{
    std::ostringstream table_os, json_os, csv_os;
    const ParamMap params = resolveParams({}, {});

    TableSink ts(table_os);
    ts.begin("demo", "demo", params);
    ts.scalar("answer", 42.0);
    ts.series("trace", {1.0, 2.0, 3.0}, 2);
    ts.end();
    EXPECT_NE(table_os.str().find("answer = 42"), std::string::npos);

    JsonSink js(json_os);
    js.begin("demo", "demo", params);
    js.scalar("answer", 42.5);
    js.series("trace", {1.0, 2.5}, 2);
    js.end();
    EXPECT_TRUE(jsonBalanced(json_os.str()));
    EXPECT_NE(json_os.str().find("\"value\": 42.5"), std::string::npos);
    EXPECT_NE(json_os.str().find("[1, 2.5]"), std::string::npos);

    CsvSink cs(csv_os);
    cs.begin("demo", "demo", params);
    cs.series("trace", {1.0, 2.0}, 2);
    cs.scalar("answer", 7.0);
    cs.end();
    EXPECT_NE(csv_os.str().find("index,value"), std::string::npos);
    EXPECT_NE(csv_os.str().find("answer,7"), std::string::npos);
}
