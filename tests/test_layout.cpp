/**
 * @file
 * Tests for the channel address plan (channel/layout.hpp).
 */

#include <gtest/gtest.h>

#include <set>

#include "channel/layout.hpp"

using namespace lruleak;
using namespace lruleak::channel;

TEST(Layout, ReceiverLinesAllMapToTargetSet)
{
    const ChannelLayout layout(sim::CacheConfig::intelL1d(), 13, 63);
    for (auto alg : {LruAlgorithm::Alg1Shared, LruAlgorithm::Alg2Disjoint}) {
        for (std::uint32_t i = 0; i < layout.receiverLineCount(alg); ++i) {
            const auto ref = layout.receiverLine(alg, i);
            EXPECT_EQ(layout.layout().setIndex(ref.vaddr), 13u);
        }
    }
}

TEST(Layout, ReceiverLineCountMatchesAlgorithms)
{
    const ChannelLayout layout;
    // Algorithm 1 uses N+1 lines, Algorithm 2 uses N.
    EXPECT_EQ(layout.receiverLineCount(LruAlgorithm::Alg1Shared), 9u);
    EXPECT_EQ(layout.receiverLineCount(LruAlgorithm::Alg2Disjoint), 8u);
}

TEST(Layout, ReceiverLinesHaveDistinctTags)
{
    const ChannelLayout layout;
    std::set<sim::Addr> tags;
    for (std::uint32_t i = 0;
         i < layout.receiverLineCount(LruAlgorithm::Alg1Shared); ++i) {
        const auto ref = layout.receiverLine(LruAlgorithm::Alg1Shared, i);
        tags.insert(layout.layout().tag(ref.paddr));
    }
    EXPECT_EQ(tags.size(), 9u);
}

TEST(Layout, Alg1SharesOnePhysicalLine)
{
    const ChannelLayout layout;
    const auto s = layout.senderLine(LruAlgorithm::Alg1Shared);
    const auto r = layout.receiverLine(LruAlgorithm::Alg1Shared, 0);
    EXPECT_EQ(s.paddr, r.paddr);
    EXPECT_EQ(s.vaddr, r.vaddr); // same-mapping default
    EXPECT_NE(s.thread, r.thread);
}

TEST(Layout, Alg2LinesAreFullyDisjoint)
{
    const ChannelLayout layout;
    const auto s = layout.senderLine(LruAlgorithm::Alg2Disjoint);
    EXPECT_EQ(layout.layout().setIndex(s.vaddr), layout.targetSet());
    for (std::uint32_t i = 0;
         i < layout.receiverLineCount(LruAlgorithm::Alg2Disjoint); ++i) {
        const auto r = layout.receiverLine(LruAlgorithm::Alg2Disjoint, i);
        EXPECT_NE(layout.layout().tag(s.paddr), layout.layout().tag(r.paddr));
    }
}

TEST(Layout, CrossAddressSpaceAliasKeepsSetChangesVaddr)
{
    const ChannelLayout layout(sim::CacheConfig::intelL1d(), 7, 63,
                               /*shared_same_vaddr=*/false);
    const auto s = layout.sharedLine(kSenderThread);
    const auto r = layout.sharedLine(kReceiverThread);
    EXPECT_EQ(s.paddr, r.paddr) << "one physical line";
    EXPECT_NE(s.vaddr, r.vaddr) << "two mappings";
    EXPECT_EQ(layout.layout().setIndex(s.vaddr),
              layout.layout().setIndex(r.vaddr))
        << "VIPT: both mappings index the same set";
}

TEST(Layout, ChaseRefsLiveInChaseSet)
{
    const ChannelLayout layout(sim::CacheConfig::intelL1d(), 7, 62);
    const auto chase = layout.chaseRefs();
    EXPECT_EQ(chase.size(), 7u);
    std::set<sim::Addr> tags;
    for (const auto &ref : chase) {
        EXPECT_EQ(layout.layout().setIndex(ref.vaddr), 62u);
        tags.insert(layout.layout().tag(ref.paddr));
    }
    EXPECT_EQ(tags.size(), 7u);
}

TEST(Layout, ChaseSetDisjointFromTargetSet)
{
    const ChannelLayout layout;
    EXPECT_NE(layout.targetSet(), layout.chaseSet());
}

TEST(Layout, PartiesUseDifferentAddressSpaces)
{
    const ChannelLayout layout;
    const auto s = layout.senderLine(LruAlgorithm::Alg2Disjoint);
    const auto r = layout.receiverLine(LruAlgorithm::Alg2Disjoint, 0);
    // Tags far apart: distinct bases.
    EXPECT_NE(s.paddr >> 40, r.paddr >> 40);
}
