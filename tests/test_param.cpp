/**
 * @file
 * Tests for the declarative experiment parameters: defaults, overrides,
 * typed getters and every validation error path of resolveParams().
 */

#include <gtest/gtest.h>

#include "core/param.hpp"

using namespace lruleak::core;

namespace {

std::vector<ParamSpec>
demoSpecs()
{
    return {
        ParamSpec::integer("trials", 1000, "trial count"),
        ParamSpec::real("probability", 0.5, "coin bias"),
        ParamSpec::flag("verbose", false, "extra output"),
        ParamSpec::str("label", "default", "free text"),
        ParamSpec::choice("policy", "tree-plru", "replacement policy",
                          {"tree-plru", "bit-plru", "fifo"}),
    };
}

} // namespace

TEST(ParamSpec, BuildersRecordTypeAndDefault)
{
    const auto specs = demoSpecs();
    EXPECT_EQ(specs[0].type, ParamType::Int);
    EXPECT_EQ(specs[0].default_value, "1000");
    EXPECT_EQ(specs[1].type, ParamType::Real);
    EXPECT_EQ(specs[2].type, ParamType::Flag);
    EXPECT_EQ(specs[2].default_value, "false");
    EXPECT_EQ(specs[4].type, ParamType::Choice);
    EXPECT_EQ(specs[4].choices.size(), 3u);
}

TEST(ResolveParams, DefaultsApplyWhenNoOverrides)
{
    const ParamMap map = resolveParams(demoSpecs(), {});
    EXPECT_EQ(map.getInt("trials"), 1000);
    EXPECT_DOUBLE_EQ(map.getReal("probability"), 0.5);
    EXPECT_FALSE(map.getFlag("verbose"));
    EXPECT_EQ(map.getStr("label"), "default");
    EXPECT_EQ(map.getStr("policy"), "tree-plru");
}

TEST(ResolveParams, OverridesReplaceDefaults)
{
    const ParamMap map = resolveParams(demoSpecs(),
                                       {{"trials", "42"},
                                        {"verbose", "yes"},
                                        {"policy", "fifo"}});
    EXPECT_EQ(map.getInt("trials"), 42);
    EXPECT_TRUE(map.getFlag("verbose"));
    EXPECT_EQ(map.getStr("policy"), "fifo");
    // Untouched parameters keep their defaults.
    EXPECT_DOUBLE_EQ(map.getReal("probability"), 0.5);
}

TEST(ResolveParams, UnknownNameThrowsAndListsValidNames)
{
    try {
        resolveParams(demoSpecs(), {{"bogus", "1"}});
        FAIL() << "expected ParamError";
    } catch (const ParamError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bogus"), std::string::npos);
        EXPECT_NE(msg.find("trials"), std::string::npos);
        EXPECT_NE(msg.find("policy"), std::string::npos);
    }
}

TEST(ResolveParams, BadIntRejected)
{
    EXPECT_THROW(resolveParams(demoSpecs(), {{"trials", "12abc"}}),
                 ParamError);
    EXPECT_THROW(resolveParams(demoSpecs(), {{"trials", ""}}),
                 ParamError);
    EXPECT_THROW(resolveParams(demoSpecs(), {{"trials", "1.5"}}),
                 ParamError);
}

TEST(ResolveParams, BadRealRejected)
{
    EXPECT_THROW(resolveParams(demoSpecs(), {{"probability", "half"}}),
                 ParamError);
    EXPECT_THROW(resolveParams(demoSpecs(), {{"probability", "0.5x"}}),
                 ParamError);
}

TEST(ResolveParams, BadFlagRejected)
{
    EXPECT_THROW(resolveParams(demoSpecs(), {{"verbose", "maybe"}}),
                 ParamError);
}

TEST(ResolveParams, BadChoiceThrowsAndListsChoices)
{
    try {
        resolveParams(demoSpecs(), {{"policy", "mru"}});
        FAIL() << "expected ParamError";
    } catch (const ParamError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("mru"), std::string::npos);
        EXPECT_NE(msg.find("tree-plru"), std::string::npos);
        EXPECT_NE(msg.find("fifo"), std::string::npos);
    }
}

TEST(ParamMap, FlagSpellings)
{
    for (const char *t : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
        const auto map = resolveParams(demoSpecs(), {{"verbose", t}});
        EXPECT_TRUE(map.getFlag("verbose")) << t;
    }
    for (const char *f : {"0", "false", "no", "off", "OFF"}) {
        const auto map = resolveParams(demoSpecs(), {{"verbose", f}});
        EXPECT_FALSE(map.getFlag("verbose")) << f;
    }
}

TEST(ParamMap, UnsignedGettersRejectNegatives)
{
    const auto map = resolveParams(demoSpecs(), {{"trials", "-3"}});
    EXPECT_EQ(map.getInt("trials"), -3);
    EXPECT_THROW(map.getUint("trials"), ParamError);
    EXPECT_THROW(map.getUint32("trials"), ParamError);
}

TEST(ParamMap, UndeclaredLookupThrows)
{
    const auto map = resolveParams(demoSpecs(), {});
    EXPECT_FALSE(map.has("nope"));
    EXPECT_THROW(map.getInt("nope"), ParamError);
}

TEST(ParamMap, HexIntegersAccepted)
{
    const auto map = resolveParams(demoSpecs(), {{"trials", "0x10"}});
    EXPECT_EQ(map.getInt("trials"), 16);
}
