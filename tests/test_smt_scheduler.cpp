/**
 * @file
 * Tests for the SMT (hyper-threaded) execution model: exec::Engine
 * driving two programs on one core under the RoundRobinSmt policy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/hierarchy.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::exec;

namespace {

/** Static chain storage: Op::chain_levels views it (spans don't own). */
const std::vector<sim::HitLevel> kChain7(7, sim::HitLevel::L1);
const std::vector<sim::HitLevel> kChain1(1, sim::HitLevel::L1);

/** Issues a fixed list of ops, then Done; records results. */
class ScriptProgram : public ThreadProgram
{
  public:
    explicit ScriptProgram(std::vector<Op> ops) : ops_(std::move(ops)) {}

    Op
    next(std::uint64_t now) override
    {
        last_now_ = now;
        if (index_ >= ops_.size())
            return Op::done();
        return ops_[index_++];
    }

    void
    onResult(const OpResult &result) override
    {
        results_.push_back(result);
    }

    std::vector<OpResult> results_;
    std::uint64_t last_now_ = 0;

  private:
    std::vector<Op> ops_;
    std::size_t index_ = 0;
};

/** Accesses one address forever. */
class SpinAccessProgram : public ThreadProgram
{
  public:
    explicit SpinAccessProgram(sim::Addr addr) : addr_(addr) {}

    Op
    next(std::uint64_t) override
    {
        ++issued_;
        return Op::access(sim::MemRef::load(addr_, threadId()));
    }

    std::uint64_t issued_ = 0;

  private:
    sim::Addr addr_;
};

/** Engine + port + policy bundle for the two-program SMT shape. */
class SmtRig
{
  public:
    explicit SmtRig(sim::CacheHierarchy &hierarchy, EngineConfig config = {})
        : port_(hierarchy),
          engine_(port_, timing::Uarch::intelXeonE52690(), policy_, config)
    {}

    std::uint64_t
    run(ThreadProgram &thread0, ThreadProgram &thread1, unsigned primary)
    {
        return engine_.run(thread0, thread1, primary);
    }

  private:
    sim::SingleCorePort port_;
    RoundRobinSmt policy_;
    Engine engine_;
};

} // namespace

TEST(SmtScheduler, RunsUntilPrimaryDone)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    ScriptProgram receiver({Op::access(sim::MemRef::load(0x40)),
                            Op::access(sim::MemRef::load(0x80))});
    SpinAccessProgram sender(0x4000);
    rig.run(sender, receiver, 1);
    EXPECT_EQ(receiver.results_.size(), 2u);
    // The sender ran too but did not block completion.
    EXPECT_GT(sender.issued_, 0u);
}

TEST(SmtScheduler, DeliversHitLevels)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    ScriptProgram a({Op::access(sim::MemRef::load(0x40)),
                     Op::access(sim::MemRef::load(0x40))});
    ScriptProgram b({});
    rig.run(b, a, 1);
    ASSERT_EQ(a.results_.size(), 2u);
    EXPECT_EQ(a.results_[0].level, sim::HitLevel::Memory);
    EXPECT_EQ(a.results_[1].level, sim::HitLevel::L1);
}

TEST(SmtScheduler, SpinAdvancesClock)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    ScriptProgram a({Op::spinUntil(100'000),
                     Op::access(sim::MemRef::load(0x40))});
    ScriptProgram b({});
    rig.run(b, a, 1);
    ASSERT_EQ(a.results_.size(), 1u);
    EXPECT_GE(a.results_[0].tsc, 100'000u);
}

TEST(SmtScheduler, StaleSpinDeadlineStillProgresses)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    // Deadline 0 is already past; the engine must not livelock.
    ScriptProgram a({Op::spinUntil(0), Op::spinUntil(0),
                     Op::access(sim::MemRef::load(0x40))});
    ScriptProgram b({});
    const auto end = rig.run(b, a, 1);
    EXPECT_EQ(a.results_.size(), 1u);
    EXPECT_LT(end, 10'000u);
}

TEST(SmtScheduler, BothThreadsShareTheCache)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    // Thread 0 fetches a line; thread 1 then hits on the same line.
    ScriptProgram warm({Op::access(sim::MemRef::load(0x40, 0))});
    ScriptProgram probe({Op::spinUntil(10'000),
                         Op::access(sim::MemRef::load(0x40, 1))});
    rig.run(warm, probe, 1);
    ASSERT_EQ(probe.results_.size(), 1u);
    EXPECT_EQ(probe.results_[0].level, sim::HitLevel::L1);
}

TEST(SmtScheduler, MeasureUsesChainLevels)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    h.access(sim::MemRef::load(0x40)); // target warm in L1
    ScriptProgram a({Op::measure(sim::MemRef::load(0x40), kChain7)});
    ScriptProgram b({});
    rig.run(b, a, 1);
    ASSERT_EQ(a.results_.size(), 1u);
    EXPECT_EQ(a.results_[0].kind, OpKind::Measure);
    // ~ chase_overhead + 8 * L1 = 35 cycles on the E5-2690 model.
    EXPECT_NEAR(a.results_[0].measured, 35.0, 6.0);
}

TEST(SmtScheduler, FlushOpFlushesAllLevels)
{
    sim::CacheHierarchy h;
    SmtRig rig(h);
    const auto ref = sim::MemRef::load(0x40);
    h.access(ref);
    ScriptProgram a({Op::flush(ref)});
    ScriptProgram b({});
    rig.run(b, a, 1);
    EXPECT_FALSE(h.inAnyLevel(ref));
}

TEST(SmtScheduler, DeterministicForSeed)
{
    auto run = [](std::uint64_t seed) {
        sim::CacheHierarchy h;
        EngineConfig cfg;
        cfg.seed = seed;
        SmtRig rig(h, cfg);
        ScriptProgram a({Op::access(sim::MemRef::load(0x40)),
                         Op::access(sim::MemRef::load(0x80)),
                         Op::measure(sim::MemRef::load(0x40), kChain1)});
        ScriptProgram b({});
        rig.run(b, a, 1);
        return a.results_.back().measured;
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(SmtScheduler, InterleavingIsFineGrained)
{
    // Both threads must make progress in overlapping time, not strictly
    // one after the other.
    sim::CacheHierarchy h;
    SmtRig rig(h);
    SpinAccessProgram sender(0x8000);
    ScriptProgram receiver({Op::spinUntil(5'000),
                            Op::access(sim::MemRef::load(0x40))});
    rig.run(sender, receiver, 1);
    // In 5000 cycles at ~15 cycles/op the sender gets many ops in.
    EXPECT_GT(sender.issued_, 100u);
}

TEST(SmtScheduler, MaxCyclesStopsRunawayRuns)
{
    sim::CacheHierarchy h;
    EngineConfig cfg;
    cfg.max_cycles = 50'000;
    SmtRig rig(h, cfg);
    SpinAccessProgram forever_a(0x1000);
    SpinAccessProgram forever_b(0x2000);
    const auto end = rig.run(forever_a, forever_b, 1);
    EXPECT_LE(end, 60'000u);
}
