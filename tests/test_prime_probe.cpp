/**
 * @file
 * Tests for the Prime+Probe baseline receiver.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "channel/decoder.hpp"
#include "channel/edit_distance.hpp"
#include "channel/prime_probe.hpp"
#include "exec/engine.hpp"
#include "sim/access_port.hpp"

using namespace lruleak;
using namespace lruleak::channel;

namespace {

struct PpRun
{
    std::vector<Sample> samples;
    Bits sent;
    std::uint64_t sender_start = 0;
};

PpRun
runPp(const Bits &message, std::uint64_t ts = 6000, std::uint64_t tr = 600,
      sim::ReplPolicyKind policy = sim::ReplPolicyKind::TreePlru)
{
    sim::HierarchyConfig hc;
    hc.l1 = sim::CacheConfig::intelL1d(policy);
    sim::CacheHierarchy hierarchy(hc);
    const ChannelLayout layout;

    SenderConfig sc;
    sc.alg = LruAlgorithm::Alg2Disjoint; // no shared memory
    sc.message = message;
    sc.ts = ts;

    PpReceiverConfig rc;
    rc.tr = tr;
    rc.max_samples = message.size() * ts / tr + 8;

    LruSender sender(layout, sc);
    PpReceiver receiver(layout, rc);
    sim::SingleCorePort port(hierarchy);
    exec::RoundRobinSmt smt;
    exec::Engine engine(port, timing::Uarch::intelXeonE52690(), smt);
    engine.run(sender, receiver, 1);

    return PpRun{receiver.samples(), sender.sentBits(),
                 sender.startTsc()};
}

} // namespace

TEST(PrimeProbe, ThresholdSeparatesFullHitProbe)
{
    const auto u = timing::Uarch::intelXeonE52690();
    const auto threshold = PpReceiver::probeThreshold(u, 8);
    // All-hit probe: overhead + 8 * L1.
    EXPECT_GT(threshold, u.chase_overhead + 8 * u.l1_latency);
    // One L2 reload pushes past it.
    EXPECT_LT(threshold,
              u.chase_overhead + 7 * u.l1_latency + u.l2_latency);
}

TEST(PrimeProbe, DecodesMessageUnderTrueLru)
{
    const Bits msg = randomBits(48, 9);
    const auto run = runPp(msg, 6000, 600, sim::ReplPolicyKind::TrueLru);
    const auto u = timing::Uarch::intelXeonE52690();
    const auto bits = windowDecode(run.samples,
                                   PpReceiver::probeThreshold(u, 8),
                                   /*invert=*/true, run.sender_start, 6000,
                                   msg.size());
    EXPECT_LT(editErrorRate(msg, bits), 0.05);
}

TEST(PrimeProbe, TreePlruThrashDefeatsNaiveProbe)
{
    // A known PLRU artifact our simulator reproduces: once the sender
    // displaces a receiver line, a sequential probe walk keeps pointing
    // the Tree-PLRU victim at the receiver's OWN lines, so the single
    // missing line thrashes among them and never lands back on the
    // sender's line -> persistent false positives.  (One of the reasons
    // the paper's one-access LRU channel is easier to use on an L1 PLRU
    // than Prime+Probe.)
    const Bits msg = randomBits(48, 9);
    const auto run = runPp(msg, 6000, 600, sim::ReplPolicyKind::TreePlru);
    const auto u = timing::Uarch::intelXeonE52690();
    const auto bits = windowDecode(run.samples,
                                   PpReceiver::probeThreshold(u, 8),
                                   /*invert=*/true, run.sender_start, 6000,
                                   msg.size());
    EXPECT_GT(editErrorRate(msg, bits), 0.2);
}

TEST(PrimeProbe, SilentSenderKeepsProbesFast)
{
    const auto run = runPp(Bits(24, 0));
    const auto u = timing::Uarch::intelXeonE52690();
    const auto bits = thresholdSamples(run.samples,
                                       PpReceiver::probeThreshold(u, 8),
                                       true);
    EXPECT_LT(fractionOnes(bits), 0.10);
}

TEST(PrimeProbe, ActiveSenderSlowsProbes)
{
    const auto run = runPp(Bits(24, 1));
    const auto u = timing::Uarch::intelXeonE52690();
    const auto bits = thresholdSamples(run.samples,
                                       PpReceiver::probeThreshold(u, 8),
                                       true);
    EXPECT_GT(fractionOnes(bits), 0.5);
}

TEST(PrimeProbe, ProbeLatencyScalesWithWays)
{
    // The paper's point in Section VII: P+P times N accesses, the LRU
    // channel only one.  The all-hit probe cost grows with N.
    const auto u = timing::Uarch::intelXeonE52690();
    EXPECT_GT(PpReceiver::probeThreshold(u, 16),
              PpReceiver::probeThreshold(u, 8));
}
