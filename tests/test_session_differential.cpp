/**
 * @file
 * Differential suite: channel::Session — driven through the pure
 * config translations preserved in tests/legacy_channel_runners.hpp —
 * must be byte-equal to the three pre-refactor transmission harnesses
 * (kept verbatim in the same header) across randomized configurations:
 * the raw trace (tsc, latency, ground-truth level per sample), the
 * decoded bits, the error rate, the per-level counters, the derived
 * rates and the calibrated threshold.  Together with the 27+1 golden
 * snapshots this is the proof that the multi-layer refactor is
 * behavior-preserving.
 */

#include <gtest/gtest.h>

#include "channel/session.hpp"
#include "legacy_channel_runners.hpp"
#include "sim/random.hpp"

using namespace lruleak;
using namespace lruleak::channel;
using lruleak::legacy::CovertConfig;
using lruleak::legacy::SmtMultiCoreConfig;
using lruleak::legacy::XCoreConfig;

namespace {

void
expectSamplesEqual(const std::vector<Sample> &a,
                   const std::vector<Sample> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tsc, b[i].tsc) << "sample " << i;
        EXPECT_EQ(a[i].latency, b[i].latency) << "sample " << i;
        EXPECT_EQ(a[i].level, b[i].level) << "sample " << i;
    }
}

void
expectStatsEqual(const sim::LevelStats &a, const sim::LevelStats &b,
                 const char *what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
}

/** A random policy from the kinds with deterministic per-seed state. */
sim::ReplPolicyKind
randomPolicy(sim::Xoshiro256 &rng)
{
    static const sim::ReplPolicyKind kinds[] = {
        sim::ReplPolicyKind::TrueLru, sim::ReplPolicyKind::TreePlru,
        sim::ReplPolicyKind::BitPlru, sim::ReplPolicyKind::Fifo,
        sim::ReplPolicyKind::Random,  sim::ReplPolicyKind::Srrip};
    return kinds[rng.below(std::size(kinds))];
}

timing::Uarch
randomUarch(sim::Xoshiro256 &rng)
{
    switch (rng.below(3)) {
      case 0:  return timing::Uarch::intelXeonE52690();
      case 1:  return timing::Uarch::intelXeonE31245v5();
      default: return timing::Uarch::amdEpyc7571();
    }
}

} // namespace

TEST(SessionDifferential, HyperThreadedMatchesLegacyCovert)
{
    sim::Xoshiro256 rng(0x5e55'1001);
    for (int trial = 0; trial < 12; ++trial) {
        CovertConfig cfg;
        cfg.uarch = randomUarch(rng);
        cfg.alg = rng.below(2) ? LruAlgorithm::Alg2Disjoint
                               : LruAlgorithm::Alg1Shared;
        cfg.l1_policy = randomPolicy(rng);
        cfg.d = 1 + static_cast<std::uint32_t>(rng.below(8));
        cfg.tr = 400 + rng.below(3000);
        cfg.ts = 4000 + rng.below(30000);
        cfg.message =
            randomBits(8 + rng.below(48), 0xbeef + trial);
        cfg.repeats = 1 + static_cast<std::uint32_t>(rng.below(3));
        cfg.target_set = static_cast<std::uint32_t>(rng.below(64));
        cfg.chase_set = static_cast<std::uint32_t>(rng.below(64));
        cfg.shared_same_vaddr = rng.below(4) != 0;
        cfg.encode_gap = 20 + static_cast<std::uint32_t>(rng.below(60));
        cfg.seed = rng();

        const auto legacy = legacy::legacyRunCovertChannel(cfg);
        const auto now = runSession(legacy::sessionConfigFor(cfg));

        SCOPED_TRACE("trial " + std::to_string(trial));
        expectSamplesEqual(legacy.samples, now.samples);
        EXPECT_EQ(legacy.sent, now.sent);
        EXPECT_EQ(legacy.received, now.received);
        EXPECT_EQ(legacy.error_rate, now.error_rate);
        EXPECT_EQ(legacy.kbps, now.kbps);
        EXPECT_EQ(legacy.elapsed_cycles, now.elapsed_cycles);
        EXPECT_EQ(legacy.threshold, now.threshold);
        EXPECT_EQ(legacy.sender_start, now.sender_start);
        expectStatsEqual(legacy.sender_l1, now.sender_l1, "sender L1");
        expectStatsEqual(legacy.sender_l2, now.sender_l2, "sender L2");
        expectStatsEqual(legacy.sender_llc, now.sender_llc, "sender LLC");
        expectStatsEqual(legacy.receiver_l1, now.receiver_l1,
                         "receiver L1");
    }
}

TEST(SessionDifferential, TimeSlicedPercentOnesMatchesLegacy)
{
    sim::Xoshiro256 rng(0x5e55'1002);
    for (int trial = 0; trial < 3; ++trial) {
        CovertConfig cfg;
        cfg.mode = SharingMode::TimeSliced;
        cfg.d = 1 + static_cast<std::uint32_t>(rng.below(8));
        cfg.tr = 50'000'000 + rng.below(150'000'000);
        cfg.encode_gap = 20'000;
        cfg.max_samples = 20 + rng.below(30);
        cfg.seed = rng();

        const std::uint8_t bit = trial % 2;
        EXPECT_EQ(legacy::legacyRunPercentOnes(cfg, bit),
                  sessionPercentOnes(legacy::sessionConfigFor(cfg), bit))
            << "trial " << trial;
    }
}

TEST(SessionDifferential, TimeSlicedDecodeMatchesLegacy)
{
    // A windowed-decode run under the scaled OS model (the channel_matrix
    // operating point), not just percent-ones.
    sim::Xoshiro256 rng(0x5e55'1003);
    for (int trial = 0; trial < 3; ++trial) {
        CovertConfig cfg;
        cfg.mode = SharingMode::TimeSliced;
        cfg.d = 8;
        cfg.tr = 600;
        cfg.ts = 6000;
        cfg.message = randomBits(16, 0xf00d + trial);
        cfg.tslice.quantum = 30'000;
        cfg.tslice.quantum_jitter = 15'000;
        cfg.tslice.tick_period = 100'000;
        cfg.seed = rng();

        const auto legacy = legacy::legacyRunCovertChannel(cfg);
        const auto now = runSession(legacy::sessionConfigFor(cfg));

        SCOPED_TRACE("trial " + std::to_string(trial));
        expectSamplesEqual(legacy.samples, now.samples);
        EXPECT_EQ(legacy.received, now.received);
        EXPECT_EQ(legacy.error_rate, now.error_rate);
        EXPECT_EQ(legacy.elapsed_cycles, now.elapsed_cycles);
    }
}

TEST(SessionDifferential, CrossCoreMatchesLegacyXCore)
{
    sim::Xoshiro256 rng(0x5e55'1004);
    for (int trial = 0; trial < 6; ++trial) {
        XCoreConfig cfg;
        cfg.llc_policy = randomPolicy(rng);
        cfg.noise_cores = static_cast<std::uint32_t>(rng.below(3));
        cfg.d = 8 + static_cast<std::uint32_t>(rng.below(9));
        cfg.tr = 2000 + rng.below(3000);
        cfg.ts = 20000 + rng.below(30000);
        cfg.message = randomBits(8 + rng.below(24), 0xcafe + trial);
        cfg.target_set = static_cast<std::uint32_t>(rng.below(2048));
        cfg.chase_set = static_cast<std::uint32_t>(rng.below(2048));
        // Every other trial layers the nested per-core OS time-slicing.
        cfg.quantum = trial % 2 ? 25'000 + rng.below(100'000) : 0;
        cfg.tslice.quantum_jitter = cfg.quantum / 2;
        cfg.tslice.tick_period = 100'000;
        cfg.seed = rng();

        const auto legacy = legacy::legacyRunXCoreChannel(cfg);
        const auto now = runSession(legacy::sessionConfigFor(cfg));

        SCOPED_TRACE("trial " + std::to_string(trial));
        expectSamplesEqual(legacy.samples, now.samples);
        EXPECT_EQ(legacy.sent, now.sent);
        EXPECT_EQ(legacy.received, now.received);
        EXPECT_EQ(legacy.error_rate, now.error_rate);
        EXPECT_EQ(legacy.kbps, now.kbps);
        EXPECT_EQ(legacy.elapsed_cycles, now.elapsed_cycles);
        EXPECT_EQ(legacy.threshold, now.threshold);
        EXPECT_EQ(legacy.back_invalidations, now.back_invalidations);
        EXPECT_EQ(legacy.cores, now.cores);
        expectStatsEqual(legacy.sender_l1, now.sender_l1, "sender L1");
        expectStatsEqual(legacy.sender_llc, now.sender_llc, "sender LLC");
        expectStatsEqual(legacy.receiver_llc, now.receiver_llc,
                         "receiver LLC");
    }
}

TEST(SessionDifferential, SmtMulticoreMatchesLegacy)
{
    sim::Xoshiro256 rng(0x5e55'1005);
    for (int trial = 0; trial < 4; ++trial) {
        SmtMultiCoreConfig cfg;
        cfg.alg = rng.below(2) ? LruAlgorithm::Alg2Disjoint
                               : LruAlgorithm::Alg1Shared;
        cfg.l1_policy = randomPolicy(rng);
        cfg.noise_cores = static_cast<std::uint32_t>(rng.below(4));
        cfg.d = 1 + static_cast<std::uint32_t>(rng.below(8));
        cfg.message = randomBits(8 + rng.below(16), 0xabcd + trial);
        cfg.noise.footprint_sets = 1;
        cfg.noise.lines_per_set = 24;
        cfg.noise.burst = 128;
        cfg.noise.gap = 10;
        cfg.seed = rng();

        const auto legacy = legacy::legacyRunSmtMulticore(cfg);
        const auto now = runSession(legacy::sessionConfigFor(cfg));

        SCOPED_TRACE("trial " + std::to_string(trial));
        expectSamplesEqual(legacy.samples, now.samples);
        EXPECT_EQ(legacy.received, now.received);
        EXPECT_EQ(legacy.error_rate, now.error_rate);
        EXPECT_EQ(legacy.elapsed_cycles, now.elapsed_cycles);
        EXPECT_EQ(legacy.threshold, now.threshold);
        EXPECT_EQ(legacy.back_invalidations, now.back_invalidations);
        EXPECT_EQ(legacy.cores, now.cores);
        expectStatsEqual(legacy.sender_l1, now.sender_l1, "sender L1");
        expectStatsEqual(legacy.receiver_l1, now.receiver_l1,
                         "receiver L1");
    }
}
