/**
 * @file
 * Tests for the time-sliced execution model (exec::Engine under the
 * TimeSlice policy): quantum rotation, kernel noise, timer ticks, and
 * spin handling across slices.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/hierarchy.hpp"
#include "timing/uarch.hpp"

using namespace lruleak;
using namespace lruleak::exec;

namespace {

/** Records the TSC of every op it issues. */
class StampingProgram : public ThreadProgram
{
  public:
    StampingProgram(sim::Addr addr, std::size_t limit)
        : addr_(addr), limit_(limit)
    {}

    Op
    next(std::uint64_t now) override
    {
        if (stamps_.size() >= limit_)
            return Op::done();
        stamps_.push_back(now);
        return Op::access(sim::MemRef::load(addr_, threadId()));
    }

    std::vector<std::uint64_t> stamps_;

  private:
    sim::Addr addr_;
    std::size_t limit_;
};

TimeSlicePolicyConfig
quietConfig()
{
    TimeSlicePolicyConfig cfg;
    cfg.background_prob = 0.0;
    cfg.kernel_noise_lines = 0;
    cfg.tick_lines = 0;
    return cfg;
}

/** Engine + port + policy bundle for the two-program sliced shape. */
class TimeSliceRig
{
  public:
    TimeSliceRig(sim::CacheHierarchy &hierarchy,
                 TimeSlicePolicyConfig policy_config,
                 EngineConfig engine_config = {})
        : port_(hierarchy), policy_(policy_config),
          engine_(port_, timing::Uarch::intelXeonE52690(), policy_,
                  engine_config)
    {}

    std::uint64_t
    run(ThreadProgram &thread0, ThreadProgram &thread1, unsigned primary)
    {
        return engine_.run(thread0, thread1, primary);
    }

  private:
    sim::SingleCorePort port_;
    TimeSlice policy_;
    Engine engine_;
};

} // namespace

TEST(TimeSlice, ThreadsAlternateByQuantum)
{
    sim::CacheHierarchy h;
    TimeSlicePolicyConfig cfg = quietConfig();
    cfg.quantum = 100'000;
    cfg.quantum_jitter = 0;
    TimeSliceRig rig(h, cfg);

    StampingProgram a(0x1000, 1'000'000);
    StampingProgram b(0x2000, 20'000); // spans several slices
    rig.run(a, b, 1);

    // While B runs its slice, A must not issue: check that A's stamps
    // have a gap of at least one quantum somewhere.
    std::uint64_t max_gap = 0;
    for (std::size_t i = 1; i < a.stamps_.size(); ++i)
        max_gap = std::max(max_gap, a.stamps_[i] - a.stamps_[i - 1]);
    EXPECT_GE(max_gap, cfg.quantum);
}

TEST(TimeSlice, PrimaryDoneStopsRun)
{
    sim::CacheHierarchy h;
    TimeSliceRig rig(h, quietConfig());
    StampingProgram a(0x1000, 1'000'000); // effectively endless
    StampingProgram b(0x2000, 10);
    rig.run(a, b, 1);
    EXPECT_EQ(b.stamps_.size(), 10u);
}

TEST(TimeSlice, KernelNoisePollutesCaches)
{
    sim::CacheHierarchy h;
    TimeSlicePolicyConfig cfg = quietConfig();
    cfg.kernel_noise_lines = 64;
    cfg.quantum = 50'000;
    TimeSliceRig rig(h, cfg);
    StampingProgram a(0x1000, 20'000);
    StampingProgram b(0x2000, 100);
    rig.run(a, b, 1);
    const auto kstats = h.l1().counters().forThread(cfg.kernel_thread);
    EXPECT_GT(kstats.accesses, 0u);
}

TEST(TimeSlice, TicksFireWhileSpinning)
{
    sim::CacheHierarchy h;
    TimeSlicePolicyConfig cfg = quietConfig();
    cfg.tick_period = 10'000;
    cfg.tick_lines = 8;
    TimeSliceRig rig(h, cfg);

    // One program spins for a long time; ticks must still pollute.
    class Sleeper : public ThreadProgram
    {
      public:
        Op
        next(std::uint64_t now) override
        {
            if (done_)
                return Op::done();
            done_ = true;
            return Op::spinUntil(now + 400'000);
        }

      private:
        bool done_ = false;
    } sleeper;
    StampingProgram other(0x2000, 1);
    rig.run(other, sleeper, 1);

    const auto kstats = h.l1().counters().forThread(cfg.kernel_thread);
    EXPECT_GT(kstats.accesses, 8u);
}

TEST(TimeSlice, BackgroundProcessStealsSlices)
{
    sim::CacheHierarchy h;
    TimeSlicePolicyConfig cfg = quietConfig();
    cfg.background_prob = 1.0; // every contested slice goes to background
    cfg.background_lines = 64;
    cfg.quantum = 20'000;
    StampingProgram a(0x1000, 10);
    StampingProgram b(0x2000, 10);
    // With background_prob = 1 neither a nor b ever runs; cap the run.
    EngineConfig ec;
    ec.max_cycles = 1'000'000;
    TimeSliceRig capped(h, cfg, ec);
    capped.run(a, b, 1);
    EXPECT_EQ(b.stamps_.size(), 0u);
    const auto bg = h.l1().counters().forThread(cfg.background_thread);
    EXPECT_GT(bg.accesses, 0u);
}

TEST(TimeSlice, SpinCompletesAcrossSlices)
{
    sim::CacheHierarchy h;
    TimeSlicePolicyConfig cfg = quietConfig();
    cfg.quantum = 10'000;
    cfg.quantum_jitter = 0;
    TimeSliceRig rig(h, cfg);

    class SleepThenAccess : public ThreadProgram
    {
      public:
        Op
        next(std::uint64_t now) override
        {
            if (state_ == 0) {
                state_ = 1;
                return Op::spinUntil(now + 100'000); // spans ~10 slices
            }
            if (state_ == 1) {
                state_ = 2;
                wake_ = now;
                return Op::access(sim::MemRef::load(0x40, threadId()));
            }
            return Op::done();
        }

        int state_ = 0;
        std::uint64_t wake_ = 0;
    } sleeper;

    StampingProgram other(0x2000, 1'000'000);
    rig.run(other, sleeper, 1);
    EXPECT_GE(sleeper.wake_, 100'000u);
}

TEST(TimeSlice, DeterministicForSeed)
{
    auto run = [](std::uint64_t seed) {
        sim::CacheHierarchy h;
        TimeSlicePolicyConfig cfg;
        cfg.quantum = 30'000;
        EngineConfig ec;
        ec.seed = seed;
        TimeSliceRig rig(h, cfg, ec);
        StampingProgram a(0x1000, 100'000);
        StampingProgram b(0x2000, 50);
        return rig.run(a, b, 1);
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}
