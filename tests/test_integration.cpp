/**
 * @file
 * Cross-module integration tests: whole-pipeline determinism, the
 * Table IV rate ordering, stealth comparisons, and protocol/defense
 * interactions that span several libraries at once.
 */

#include <gtest/gtest.h>

#include "core/lruleak.hpp"

using namespace lruleak;
using namespace lruleak::channel;

TEST(Integration, TableIVRateOrdering)
{
    // Hyper-threaded Intel ~500 Kbps >> hyper-threaded AMD ~20 Kbps >>
    // time-sliced (bits per second).
    SessionConfig intel;
    intel.channel = ChannelId::LruAlg1;
    intel.message = randomBits(64, 1);
    intel.ts = 6000;
    intel.tr = 600;
    const auto intel_res = runSession(intel);

    SessionConfig amd = intel;
    amd.uarch = timing::Uarch::amdEpyc7571();
    amd.ts = 100'000;
    amd.tr = 1000;
    const auto amd_res = runSession(amd);

    EXPECT_GT(intel_res.kbps, 10 * amd_res.kbps)
        << "AMD must be about an order of magnitude slower (Table IV)";
    EXPECT_GT(amd_res.kbps, 1.0);
}

TEST(Integration, SkylakeBehavesLikeSandyBridge)
{
    // Appendix B: the attack transfers across Intel generations.
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.uarch = timing::Uarch::intelXeonE31245v5();
    cfg.message = randomBits(96, 14);
    cfg.ts = 6000;
    cfg.tr = 600;
    const auto res = runSession(cfg);
    EXPECT_LT(res.error_rate, 0.02);
    // 3.9 GHz vs 3.8 GHz: slightly higher effective rate (paper: 580
    // vs 480 Kbps).
    EXPECT_GT(res.kbps, 400.0);
}

TEST(Integration, WholeStackDeterminism)
{
    // Same seed: identical samples, decode, counters -- across the
    // scheduler, cache, timing and decoder layers at once.
    auto run = [] {
        SessionConfig cfg;
        cfg.channel = ChannelId::LruAlg2;
        cfg.d = 5;
        cfg.message = randomBits(64, 3);
        cfg.seed = 99;
        return runSession(cfg);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.sender_l1.accesses, b.sender_l1.accesses);
    EXPECT_EQ(a.receiver_l1.accesses, b.receiver_l1.accesses);
}

TEST(Integration, StealthContrastAcrossChannels)
{
    // Section VII: the LRU sender is indistinguishable from benign
    // co-tenancy by L1 miss-rate monitoring, F+R (mem) is not.
    const auto rows = core::senderMissRates(
        timing::Uarch::intelXeonE52690());
    const double fr_mem = rows[0].l1.missRate();
    const double lru = rows[2].l1.missRate();
    const double benign = rows[4].l1.missRate(); // sender & gcc
    // LRU sender within ~20x of the benign baseline; F+R far beyond.
    EXPECT_LT(lru, benign * 50 + 0.002);
    EXPECT_GT(fr_mem, benign * 100);
}

TEST(Integration, LockedAlg1IsProtectedByPlCache)
{
    // Paper footnote 8: if line 0 is locked in a PL cache, Algorithm 1
    // dies (line 0 can never be evicted, the receiver always hits).
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.pl_mode = sim::PlMode::Original;
    cfg.sender_locks_line = true; // the shared line gets locked
    cfg.message = randomBits(48, 5);
    const auto res = runSession(cfg);
    // The receiver should observe (almost) all hits -> no information.
    const auto bits = thresholdSamples(res.samples, res.threshold, false);
    EXPECT_GT(fractionOnes(bits), 0.95);
}

TEST(Integration, SpectreThroughEveryLayer)
{
    // Branch predictor -> transient core -> cache hierarchy -> LRU
    // receiver -> measurement model -> byte reassembly.
    spectre::SpectreAttackConfig cfg;
    cfg.disclosure = spectre::Disclosure::LruAlg2;
    cfg.rounds = 3;
    const auto res = spectre::runSpectreAttack(cfg, "The Magic Words");
    EXPECT_EQ(res.recovered, "The Magic Words");
}

TEST(Integration, ChannelSurvivesDifferentTargetSets)
{
    for (std::uint32_t set : {0u, 1u, 31u, 62u}) {
        SessionConfig cfg;
        cfg.channel = ChannelId::LruAlg1;
        cfg.target_set = set;
        cfg.chase_set = (set + 32) % 64;
        cfg.message = randomBits(48, set + 1);
        EXPECT_LT(runSession(cfg).error_rate, 0.03)
            << "target set " << set;
    }
}

TEST(Integration, TextMessageRoundTrip)
{
    // The quickstart scenario: send ASCII text through the channel.
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.message = textToBits("LRU states leak!");
    const auto res = runSession(cfg);
    EXPECT_EQ(bitsToText(res.received), "LRU states leak!");
}

TEST(Integration, ReceiverCountersShowDecodePressure)
{
    // The receiver's misses come from the decode-phase evictions; they
    // must be visible in its counters (this is what a defender's perf
    // monitoring would see: receiver noisy, sender quiet).
    SessionConfig cfg;
    cfg.channel = ChannelId::LruAlg1;
    cfg.message = randomBits(64, 17);
    const auto res = runSession(cfg);
    EXPECT_GT(res.receiver_l1.missRate(), res.sender_l1.missRate());
}
