/**
 * @file
 * Self-contained hashing primitives for the fleet-serving layer.
 *
 * Two hashes with two jobs:
 *
 *   - fnv1a64: the shard partitioner.  `run-all --shard=i/N` must put
 *     every experiment in exactly one shard no matter which worker
 *     computes the assignment, so the hash is a pure function of the
 *     experiment *name* (never of registry order), tiny, and frozen —
 *     changing it re-shuffles every fleet's work split.
 *
 *   - SHA-256: the result-cache key.  Cache hits substitute stored
 *     bytes for a run, so colliding keys would silently serve the
 *     wrong artifact; a cryptographic digest makes that a non-concern.
 *     Implemented here (FIPS 180-4, ~100 lines) because the toolchain
 *     image carries no crypto library.
 */

#ifndef LRULEAK_UTIL_HASH_HPP
#define LRULEAK_UTIL_HASH_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lruleak::util {

/** 64-bit FNV-1a of @p data (the offset-basis/prime constants). */
constexpr std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x00000100000001b3ULL;
    }
    return h;
}

/** Streaming SHA-256 (FIPS 180-4). */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);
    void
    update(std::string_view data)
    {
        update(data.data(), data.size());
    }

    /** Finish and return the 32-byte digest (object must be reset()
     *  before reuse). */
    std::array<std::uint8_t, 32> digest();

    /** Finish and return the digest as 64 lowercase hex characters. */
    std::string hex();

  private:
    void compress(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::uint64_t total_ = 0; //!< bytes consumed
    std::size_t buffered_ = 0;
};

/** One-shot SHA-256 of a byte string, as hex. */
std::string sha256Hex(std::string_view data);

/**
 * SHA-256 of a file's contents, as hex; empty string when the file
 * cannot be read.  Used to key the result cache on the exact binary
 * that produced an artifact.
 */
std::string sha256FileHex(const std::string &path);

/**
 * Content hash of the running executable (via /proc/self/exe), as hex;
 * empty when unavailable.  Computed once and memoized — the binary
 * does not change under a running process.
 */
const std::string &selfBinaryHashHex();

} // namespace lruleak::util

#endif // LRULEAK_UTIL_HASH_HPP
