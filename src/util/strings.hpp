/**
 * @file
 * Small string helpers shared by the name tables (channels, CPU
 * models).  Header-only and dependency-free: usable from every layer.
 */

#ifndef LRULEAK_UTIL_STRINGS_HPP
#define LRULEAK_UTIL_STRINGS_HPP

#include <cctype>
#include <string>
#include <string_view>

namespace lruleak::util {

/** Lower-case a token and fold '_' to '-', for CLI-name matching. */
inline std::string
normalizeToken(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out += c == '_' ? '-'
                        : static_cast<char>(
                              std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace lruleak::util

#endif // LRULEAK_UTIL_STRINGS_HPP
