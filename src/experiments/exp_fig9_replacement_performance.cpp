/**
 * @file
 * Fig. 9 as a registered experiment: L1D miss rate and normalized CPI
 * when the L1D replacement policy is switched from Tree-PLRU to FIFO or
 * Random — the paper's defense costs < 2% CPI on GEM5+SPEC2006; we run
 * the synthetic suite on the in-order CPI model (see DESIGN.md for the
 * substitution).
 */

#include <cmath>

#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Fig9ReplacementPerformance final : public Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig9_replacement_performance";
    }

    std::string
    description() const override
    {
        return "Fig. 9: replacement-policy defense cost — L1D miss rate "
               "and CPI, PLRU vs FIFO vs Random";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("instructions", 400'000,
                               "instructions per workload run"),
            seedParam(9),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Fig. 9: L1D replacement-policy defense cost "
                  "(Tree-PLRU vs FIFO vs Random) ===\n");

        const std::vector<sim::ReplPolicyKind> policies{
            sim::ReplPolicyKind::TreePlru, sim::ReplPolicyKind::Fifo,
            sim::ReplPolicyKind::Random};
        const auto rows = replacementPerformance(
            policies, params.getUint("instructions"),
            params.getUint("seed"));

        Table miss({"Workload", "PLRU miss", "FIFO miss", "Random miss",
                    "FIFO/PLRU", "Rand/PLRU"});
        Table cpi({"Workload", "PLRU CPI", "FIFO CPI", "Random CPI",
                   "FIFO norm", "Rand norm"});

        double worst_cpi_delta = 0.0;
        for (std::size_t w = 0; w * 3 < rows.size(); ++w) {
            const auto &plru = rows[w * 3 + 0];
            const auto &fifo = rows[w * 3 + 1];
            const auto &rnd = rows[w * 3 + 2];
            auto ratio = [](double a, double b) {
                return b > 0 ? a / b : 1.0;
            };
            miss.addRow({plru.workload,
                         fmtPercent(plru.l1d_miss_rate),
                         fmtPercent(fifo.l1d_miss_rate),
                         fmtPercent(rnd.l1d_miss_rate),
                         fmtDouble(ratio(fifo.l1d_miss_rate,
                                         plru.l1d_miss_rate), 2),
                         fmtDouble(ratio(rnd.l1d_miss_rate,
                                         plru.l1d_miss_rate), 2)});
            cpi.addRow({plru.workload, fmtDouble(plru.cpi, 3),
                        fmtDouble(fifo.cpi, 3), fmtDouble(rnd.cpi, 3),
                        fmtDouble(fifo.cpi / plru.cpi, 3),
                        fmtDouble(rnd.cpi / plru.cpi, 3)});
            worst_cpi_delta = std::max(
                {worst_cpi_delta, std::abs(fifo.cpi / plru.cpi - 1.0),
                 std::abs(rnd.cpi / plru.cpi - 1.0)});
        }

        sink.table("(top) L1D miss rate per policy", miss);
        sink.table("(bottom) CPI and CPI normalized to Tree-PLRU", cpi);
        sink.scalar("worst-case CPI delta vs Tree-PLRU",
                    worst_cpi_delta);
        sink.note("\nPaper reference: small L1D miss-rate changes "
                  "either way; overall CPI within 2%\n(an L1 miss "
                  "usually still hits L2), so the replacement-policy "
                  "defense is cheap.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig9ReplacementPerformance)

} // namespace

} // namespace lruleak::experiments
