/**
 * @file
 * Ablation as a registered experiment: how the channel behaves under
 * every replacement policy the simulator implements — including the
 * defenses (FIFO, Random) and the policies the paper did not evaluate
 * end-to-end (true LRU, Bit-PLRU, SRRIP).
 */

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class AblationPolicyChannel final : public Experiment
{
  public:
    std::string
    name() const override
    {
        return "ablation_policy_channel";
    }

    std::string
    description() const override
    {
        return "Ablation: channel error under each L1D replacement "
               "policy (incl. SRRIP, Bit-PLRU)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 96, "random message length"),
            seedParam(11),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto bits =
            static_cast<std::size_t>(params.getUint("bits"));

        sink.note("=== Ablation: channel error under each L1D "
                  "replacement policy ===\n(hyper-threaded, Intel "
                  "E5-2690, Ts=6000, Tr=600, random " +
                  std::to_string(bits) + "-bit message)\n");

        Table table({"Policy", "Alg.1 d=8 err", "Alg.2 d=5 err",
                     "Sender L1D miss"});
        const std::vector<sim::ReplPolicyKind> policies{
            sim::ReplPolicyKind::TrueLru,  sim::ReplPolicyKind::TreePlru,
            sim::ReplPolicyKind::BitPlru,  sim::ReplPolicyKind::Srrip,
            sim::ReplPolicyKind::Fifo,     sim::ReplPolicyKind::Random};

        // One trial per policy (two full channel runs each), fanned out
        // over core::runTrials; the run seeds are unchanged, so the
        // table matches the sequential sweep for any worker count.
        struct Row
        {
            double a1_error = 0.0;
            double a2_error = 0.0;
            double a1_miss = 0.0;
        };
        const auto rows = core::runTrials(
            static_cast<std::uint32_t>(policies.size()),
            params.getUint("seed"),
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                SessionConfig cfg;
                cfg.channel = ChannelId::LruAlg1;
                cfg.d = 8;
                cfg.l1_policy = policies[idx];
                cfg.message = randomBits(bits, 4242);
                cfg.seed = params.getUint("seed");
                const auto a1 = runSession(cfg);

                cfg.channel = ChannelId::LruAlg2;
                cfg.d = 5;
                const auto a2 = runSession(cfg);
                return Row{a1.error_rate, a2.error_rate,
                           a1.sender_l1.missRate()};
            });

        for (std::size_t i = 0; i < policies.size(); ++i)
            table.addRow({std::string(sim::replPolicyName(policies[i])),
                          fmtPercent(rows[i].a1_error),
                          fmtPercent(rows[i].a2_error),
                          fmtPercent(rows[i].a1_miss, 3)});
        sink.table("", table);

        sink.note("\nTakeaways: the hit-encoding channel works under "
                  "true LRU and Tree-PLRU; Bit-PLRU\ndefeats the d=8 "
                  "protocol (the receiver's own measurement pins line "
                  "0's MRU bit);\nRandom destroys it outright; FIFO "
                  "leaves only a miss-based residual (note the\n"
                  "sender's miss rate — stealth is gone).");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AblationPolicyChannel)

} // namespace

} // namespace lruleak::experiments
