/**
 * @file
 * Ablation as a registered experiment: how the channel behaves under
 * every replacement policy the simulator implements — including the
 * defenses (FIFO, Random) and the policies the paper did not evaluate
 * end-to-end (true LRU, Bit-PLRU, SRRIP).
 */

#include "channel/covert_channel.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class AblationPolicyChannel final : public Experiment
{
  public:
    std::string
    name() const override
    {
        return "ablation_policy_channel";
    }

    std::string
    description() const override
    {
        return "Ablation: channel error under each L1D replacement "
               "policy (incl. SRRIP, Bit-PLRU)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 96, "random message length"),
            seedParam(11),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto bits =
            static_cast<std::size_t>(params.getUint("bits"));

        sink.note("=== Ablation: channel error under each L1D "
                  "replacement policy ===\n(hyper-threaded, Intel "
                  "E5-2690, Ts=6000, Tr=600, random " +
                  std::to_string(bits) + "-bit message)\n");

        Table table({"Policy", "Alg.1 d=8 err", "Alg.2 d=5 err",
                     "Sender L1D miss"});
        for (auto policy : {sim::ReplPolicyKind::TrueLru,
                            sim::ReplPolicyKind::TreePlru,
                            sim::ReplPolicyKind::BitPlru,
                            sim::ReplPolicyKind::Srrip,
                            sim::ReplPolicyKind::Fifo,
                            sim::ReplPolicyKind::Random}) {
            CovertConfig cfg;
            cfg.l1_policy = policy;
            cfg.message = randomBits(bits, 4242);
            cfg.seed = params.getUint("seed");
            const auto a1 = runCovertChannel(cfg);

            cfg.alg = LruAlgorithm::Alg2Disjoint;
            cfg.d = 5;
            const auto a2 = runCovertChannel(cfg);

            table.addRow({std::string(sim::replPolicyName(policy)),
                          fmtPercent(a1.error_rate),
                          fmtPercent(a2.error_rate),
                          fmtPercent(a1.sender_l1.missRate(), 3)});
        }
        sink.table("", table);

        sink.note("\nTakeaways: the hit-encoding channel works under "
                  "true LRU and Tree-PLRU; Bit-PLRU\ndefeats the d=8 "
                  "protocol (the receiver's own measurement pins line "
                  "0's MRU bit);\nRandom destroys it outright; FIFO "
                  "leaves only a miss-based residual (note the\n"
                  "sender's miss rate — stealth is gone).");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AblationPolicyChannel)

} // namespace

} // namespace lruleak::experiments
