/**
 * @file
 * Appendix C as a registered experiment: hardware-prefetcher noise
 * during the Spectre attack's set scans, and the paper's mitigation —
 * scan the probe sets in a fresh random order every round so prefetch
 * pollution averages out.
 */

#include "experiments/common.hpp"
#include "spectre/attack.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::spectre;

class AppcPrefetcherNoise final : public Experiment
{
  public:
    std::string name() const override { return "appc_prefetcher_noise"; }

    std::string
    description() const override
    {
        return "Appendix C: prefetcher noise vs random-order probe "
               "scanning (Spectre + LRU Alg.1)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::str("secret", "Sensitive",
                           "secret the victim holds"),
            ParamSpec::integer("rounds", 2,
                               "scoring rounds per byte (few rounds: "
                               "noise has less room to average)"),
            seedParam(99),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const std::string secret = params.getStr("secret");

        sink.note("=== Appendix C: prefetcher noise vs random-order "
                  "scanning (Spectre + LRU Alg.1) ===\n");

        Table table({"Prefetcher", "Probe order", "Recovered",
                     "Byte accuracy"});
        for (bool prefetcher : {false, true}) {
            for (bool random_order : {false, true}) {
                SpectreAttackConfig cfg;
                cfg.disclosure = Disclosure::LruAlg1;
                cfg.enable_prefetcher = prefetcher;
                cfg.random_probe_order = random_order;
                cfg.rounds = params.getUint32("rounds");
                cfg.seed = params.getUint("seed");
                const auto res = runSpectreAttack(cfg, secret);
                std::string shown;
                for (char c : res.recovered)
                    shown += (c >= 32 && c < 127) ? c : '?';
                table.addRow({prefetcher ? "stride (on)" : "off",
                              random_order ? "random/round"
                                           : "sequential",
                              shown, fmtPercent(res.byte_accuracy)});
            }
        }
        sink.table("", table);

        sink.note("\nPaper reference: sequential scans let the stride "
                  "prefetcher drag neighbouring\nlines into L1 and "
                  "corrupt the LRU states; randomising the order each "
                  "round\ndecorrelates the pollution and the averaged "
                  "scores recover the secret.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AppcPrefetcherNoise)

} // namespace

} // namespace lruleak::experiments
