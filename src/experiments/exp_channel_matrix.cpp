/**
 * @file
 * The channel-session matrix: every channel design the repo implements
 * (both LRU algorithms, both Flush+Reload baselines, Prime+Probe, the
 * cross-core LLC Algorithm 2 and the dirty-state family) run in every
 * sharing mode (hyper-threaded, OS-time-sliced, cross-core) over every
 * replacement policy of the carrier cache — error rate and effective
 * bandwidth per cell, through the one channel::Session pipeline — plus
 * a PL-cache secure-mode ablation of the hyper-threaded column, an AMD
 * way-predictor cross-address-space comparison, and a time-sliced +
 * LLC-noise-cores combination.
 *
 * This is the payoff of unifying the three transmission harnesses:
 * cells like cross-core Flush+Reload (the shared line decoded at
 * LLC-vs-memory scale) and time-sliced Prime+Probe simply could not be
 * expressed before, because each harness hard-wired one channel family
 * to one topology.  The paper's Tables IV-VII compare channels across
 * these axes one at a time; the matrix runs the whole cross product.
 *
 * Scale note: the time-sliced cells default to the paper-faithful CFS
 * geometry — 1.5e8-cycle quanta with the ~1 ms timer tick — which the
 * TimeSlice slice-event fast path makes affordable (idle spans advance
 * as single slice events; see tests/test_slice_events.cpp for the
 * equivalence proof).  The protocol periods of those cells stretch
 * with the quantum so a bit spans the same number of slices at any
 * scale.  Passing a quantum below 1e6 (e.g. --quantum=30000) selects
 * the legacy scaled OS model — quantum, jitter and timer tick shrink
 * together, exactly as `xcore_timesliced` does.
 */

#include <sstream>

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

/** Per-mode protocol periods: the paper's single-core operating point
 *  and the cross-core one (the LLC round trip needs the longer Ts). */
struct ModePoint
{
    SharingMode mode;
    std::uint64_t tr;
    std::uint64_t ts;
};

constexpr ModePoint kModes[] = {
    {SharingMode::HyperThreaded, 600, 6000},
    {SharingMode::TimeSliced, 600, 6000},
    {SharingMode::CrossCore, 3000, 30000},
};

class ChannelMatrix final : public Experiment
{
  public:
    std::string name() const override { return "channel_matrix"; }

    std::string
    description() const override
    {
        return "channel-session matrix: all channels x all 3 sharing "
               "modes x carrier replacement policies, plus PL-cache, "
               "AMD cross-address-space and noise-core ablations";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 24, "random message length"),
            ParamSpec::integer("repeats", 1,
                               "times the message is re-sent"),
            ParamSpec::integer("quantum", 150'000'000,
                               "time-sliced cells: scheduling quantum in "
                               "cycles; values below 1e6 select the "
                               "scaled OS model (e.g. --quantum=30000)"),
            ParamSpec::integer("noise_cores", 2,
                               "background cores in the time-sliced + "
                               "noise section"),
            ParamSpec::str("policies",
                           "lru,treeplru,bitplru,fifo,random,srrip",
                           "comma-separated carrier replacement-policy "
                           "list"),
            uarchParam("e5-2690"),
            seedParam(29),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");
        const auto repeats = params.getUint32("repeats");
        const auto quantum = params.getUint("quantum");
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200415);
        const auto uarch = uarchFromParams(params);
        const auto policies = parsePolicies(params.getStr("policies"));

        // Regime switch: paper-faithful CFS quanta (default) or the
        // legacy scaled OS model.  Time-sliced protocol periods stretch
        // with the quantum so a bit spans the same number of slices in
        // either regime; at true scale the sender is paced at the
        // Fig. 6 re-encode gap instead of spinning the whole bit.
        const bool scaled = quantum < 1'000'000;
        const std::uint64_t period_scale = scaled ? 1 : quantum / 30'000;
        const auto configureTimeSlice = [&](SessionConfig &cfg,
                                            const ModePoint &point) {
            cfg.tr = point.tr * period_scale;
            cfg.ts = point.ts * period_scale;
            if (!scaled)
                cfg.encode_gap = 20'000;
            cfg.tslice.quantum = quantum;
            cfg.tslice.quantum_jitter = quantum / 2;
            cfg.tslice.tick_period = scaled ? 100'000 : 4'000'000;
        };

        const auto &channels = allChannelIds();
        const auto &modes = kModes;
        const std::uint32_t n_modes =
            static_cast<std::uint32_t>(std::size(modes));
        const std::uint32_t n_channels =
            static_cast<std::uint32_t>(channels.size());
        const std::uint32_t cells = static_cast<std::uint32_t>(
            policies.size() * n_channels * n_modes);

        sink.note("=== channel-session matrix: channel x sharing mode x "
                  "carrier policy, " + uarch.name + " ===\n(" +
                  std::to_string(params.getUint("bits")) + "-bit random "
                  "string x" + std::to_string(repeats) + "; one "
                  "channel::Session per cell; error = edit distance / "
                  "bits sent;\ntime-sliced cells run a quantum-" +
                  std::to_string(quantum) +
                  (scaled ? " scaled OS model" : " CFS model (true "
                                                 "quanta, ~1 ms tick)") +
                  "; cross-core cells decode through the shared "
                  "inclusive LLC)");

        // One flat trial-parallel sweep over (policy, channel, mode);
        // the per-cell seed depends only on the cell index, so any
        // LRULEAK_THREADS produces the same table.
        const auto results = core::runTrials(
            cells, seed, [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t mode_idx = idx % n_modes;
                const std::uint32_t chan_idx =
                    (idx / n_modes) % n_channels;
                const std::size_t pol = idx / (n_modes * n_channels);

                SessionConfig cfg;
                cfg.channel = channels[chan_idx];
                cfg.mode = modes[mode_idx].mode;
                cfg.uarch = uarch;
                cfg.tr = modes[mode_idx].tr;
                cfg.ts = modes[mode_idx].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.seed = seed + idx;
                // The swept policy governs the carrier cache: the L1
                // for single-core cells, the shared LLC for LLC-carried
                // ones.
                if (sessionCarrier(cfg) == Carrier::Llc)
                    cfg.llc_policy = policies[pol];
                else
                    cfg.l1_policy = policies[pol];
                if (cfg.mode == SharingMode::TimeSliced)
                    configureTimeSlice(cfg, modes[mode_idx]);
                const auto res = runSession(cfg);
                return std::pair<double, double>(res.error_rate,
                                                 res.kbps);
            });

        const auto cell = [&](std::size_t pol, std::uint32_t chan,
                              std::uint32_t mode) {
            return results[(pol * n_channels + chan) * n_modes + mode];
        };

        for (std::uint32_t m = 0; m < n_modes; ++m) {
            Table table(headerFor(policies));
            for (std::uint32_t c = 0; c < n_channels; ++c) {
                std::vector<std::string> row{
                    channelDisplayName(channels[c])};
                for (std::size_t p = 0; p < policies.size(); ++p) {
                    const auto &[err, kbps] = cell(p, c, m);
                    row.push_back(fmtPercent(err) + " @ " +
                                  fmtKbps(kbps));
                }
                table.addRow(row);
            }
            const bool stretched =
                modes[m].mode == SharingMode::TimeSliced;
            const std::uint64_t eff_scale = stretched ? period_scale : 1;
            sink.table(
                "--- sharing mode: " +
                    std::string(sharingModeToken(modes[m].mode)) +
                    " (Tr=" + std::to_string(modes[m].tr * eff_scale) +
                    ", Ts=" + std::to_string(modes[m].ts * eff_scale) +
                    ") ---",
                table);
        }

        // The headline matrix (first listed policy), one scalar per
        // channel x mode so trends are machine-checkable.
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            for (std::uint32_t m = 0; m < n_modes; ++m) {
                sink.scalar(
                    "error_" +
                        std::string(channelIdToken(channels[c])) + "_" +
                        std::string(sharingModeToken(modes[m].mode)),
                    cell(0, c, m).first);
            }
        }

        // ----- PL-cache secure-mode ablation (Fig. 11's defense axis):
        // hyper-threaded cells, first listed policy, the sender locking
        // its line in a partition-locked L1.  The original PL design
        // still updates replacement state on locked hits, so the
        // LRU-state channels survive it; the fixed design freezes the
        // state and the dirty channels lose their evictable line.
        const sim::PlMode pl_modes[] = {sim::PlMode::Original,
                                        sim::PlMode::FixedLruLock};
        const auto pl_results = core::runTrials(
            n_channels * 2, seed + cells,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                SessionConfig cfg;
                cfg.channel = channels[idx / 2];
                cfg.mode = SharingMode::HyperThreaded;
                cfg.uarch = uarch;
                cfg.tr = modes[0].tr;
                cfg.ts = modes[0].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.seed = seed + cells + idx;
                cfg.l1_policy = policies[0];
                cfg.pl_mode = pl_modes[idx % 2];
                cfg.sender_locks_line = true;
                return runSession(cfg).error_rate;
            });

        Table pl_table({"Channel", "no PL-cache", "PL original",
                        "PL fixed (LRU-lock)"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            pl_table.addRow({channelDisplayName(channels[c]),
                             fmtPercent(cell(0, c, 0).first),
                             fmtPercent(pl_results[c * 2]),
                             fmtPercent(pl_results[c * 2 + 1])});
            sink.scalar("error_" +
                            std::string(channelIdToken(channels[c])) +
                            "_pl_original",
                        pl_results[c * 2]);
            sink.scalar("error_" +
                            std::string(channelIdToken(channels[c])) +
                            "_pl_fixed",
                        pl_results[c * 2 + 1]);
        }
        sink.table("--- PL-cache ablation (hyperthreaded, " +
                       std::string(sim::replPolicyName(policies[0])) +
                       ", sender locks its line) ---",
                   pl_table);

        // ----- AMD way-predictor, cross-address-space (Section VII):
        // on Zen the L1 way predictor keys on a linear-address utag, so
        // sender and receiver mapping the shared line at *different*
        // virtual addresses fight the predictor on every probe.  Both
        // columns run the AMD model so the comparison isolates the
        // address-space split.
        const auto amd = timing::Uarch::amdEpyc7571();
        const std::uint64_t amd_base = seed + cells + n_channels * 2;
        const auto amd_results = core::runTrials(
            n_channels * 2, amd_base,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                SessionConfig cfg;
                cfg.channel = channels[idx / 2];
                cfg.mode = SharingMode::HyperThreaded;
                cfg.uarch = amd;
                cfg.tr = modes[0].tr;
                cfg.ts = modes[0].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.seed = amd_base + idx;
                cfg.l1_policy = policies[0];
                cfg.shared_same_vaddr = idx % 2 == 0;
                return runSession(cfg).error_rate;
            });

        Table amd_table({"Channel", "same vaddr", "separate spaces"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            amd_table.addRow({channelDisplayName(channels[c]),
                              fmtPercent(amd_results[c * 2]),
                              fmtPercent(amd_results[c * 2 + 1])});
            sink.scalar("error_" +
                            std::string(channelIdToken(channels[c])) +
                            "_amd_xspace",
                        amd_results[c * 2 + 1]);
        }
        sink.table("--- AMD way predictor (hyperthreaded, " + amd.name +
                       ", " +
                       std::string(sim::replPolicyName(policies[0])) +
                       "): shared vaddr vs separate address spaces ---",
                   amd_table);

        // ----- time-sliced + noise cores: OS scheduling on the party
        // core while background cores hammer the shared LLC — the two
        // noise sources the paper studies separately, combined.  Runs
        // on the multi-core topology with TimeSlice nested on core 0,
        // where the slice-event fast path must stay per-op (the parent
        // LowestClock interleaves the noise cores' LLC traffic between
        // ops) — so this section always uses the scaled OS model; true
        // quanta here would mean minutes of per-op stepping per cell.
        const auto noise_cores = params.getUint32("noise_cores");
        const std::uint64_t noise_quantum = scaled ? quantum : 30'000;
        const std::uint64_t tsn_base = amd_base + n_channels * 2;
        const auto tsn_results = core::runTrials(
            n_channels, tsn_base, [&](std::uint32_t idx, sim::Xoshiro256 &) {
                SessionConfig cfg;
                cfg.channel = channels[idx];
                cfg.mode = SharingMode::TimeSliced;
                cfg.uarch = uarch;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.seed = tsn_base + idx;
                cfg.tr = modes[1].tr;
                cfg.ts = modes[1].ts;
                cfg.l1_policy = policies[0];
                cfg.noise_cores = noise_cores;
                cfg.tslice.quantum = noise_quantum;
                cfg.tslice.quantum_jitter = noise_quantum / 2;
                cfg.tslice.tick_period = 100'000;
                return runSession(cfg).error_rate;
            });

        // Baseline column at the *same* (scaled) OS scale, so the
        // comparison isolates the noise cores.  Under the scaled regime
        // the matrix's own time-sliced cells already are that baseline.
        std::vector<double> tsn_baseline(n_channels);
        if (scaled) {
            for (std::uint32_t c = 0; c < n_channels; ++c)
                tsn_baseline[c] = cell(0, c, 1).first;
        } else {
            const std::uint64_t base_seed = tsn_base + n_channels;
            const auto fresh = core::runTrials(
                n_channels, base_seed,
                [&](std::uint32_t idx, sim::Xoshiro256 &) {
                    SessionConfig cfg;
                    cfg.channel = channels[idx];
                    cfg.mode = SharingMode::TimeSliced;
                    cfg.uarch = uarch;
                    cfg.message = message;
                    cfg.repeats = repeats;
                    cfg.seed = base_seed + idx;
                    cfg.tr = modes[1].tr;
                    cfg.ts = modes[1].ts;
                    cfg.l1_policy = policies[0];
                    cfg.tslice.quantum = noise_quantum;
                    cfg.tslice.quantum_jitter = noise_quantum / 2;
                    cfg.tslice.tick_period = 100'000;
                    return runSession(cfg).error_rate;
                });
            for (std::uint32_t c = 0; c < n_channels; ++c)
                tsn_baseline[c] = fresh[c];
        }

        Table tsn_table({"Channel", "no noise cores",
                         "+" + std::to_string(noise_cores) +
                             " noise cores"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            tsn_table.addRow({channelDisplayName(channels[c]),
                              fmtPercent(tsn_baseline[c]),
                              fmtPercent(tsn_results[c])});
            sink.scalar("error_" +
                            std::string(channelIdToken(channels[c])) +
                            "_timesliced_noise",
                        tsn_results[c]);
        }
        sink.table("--- time-sliced + LLC noise cores (" +
                       std::string(sim::replPolicyName(policies[0])) +
                       ", quantum-" + std::to_string(noise_quantum) +
                       " scaled OS model) ---",
                   tsn_table);

        sink.note("\nReading the matrix: the hyper-threaded column of "
                  "each table reproduces the paper's\nTable IV/VI "
                  "operating points; time-slicing degrades every design "
                  "(only the first\nmeasurement after a sender slice "
                  "carries signal); cross-core keeps the LLC-\ncarried "
                  "channels alive while the L1-resident F+R (L1) "
                  "design goes dark.  The\ncross-core Flush+Reload and "
                  "time-sliced Prime+Probe cells were unreachable\n"
                  "before the Session refactor.");
    }

  private:
    static std::vector<sim::ReplPolicyKind>
    parsePolicies(const std::string &list)
    {
        std::vector<sim::ReplPolicyKind> policies;
        std::string token;
        std::stringstream ss(list);
        while (std::getline(ss, token, ','))
            policies.push_back(sim::replPolicyFromName(token));
        if (policies.empty())
            throw ParamError("parameter 'policies': at least one "
                             "replacement policy is required");
        return policies;
    }

    static std::vector<std::string>
    headerFor(const std::vector<sim::ReplPolicyKind> &policies)
    {
        std::vector<std::string> header{"Channel"};
        for (auto p : policies)
            header.push_back(std::string(sim::replPolicyName(p)));
        return header;
    }
};

LRULEAK_REGISTER_EXPERIMENT(ChannelMatrix)

} // namespace

} // namespace lruleak::experiments
