/**
 * @file
 * Table VI as a registered experiment: the sender process's cache miss
 * rates under each channel, plus the "sender & gcc" and "sender only"
 * baselines — the stealth argument of Section VII.  The channel list is
 * a parameter, so Prime+Probe can be added from the CLI.
 */

#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Tab6SenderMissRates final : public Experiment
{
  public:
    std::string name() const override { return "tab6_sender_miss_rates"; }

    std::string
    description() const override
    {
        return "Table VI: sender-process cache miss rates per channel "
               "(stealth, Section VII)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            channelsParam("fr-mem,fr-l1,lru-alg1,lru-alg2"),
            seedParam(6),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto channels = parseChannels(params.getStr("channels"));
        const auto seed = params.getUint("seed");

        sink.note("=== Table VI: cache miss rate of the sender process "
                  "===");

        for (const auto &u : {timing::Uarch::intelXeonE52690(),
                              timing::Uarch::intelXeonE31245v5()}) {
            Table table({"Scenario", "L1D miss", "L2 miss", "LLC miss",
                         "L1D acc", "L2 acc", "LLC acc"});
            for (const auto &row : senderMissRates(u, channels, seed)) {
                table.addRow({row.scenario,
                              fmtPercent(row.l1.missRate(), 3),
                              fmtPercent(row.l2.missRate()),
                              fmtPercent(row.llc.missRate()),
                              std::to_string(row.l1.accesses),
                              std::to_string(row.l2.accesses),
                              std::to_string(row.llc.accesses)});
            }
            sink.table("--- " + u.name + " ---", table);
        }

        sink.note("\nPaper reference (E5-2690 L1D): F+R(mem) 0.07%, "
                  "F+R(L1) 0.04%, LRU Alg.1/2 0.03%,\nsender&gcc 0.03%, "
                  "sender only 0.01%.  Shape: the LRU sender's L1D miss "
                  "rate is\nindistinguishable from benign sharing; "
                  "F+R(mem) stands out.  (Our senders are\nbare loops, "
                  "so absolute rates run higher than a full process's; "
                  "see DESIGN.md.)");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Tab6SenderMissRates)

} // namespace

} // namespace lruleak::experiments
