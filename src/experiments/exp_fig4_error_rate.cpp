/**
 * @file
 * Fig. 4 as a registered experiment: transmission error rate (edit
 * distance) versus transmission rate for the hyper-threaded LRU channels
 * on Intel Xeon E5-2690 — Algorithms 1 and 2, Tr in {600, 1000, 3000},
 * d in 1..8, Ts in {4500, 6000, 12000, 30000}.
 */

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig4ErrorRate final : public Experiment
{
  public:
    std::string name() const override { return "fig4_error_rate"; }

    std::string
    description() const override
    {
        return "Fig. 4: error rate vs transmission rate, hyper-threaded "
               "LRU channels on Intel";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 128, "random message length"),
            ParamSpec::integer("repeats", 4,
                               "times the message is re-sent"),
            seedParam(7),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Fig. 4: error rate vs transmission rate, "
                  "hyper-threaded, Intel Xeon E5-2690 ===\n(random " +
                  std::to_string(params.getUint("bits")) +
                  "-bit string x" + std::to_string(params.getUint(
                      "repeats")) +
                  "; error = Wagner-Fischer edit distance / bits sent)");

        sweep(LruAlgorithm::Alg1Shared, "Algorithm 1 (shared memory)",
              params, sink);
        sweep(LruAlgorithm::Alg2Disjoint, "Algorithm 2 (no shared "
                                          "memory)",
              params, sink);

        sink.note("\nPaper reference: error grows with rate; Algorithm "
                  "2 is noisier with the even-d\nTree-PLRU pathology "
                  "(d = 2,4,6 bad); Tr = 3000 is the worst sampling "
                  "period.");
    }

  private:
    static void
    sweep(LruAlgorithm alg, const char *title, const ParamMap &params,
          ResultSink &sink)
    {
        sink.note("\n--- " + std::string(title) + " ---");
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200128);
        const auto repeats = params.getUint32("repeats");
        const auto seed = params.getUint("seed");

        for (std::uint64_t tr : {600ULL, 1000ULL, 3000ULL}) {
            Table table({"Ts (cyc)", "Rate", "d=1", "d=2", "d=3", "d=4",
                         "d=5", "d=6", "d=7", "d=8"});
            for (std::uint64_t ts :
                 {4500ULL, 6000ULL, 12000ULL, 30000ULL}) {
                // The eight d-cells of a row are independent channel
                // runs: fan them out trial-parallel.  Seeds stay the
                // sequential ones (seed + d), so the table is identical
                // for any worker count.
                const auto cells = core::runTrials(
                    8, seed,
                    [&](std::uint32_t idx, sim::Xoshiro256 &) {
                        const std::uint32_t d = idx + 1;
                        SessionConfig cfg;
                        cfg.channel = alg == LruAlgorithm::Alg1Shared
                                          ? ChannelId::LruAlg1
                                          : ChannelId::LruAlg2;
                        cfg.d = d;
                        cfg.tr = tr;
                        cfg.ts = ts;
                        cfg.message = message;
                        cfg.repeats = repeats;
                        cfg.seed = seed + d;
                        const auto res = runSession(cfg);
                        return std::pair<double, double>(res.error_rate,
                                                         res.kbps);
                    });

                std::vector<std::string> full{std::to_string(ts),
                                              fmtKbps(cells.back().second)};
                for (const auto &[error_rate, _] : cells)
                    full.push_back(fmtPercent(error_rate));
                table.addRow(full);
            }
            sink.table("Tr = " + std::to_string(tr) + " cycles", table);
        }
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig4ErrorRate)

} // namespace

} // namespace lruleak::experiments
