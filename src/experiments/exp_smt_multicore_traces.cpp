/**
 * @file
 * The second combined scenario of the execution-engine matrix: the
 * paper's hyper-threaded L1 channel (Fig. 5) running as an SMT pair on
 * core 0 of an N-core system while background-noise cores contend for
 * the shared inclusive LLC.
 *
 * A RoundRobinSmt policy nests under the cross-core LowestClock
 * arbitration: sender and receiver interleave per-op on core 0 exactly
 * as in the single-core Section V-A setting, but the other cores'
 * traffic now evicts LLC lines whose back-invalidation reaches *into
 * core 0's private L1* and knocks out channel lines mid-protocol — a
 * noise source the single-core topology cannot model.  Sweeping the
 * noise-core count shows the L1 channel degrading with co-scheduled
 * load, and the trace rows make the injected misses visible.
 */

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class SmtMulticoreTraces final : public Experiment
{
  public:
    std::string name() const override { return "smt_multicore_traces"; }

    std::string
    description() const override
    {
        return "SMT L1 channel on core 0 of an N-core system: traces "
               "and error vs LLC noise cores";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 12, "alternating message length"),
            ParamSpec::integer("cores", 8,
                               "total simulated cores (the SMT pair's "
                               "core + noise cores); minimum 1"),
            ParamSpec::integer("d", 8,
                               "receiver init depth (1..8 L1 ways)"),
            ParamSpec::choice("alg", "alg2",
                              "LRU channel algorithm on the shared L1 "
                              "(alg2's receiver-owned line is the "
                              "noise-sensitive one; alg1's shared line "
                              "self-heals)",
                              {"alg1", "alg2"}),
            uarchParam("e5-2690"),
            seedParam(23),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto cores = params.getUint32("cores");
        if (cores < 1)
            throw ParamError("parameter 'cores': at least the SMT "
                             "pair's core is required");
        const auto seed = params.getUint("seed");
        const auto d = params.getUint32("d");
        const auto alg = params.getStr("alg") == "alg2"
                             ? LruAlgorithm::Alg2Disjoint
                             : LruAlgorithm::Alg1Shared;
        const Bits message = alternatingBits(
            static_cast<std::size_t>(params.getUint("bits")));
        const auto uarch = uarchFromParams(params);

        sink.note("=== SMT pair on core 0 of a " + std::to_string(cores) +
                  "-core system: hyper-threaded L1 channel vs shared-LLC "
                  "noise, " + uarch.name + " ===\n(RoundRobinSmt nested "
                  "on core 0 under LowestClock; noise cores reach the "
                  "pair's L1\nonly through inclusive-LLC "
                  "back-invalidation)");

        // One run per noise-core count 0..cores-1, fanned out with
        // per-cell seeds (identical output for any LRULEAK_THREADS).
        const std::uint32_t noise_levels = cores;
        const auto results = core::runTrials(
            noise_levels, seed, [&](std::uint32_t idx, sim::Xoshiro256 &) {
                SessionConfig cfg;
                cfg.channel = alg == LruAlgorithm::Alg1Shared
                                  ? ChannelId::LruAlg1
                                  : ChannelId::LruAlg2;
                cfg.mode = SharingMode::HyperThreaded;
                cfg.multicore = true;
                cfg.uarch = uarch;
                cfg.noise_cores = idx;
                cfg.d = d;
                cfg.message = message;
                cfg.seed = seed + idx;
                // The channel's L1-set-7 lines scatter to LLC sets
                // 64k+7 (L1 tag bits feed the LLC index), so an
                // oblivious LLC-wide footprint almost never pressures
                // them inside the receiver's 600-cycle sleep window.
                // Model the worst realistic co-resident instead: a
                // streaming process whose hot set collides with the
                // timed line's LLC set (71), deeper than the LLC's
                // associativity.  Its fills evict line 0 from the LLC
                // mid-protocol and the back-invalidation clears the
                // pair's private copies — the cross-core noise path.
                cfg.noise.base = 0x6000'0000'0000ULL + (71u << 6);
                cfg.noise.footprint_sets = 1;
                cfg.noise.lines_per_set = 24;
                cfg.noise.burst = 256;
                cfg.noise.gap = 10;
                return runSession(cfg);
            });

        Table table({"noise cores", "error", "rate", "back-inval",
                     "rx L1 miss%"});
        for (std::uint32_t k = 0; k < noise_levels; ++k) {
            const auto &res = results[k];
            table.addRow({std::to_string(k), fmtPercent(res.error_rate),
                          fmtKbps(res.kbps),
                          std::to_string(res.back_invalidations),
                          fmtPercent(res.receiver_l1.missRate())});
        }
        sink.table("SMT " + std::string(alg == LruAlgorithm::Alg1Shared
                                            ? "Alg.1"
                                            : "Alg.2") +
                       " on core-0 L1, Tr=600, Ts=6000, d=" +
                       std::to_string(d),
                   table);

        // Traces: quiet system vs full noise, Fig. 5 style.
        trace(results[0], 0, sink);
        if (noise_levels > 1)
            trace(results[noise_levels - 1], noise_levels - 1, sink);

        sink.scalar("error_quiet", results[0].error_rate);
        sink.scalar("error_full_noise",
                    results[noise_levels - 1].error_rate);

        sink.note("\nThe quiet row reproduces the single-core Fig. 5 "
                  "behaviour.  Noise cores never\ntouch core 0's L1 "
                  "directly — they reach it through inclusive-LLC "
                  "back-\ninvalidation, whose rate is memory-latency-"
                  "bound (~3 colliding fills per\nsleep window per "
                  "core): the channel shrugs off light load, then "
                  "collapses\nonce the per-window eviction pressure "
                  "crosses the LLC associativity and\nevery Alg.2 "
                  "0-bit reads as an eviction.  Alg.1 (--alg=alg1) "
                  "stays at 0%\nerror throughout: its shared line is "
                  "re-warmed by the sender within an\nencode gap, so "
                  "back-invalidation cannot stick.");
    }

  private:
    static void
    trace(const SessionResult &res, std::uint32_t noise,
          ResultSink &sink)
    {
        const std::string title =
            "receiver trace, " + std::to_string(noise) + " noise core" +
            (noise == 1 ? "" : "s") + "  (threshold " +
            std::to_string(res.threshold) + " cycles, error " +
            fmtPercent(res.error_rate) + ", " +
            std::to_string(res.back_invalidations) +
            " back-invalidations)";
        sink.series("\n" + title, sampleLatencies(res.samples, 200), 8);
        sink.text("", "decoded: " + bitsToString(res.received));
    }
};

LRULEAK_REGISTER_EXPERIMENT(SmtMulticoreTraces)

} // namespace

} // namespace lruleak::experiments
