/**
 * @file
 * Ablation as a registered experiment: the minimum speculation window
 * each disclosure primitive needs (Section VIII's claim that the LRU
 * channel's cache-hit encode makes the Spectre attack work with a much
 * smaller window than Flush+Reload's memory-miss encode).
 */

#include "experiments/common.hpp"
#include "spectre/attack.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::spectre;

class AblationSpeculationWindow final : public Experiment
{
  public:
    std::string
    name() const override
    {
        return "ablation_speculation_window";
    }

    std::string
    description() const override
    {
        return "Ablation: minimum Spectre speculation window per "
               "disclosure primitive (Section VIII)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("rounds", 3, "scoring rounds per byte"),
            ParamSpec::integer("max_window", 2048,
                               "upper bound of the window search"),
            seedParam(2024),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Ablation: minimum working speculation window "
                  "per disclosure primitive ===\n(binary search over "
                  "the window at which a 1-byte secret is still "
                  "recovered)\n");

        Table table({"Disclosure", "Min window (cycles)", "Encode is"});
        const char *encode[] = {"memory miss", "L2 hit", "L1 hit",
                                "L1/L2 hit"};
        int i = 0;
        for (auto d : {Disclosure::FlushReloadMem,
                       Disclosure::FlushReloadL1, Disclosure::LruAlg1,
                       Disclosure::LruAlg2}) {
            SpectreAttackConfig cfg;
            cfg.disclosure = d;
            cfg.rounds = params.getUint32("rounds");
            cfg.seed = params.getUint("seed");
            const auto window = minimumWorkingWindow(
                cfg, 4, params.getUint("max_window"));
            table.addRow({disclosureName(d),
                          window ? std::to_string(window)
                                 : "never in range",
                          encode[i++]});
        }
        sink.table("", table);

        sink.note("\nTakeaway: the LRU disclosure works with a "
                  "speculation window an order of magnitude\nsmaller "
                  "than F+R (mem) — more gadgets qualify, making the "
                  "attack harder to defend\n(Section VIII).");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AblationSpeculationWindow)

} // namespace

} // namespace lruleak::experiments
