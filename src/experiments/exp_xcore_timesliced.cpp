/**
 * @file
 * The first combined scenario of the execution-engine matrix: the
 * cross-core LLC channel (Algorithm 2 through the shared inclusive
 * LLC) with OS time-slicing layered on *both party cores* — a
 * Fig. 6-style error-versus-quantum sweep run cross-core.
 *
 * Each party core runs an exec::TimeSlice policy nested under the
 * cross-core LowestClock arbitration: the sender and receiver lose
 * slices to background processes, and every context switch executes
 * kernel scheduler code whose lines stream *through the shared LLC* —
 * so, unlike the single-core Fig. 6 setting, the OS noise of one core
 * pollutes the replacement state the other core's party decodes.  Two
 * effects shape the sweep: short quanta maximize kernel-switch
 * pollution (and its back-invalidation fallout), long quanta park a
 * party off-core for many bit periods at a time and lose whole bits.
 * The quantum=0 row is the dedicated-core baseline of `xcore_traces`.
 */

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

/** Swept scheduling quanta (cycles); 0 = dedicated cores baseline. */
constexpr std::uint64_t kQuanta[] = {0, 25'000, 50'000, 100'000, 200'000,
                                     400'000};

class XCoreTimesliced final : public Experiment
{
  public:
    std::string name() const override { return "xcore_timesliced"; }

    std::string
    description() const override
    {
        return "cross-core LLC channel with OS time-sliced party cores: "
               "error rate vs scheduling quantum";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 24, "random message length"),
            ParamSpec::integer("repeats", 1,
                               "times the message is re-sent"),
            ParamSpec::integer("noise-cores", 0,
                               "dedicated background-noise cores beyond "
                               "the pair"),
            ParamSpec::integer("d", 12,
                               "receiver init depth (1..16 LLC ways)"),
            ParamSpec::choice("policy", "treeplru",
                              "shared-LLC replacement policy",
                              {"lru", "treeplru", "bitplru", "fifo",
                               "random", "srrip"}),
            uarchParam("e5-2690"),
            seedParam(17),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");
        const auto noise_cores = params.getUint32("noise-cores");
        const auto d = params.getUint32("d");
        const auto repeats = params.getUint32("repeats");
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200414);
        const auto uarch = uarchFromParams(params);
        const auto policy =
            sim::replPolicyFromName(params.getStr("policy"));

        sink.note("=== cross-core LLC channel, party cores OS-time-"
                  "sliced: error vs quantum, " + uarch.name + " ===\n(" +
                  std::to_string(params.getUint("bits")) + "-bit random "
                  "string x" + std::to_string(repeats) + "; TimeSlice "
                  "nested per party core under LowestClock; quantum 0 = "
                  "dedicated cores;\nbackground processes steal 25% of "
                  "slices, every switch sprays kernel lines through "
                  "the shared LLC)");

        const std::uint32_t cells =
            static_cast<std::uint32_t>(std::size(kQuanta));

        // One engine run per quantum, fanned out with per-cell seeds so
        // the table is identical for any LRULEAK_THREADS.
        const auto results = core::runTrials(
            cells, seed, [&](std::uint32_t idx, sim::Xoshiro256 &) {
                SessionConfig cfg;
                cfg.channel = ChannelId::XCoreLruAlg2;
                cfg.mode = SharingMode::CrossCore;
                cfg.tr = 3000;
                cfg.ts = 30000;
                cfg.uarch = uarch;
                cfg.llc_policy = policy;
                cfg.noise_cores = noise_cores;
                cfg.d = d;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.quantum = kQuanta[idx];
                // The OS knobs scale with the channel's cycle budget
                // (the Fig. 6 defaults are tuned to quanta 1000x
                // larger): jitter half a quantum, a ~25 us timer tick.
                cfg.tslice.quantum_jitter = kQuanta[idx] / 2;
                cfg.tslice.tick_period = 100'000;
                cfg.seed = seed + idx;
                return runSession(cfg);
            });

        Table table({"quantum (cyc)", "error", "rate", "bits rx",
                     "back-inval"});
        for (std::uint32_t i = 0; i < cells; ++i) {
            const auto &res = results[i];
            table.addRow({i == 0 ? "dedicated"
                                 : std::to_string(kQuanta[i]),
                          fmtPercent(res.error_rate), fmtKbps(res.kbps),
                          std::to_string(res.received.size()),
                          std::to_string(res.back_invalidations)});
        }
        sink.table("x-core Alg.2 over " +
                       std::string(sim::replPolicyName(policy)) +
                       " LLC, Tr=3000, Ts=30000, d=" + std::to_string(d),
                   table);

        double sliced_sum = 0.0;
        for (std::uint32_t i = 1; i < cells; ++i)
            sliced_sum += results[i].error_rate;
        sink.scalar("error_dedicated", results[0].error_rate);
        sink.scalar("mean_error_timesliced",
                    sliced_sum / static_cast<double>(cells - 1));
        sink.scalar("error_largest_quantum",
                    results[cells - 1].error_rate);

        sink.note("\nMechanism: every context switch bursts kernel lines "
                  "through the shared LLC\n(polluting the target set's "
                  "replacement state from *both* cores), and background\n"
                  "slices park a party off-core — at the largest quantum "
                  "whole bit windows pass\nwith no receiver sample and "
                  "are lost outright.  The dedicated row reproduces\n"
                  "the xcore_traces baseline.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(XCoreTimesliced)

} // namespace

} // namespace lruleak::experiments
