/**
 * @file
 * Table VII as a registered experiment: cache behaviour during a Spectre
 * v1 attack with each disclosure primitive (victim + attacker combined),
 * confirming every primitive actually recovers the secret.
 */

#include "experiments/common.hpp"
#include "spectre/attack.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::spectre;

class Tab7SpectreMissRates final : public Experiment
{
  public:
    std::string name() const override { return "tab7_spectre_miss_rates"; }

    std::string
    description() const override
    {
        return "Table VII: cache miss rates during Spectre v1 per "
               "disclosure primitive";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::str("secret", "The Magic Words are ...",
                           "secret the victim holds"),
            ParamSpec::integer("rounds", 3, "scoring rounds per byte"),
            seedParam(1234),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const std::string secret = params.getStr("secret");

        sink.note("=== Table VII: cache miss rates during a Spectre V1 "
                  "attack ===");

        for (const auto &u : {timing::Uarch::intelXeonE52690(),
                              timing::Uarch::intelXeonE31245v5()}) {
            Table table({"Disclosure", "Recovered", "L1D miss", "L2 miss",
                         "LLC miss", "LLC misses(abs)"});
            for (auto d : {Disclosure::FlushReloadMem,
                           Disclosure::FlushReloadL1, Disclosure::LruAlg1,
                           Disclosure::LruAlg2}) {
                SpectreAttackConfig cfg;
                cfg.uarch = u;
                cfg.disclosure = d;
                cfg.rounds = params.getUint32("rounds");
                cfg.seed = params.getUint("seed");
                const auto res = runSpectreAttack(cfg, secret);
                table.addRow({disclosureName(d),
                              res.byte_accuracy == 1.0
                                  ? "yes (100%)"
                                  : fmtPercent(res.byte_accuracy),
                              fmtPercent(res.l1.missRate()),
                              fmtPercent(res.l2.missRate()),
                              fmtPercent(res.llc.missRate()),
                              std::to_string(res.llc.misses)});
            }
            sink.table("--- " + u.name + " ---", table);
        }

        sink.note("\nPaper reference (E5-2690): L1D ~3-5% for all; LLC "
                  "98% for F+R(mem) vs < 1% for the\nLRU channels.  Our "
                  "LLC *rates* are cold-miss dominated (bare-loop "
                  "attacker); the\nabsolute LLC miss column shows the "
                  "paper's contrast: F+R(mem) keeps going back "
                  "to\nDRAM, the LRU attacks do not.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Tab7SpectreMissRates)

} // namespace

} // namespace lruleak::experiments
