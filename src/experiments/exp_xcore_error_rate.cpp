/**
 * @file
 * Cross-core analogue of Fig. 4: transmission error rate of the
 * LLC-carried Algorithm 2 channel versus transmission rate, swept over
 * every implemented replacement policy and over the number of
 * background-noise cores contending for the shared LLC.
 *
 * Two trends anchor the scenario family: with zero noise cores the
 * error-versus-rate shape of the single-core Fig. 4 reappears (faster
 * sending = higher error), and adding noise cores degrades the channel
 * monotonically on average — the per-noise-count means are emitted as
 * scalars so the trend is machine-checkable.  Cells fan out through
 * core::runTrials with per-cell seeds, so the output is bit-identical
 * for any LRULEAK_THREADS.
 */

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

constexpr std::uint64_t kTsValues[] = {7500, 15000, 30000, 60000};

class XCoreErrorRate final : public Experiment
{
  public:
    std::string name() const override { return "xcore_error_rate"; }

    std::string
    description() const override
    {
        return "cross-core LLC channel: error rate vs rate, swept over "
               "replacement policies and noise cores";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 32, "random message length"),
            ParamSpec::integer("repeats", 2,
                               "times the message is re-sent"),
            ParamSpec::integer("noise-cores", 3,
                               "sweep background-noise cores 0..N"),
            ParamSpec::integer("d", 12,
                               "receiver init depth (1..16 LLC ways)"),
            uarchParam("e5-2690"),
            seedParam(13),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto max_noise = params.getUint32("noise-cores");
        const auto seed = params.getUint("seed");
        const auto d = params.getUint32("d");
        const auto repeats = params.getUint32("repeats");
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200413);
        const auto uarch = uarchFromParams(params);

        sink.note("=== cross-core LLC channel: error rate vs "
                  "transmission rate, " + uarch.name + " ===\n(" +
                  std::to_string(params.getUint("bits")) + "-bit random "
                  "string x" + std::to_string(params.getUint("repeats")) +
                  "; sender core 0, receiver core 1, 0.." +
                  std::to_string(max_noise) + " noise cores; error = "
                  "edit distance / bits sent)");

        const auto &policies = sim::allReplPolicyKinds();
        const std::size_t n_ts = std::size(kTsValues);
        const std::uint32_t noise_levels = max_noise + 1;
        const std::uint32_t cells = static_cast<std::uint32_t>(
            policies.size() * n_ts * noise_levels);

        // One flat trial-parallel sweep over (policy, Ts, noise); the
        // per-cell seed depends only on the cell index, so any worker
        // count produces the same table.
        const auto results = core::runTrials(
            cells, seed,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t noise = idx % noise_levels;
                const std::size_t ts_idx = (idx / noise_levels) % n_ts;
                const std::size_t pol = idx / (noise_levels * n_ts);

                SessionConfig cfg;
                cfg.channel = ChannelId::XCoreLruAlg2;
                cfg.mode = SharingMode::CrossCore;
                cfg.tr = 3000;
                cfg.uarch = uarch;
                cfg.llc_policy = policies[pol];
                cfg.noise_cores = noise;
                cfg.d = d;
                cfg.ts = kTsValues[ts_idx];
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.seed = seed + idx;
                const auto res = runSession(cfg);
                return std::pair<double, double>(res.error_rate,
                                                 res.kbps);
            });

        std::vector<double> noise_error_sum(noise_levels, 0.0);
        for (std::size_t pol = 0; pol < policies.size(); ++pol) {
            std::vector<std::string> header{"Ts (cyc)", "Rate"};
            for (std::uint32_t k = 0; k < noise_levels; ++k)
                header.push_back("noise=" + std::to_string(k));
            Table table(header);
            for (std::size_t t = 0; t < n_ts; ++t) {
                const std::size_t base =
                    (pol * n_ts + t) * noise_levels;
                std::vector<std::string> row{
                    std::to_string(kTsValues[t]),
                    fmtKbps(results[base].second)};
                for (std::uint32_t k = 0; k < noise_levels; ++k) {
                    row.push_back(fmtPercent(results[base + k].first));
                    noise_error_sum[k] += results[base + k].first;
                }
                table.addRow(row);
            }
            sink.table("LLC policy: " + std::string(sim::replPolicyName(
                           policies[pol])),
                       table);
        }

        const double rows_per_noise =
            static_cast<double>(policies.size() * n_ts);
        for (std::uint32_t k = 0; k < noise_levels; ++k)
            sink.scalar("mean_error_noise" + std::to_string(k),
                        noise_error_sum[k] / rows_per_noise);

        sink.note("\nPaper reference: the noise-free column reproduces "
                  "the Fig. 4 trend (faster\nsending = higher error); "
                  "every added noise core degrades the channel further "
                  "—\nthe mean_error_noise* scalars expose the "
                  "monotonic-on-average trend.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(XCoreErrorRate)

} // namespace

} // namespace lruleak::experiments
