/**
 * @file
 * Fig. 7 as a registered experiment: AMD EPYC 7571 hyper-threaded traces
 * with the coarse timestamp counter — raw samples are noisy, the moving
 * average shows the wave, and the best-fit period recovers the bit
 * length.
 *
 * Algorithm 1 runs between two threads of one address space (the utag
 * way predictor kills the cross-process variant, Section VI-B);
 * Algorithm 2 runs across separate processes.
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig7AmdTraces final : public Experiment
{
  public:
    std::string name() const override { return "fig7_amd_traces"; }

    std::string
    description() const override
    {
        return "Fig. 7: AMD hyper-threaded traces — moving average "
               "recovers the wave under TSC noise";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 15, "alternating message length"),
            ParamSpec::integer("window", 97, "moving-average window"),
            seedParam(77),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Fig. 7: AMD EPYC 7571 hyper-threaded traces, "
                  "sender alternating 0/1 ===");

        amdTrace(LruAlgorithm::Alg1Shared, 8, params, sink);
        amdTrace(LruAlgorithm::Alg2Disjoint, 4, params, sink);

        sink.note("\nPaper reference: raw samples too coarse to "
                  "threshold directly; the moving average\nshows the "
                  "wave at ~97 samples/bit (Alg 1) / ~85 (Alg 2); "
                  "effective rates 22-25 Kbps.");
    }

  private:
    static void
    amdTrace(LruAlgorithm alg, std::uint32_t d, const ParamMap &params,
             ResultSink &sink)
    {
        SessionConfig cfg;
        cfg.channel = alg == LruAlgorithm::Alg1Shared
                          ? ChannelId::LruAlg1
                          : ChannelId::LruAlg2;
        cfg.mode = SharingMode::HyperThreaded;
        cfg.uarch = timing::Uarch::amdEpyc7571();
        cfg.d = d;
        cfg.tr = 1000;
        cfg.ts = 100'000;
        cfg.message = alternatingBits(
            static_cast<std::size_t>(params.getUint("bits")));
        cfg.shared_same_vaddr = true;
        cfg.seed = params.getUint("seed");
        const auto res = runSession(cfg);

        const auto window = params.getUint32("window");
        const auto lat = latencies(res.samples);
        const auto smooth = movingAverage(lat, window);
        const auto period = bestAlternatingPeriod(lat, 60, 140);

        sink.note("\n" +
                  std::string(alg == LruAlgorithm::Alg1Shared
                                  ? "Algorithm 1 (threads, same address "
                                    "space)"
                                  : "Algorithm 2 (separate processes)") +
                  ", Tr=1000, Ts=1e5, d=" + std::to_string(d));
        sink.series("raw trace (first 400 samples):",
                    std::vector<double>(
                        lat.begin(),
                        lat.begin() +
                            std::min<std::size_t>(400, lat.size())),
                    6);
        sink.series("moving average (window " + std::to_string(window) +
                        "):",
                    std::vector<double>(
                        smooth.begin(),
                        smooth.begin() +
                            std::min<std::size_t>(1400, smooth.size())),
                    6);
        sink.scalar("best-fit samples/bit (d=" + std::to_string(d) + ")",
                    static_cast<double>(period));
        sink.scalar("error rate (d=" + std::to_string(d) + ")",
                    res.error_rate);
        sink.scalar("effective Kbps (d=" + std::to_string(d) + ")",
                    res.kbps);
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig7AmdTraces)

} // namespace

} // namespace lruleak::experiments
