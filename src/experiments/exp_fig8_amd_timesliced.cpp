/**
 * @file
 * Fig. 8 as a registered experiment: AMD EPYC 7571 time-sliced sharing —
 * percentage of 1s received versus Tr when the sender constantly sends
 * 0 or 1 (Algorithm 1 between threads of one address space).
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig8AmdTimesliced final : public Experiment
{
  public:
    std::string name() const override { return "fig8_amd_timesliced"; }

    std::string
    description() const override
    {
        return "Fig. 8: AMD time-sliced sharing — % of 1s received vs "
               "Tr, Algorithm 1";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("measurements", 100,
                               "receiver samples per point"),
            seedParam(51),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto max_samples = params.getUint("measurements");
        const auto seed = params.getUint("seed");

        sink.note("=== Fig. 8: AMD EPYC 7571, time-sliced, % of 1s "
                  "received, Algorithm 1 ===\n(" +
                  std::to_string(max_samples) +
                  " measurements per point; threads share one address "
                  "space)");

        const std::uint64_t trs[] = {25'000'000, 100'000'000,
                                     200'000'000, 400'000'000};

        for (std::uint8_t bit : {0, 1}) {
            Table table({"Tr (x1e6)", "d=2", "d=4", "d=6", "d=8"});
            for (std::uint64_t tr : trs) {
                std::vector<std::string> row{
                    std::to_string(tr / 1'000'000)};
                for (std::uint32_t d : {2u, 4u, 6u, 8u}) {
                    SessionConfig cfg;
                    cfg.uarch = timing::Uarch::amdEpyc7571();
                    cfg.mode = SharingMode::TimeSliced;
                    cfg.d = d;
                    cfg.tr = tr;
                    cfg.encode_gap = 20'000;
                    cfg.max_samples = max_samples;
                    cfg.seed = seed + d;
                    row.push_back(
                        fmtPercent(sessionPercentOnes(cfg, bit)));
                }
                table.addRow(row);
            }
            sink.table("--- Sender constantly sending " +
                           std::to_string(int(bit)) + " ---",
                       table);
        }

        sink.note("\nPaper reference: ~70% of 1s when sending 0 vs ~77% "
                  "when sending 1 at Tr = 1e8 on\nAMD (the coarse TSC "
                  "biases the threshold); the gap widens with Tr; "
                  "~0.2 bps.\nOur model's absolute percentages differ "
                  "(the threshold bias is calibrated, not\nfitted) but "
                  "the sending-0/sending-1 gap is reproduced.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig8AmdTimesliced)

} // namespace

} // namespace lruleak::experiments
