/**
 * @file
 * Fig. 6 as a registered experiment: time-sliced sharing on Intel Xeon
 * E5-2690 — the percentage of 1s the receiver observes versus its
 * sampling period Tr when the sender constantly sends 0 or 1,
 * Algorithm 1.
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig6Timesliced final : public Experiment
{
  public:
    std::string name() const override { return "fig6_timesliced"; }

    std::string
    description() const override
    {
        return "Fig. 6: time-sliced sharing on Intel — % of 1s received "
               "vs sampling period Tr";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("measurements", 100,
                               "receiver samples per point"),
            uarchParam("e5-2690"),
            seedParam(31),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto max_samples = params.getUint("measurements");
        const auto seed = params.getUint("seed");
        const auto uarch = uarchFromParams(params);

        sink.note("=== Fig. 6: time-sliced sharing, % of 1s received, " +
                  uarch.name + ", Algorithm 1 ===\n(" +
                  std::to_string(max_samples) +
                  " measurements per point)");

        const std::uint64_t trs[] = {25'000'000, 50'000'000, 100'000'000,
                                     200'000'000, 400'000'000};

        for (std::uint8_t bit : {0, 1}) {
            Table table({"Tr (x1e6)", "d=1", "d=2", "d=3", "d=4", "d=5",
                         "d=6", "d=7", "d=8"});
            for (std::uint64_t tr : trs) {
                std::vector<std::string> row{
                    std::to_string(tr / 1'000'000)};
                for (std::uint32_t d = 1; d <= 8; ++d) {
                    SessionConfig cfg;
                    cfg.uarch = uarch;
                    cfg.mode = SharingMode::TimeSliced;
                    cfg.d = d;
                    cfg.tr = tr;
                    cfg.encode_gap = 20'000;
                    cfg.max_samples = max_samples;
                    cfg.seed = seed + d;
                    row.push_back(
                        fmtPercent(sessionPercentOnes(cfg, bit)));
                }
                table.addRow(row);
            }
            sink.table("--- Sender constantly sending " +
                           std::to_string(int(bit)) + " ---",
                       table);
        }

        sink.note("\nPaper reference: sending 0 -> ~0% of 1s for d = 8; "
                  "sending 1 -> ~30% of 1s around\nTr = 1e8 with "
                  "d = 7-8 strongest (only the first measurement after "
                  "a sender slice\nreflects the sender).  ~2.4 bps "
                  "effective.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig6Timesliced)

} // namespace

} // namespace lruleak::experiments
