/**
 * @file
 * Cross-core analogue of Fig. 5: the receiver's raw latency trace while
 * the sender transmits alternating 0/1 — but through the shared
 * inclusive LLC, sender and receiver on different cores, with
 * optional background-noise cores contending for the same cache.
 *
 * The readout separates "line 0 survived in the LLC" (~LLC-hit chase
 * latency) from "line 0 was evicted and back-invalidated" (~memory
 * chase latency), so the margin is much wider than the single-core
 * L1-vs-L2 traces of Fig. 5.
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class XCoreTraces final : public Experiment
{
  public:
    std::string name() const override { return "xcore_traces"; }

    std::string
    description() const override
    {
        return "cross-core LLC traces: receiver latency, sender "
               "alternating 0/1 through the shared inclusive LLC";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 12, "alternating message length"),
            ParamSpec::integer("cores", 2,
                               "total simulated cores (sender + receiver "
                               "+ noise); minimum 2"),
            ParamSpec::integer("d", 12,
                               "receiver init depth (1..16 LLC ways)"),
            ParamSpec::choice("policy", "treeplru",
                              "shared-LLC replacement policy",
                              {"lru", "treeplru", "bitplru", "fifo",
                               "random", "srrip"}),
            uarchParam("e5-2690"),
            seedParam(11),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto cores = params.getUint32("cores");
        if (cores < 2)
            throw ParamError("parameter 'cores': at least 2 cores "
                             "(sender + receiver) are required");

        SessionConfig cfg;
        cfg.channel = ChannelId::XCoreLruAlg2;
        cfg.mode = SharingMode::CrossCore;
        cfg.tr = 3000;
        cfg.ts = 30000;
        cfg.uarch = uarchFromParams(params);
        cfg.llc_policy = sim::replPolicyFromName(params.getStr("policy"));
        cfg.noise_cores = cores - 2;
        cfg.d = params.getUint32("d");
        cfg.message = alternatingBits(
            static_cast<std::size_t>(params.getUint("bits")));
        cfg.seed = params.getUint("seed");

        sink.note("=== cross-core LLC channel: receiver observations, "
                  "sender alternating 0/1, " + cfg.uarch.name +
                  " ===\n(" + std::to_string(cores) + " cores, " +
                  std::to_string(cfg.noise_cores) + " of them noise; "
                  "shared 16-way inclusive LLC, " +
                  std::string(sim::replPolicyName(*cfg.llc_policy)) +
                  "; y: pointer-chase latency in cycles)");

        trace(cfg, cfg.d, sink);
        trace(cfg, 16, sink); // full prime: init walks the whole set

        sink.note("\nAlgorithm 2 polarity at LLC scale: a 1 bit evicts "
                  "line 0 from the LLC, whose\nback-invalidation also "
                  "clears the private copies — high latency = 1.");
    }

  private:
    static void
    trace(SessionConfig cfg, std::uint32_t d, ResultSink &sink)
    {
        cfg.d = d;
        const auto res = runSession(cfg);

        const std::string title =
            "x-core Alg.2, Tr=" + std::to_string(cfg.tr) +
            ", Ts=" + std::to_string(cfg.ts) + ", d=" + std::to_string(d) +
            "  (threshold " + std::to_string(res.threshold) +
            " cycles, rate " + fmtKbps(res.kbps) + ", error " +
            fmtPercent(res.error_rate) + ", " +
            std::to_string(res.back_invalidations) +
            " back-invalidations)";
        sink.series("\n" + title, sampleLatencies(res.samples, 200), 8);
        sink.text("", "decoded: " + bitsToString(res.received));
    }
};

LRULEAK_REGISTER_EXPERIMENT(XCoreTraces)

} // namespace

} // namespace lruleak::experiments
