/**
 * @file
 * The leakage matrix: channel_matrix upgraded from "does the channel
 * work" (edit-distance error) to "how much does it leak" (empirical
 * mutual information and capacity).
 *
 * Every cell runs `trials` independent channel::Session transmissions
 * with symbol collection on, pools their aligned (sent, decoded)
 * pairs through leakage::Report, and reports
 *
 *   - bits/use: Miller-Madow-corrected mutual information of the
 *     pooled confusion matrix (input {0,1}, output {0,1,erasure});
 *   - a 95% bootstrap CI over the per-trial estimates;
 *   - Blahut-Arimoto capacity of the empirical channel;
 *   - bits/second: bits/use x the session's raw symbol rate.
 *
 * Axes: every ChannelId x every sharing mode x the carrier replacement
 * policies, plus a secure-mode column over the hyper-threaded cells —
 * DAWG and RandomFill L1s (CacheConfig::secure) and both PL-cache
 * modes — which turns the repo's defenses into entries on one leakage
 * scale.  DAWG partitions the L1 ways and replacement state between
 * the sender and receiver domains, so the L1-carried channels should
 * score ~0 bits/use under it.  A final section runs the cross-core
 * column under a SHARP-protected LLC (sim::SecureMode::Sharp), whose
 * eviction filtering refuses the single receiver's displacement of the
 * sender-owned line — the x-core LRU channel's bits/use collapses to
 * ~0 (the multi-spy counter-attack is scored by `sharp_defense`).
 *
 * Determinism: one flat core::runTrials sweep per section with
 * per-session seeds derived only from the flat index, then strictly
 * sequential aggregation — any LRULEAK_THREADS yields byte-identical
 * output, which the golden snapshot pins.
 */

#include <sstream>

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"
#include "leakage/report.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

/** Per-mode protocol periods (same operating points as channel_matrix). */
struct ModePoint
{
    SharingMode mode;
    std::uint64_t tr;
    std::uint64_t ts;
};

constexpr ModePoint kModes[] = {
    {SharingMode::HyperThreaded, 600, 6000},
    {SharingMode::TimeSliced, 600, 6000},
    {SharingMode::CrossCore, 3000, 30000},
};

/** Secure-mode column of the hyper-threaded section. */
struct SecurePoint
{
    const char *token;
    sim::SecureMode l1_secure;
    sim::PlMode pl_mode;
    bool lock_line;
};

constexpr SecurePoint kSecure[] = {
    {"dawg", sim::SecureMode::Dawg, sim::PlMode::Disabled, false},
    {"randomfill", sim::SecureMode::RandomFill, sim::PlMode::Disabled,
     false},
    {"pl_original", sim::SecureMode::None, sim::PlMode::Original, true},
    {"pl_fixed", sim::SecureMode::None, sim::PlMode::FixedLruLock, true},
};

/** What one session contributes to its cell's Report. */
struct TrialTrace
{
    Bits sent;
    Bits decoded;
    double kbps = 0.0;
};

class LeakageMatrix final : public Experiment
{
  public:
    std::string name() const override { return "leakage_matrix"; }

    std::string
    description() const override
    {
        return "empirical leakage instrument: bits/use (Miller-Madow "
               "MI), Blahut-Arimoto capacity and bits/s per channel x "
               "sharing mode x carrier policy x secure-cache mode";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 24, "random message length"),
            ParamSpec::integer("repeats", 1,
                               "times the message is re-sent"),
            ParamSpec::integer("trials", 2,
                               "independent sessions pooled per cell"),
            ParamSpec::integer("resamples", 200,
                               "bootstrap resamples behind the 95% CIs"),
            ParamSpec::integer("quantum", 30'000,
                               "time-sliced cells: scheduling quantum in "
                               "cycles (scaled OS model)"),
            ParamSpec::str("policies", "treeplru,lru,srrip",
                           "comma-separated carrier replacement-policy "
                           "list"),
            uarchParam("e5-2690"),
            seedParam(31),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");
        const auto repeats = params.getUint32("repeats");
        const auto trials = params.getUint32("trials");
        const auto resamples =
            static_cast<std::size_t>(params.getUint("resamples"));
        const auto quantum = params.getUint("quantum");
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200415);
        const auto uarch = uarchFromParams(params);
        const auto policies = parsePolicies(params.getStr("policies"));

        const auto &channels = allChannelIds();
        const std::uint32_t n_modes =
            static_cast<std::uint32_t>(std::size(kModes));
        const std::uint32_t n_channels =
            static_cast<std::uint32_t>(channels.size());
        const std::uint32_t n_policies =
            static_cast<std::uint32_t>(policies.size());
        const std::uint32_t cells = n_policies * n_channels * n_modes;

        sink.note("=== leakage matrix: empirical bits/use and bits/s "
                  "per channel x sharing mode x policy, " + uarch.name +
                  " ===\n(" + std::to_string(params.getUint("bits")) +
                  "-bit random string x" + std::to_string(repeats) +
                  "; " + std::to_string(trials) + " session(s) pooled "
                  "per cell; MI is Miller-Madow corrected over the "
                  "{0,1}->{0,1,erasure}\nconfusion matrix; capacity is "
                  "Blahut-Arimoto over the empirical conditionals; CIs "
                  "are 95%\npercentile bootstrap over trials)");

        // ----- section A: channel x mode x policy.
        // One flat sweep; session (cell, t) sits at idx = cell*trials+t
        // and is seeded by idx alone, so the table is independent of
        // LRULEAK_THREADS.
        const auto traces = core::runTrials(
            cells * trials, seed, [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t cell_idx = idx / trials;
                const std::uint32_t mode_idx = cell_idx % n_modes;
                const std::uint32_t chan_idx =
                    (cell_idx / n_modes) % n_channels;
                const std::size_t pol = cell_idx / (n_modes * n_channels);

                SessionConfig cfg;
                cfg.channel = channels[chan_idx];
                cfg.mode = kModes[mode_idx].mode;
                cfg.uarch = uarch;
                cfg.tr = kModes[mode_idx].tr;
                cfg.ts = kModes[mode_idx].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.collect_symbols = true;
                cfg.seed = seed + idx;
                if (sessionCarrier(cfg) == Carrier::Llc)
                    cfg.llc_policy = policies[pol];
                else
                    cfg.l1_policy = policies[pol];
                if (cfg.mode == SharingMode::TimeSliced) {
                    cfg.tslice.quantum = quantum;
                    cfg.tslice.quantum_jitter = quantum / 2;
                    cfg.tslice.tick_period = 100'000;
                }
                const auto res = runSession(cfg);
                return TrialTrace{res.sent, res.decoded_symbols, res.kbps};
            });

        // Sequential aggregation, one Report per cell, bootstrap seed a
        // function of the cell index only.
        const auto aggregateCell = [&](const auto &all,
                                       std::uint32_t cell_idx,
                                       std::uint64_t boot_seed) {
            leakage::Report::Config rc;
            rc.resamples = resamples;
            rc.seed = boot_seed;
            leakage::Report report(rc);
            for (std::uint32_t t = 0; t < trials; ++t) {
                const TrialTrace &tr = all[cell_idx * trials + t];
                report.addTrial(tr.sent, tr.decoded, tr.kbps * 1000.0);
            }
            return report.aggregate();
        };

        std::vector<leakage::Aggregate> agg(cells);
        for (std::uint32_t cell_idx = 0; cell_idx < cells; ++cell_idx)
            agg[cell_idx] = aggregateCell(traces, cell_idx, 97 + cell_idx);

        const auto cellAgg = [&](std::size_t pol, std::uint32_t chan,
                                 std::uint32_t mode) -> const auto & {
            return agg[(pol * n_channels + chan) * n_modes + mode];
        };

        for (std::uint32_t m = 0; m < n_modes; ++m) {
            Table table(headerFor(policies));
            for (std::uint32_t c = 0; c < n_channels; ++c) {
                std::vector<std::string> row{
                    channelDisplayName(channels[c])};
                for (std::uint32_t p = 0; p < n_policies; ++p) {
                    const auto &a = cellAgg(p, c, m);
                    row.push_back(
                        fmtDouble(a.pooled.corrected_bits_per_use, 3) +
                        " b/u @ " +
                        fmtDouble(a.pooled.bits_per_second, 0) + " b/s");
                }
                table.addRow(row);
            }
            sink.table("--- sharing mode: " +
                           std::string(sharingModeToken(kModes[m].mode)) +
                           " (Tr=" + std::to_string(kModes[m].tr) +
                           ", Ts=" + std::to_string(kModes[m].ts) +
                           ") ---",
                       table);
        }

        // Every cell as machine-checkable scalars (bits/use, bits/s).
        for (std::uint32_t p = 0; p < n_policies; ++p) {
            const std::string pol =
                std::string(sim::replPolicyName(policies[p]));
            for (std::uint32_t c = 0; c < n_channels; ++c) {
                for (std::uint32_t m = 0; m < n_modes; ++m) {
                    const auto &a = cellAgg(p, c, m);
                    const std::string key =
                        std::string(channelIdToken(channels[c])) + "_" +
                        std::string(sharingModeToken(kModes[m].mode)) +
                        "_" + pol;
                    sink.scalar("bpu_" + key,
                                a.pooled.corrected_bits_per_use);
                    sink.scalar("bps_" + key, a.pooled.bits_per_second);
                }
            }
        }

        // Detail view of the headline column: hyper-threaded cells on
        // the first listed policy, with CIs and capacity.
        Table detail({"Channel", "bits/use", "95% CI", "capacity b/u",
                      "bits/s", "pairs"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            const auto &a = cellAgg(0, c, 0);
            detail.addRow(
                {channelDisplayName(channels[c]),
                 fmtDouble(a.pooled.corrected_bits_per_use, 4),
                 "[" + fmtDouble(a.bits_per_use_ci.lo, 4) + ", " +
                     fmtDouble(a.bits_per_use_ci.hi, 4) + "]",
                 fmtDouble(a.pooled.capacity_bits_per_use, 4),
                 fmtDouble(a.pooled.bits_per_second, 0),
                 std::to_string(a.pairs)});
            sink.scalar("capacity_" +
                            std::string(channelIdToken(channels[c])) +
                            "_hyperthreaded",
                        a.pooled.capacity_bits_per_use);
        }
        sink.table("--- hyperthreaded detail (" +
                       std::string(sim::replPolicyName(policies[0])) +
                       "): corrected MI, bootstrap CI, capacity ---",
                   detail);

        // ----- section B: secure-cache modes over the hyper-threaded
        // column (first listed policy).  DAWG / RandomFill act on the
        // L1 (CacheConfig::secure); the PL modes lock the sender's
        // line.  The "none" baseline is section A's cell.
        const std::uint32_t n_secure =
            static_cast<std::uint32_t>(std::size(kSecure));
        const std::uint64_t sec_base = seed + cells * trials;
        const auto sec_traces = core::runTrials(
            n_secure * n_channels * trials, sec_base,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t cell_idx = idx / trials;
                const SecurePoint &sp = kSecure[cell_idx % n_secure];
                const std::uint32_t chan_idx = cell_idx / n_secure;

                SessionConfig cfg;
                cfg.channel = channels[chan_idx];
                cfg.mode = SharingMode::HyperThreaded;
                cfg.uarch = uarch;
                cfg.tr = kModes[0].tr;
                cfg.ts = kModes[0].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.collect_symbols = true;
                cfg.seed = sec_base + idx;
                cfg.l1_policy = policies[0];
                cfg.l1_secure = sp.l1_secure;
                cfg.pl_mode = sp.pl_mode;
                cfg.sender_locks_line = sp.lock_line;
                const auto res = runSession(cfg);
                return TrialTrace{res.sent, res.decoded_symbols, res.kbps};
            });

        Table sec_table({"Channel", "none", "dawg", "randomfill",
                         "pl_original", "pl_fixed"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            std::vector<std::string> row{channelDisplayName(channels[c])};
            row.push_back(fmtDouble(
                cellAgg(0, c, 0).pooled.corrected_bits_per_use, 3));
            for (std::uint32_t s = 0; s < n_secure; ++s) {
                const std::uint32_t cell_idx = c * n_secure + s;
                const auto a = aggregateCell(sec_traces, cell_idx,
                                             0x5ec0 + cell_idx);
                row.push_back(fmtDouble(
                    a.pooled.corrected_bits_per_use, 3));
                const std::string key =
                    std::string(channelIdToken(channels[c])) + "_" +
                    kSecure[s].token;
                sink.scalar("bpu_" + key,
                            a.pooled.corrected_bits_per_use);
                sink.scalar("bps_" + key, a.pooled.bits_per_second);
            }
            sec_table.addRow(row);
        }
        sink.table("--- secure-cache modes, bits/use (hyperthreaded, " +
                       std::string(sim::replPolicyName(policies[0])) +
                       ") ---",
                   sec_table);

        // ----- section C: SHARP on the shared LLC over the cross-core
        // column (first listed policy, single receiver, threshold 0 —
        // the pure detector already refuses every cross-owner eviction,
        // which is what kills the single-spy channel).  The "none"
        // baseline is section A's cross-core cell.  The multi-spy
        // counter-attack and the alarm economics live in the dedicated
        // `sharp_defense` experiment.
        const std::uint32_t xc_mode = n_modes - 1; // CrossCore
        const std::uint64_t sharp_base =
            sec_base + n_secure * n_channels * trials;
        const auto sharp_traces = core::runTrials(
            n_channels * trials, sharp_base,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t chan_idx = idx / trials;

                SessionConfig cfg;
                cfg.channel = channels[chan_idx];
                cfg.mode = SharingMode::CrossCore;
                cfg.uarch = uarch;
                cfg.tr = kModes[xc_mode].tr;
                cfg.ts = kModes[xc_mode].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.collect_symbols = true;
                cfg.seed = sharp_base + idx;
                if (sessionCarrier(cfg) == Carrier::Llc)
                    cfg.llc_policy = policies[0];
                else
                    cfg.l1_policy = policies[0];
                cfg.llc_secure = sim::SecureMode::Sharp;
                const auto res = runSession(cfg);
                return TrialTrace{res.sent, res.decoded_symbols, res.kbps};
            });

        Table sharp_table({"Channel", "none", "sharp"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            const auto a =
                aggregateCell(sharp_traces, c, 0x5a9f + c);
            sharp_table.addRow(
                {channelDisplayName(channels[c]),
                 fmtDouble(
                     cellAgg(0, c, xc_mode).pooled.corrected_bits_per_use,
                     3),
                 fmtDouble(a.pooled.corrected_bits_per_use, 3)});
            const std::string key =
                std::string(channelIdToken(channels[c])) + "_sharp";
            sink.scalar("bpu_" + key, a.pooled.corrected_bits_per_use);
            sink.scalar("bps_" + key, a.pooled.bits_per_second);
        }
        sink.table("--- SHARP-protected LLC, bits/use (crosscore, " +
                       std::string(sim::replPolicyName(policies[0])) +
                       ") ---",
                   sharp_table);

        sink.note("\nReading the matrix: a cell near 1.0 b/u leaks its "
                  "full input bit every use; the\nsecure-mode columns "
                  "show what each defense buys — DAWG partitions the "
                  "L1's ways\nand replacement state per thread domain, "
                  "so every L1-carried channel drops to ~0\nwhile the "
                  "memory-latency and LLC channels ride straight "
                  "through; the original PL\ndesign still updates LRU "
                  "state on locked hits, which is the residue Alg. 2 "
                  "keeps.\nThe SHARP row plays the same role for the "
                  "shared LLC: refusing cross-owner\nevictions severs "
                  "the x-core carrier for a lone receiver.  bits/s "
                  "folds the\nsession's real pace in: a clean but slow "
                  "channel can leak less per second than a\nnoisy fast "
                  "one.");
    }

  private:
    static std::vector<sim::ReplPolicyKind>
    parsePolicies(const std::string &list)
    {
        std::vector<sim::ReplPolicyKind> policies;
        std::string token;
        std::stringstream ss(list);
        while (std::getline(ss, token, ','))
            policies.push_back(sim::replPolicyFromName(token));
        if (policies.empty())
            throw ParamError("parameter 'policies': at least one "
                             "replacement policy is required");
        return policies;
    }

    static std::vector<std::string>
    headerFor(const std::vector<sim::ReplPolicyKind> &policies)
    {
        std::vector<std::string> header{"Channel"};
        for (auto p : policies)
            header.push_back(std::string(sim::replPolicyName(p)));
        return header;
    }
};

LRULEAK_REGISTER_EXPERIMENT(LeakageMatrix)

} // namespace

} // namespace lruleak::experiments
