/**
 * @file
 * Fig. 11 as a registered experiment: LRU attack (Algorithm 2, sender's
 * line locked) against the PL secure cache — the original design leaks
 * through the LRU state; the fixed design (lock the replacement state
 * with the line, Fig. 10 blue boxes) flattens the receiver's trace.
 */

#include "channel/decoder.hpp"
#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Fig11PlcacheAttack final : public Experiment
{
  public:
    std::string name() const override { return "fig11_plcache_attack"; }

    std::string
    description() const override
    {
        return "Fig. 11: LRU Algorithm 2 vs the PL cache — original "
               "design leaks, fixed design doesn't";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 24,
                               "alternating bits the sender transmits"),
            seedParam(11),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Fig. 11: LRU attack Algorithm 2 against the PL "
                  "cache (sender's line locked) ===\n(sender transmits "
                  "alternating 0/1; y: receiver's timed access to line "
                  "0)");

        show(sim::PlMode::Original,
             "Original PL cache design (Fig. 10 white boxes)", params,
             sink);
        show(sim::PlMode::FixedLruLock,
             "Fixed design: LRU state locked too (Fig. 10 blue boxes)",
             params, sink);

        sink.note("\nPaper reference: the original design still "
                  "transfers the secret; with the fix the\nreceiver "
                  "always observes the same latency and the channel is "
                  "closed.");
    }

  private:
    static void
    show(sim::PlMode mode, const char *title, const ParamMap &params,
         ResultSink &sink)
    {
        const auto trace = plCacheAttack(
            mode, timing::Uarch::intelXeonE52690(),
            static_cast<std::size_t>(params.getUint("bits")),
            params.getUint("seed"));
        sink.note("\n--- " + std::string(title) + " ---");
        sink.series("", sampleLatencies(trace.samples,
                                        trace.samples.size()),
                    7);
        const auto bits = channel::thresholdSamples(trace.samples,
                                                    trace.threshold,
                                                    /*invert=*/true);
        sink.text("", "per-sample reads: " + channel::bitsToString(bits) +
                          "\nsent bits:        " +
                          channel::bitsToString(trace.sent));
        sink.scalar("decode error", trace.error_rate);
        sink.note(trace.constant
                      ? "[receiver observations CONSTANT -> no leak]"
                      : "[receiver observations vary with the secret]");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig11PlcacheAttack)

} // namespace

} // namespace lruleak::experiments
