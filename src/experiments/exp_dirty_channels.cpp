/**
 * @file
 * The dirty-state channel family as registered experiments.
 *
 *  - dirty_channel_traces: the receiver's raw readout while the sender
 *    transmits alternating 0/1 through the dirty bit — dirty-evict
 *    hyper-threaded, flush-dirty hyper-threaded and flush-dirty
 *    cross-core (the carrier-independent member runs unchanged over
 *    the shared LLC).
 *
 *  - dirty_error_rate: error rate and bandwidth for both channels in
 *    all three sharing modes, with the write-policy ablation that
 *    pins down the mechanism: switching every cache to write-through
 *    leaves presence, replacement state and miss counts untouched but
 *    removes dirty lines, and both channels go dark.
 */

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

/** The family, sweep order fixed for tables and scalars. */
constexpr ChannelId kDirtyChannels[] = {ChannelId::DirtyEvict,
                                        ChannelId::FlushDirty};

/** Per-mode protocol periods (the channel_matrix operating points). */
struct ModePoint
{
    SharingMode mode;
    std::uint64_t tr;
    std::uint64_t ts;
};

constexpr ModePoint kModes[] = {
    {SharingMode::HyperThreaded, 600, 6000},
    {SharingMode::TimeSliced, 600, 6000},
    {SharingMode::CrossCore, 3000, 30000},
};

class DirtyChannelTraces final : public Experiment
{
  public:
    std::string name() const override { return "dirty_channel_traces"; }

    std::string
    description() const override
    {
        return "dirty-state channels: receiver readout traces, sender "
               "alternating 0/1 through the dirty bit";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 20,
                               "alternating message length"),
            uarchParam("e5-2690"),
            seedParam(41),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto u = uarchFromParams(params);
        sink.note("=== dirty-state channel traces, sender alternating "
                  "0/1, " + u.name + " ===\n(y: timed readout in "
                  "cycles; x: observation sequence.  The sender touches "
                  "its line for BOTH\nsymbols — store for 1, load for 0 "
                  "— so presence and miss counts are symbol-blind\nand "
                  "only the write-back stall separates the levels)");

        trace(ChannelId::DirtyEvict, SharingMode::HyperThreaded, u,
              params, sink);
        trace(ChannelId::FlushDirty, SharingMode::HyperThreaded, u,
              params, sink);
        trace(ChannelId::FlushDirty, SharingMode::CrossCore, u, params,
              sink);

        sink.note("\nReading the traces: 1-bit windows sit one uarch "
                  "write-back latency above the\n0-bit floor.  "
                  "Flush-dirty's readout is the timed clflush itself, "
                  "so the cross-core\ntrace is the same signal over the "
                  "shared LLC — the carrier never enters the\nreadout.");
    }

  private:
    static void
    trace(ChannelId id, SharingMode mode, const timing::Uarch &uarch,
          const ParamMap &params, ResultSink &sink)
    {
        const bool xcore = mode == SharingMode::CrossCore;
        SessionConfig cfg;
        cfg.channel = id;
        cfg.mode = mode;
        cfg.uarch = uarch;
        cfg.tr = xcore ? 3000 : 600;
        cfg.ts = xcore ? 30000 : 6000;
        cfg.message = alternatingBits(
            static_cast<std::size_t>(params.getUint("bits")));
        cfg.seed = params.getUint("seed");
        const auto res = runSession(cfg);

        const std::string title =
            channelDisplayName(id) + ", " +
            std::string(sharingModeToken(mode)) +
            ", Tr=" + std::to_string(cfg.tr) +
            ", Ts=" + std::to_string(cfg.ts) + "  (threshold " +
            std::to_string(res.threshold) + " cycles, rate " +
            fmtKbps(res.kbps) + ", error " + fmtPercent(res.error_rate) +
            ")";
        sink.series("\n" + title, sampleLatencies(res.samples, 200), 8);
        sink.text("", "decoded: " + bitsToString(res.received));
    }
};

LRULEAK_REGISTER_EXPERIMENT(DirtyChannelTraces)

class DirtyErrorRate final : public Experiment
{
  public:
    std::string name() const override { return "dirty_error_rate"; }

    std::string
    description() const override
    {
        return "dirty-state channels: error rate per sharing mode with "
               "the write-back vs write-through ablation";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 64, "random message length"),
            ParamSpec::integer("repeats", 2,
                               "times the message is re-sent"),
            ParamSpec::integer("quantum", 30'000,
                               "time-sliced cells: scheduling quantum "
                               "in cycles (scaled OS model)"),
            uarchParam("e5-2690"),
            seedParam(43),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");
        const auto repeats = params.getUint32("repeats");
        const auto quantum = params.getUint("quantum");
        const auto uarch = uarchFromParams(params);
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200408);

        sink.note("=== dirty-state channel error rates, " + uarch.name +
                  " ===\n(" + std::to_string(params.getUint("bits")) +
                  "-bit random string x" + std::to_string(repeats) +
                  "; error = edit distance / bits sent.  The ablation "
                  "re-runs every cell with\nevery cache write-through: "
                  "same accesses, same misses, no dirty lines — a "
                  "channel\nthat survives that is not reading the dirty "
                  "bit)");

        // Flat trial-parallel sweep over (channel, mode, write policy);
        // per-cell seeds depend only on the cell index, so the table is
        // identical for any worker count.
        constexpr std::uint32_t n_modes =
            static_cast<std::uint32_t>(std::size(kModes));
        constexpr std::uint32_t n_channels =
            static_cast<std::uint32_t>(std::size(kDirtyChannels));
        const std::uint32_t cells = n_channels * n_modes * 2;
        const auto results = core::runTrials(
            cells, seed, [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const bool write_through = idx % 2 == 1;
                const std::uint32_t mode_idx = (idx / 2) % n_modes;
                const std::uint32_t chan_idx = idx / (2 * n_modes);

                SessionConfig cfg;
                cfg.channel = kDirtyChannels[chan_idx];
                cfg.mode = kModes[mode_idx].mode;
                cfg.uarch = uarch;
                cfg.tr = kModes[mode_idx].tr;
                cfg.ts = kModes[mode_idx].ts;
                cfg.message = message;
                cfg.repeats = repeats;
                cfg.seed = seed + idx / 2; // WB/WT pairs share a seed
                if (write_through)
                    cfg.write_hit = sim::WriteHitPolicy::WriteThrough;
                if (cfg.mode == SharingMode::TimeSliced) {
                    cfg.tslice.quantum = quantum;
                    cfg.tslice.quantum_jitter = quantum / 2;
                    cfg.tslice.tick_period = 100'000;
                }
                const auto res = runSession(cfg);
                return std::pair<double, double>(res.error_rate,
                                                 res.kbps);
            });

        Table table({"Channel", "Mode", "write-back", "write-through"});
        for (std::uint32_t c = 0; c < n_channels; ++c) {
            for (std::uint32_t m = 0; m < n_modes; ++m) {
                const auto &[wb_err, wb_kbps] =
                    results[(c * n_modes + m) * 2];
                const auto &[wt_err, _] = results[(c * n_modes + m) * 2 + 1];
                table.addRow({channelDisplayName(kDirtyChannels[c]),
                              std::string(sharingModeToken(kModes[m].mode)),
                              fmtPercent(wb_err) + " @ " +
                                  fmtKbps(wb_kbps),
                              fmtPercent(wt_err)});

                const std::string base =
                    "error_" +
                    std::string(channelIdToken(kDirtyChannels[c])) + "_" +
                    std::string(sharingModeToken(kModes[m].mode));
                sink.scalar(base + "_wb", wb_err);
                sink.scalar(base + "_wt", wt_err);
            }
        }
        sink.table("", table);

        sink.note("\nReading the table: hyper-threaded and cross-core "
                  "write-back cells transmit (the\ncross-core dirty "
                  "channels ride the shared LLC's dirty bits); every "
                  "write-through\ncell collapses to the dead-channel "
                  "error floor.  Time-slicing degrades the dirty\n"
                  "family like every other design — only the first "
                  "readout after a sender slice\ncarries signal.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(DirtyErrorRate)

} // namespace

} // namespace lruleak::experiments
