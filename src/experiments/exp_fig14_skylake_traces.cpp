/**
 * @file
 * Fig. 14 (Appendix B) as a registered experiment: the Fig. 5 traces
 * repeated on Intel Xeon E3-1245 v5 (Skylake) — the attack transfers
 * across Intel generations.
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig14SkylakeTraces final : public Experiment
{
  public:
    std::string name() const override { return "fig14_skylake_traces"; }

    std::string
    description() const override
    {
        return "Fig. 14: receiver traces on Skylake — the attack "
               "transfers across Intel generations";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 20,
                               "alternating message length"),
            seedParam(14),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Fig. 14 (Appendix B): receiver traces on Intel "
                  "Xeon E3-1245 v5 (Skylake) ===");
        trace(LruAlgorithm::Alg1Shared, 8, params, sink);
        trace(LruAlgorithm::Alg2Disjoint, 5, params, sink);
        sink.note("\nPaper reference: same behaviour as the E5-2690 "
                  "with a ~580 Kbps effective rate\n(3.9 GHz vs 3.8 "
                  "GHz) and slightly different absolute latencies.");
    }

  private:
    static void
    trace(LruAlgorithm alg, std::uint32_t d, const ParamMap &params,
          ResultSink &sink)
    {
        SessionConfig cfg;
        cfg.channel = alg == LruAlgorithm::Alg1Shared ? ChannelId::LruAlg1
                                                      : ChannelId::LruAlg2;
        cfg.uarch = timing::Uarch::intelXeonE31245v5();
        cfg.d = d;
        cfg.tr = 600;
        cfg.ts = 6000;
        cfg.message = alternatingBits(
            static_cast<std::size_t>(params.getUint("bits")));
        cfg.seed = params.getUint("seed");
        const auto res = runSession(cfg);

        sink.series("\n" +
                        std::string(alg == LruAlgorithm::Alg1Shared
                                        ? "Algorithm 1"
                                        : "Algorithm 2") +
                        ", Tr=600, Ts=6000, d=" + std::to_string(d) +
                        "  (threshold " + std::to_string(res.threshold) +
                        ", rate " + fmtKbps(res.kbps) + ", error " +
                        fmtPercent(res.error_rate) + ")",
                    sampleLatencies(res.samples, 200), 8);
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig14SkylakeTraces)

} // namespace

} // namespace lruleak::experiments
