/**
 * @file
 * Fig. 15 (Appendix B) as a registered experiment: the time-sliced
 * percentage-of-1s experiment on Intel Xeon E3-1245 v5 (Skylake).
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig15SkylakeTimesliced final : public Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig15_skylake_timesliced";
    }

    std::string
    description() const override
    {
        return "Fig. 15: time-sliced % of 1s on Skylake, Algorithm 1";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("measurements", 100,
                               "receiver samples per point"),
            seedParam(61),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto max_samples = params.getUint("measurements");
        const auto seed = params.getUint("seed");

        sink.note("=== Fig. 15 (Appendix B): time-sliced % of 1s, "
                  "Intel Xeon E3-1245 v5, Algorithm 1 ===\n(" +
                  std::to_string(max_samples) +
                  " measurements per point)");

        const std::uint64_t trs[] = {25'000'000, 100'000'000,
                                     200'000'000, 400'000'000};
        for (std::uint8_t bit : {0, 1}) {
            Table table({"Tr (x1e6)", "d=2", "d=4", "d=6", "d=8"});
            for (std::uint64_t tr : trs) {
                std::vector<std::string> row{
                    std::to_string(tr / 1'000'000)};
                for (std::uint32_t d : {2u, 4u, 6u, 8u}) {
                    SessionConfig cfg;
                    cfg.uarch = timing::Uarch::intelXeonE31245v5();
                    cfg.mode = SharingMode::TimeSliced;
                    cfg.d = d;
                    cfg.tr = tr;
                    cfg.encode_gap = 20'000;
                    cfg.max_samples = max_samples;
                    cfg.seed = seed + d;
                    row.push_back(
                        fmtPercent(sessionPercentOnes(cfg, bit)));
                }
                table.addRow(row);
            }
            sink.table("--- Sender constantly sending " +
                           std::to_string(int(bit)) + " ---",
                       table);
        }

        sink.note("\nPaper reference: same shape as the E5-2690 "
                  "(Fig. 6): sending 0 near 0%, sending 1\nclearly "
                  "above it for d = 7-8 around Tr = 1e8.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig15SkylakeTimesliced)

} // namespace

} // namespace lruleak::experiments
