/**
 * @file
 * Fig. 3 as a registered experiment: histograms of the pointer-chase
 * readout when the timed 8th element is an L1 hit versus an L1 miss, on
 * Intel Xeon E5-2690 and AMD EPYC 7571.
 */

#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Fig3PointerChaseHist final : public Experiment
{
  public:
    std::string name() const override { return "fig3_pointer_chase_hist"; }

    std::string
    description() const override
    {
        return "Fig. 3: pointer-chase latency histograms, L1 hit vs L1 "
               "miss, Intel and AMD";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("samples", 20'000,
                               "measurements per histogram"),
            seedParam(3),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto samples = params.getUint32("samples");
        const auto seed = params.getUint("seed");

        sink.note("=== Fig. 3: pointer-chase latency, 7 L1 hits + timed "
                  "8th access ===");

        for (const auto &u : {timing::Uarch::intelXeonE52690(),
                              timing::Uarch::amdEpyc7571()}) {
            const auto h = pointerChaseHistograms(u, samples, seed);
            sink.text("\n--- " + u.name + " ---",
                      Histogram::renderPair(h.hit, h.miss, "L1 hit",
                                            "L1 miss"));
            sink.scalar(u.name + " mean hit (cycles)", h.hit.mean());
            sink.scalar(u.name + " mean miss (cycles)", h.miss.mean());
            sink.scalar(u.name + " overlap",
                        overlapCoefficient(h.hit, h.miss));
        }

        sink.note("\nPaper reference: Intel cleanly separable (~35 vs "
                  "~43 cycles); AMD distributions overlap\nbut differ, "
                  "so the receiver must average repeated measurements "
                  "(Section VI-A).");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig3PointerChaseHist)

} // namespace

} // namespace lruleak::experiments
