/**
 * @file
 * Detect-and-defend scorecard: the SHARP-protected shared LLC against
 * single- and multi-spy cross-core LRU attacks.
 *
 * Rows are the adversary strength (spy count K, channel/multi_spy.hpp);
 * columns are the defense operating points — SHARP off, and SHARP on at
 * each alarm threshold in the sweep (0 = pure detector that refuses
 * cross-owner evictions but never denies fills; > 0 adds alarm-driven
 * fill denial once a core exceeds the budget).  Every cell runs
 * `trials` uncontended cross-core Algorithm-2 sessions and scores both
 * sides of the engagement:
 *
 *   attack:   edit-distance error rate and pooled bits/use
 *             (Miller-Madow MI via leakage::Report, like
 *             leakage_matrix);
 *   defense:  alarm rate = refusal events per transmitted bit on the
 *             colluding party cores (sender + spies), plus the
 *             forced-eviction and fill-denial counts.
 *
 * A separate panel prices the detector's other side: per threshold,
 * idle-channel sessions (all-zero message, nothing transmitted) with
 * `noise` benign background cores riding the same LLC measure how many
 * refusal alarms innocent workloads trip per bit window — the
 * false-positive load the defender must tolerate before flagging.
 *
 * The headline shape: a single spy under SHARP sits at chance (its
 * walk can never displace the sender-owned line), K = 2 cannot wedge
 * the set and stays dead too, and only K >= 3 cooperating spies claw
 * leakage back — at a party alarm rate orders of magnitude above the
 * benign baseline.  That recovery-vs-detectability gradient is the
 * tradeoff this table quantifies.
 *
 * Determinism: one flat core::runTrials sweep, session (cell, t) seeded
 * by its flat index alone, strictly sequential aggregation — the output
 * is byte-identical for any LRULEAK_THREADS (golden-snapshotted).
 */

#include <sstream>

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "experiments/common.hpp"
#include "leakage/report.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

/** What one session contributes to its cell. */
struct TrialTrace
{
    Bits sent;
    Bits decoded;
    double kbps = 0.0;
    double error_rate = 0.0;
    std::uint64_t party_alarms = 0;  //!< sender + spy cores
    std::uint64_t benign_alarms = 0; //!< noise cores
    std::uint64_t forced = 0;
    std::uint64_t denied = 0;
};

/** One cell after pooling its trials. */
struct CellScore
{
    double error_rate = 0.0;    //!< mean over trials
    double bits_per_use = 0.0;  //!< pooled corrected MI
    leakage::Interval bpu_ci;
    double party_alarms_per_bit = 0.0;
    double benign_alarms_per_bit = 0.0;
    double forced_per_bit = 0.0;
    double denied_per_bit = 0.0;
};

class SharpDefense final : public Experiment
{
  public:
    std::string name() const override { return "sharp_defense"; }

    std::string
    description() const override
    {
        return "SHARP-protected LLC vs single- and multi-spy cross-core "
               "attacks: error rate, bits/use, and defender alarm / "
               "false-alarm rates per spy count x alarm threshold";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 24, "random message length"),
            ParamSpec::integer("repeats", 1,
                               "times the message is re-sent"),
            ParamSpec::integer("trials", 2,
                               "independent sessions pooled per cell"),
            ParamSpec::integer("resamples", 200,
                               "bootstrap resamples behind the 95% CIs"),
            ParamSpec::integer("noise", 1,
                               "benign background cores in the "
                               "idle-channel false-alarm baseline"),
            ParamSpec::str("spies", "1,2,3,4",
                           "comma-separated spy counts (receiver threads "
                           "on cores 1..K)"),
            ParamSpec::str("thresholds", "0,8,64",
                           "comma-separated SHARP alarm budgets; 0 = "
                           "detection only, no fill denial"),
            ParamSpec::str("policy", "LRU",
                           "LLC replacement policy (the paper's LRU "
                           "carrier by default)"),
            ParamSpec::integer("tr", 3000,
                               "per-spy sampling period (cycles)"),
            ParamSpec::integer("ts", 30'000,
                               "sender per-bit period (cycles)"),
            uarchParam("e5-2690"),
            seedParam(47),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");
        const auto repeats = params.getUint32("repeats");
        const auto trials = params.getUint32("trials");
        const auto resamples =
            static_cast<std::size_t>(params.getUint("resamples"));
        const auto noise = params.getUint32("noise");
        const auto tr = params.getUint("tr");
        const auto ts = params.getUint("ts");
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200416);
        const auto uarch = uarchFromParams(params);
        const auto spy_counts = parseUints(params.getStr("spies"),
                                           "spies");
        const auto thresholds = parseUints(params.getStr("thresholds"),
                                           "thresholds");
        const auto policy = sim::replPolicyFromName(
            params.getStr("policy"));

        const std::uint32_t n_spies =
            static_cast<std::uint32_t>(spy_counts.size());
        // Column 0 is SHARP off; column 1 + i is threshold i.
        const std::uint32_t n_cols =
            1 + static_cast<std::uint32_t>(thresholds.size());
        const std::uint32_t cells = n_spies * n_cols;
        // Past the attack grid: one idle-channel false-alarm cell per
        // threshold, with benign noise cores as the only other load.
        const std::uint32_t n_thresh =
            static_cast<std::uint32_t>(thresholds.size());
        const std::uint32_t all_cells = cells + n_thresh;

        sink.note("=== sharp_defense: SHARP-protected LLC vs K-spy "
                  "cross-core LRU attack, " + uarch.name + " ===\n(" +
                  std::to_string(params.getUint("bits")) +
                  "-bit random string x" + std::to_string(repeats) + "; " +
                  std::to_string(trials) + " session(s) pooled per cell; "
                  "alarm rates are SHARP refusal\nevents per transmitted "
                  "bit on the colluding party cores (sender + spies); "
                  "the\nfalse-alarm baseline runs an idle channel with " +
                  std::to_string(noise) + " benign noise core(s) and "
                  "counts\nthe alarms innocents trip per bit window)");

        // One flat sweep; session (cell, t) at idx = cell*trials + t.
        const auto traces = core::runTrials(
            all_cells * trials, seed,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t cell_idx = idx / trials;
                const bool benign_cell = cell_idx >= cells;
                const std::uint32_t col =
                    benign_cell ? 1 + (cell_idx - cells)
                                : cell_idx % n_cols;
                const std::uint32_t spies =
                    benign_cell ? 1 : spy_counts[cell_idx / n_cols];

                SessionConfig cfg;
                cfg.channel = ChannelId::XCoreLruAlg2;
                cfg.mode = SharingMode::CrossCore;
                cfg.uarch = uarch;
                cfg.llc_policy = policy;
                cfg.tr = tr;
                cfg.ts = ts;
                // The false-alarm baseline transmits nothing: an
                // all-zero message leaves the channel idle, so every
                // refusal alarm in those sessions is a false positive.
                cfg.message = benign_cell ? Bits(message.size(), 0)
                                          : message;
                cfg.repeats = repeats;
                cfg.collect_symbols = true;
                cfg.spies = spies;
                cfg.noise_cores =
                    benign_cell ? std::max<std::uint32_t>(noise, 1) : 0;
                cfg.seed = seed + idx;
                if (col > 0) {
                    cfg.llc_secure = sim::SecureMode::Sharp;
                    cfg.llc_alarm_threshold = thresholds[col - 1];
                }
                const auto res = runSession(cfg);

                TrialTrace t{res.sent, res.decoded_symbols, res.kbps,
                             res.error_rate};
                // Cores 0..spies are the colluding parties (sender on
                // core 0, spy j on core 1 + j); everything past them is
                // benign noise.
                for (std::size_t c = 0;
                     c < res.sharp_core_alarms.size(); ++c) {
                    if (c <= spies)
                        t.party_alarms += res.sharp_core_alarms[c];
                    else
                        t.benign_alarms += res.sharp_core_alarms[c];
                }
                t.forced = res.sharp_forced;
                t.denied = res.sharp_denied;
                return t;
            });

        // Sequential aggregation, one Report per cell.
        std::vector<CellScore> score(all_cells);
        for (std::uint32_t cell_idx = 0; cell_idx < all_cells;
             ++cell_idx) {
            leakage::Report::Config rc;
            rc.resamples = resamples;
            rc.seed = 0x5a9 + cell_idx;
            leakage::Report report(rc);
            CellScore &s = score[cell_idx];
            std::uint64_t party = 0, benign = 0, forced = 0, denied = 0,
                          bits_sent = 0;
            for (std::uint32_t t = 0; t < trials; ++t) {
                const TrialTrace &tt = traces[cell_idx * trials + t];
                report.addTrial(tt.sent, tt.decoded, tt.kbps * 1000.0);
                s.error_rate += tt.error_rate;
                party += tt.party_alarms;
                benign += tt.benign_alarms;
                forced += tt.forced;
                denied += tt.denied;
                bits_sent += tt.sent.size();
            }
            const auto agg = report.aggregate();
            s.error_rate /= trials;
            s.bits_per_use = agg.pooled.corrected_bits_per_use;
            s.bpu_ci = agg.bits_per_use_ci;
            const double denom = bits_sent ? double(bits_sent) : 1.0;
            s.party_alarms_per_bit = double(party) / denom;
            s.benign_alarms_per_bit = double(benign) / denom;
            s.forced_per_bit = double(forced) / denom;
            s.denied_per_bit = double(denied) / denom;
        }

        const auto cell = [&](std::uint32_t k,
                              std::uint32_t col) -> const CellScore & {
            return score[k * n_cols + col];
        };
        const auto colToken = [&](std::uint32_t col) {
            return col == 0 ? std::string("off")
                            : "th" + std::to_string(thresholds[col - 1]);
        };

        // ----- attack side: error rate and bits/use per cell.
        std::vector<std::string> header{"Spies"};
        header.push_back("sharp off");
        for (std::uint32_t c = 1; c < n_cols; ++c)
            header.push_back("sharp th=" +
                             std::to_string(thresholds[c - 1]));

        Table err_table(header);
        Table bpu_table(header);
        for (std::uint32_t k = 0; k < n_spies; ++k) {
            std::vector<std::string> erow{std::to_string(spy_counts[k])};
            std::vector<std::string> brow{std::to_string(spy_counts[k])};
            for (std::uint32_t c = 0; c < n_cols; ++c) {
                erow.push_back(fmtDouble(cell(k, c).error_rate, 3));
                brow.push_back(fmtDouble(cell(k, c).bits_per_use, 3));
            }
            err_table.addRow(erow);
            bpu_table.addRow(brow);
        }
        sink.table("--- attack: edit-distance error rate ---", err_table);
        sink.table("--- attack: leakage, bits/use (pooled corrected MI) "
                   "---",
                   bpu_table);

        // ----- defense side: alarm economics of the SHARP cells.
        Table def_table({"Spies", "Threshold", "party alarms/bit",
                         "benign alarms/bit", "forced/bit",
                         "denied/bit"});
        for (std::uint32_t k = 0; k < n_spies; ++k) {
            for (std::uint32_t c = 1; c < n_cols; ++c) {
                const CellScore &s = cell(k, c);
                def_table.addRow(
                    {std::to_string(spy_counts[k]),
                     std::to_string(thresholds[c - 1]),
                     fmtDouble(s.party_alarms_per_bit, 2),
                     fmtDouble(s.benign_alarms_per_bit, 4),
                     fmtDouble(s.forced_per_bit, 2),
                     fmtDouble(s.denied_per_bit, 2)});
            }
        }
        sink.table("--- defense: SHARP alarm economics under attack ---",
                   def_table);

        // ----- defense side: what innocents cost the detector.
        Table fa_table({"Threshold", "benign alarms/bit",
                        "idle-party alarms/bit", "denied/bit"});
        for (std::uint32_t i = 0; i < n_thresh; ++i) {
            const CellScore &s = score[cells + i];
            fa_table.addRow({std::to_string(thresholds[i]),
                             fmtDouble(s.benign_alarms_per_bit, 4),
                             fmtDouble(s.party_alarms_per_bit, 4),
                             fmtDouble(s.denied_per_bit, 4)});
        }
        sink.table("--- defense: false-alarm baseline (idle channel, "
                   "benign noise load) ---",
                   fa_table);

        // Every cell as machine-checkable scalars.
        for (std::uint32_t k = 0; k < n_spies; ++k) {
            for (std::uint32_t c = 0; c < n_cols; ++c) {
                const std::string key = "s" +
                                        std::to_string(spy_counts[k]) +
                                        "_" + colToken(c);
                const CellScore &s = cell(k, c);
                sink.scalar("err_" + key, s.error_rate);
                sink.scalar("bpu_" + key, s.bits_per_use);
                if (c > 0) {
                    sink.scalar("alarms_party_" + key,
                                s.party_alarms_per_bit);
                    sink.scalar("alarms_benign_" + key,
                                s.benign_alarms_per_bit);
                    sink.scalar("denied_" + key, s.denied_per_bit);
                }
            }
        }
        for (std::uint32_t i = 0; i < n_thresh; ++i)
            sink.scalar("falarm_th" + std::to_string(thresholds[i]),
                        score[cells + i].benign_alarms_per_bit);

        sink.note("\nReading the scorecard: under SHARP a single spy "
                  "sits at chance error and ~0\nbits/use — its evictions "
                  "of the sender-owned line are refused outright — and "
                  "K = 2\ncannot wedge the set; K >= 3 teams running the "
                  "pin-slices protocol recover the\nchannel, but every "
                  "churn round is a refusal alarm: the party alarm rate "
                  "runs\norders of magnitude above the benign baseline, "
                  "so the defender detects the team\nlong before the "
                  "message ends.  A positive threshold converts "
                  "persistent offenders'\nalarms into fill denials "
                  "(denied/bit) at zero benign cost while the benign "
                  "rate\nstays under the budget.");
    }

  private:
    static std::vector<std::uint32_t>
    parseUints(const std::string &list, const std::string &param)
    {
        std::vector<std::uint32_t> values;
        std::string token;
        std::stringstream ss(list);
        while (std::getline(ss, token, ','))
            values.push_back(static_cast<std::uint32_t>(
                std::stoul(token)));
        if (values.empty())
            throw ParamError("parameter '" + param +
                             "': at least one value is required");
        return values;
    }
};

LRULEAK_REGISTER_EXPERIMENT(SharpDefense)

} // namespace

} // namespace lruleak::experiments
