/**
 * @file
 * Ablation as a registered experiment: why a 7-element chase chain?
 * (Paper footnote 3: short chains are dominated by the timer
 * overhead/noise, long chains add their own noise.)  Sweeps the chain
 * length and reports hit/miss distribution overlap plus the end-to-end
 * channel error.
 */

#include "channel/session.hpp"
#include "core/histogram.hpp"
#include "experiments/common.hpp"
#include "timing/pointer_chase.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class AblationChaseLength final : public Experiment
{
  public:
    std::string name() const override { return "ablation_chase_length"; }

    std::string
    description() const override
    {
        return "Ablation: pointer-chase chain length vs hit/miss "
               "separability (paper footnote 3)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("samples", 20'000,
                               "measurements per histogram"),
            seedParam(5),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto samples = params.getUint32("samples");

        sink.note("=== Ablation: pointer-chase chain length (paper "
                  "footnote 3) ===\n");

        const auto u = timing::Uarch::amdEpyc7571();
        const timing::MeasurementModel model(u);

        Table table({"Chain len", "AMD overlap", "Intel overlap",
                     "Intel err (Alg.1)"});
        for (std::uint32_t len : {1u, 3u, 5u, 7u, 11u, 15u}) {
            // Distribution overlap on the noisy AMD timer: the longer
            // chain amortizes the noise relative to the L2-L1 delta.
            sim::Xoshiro256 rng(params.getUint("seed"));
            Histogram amd_hit(16), amd_miss(16);
            for (std::uint32_t i = 0; i < samples; ++i) {
                amd_hit.add(model.chaseAllL1(len, sim::HitLevel::L1,
                                             rng));
                amd_miss.add(model.chaseAllL1(len, sim::HitLevel::L2,
                                              rng));
            }

            const auto iu = timing::Uarch::intelXeonE52690();
            const timing::MeasurementModel imodel(iu);
            Histogram i_hit(1), i_miss(1);
            for (std::uint32_t i = 0; i < samples; ++i) {
                i_hit.add(imodel.chaseAllL1(len, sim::HitLevel::L1,
                                            rng));
                i_miss.add(imodel.chaseAllL1(len, sim::HitLevel::L2,
                                             rng));
            }

            channel::SessionConfig cfg;
            cfg.d = 8;
            cfg.message = channel::randomBits(96, 5);
            const auto res = channel::runSession(cfg);

            table.addRow({std::to_string(len),
                          fmtPercent(overlapCoefficient(amd_hit,
                                                        amd_miss)),
                          fmtPercent(overlapCoefficient(i_hit, i_miss)),
                          fmtPercent(res.error_rate)});
        }
        sink.table("", table);

        sink.note("\nTakeaway: on Intel even short chains separate; on "
                  "the coarse AMD timer the\nhit/miss overlap shrinks "
                  "as the chain grows — 7 elements is already in "
                  "the\ndiminishing-returns regime, matching the "
                  "paper's choice.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AblationChaseLength)

} // namespace

} // namespace lruleak::experiments
