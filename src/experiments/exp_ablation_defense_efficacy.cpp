/**
 * @file
 * Ablation as a registered experiment: the three defenses of Section IX
 * side by side — random replacement, FIFO replacement, and the fixed PL
 * cache — scored by channel error rate, sender stealth, and the
 * performance cost from Fig. 9.
 */

#include "channel/session.hpp"
#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

double
meanCpiRatio(sim::ReplPolicyKind policy, std::uint64_t instructions)
{
    const auto rows = replacementPerformance(
        {sim::ReplPolicyKind::TreePlru, policy}, instructions, 9);
    double ratio_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t w = 0; w * 2 < rows.size(); ++w) {
        ratio_sum += rows[w * 2 + 1].cpi / rows[w * 2].cpi;
        ++n;
    }
    return ratio_sum / static_cast<double>(n);
}

class AblationDefenseEfficacy final : public Experiment
{
  public:
    std::string
    name() const override
    {
        return "ablation_defense_efficacy";
    }

    std::string
    description() const override
    {
        return "Ablation: Section IX defenses side by side — error "
               "rate vs CPI cost";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 96, "random message length"),
            ParamSpec::integer("instructions", 200'000,
                               "CPI-model instructions per workload"),
            seedParam(77),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto bits =
            static_cast<std::size_t>(params.getUint("bits"));
        const auto instructions = params.getUint("instructions");
        const auto msg_seed = params.getUint("seed");

        sink.note("=== Ablation: defense efficacy vs cost (Section IX) "
                  "===\n");

        Table table({"Defense", "Alg.1 error", "Alg.2 error",
                     "Mean CPI vs PLRU"});

        // Baseline: no defense.
        {
            SessionConfig cfg;
            cfg.channel = ChannelId::LruAlg1;
            cfg.d = 8;
            cfg.message = randomBits(bits, msg_seed);
            const auto a1 = runSession(cfg);
            cfg.channel = ChannelId::LruAlg2;
            cfg.d = 5;
            const auto a2 = runSession(cfg);
            table.addRow({"none (Tree-PLRU)", fmtPercent(a1.error_rate),
                          fmtPercent(a2.error_rate), "1.000"});
        }

        for (auto policy : {sim::ReplPolicyKind::Random,
                            sim::ReplPolicyKind::Fifo}) {
            SessionConfig cfg;
            cfg.channel = ChannelId::LruAlg1;
            cfg.d = 8;
            cfg.l1_policy = policy;
            cfg.message = randomBits(bits, msg_seed);
            const auto a1 = runSession(cfg);
            cfg.channel = ChannelId::LruAlg2;
            cfg.d = 5;
            const auto a2 = runSession(cfg);
            table.addRow({std::string(sim::replPolicyName(policy)) +
                              " replacement",
                          fmtPercent(a1.error_rate),
                          fmtPercent(a2.error_rate),
                          fmtDouble(meanCpiRatio(policy, instructions),
                                    3)});
        }

        // Fixed PL cache (locked line + locked LRU state).
        {
            const auto fixed = plCacheAttack(sim::PlMode::FixedLruLock);
            table.addRow({"PL cache + LRU lock (fixed)",
                          "n/a (Alg.1 dies when line locked)",
                          fixed.constant ? "no signal (constant)"
                                         : fmtPercent(fixed.error_rate),
                          "~1.000 (lock-scoped)"});
        }

        sink.table("", table);

        sink.note("\nTakeaway: random replacement closes both channels "
                  "for < a few % CPI; FIFO closes\nthe hit-based "
                  "channel (remaining leak requires detectable misses); "
                  "the fixed PL\ncache protects locked lines "
                  "completely.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AblationDefenseEfficacy)

} // namespace

} // namespace lruleak::experiments
