/**
 * @file
 * Shared experiment-registration helpers.
 */

#include "experiments/common.hpp"

namespace lruleak::experiments {

timing::Uarch
uarchFromParams(const core::ParamMap &params)
{
    try {
        return timing::uarchFromName(params.getStr("uarch"));
    } catch (const std::invalid_argument &e) {
        throw core::ParamError(std::string("parameter 'uarch': ") +
                               e.what());
    }
}

std::vector<channel::ChannelId>
parseChannels(const std::string &list)
{
    std::vector<channel::ChannelId> out;
    std::string token;
    auto flush = [&] {
        if (token.empty())
            return;
        try {
            out.push_back(channel::channelIdFromName(token));
        } catch (const std::invalid_argument &e) {
            throw core::ParamError(std::string("parameter 'channels': ") +
                                   e.what());
        }
        token.clear();
    };
    for (char c : list) {
        if (c == ',')
            flush();
        else if (c != ' ')
            token += c;
    }
    flush();
    if (out.empty())
        throw core::ParamError(
            "parameter 'channels': at least one channel is required");
    return out;
}

std::vector<double>
sampleLatencies(const std::vector<channel::Sample> &s, std::size_t limit)
{
    std::vector<double> out;
    out.reserve(std::min(limit, s.size()));
    for (std::size_t i = 0; i < s.size() && i < limit; ++i)
        out.push_back(s[i].latency);
    return out;
}

} // namespace lruleak::experiments
