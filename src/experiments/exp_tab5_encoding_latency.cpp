/**
 * @file
 * Table V as a registered experiment: the sender's encoding latency per
 * channel — the LRU channels encode with an L1 hit, Flush+Reload with an
 * L2 hit or a full memory miss.
 */

#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Tab5EncodingLatency final : public Experiment
{
  public:
    std::string name() const override { return "tab5_encoding_latency"; }

    std::string
    description() const override
    {
        return "Table V: sender encoding latency per channel (L1-hit "
               "encode is the LRU channel's edge)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {seedParam(5)};
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");

        sink.note("=== Table V: latency of encoding (cycles) ===\n");
        Table table({"Model", "F+R (mem)", "F+R (L1)",
                     "L1 LRU (Alg.1&2)"});
        for (const auto &u : {timing::Uarch::intelXeonE52690(),
                              timing::Uarch::intelXeonE31245v5(),
                              timing::Uarch::amdEpyc7571()}) {
            const double fr_mem =
                meanEncodeLatency(u, ChannelKind::FrMem, seed);
            const double fr_l1 =
                meanEncodeLatency(u, ChannelKind::FrL1, seed);
            const double lru =
                (meanEncodeLatency(u, ChannelKind::LruAlg1, seed) +
                 meanEncodeLatency(u, ChannelKind::LruAlg2, seed)) /
                2.0;
            table.addRow({u.name, fmtDouble(fr_mem, 0),
                          fmtDouble(fr_l1, 0), fmtDouble(lru, 0)});
        }
        sink.table("", table);

        sink.note("\nPaper reference: E5-2690 336/35/31, E3-1245v5 "
                  "288/40/35, EPYC 7571 232/56/52.\nThe LRU channel's "
                  "short (cache-hit) encode is what shrinks the Spectre "
                  "speculation\nwindow requirement (Section VIII).");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Tab5EncodingLatency)

} // namespace

} // namespace lruleak::experiments
