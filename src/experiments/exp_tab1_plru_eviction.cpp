/**
 * @file
 * Table I as a registered experiment: probability of line 0 being
 * evicted under LRU, Tree-PLRU and Bit-PLRU for the two access
 * sequences and two initial conditions of Section IV-C.
 */

#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Tab1PlruEviction final : public Experiment
{
  public:
    std::string name() const override { return "tab1_plru_eviction"; }

    std::string
    description() const override
    {
        return "Table I: probability of line 0 eviction under "
               "LRU/Tree-PLRU/Bit-PLRU (Section IV-C)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("trials", 10'000,
                               "Monte-Carlo trials per cell"),
            ParamSpec::integer("ways", 8, "set associativity N"),
            ParamSpec::real("x_probability", 0.5,
                            "Sequence 2 line-x insertion probability"),
            seedParam(2020),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        EvictionStudyConfig cfg;
        cfg.trials = params.getUint32("trials");
        cfg.ways = params.getUint32("ways");
        cfg.x_probability = params.getReal("x_probability");
        cfg.seed = params.getUint("seed");

        sink.note("=== Table I: Probability of line 0 being evicted "
                  "with PLRU ===\n(" +
                  std::to_string(cfg.trials) +
                  " trials per cell; paper Section IV-C)\n");

        Table table({"Init.Cond.", "Iter.", "LRU Seq.1&2", "Tree Seq.1",
                     "Tree Seq.2", "Bit Seq.1", "Bit Seq.2"});

        const struct
        {
            InitCondition init;
            const char *label;
        } inits[] = {{InitCondition::Random, "Random"},
                     {InitCondition::Sequential, "Sequential"}};

        for (const auto &[init, label] : inits) {
            const auto lru1 = evictionProbabilities(
                sim::ReplPolicyKind::TrueLru, init, AccessSequence::Seq1,
                cfg);
            const auto tree1 = evictionProbabilities(
                sim::ReplPolicyKind::TreePlru, init, AccessSequence::Seq1,
                cfg);
            const auto tree2 = evictionProbabilities(
                sim::ReplPolicyKind::TreePlru, init, AccessSequence::Seq2,
                cfg);
            const auto bit1 = evictionProbabilities(
                sim::ReplPolicyKind::BitPlru, init, AccessSequence::Seq1,
                cfg);
            const auto bit2 = evictionProbabilities(
                sim::ReplPolicyKind::BitPlru, init, AccessSequence::Seq2,
                cfg);

            for (std::size_t iter : {0u, 1u, 2u, 7u}) {
                table.addRow({label,
                              iter == 7 ? ">=8" : std::to_string(iter + 1),
                              fmtPercent(lru1[iter]),
                              fmtPercent(tree1[iter]),
                              fmtPercent(tree2[iter]),
                              fmtPercent(bit1[iter]),
                              fmtPercent(bit2[iter])});
            }
        }

        sink.table("", table);
        sink.note("\nPaper reference (Random, iter 1): LRU 100%, "
                  "Tree Seq.1 50.4%, Tree Seq.2 62.7%\n"
                  "Takeaway: only sequential initialisation makes PLRU "
                  "eviction reliable, so the receiver\n"
                  "must access lines 1-7 in order (Section IV-C).");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Tab1PlruEviction)

} // namespace

} // namespace lruleak::experiments
