/**
 * @file
 * Fig. 5 as a registered experiment: the receiver's raw latency trace
 * while the sender transmits alternating 0/1 on Intel Xeon E5-2690,
 * hyper-threaded, for Algorithm 1 (d = 8) and Algorithm 2 (d = 4, 5).
 *
 * Rendering note: the paper's Fig. 5 bottom uses d = 4; on Tree-PLRU
 * the even-d pathology (their own Fig. 4) makes that trace noisy, so we
 * additionally show d = 5 where the alternation is clean.
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

class Fig5Traces final : public Experiment
{
  public:
    std::string name() const override { return "fig5_traces"; }

    std::string
    description() const override
    {
        return "Fig. 5: receiver latency traces, sender alternating "
               "0/1, Intel hyper-threaded";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 20,
                               "alternating message length"),
            uarchParam("e5-2690"),
            seedParam(5),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto u = uarchFromParams(params);
        sink.note("=== Fig. 5: receiver observations, sender "
                  "alternating 0/1, " + u.name + " ===\n(y: "
                  "pointer-chase latency in cycles; x: observation "
                  "sequence)");

        trace(LruAlgorithm::Alg1Shared, 8, u, params, sink);
        trace(LruAlgorithm::Alg2Disjoint, 4, u, params, sink);
        trace(LruAlgorithm::Alg2Disjoint, 5, u, params, sink);

        sink.note("\nPaper reference: Algorithm 1 shows low latency on "
                  "1 bits (line 0 hits); Algorithm 2\ninverts the "
                  "polarity (1 bit = line 0 evicted = high latency).");
    }

  private:
    static void
    trace(LruAlgorithm alg, std::uint32_t d, const timing::Uarch &uarch,
          const ParamMap &params, ResultSink &sink)
    {
        SessionConfig cfg;
        cfg.channel = alg == LruAlgorithm::Alg1Shared ? ChannelId::LruAlg1
                                                      : ChannelId::LruAlg2;
        cfg.uarch = uarch;
        cfg.d = d;
        cfg.tr = 600;
        cfg.ts = 6000;
        cfg.message = alternatingBits(
            static_cast<std::size_t>(params.getUint("bits")));
        cfg.seed = params.getUint("seed");
        const auto res = runSession(cfg);

        const std::string title =
            std::string(alg == LruAlgorithm::Alg1Shared ? "Algorithm 1"
                                                        : "Algorithm 2") +
            ", Tr=600, Ts=6000, d=" + std::to_string(d) +
            "  (threshold " + std::to_string(res.threshold) +
            " cycles, rate " + fmtKbps(res.kbps) + ", error " +
            fmtPercent(res.error_rate) + ")";
        sink.series("\n" + title, sampleLatencies(res.samples, 200), 8);
        sink.text("", "decoded: " + bitsToString(res.received));
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig5Traces)

} // namespace

} // namespace lruleak::experiments
