/**
 * @file
 * Table IV as a registered experiment: transmission rates of the
 * evaluated LRU channels (Intel vs AMD, hyper-threaded vs time-sliced,
 * Algorithm 1 vs 2).
 */

#include "channel/session.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

double
hyperThreadedKbps(const timing::Uarch &uarch, LruAlgorithm alg,
                  std::size_t bits, std::uint64_t seed)
{
    SessionConfig cfg;
    cfg.channel = alg == LruAlgorithm::Alg1Shared ? ChannelId::LruAlg1
                                                  : ChannelId::LruAlg2;
    cfg.uarch = uarch;
    cfg.d = alg == LruAlgorithm::Alg1Shared ? 8 : 5;
    const bool amd = uarch.way_predictor;
    cfg.ts = amd ? 100'000 : 6000;
    cfg.tr = amd ? 1000 : 600;
    cfg.message = randomBits(bits, 17);
    cfg.seed = seed;
    return runSession(cfg).kbps;
}

double
timeSlicedBps(const timing::Uarch &uarch, std::uint64_t seed)
{
    // Paper methodology: with Tr = 1e8 and ~10 measurements needed to
    // tell ~30% of 1s from < 5%, the rate is measurements/10 per second.
    SessionConfig cfg;
    cfg.uarch = uarch;
    cfg.mode = SharingMode::TimeSliced;
    cfg.d = 8;
    cfg.tr = 100'000'000;
    cfg.encode_gap = 20'000;
    cfg.max_samples = 60;
    cfg.seed = seed;
    const double p1 = sessionPercentOnes(cfg, 1);
    const double p0 = sessionPercentOnes(cfg, 0);
    if (p1 < p0 + 0.05)
        return 0.0; // indistinguishable
    const double meas_per_sec = uarch.ghz * 1e9 / double(cfg.tr);
    return meas_per_sec / 10.0;
}

class Tab4TransmissionRates final : public Experiment
{
  public:
    std::string name() const override { return "tab4_transmission_rates"; }

    std::string
    description() const override
    {
        return "Table IV: transmission rates of the LRU channels "
               "(Intel/AMD x HT/time-sliced x Alg 1/2)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("bits", 96,
                               "random message length for the "
                               "hyper-threaded runs"),
            seedParam(3),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto bits = static_cast<std::size_t>(params.getUint("bits"));
        const auto seed = params.getUint("seed");
        const auto intel = timing::Uarch::intelXeonE52690();
        const auto amd = timing::Uarch::amdEpyc7571();

        sink.note("=== Table IV: transmission rate of the evaluated LRU "
                  "channels ===\n");
        Table table({"Sharing", "Algorithm", "Intel", "AMD"});
        table.addRow({"Hyper-Threaded", "Algorithm 1",
                      fmtKbps(hyperThreadedKbps(
                          intel, LruAlgorithm::Alg1Shared, bits, seed)),
                      fmtKbps(hyperThreadedKbps(
                          amd, LruAlgorithm::Alg1Shared, bits, seed))});
        table.addRow({"Hyper-Threaded", "Algorithm 2",
                      fmtKbps(hyperThreadedKbps(
                          intel, LruAlgorithm::Alg2Disjoint, bits, seed)),
                      fmtKbps(hyperThreadedKbps(
                          amd, LruAlgorithm::Alg2Disjoint, bits, seed))});
        table.addRow({"Time-Sliced", "Algorithm 1",
                      fmtDouble(timeSlicedBps(intel, seed), 1) + " bps",
                      fmtDouble(timeSlicedBps(amd, seed), 2) + " bps"});
        table.addRow({"Time-Sliced", "Algorithm 2", "- (no signal)",
                      "- (no signal)"});
        sink.table("", table);

        sink.note("\nPaper reference: ~500 Kbps / ~20 Kbps "
                  "hyper-threaded, ~2 bps / ~0.2 bps time-sliced,\nno "
                  "Algorithm 2 signal in time-sliced sharing on either "
                  "CPU.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Tab4TransmissionRates)

} // namespace

} // namespace lruleak::experiments
