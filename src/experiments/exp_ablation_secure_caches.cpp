/**
 * @file
 * Ablation as a registered experiment: the other secure caches of
 * Section IX-B — DAWG-style way partitioning (partitions the Tree-PLRU
 * state: channel dead) versus the Random Fill cache (hits still update
 * the LRU state: channel alive), measured at the protocol level.
 */

#include "experiments/common.hpp"
#include "sim/secure_caches.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::sim;

constexpr Addr kSenderBase = 0x1000'0000'0000ULL;
constexpr Addr kReceiverBase = 0x2000'0000'0000ULL;

MemRef
mkLine(const AddressLayout &layout, std::uint32_t set, std::uint32_t i,
       Addr base)
{
    const Addr a = lineInSet(layout, set, i, base);
    return MemRef{a, a, 0, false};
}

/**
 * One Algorithm 2 style probe against a DAWG cache: returns whether the
 * receiver's line 0 survived its decode phase.
 */
bool
dawgProbe(bool sender_touches)
{
    DawgCache cache;
    const AddressLayout &layout = cache.layout();
    const auto sender_line = mkLine(layout, 7, 0, kSenderBase);
    cache.access(sender_line, 0);
    for (std::uint32_t i = 0; i < 4; ++i)
        cache.access(mkLine(layout, 7, i, kReceiverBase), 1);
    if (sender_touches)
        cache.access(sender_line, 0);
    for (std::uint32_t i = 4; i < 8; ++i)
        cache.access(mkLine(layout, 7, i, kReceiverBase), 1);
    return cache.contains(mkLine(layout, 7, 0, kReceiverBase), 1);
}

/** Same probe against the Random Fill cache's replacement state. */
bool
randomFillStateDiffers(std::uint64_t seed)
{
    auto state = [seed](bool sender_touches) {
        RandomFillCache cache(CacheConfig::intelL1d(), 64, seed);
        const AddressLayout layout(64, 64);
        // Seed lines 0..7 of set 13 via neighbour fills.
        for (std::uint32_t i = 0; i < 8; ++i) {
            const auto want = mkLine(layout, 13, i, kSenderBase);
            for (int tries = 0; tries < 4096 && !cache.contains(want);
                 ++tries)
                cache.access(MemRef::load(want.vaddr +
                                          64 * ((tries % 16) + 1)));
        }
        for (std::uint32_t i = 0; i < 8; ++i)
            cache.access(mkLine(layout, 13, i, kSenderBase));
        if (sender_touches)
            cache.access(mkLine(layout, 13, 0, kSenderBase));
        return cache.replacementState(13);
    };
    return state(true) != state(false);
}

class AblationSecureCaches final : public Experiment
{
  public:
    std::string name() const override { return "ablation_secure_caches"; }

    std::string
    description() const override
    {
        return "Ablation: DAWG and Random Fill secure caches vs the LRU "
               "channel (Section IX-B)";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {seedParam(11)};
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        sink.note("=== Ablation: secure caches of Section IX-B vs the "
                  "LRU channel ===\n");

        Table table({"Design", "Sender's hit observable?", "Verdict"});

        const bool dawg_leaks = dawgProbe(true) != dawgProbe(false);
        table.addRow({"DAWG (ways + PLRU state partitioned)",
                      dawg_leaks ? "YES" : "no",
                      dawg_leaks ? "LEAKS" : "protected"});

        const bool rf_leaks =
            randomFillStateDiffers(params.getUint("seed"));
        table.addRow({"Random Fill cache (random miss fills)",
                      rf_leaks ? "YES (hits update LRU state)" : "no",
                      rf_leaks ? "LEAKS (paper Section IX-B)"
                               : "protected"});

        sink.table("", table);

        sink.note("\nPaper reference: \"In DAWG ... partition the cache "
                  "ways and the Tree-PLRU states ...\nWe are unaware of "
                  "any other designs that partition the LRU states.\"  "
                  "And for Random\nFill: \"on a cache hit, the "
                  "replacement state will be updated, and the LRU "
                  "channel\ncould still work.\"");
    }
};

LRULEAK_REGISTER_EXPERIMENT(AblationSecureCaches)

} // namespace

} // namespace lruleak::experiments
