/**
 * @file
 * Table II as a registered experiment: L1D / L2 access latencies of the
 * modeled CPUs, measured through the simulator rather than read from the
 * config (the hierarchy must actually serve hits at those levels).
 */

#include "experiments/common.hpp"
#include "sim/hierarchy.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

/** Measure by constructing the hit level architecturally. */
std::pair<std::uint32_t, std::uint32_t>
measuredLatencies(const timing::Uarch &uarch)
{
    sim::HierarchyConfig cfg;
    sim::CacheHierarchy h(cfg);
    const auto ref = sim::MemRef::load(0x4000);

    h.access(ref); // fill everything
    const auto l1 = h.access(ref);
    const std::uint32_t l1_lat = uarch.latency(l1.level);

    // Evict from L1 only, then re-access: L2 hit.
    const auto &layout = h.l1().layout();
    const auto set = layout.setIndex(ref.vaddr);
    for (std::uint32_t i = 0; i < 16; ++i)
        h.access(sim::MemRef::load(sim::lineInSet(layout, set, i + 1)));
    const auto l2 = h.access(ref);
    const std::uint32_t l2_lat = uarch.latency(l2.level);
    return {l1_lat, l2_lat};
}

class Tab2CacheLatency final : public Experiment
{
  public:
    std::string name() const override { return "tab2_cache_latency"; }

    std::string
    description() const override
    {
        return "Table II: measured L1D/L2 access latencies of the "
               "modeled CPUs";
    }

    void
    run(const ParamMap &, ResultSink &sink) const override
    {
        sink.note("=== Table II: Latency of cache access (cycles) "
                  "===\n");
        Table table({"Microarchitecture", "L1D", "L2"});
        for (const auto &u : {timing::Uarch::intelXeonE52690(),
                              timing::Uarch::intelXeonE31245v5(),
                              timing::Uarch::amdEpyc7571()}) {
            const auto [l1, l2] = measuredLatencies(u);
            table.addRow({u.microarch + " (" + u.name + ")",
                          std::to_string(l1), std::to_string(l2)});
        }
        sink.table("", table);
        sink.note("\nPaper reference: Sandy Bridge 4-5/12, Skylake "
                  "4-5/12, Zen 4-5/17.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Tab2CacheLatency)

} // namespace

} // namespace lruleak::experiments
