/**
 * @file
 * Fig. 13 (Appendix A) as a registered experiment: a single access timed
 * with a bare rdtscp pair cannot distinguish an L1 hit from an L1 miss —
 * the histograms coincide, which is why the paper needs pointer chasing.
 */

#include "core/experiments.hpp"
#include "experiments/common.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;

class Fig13RdtscpHist final : public Experiment
{
  public:
    std::string name() const override { return "fig13_rdtscp_hist"; }

    std::string
    description() const override
    {
        return "Fig. 13: single-access rdtscp histograms coincide — why "
               "pointer chasing is needed";
    }

    std::vector<ParamSpec>
    params() const override
    {
        return {
            ParamSpec::integer("samples", 20'000,
                               "measurements per histogram"),
            seedParam(3),
        };
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto samples = params.getUint32("samples");
        const auto seed = params.getUint("seed");

        sink.note("=== Fig. 13 (Appendix A): single-access rdtscp "
                  "measurement ===");

        for (const auto &u : {timing::Uarch::intelXeonE52690(),
                              timing::Uarch::amdEpyc7571()}) {
            const auto h = singleAccessHistograms(u, samples, seed);
            sink.text("\n--- " + u.name + " ---",
                      Histogram::renderPair(h.hit, h.miss, "L1 hit",
                                            "L1 miss (L2 hit)"));
            sink.scalar(u.name + " mean hit (cycles)", h.hit.mean());
            sink.scalar(u.name + " mean miss (cycles)", h.miss.mean());
            sink.scalar(u.name + " overlap",
                        overlapCoefficient(h.hit, h.miss));
        }

        sink.note("\nPaper reference: the two distributions completely "
                  "overlap on both CPUs — the\nrdtscp serialization "
                  "floor hides the L1/L2 difference.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(Fig13RdtscpHist)

} // namespace

} // namespace lruleak::experiments
