/**
 * @file
 * Leakage of the cross-core LRU channel beside trace-fed noise cores.
 *
 * The fleet-mode front end: instead of the synthetic NoiseProgram, the
 * background cores replay a workload::TraceFile — either a file
 * captured/exported earlier (`trace=path`) or a trace materialized on
 * the spot from the synthetic suite (`workload=...`, with a store
 * fraction so the PR-6 write path runs too).  The covert Session
 * (Algorithm 2 over the shared inclusive LLC) transmits while N cores
 * replay the trace at staggered offsets, and leakage::Report scores
 * the channel per carrier replacement policy: Miller-Madow bits/use,
 * a bootstrap CI, and bits/s.
 *
 * A preliminary section replays the trace through a bare single-core
 * hierarchy (exec::replayTrace, the engine-free fast path) to
 * characterize the workload itself — records, store fraction, cache
 * hit rate — so the leakage table can be read against the pressure
 * the trace actually generates.
 *
 * Determinism: the trace is a pure function of (workload, accesses,
 * writes, seed); sessions sit in one flat core::runTrials sweep with
 * per-cell seeds derived only from the flat index.  Golden-snapshotted
 * at smoke scale like every registered experiment.
 */

#include <memory>
#include <sstream>

#include "channel/session.hpp"
#include "core/trial_runner.hpp"
#include "exec/trace_program.hpp"
#include "experiments/common.hpp"
#include "leakage/report.hpp"
#include "sim/access_port.hpp"
#include "workload/trace_file.hpp"
#include "workload/trace_gen.hpp"

namespace lruleak::experiments {

namespace {

using namespace lruleak::core;
using namespace lruleak::channel;

/** Cross-core operating point (same as the channel/leakage matrices). */
constexpr std::uint64_t kTr = 3000;
constexpr std::uint64_t kTs = 30'000;

std::vector<sim::ReplPolicyKind>
parsePolicies(const std::string &list)
{
    std::vector<sim::ReplPolicyKind> policies;
    std::string token;
    std::stringstream ss(list);
    while (std::getline(ss, token, ','))
        policies.push_back(sim::replPolicyFromName(token));
    if (policies.empty())
        throw ParamError("parameter 'policies': at least one "
                         "replacement policy is required");
    return policies;
}

class TraceReplay final : public Experiment
{
  public:
    std::string name() const override { return "trace_replay"; }

    std::string
    description() const override
    {
        return "x-core LRU channel leakage (bits/use, bits/s) beside "
               "noise cores replaying a memory-access trace, per "
               "carrier policy; traces loaded from file or generated "
               "from the synthetic suite";
    }

    std::vector<ParamSpec>
    params() const override
    {
        std::string suite;
        for (const auto &w : workload::workloadNames()) {
            if (!suite.empty())
                suite += ", ";
            suite += w;
        }
        return {
            ParamSpec::str("trace", "",
                           "trace file to replay on the noise cores "
                           "(text or LRUT binary; empty: generate from "
                           "'workload')"),
            ParamSpec::str("workload", "gccmix",
                           "synthetic generator behind an empty 'trace' "
                           "(" + suite + ")"),
            ParamSpec::integer("accesses", 20'000,
                               "records of the generated trace"),
            ParamSpec::real("writes", 0.2,
                            "store fraction of the generated trace"),
            ParamSpec::integer("noise-cores", 2,
                               "cores replaying the trace beside the "
                               "channel parties"),
            ParamSpec::integer("bits", 24, "random message length"),
            ParamSpec::integer("repeats", 1,
                               "times the message is re-sent"),
            ParamSpec::integer("trials", 2,
                               "independent sessions pooled per policy"),
            ParamSpec::integer("resamples", 200,
                               "bootstrap resamples behind the 95% CIs"),
            ParamSpec::str("policies", "treeplru,lru,srrip",
                           "comma-separated carrier replacement-policy "
                           "list (shared LLC)"),
            uarchParam("e5-2690"),
            seedParam(42),
        };
    }

    std::map<std::string, std::string>
    smokeParams() const override
    {
        auto overrides = Experiment::smokeParams();
        overrides["accesses"] = "4000";
        return overrides;
    }

    void
    run(const ParamMap &params, ResultSink &sink) const override
    {
        const auto seed = params.getUint("seed");
        const auto trials = params.getUint32("trials");
        const auto noise_cores = params.getUint32("noise-cores");
        const auto resamples =
            static_cast<std::size_t>(params.getUint("resamples"));
        const Bits message = randomBits(
            static_cast<std::size_t>(params.getUint("bits")), 20200415);
        const auto uarch = uarchFromParams(params);
        const auto policies = parsePolicies(params.getStr("policies"));

        // ----- the trace: load it, or materialize the named workload.
        const std::string trace_path = params.getStr("trace");
        auto trace = std::make_shared<const workload::TraceFile>(
            trace_path.empty()
                ? workload::generateTrace(
                      params.getStr("workload"),
                      static_cast<std::size_t>(
                          params.getUint("accesses")),
                      seed ^ 0x7ace'0000ULL, params.getReal("writes"))
                : workload::loadTrace(trace_path));
        std::uint64_t stores = 0;
        for (const auto &r : trace->records)
            stores += r.is_write ? 1 : 0;
        const double store_frac =
            trace->empty() ? 0.0
                           : static_cast<double>(stores) /
                                 static_cast<double>(trace->size());

        // ----- characterize the workload on a bare hierarchy (the
        // engine-free replay fast path).
        sim::CacheHierarchy hierarchy;
        sim::SingleCorePort port(hierarchy);
        const auto replay = exec::replayTrace(port, 0, *trace);
        const double hit_rate =
            replay.accesses == 0
                ? 0.0
                : static_cast<double>(replay.hits) /
                      static_cast<double>(replay.accesses);

        sink.note("=== trace replay: x-core LRU channel vs trace-fed "
                  "noise cores, " + uarch.name + " ===\n(trace '" +
                  trace->source + "': " +
                  std::to_string(trace->size()) + " accesses, " +
                  fmtDouble(100.0 * store_frac, 1) + "% stores; " +
                  std::to_string(noise_cores) + " noise core(s) replay "
                  "it at staggered offsets while the covert parties "
                  "transmit\nover the shared LLC; Tr=" +
                  std::to_string(kTr) + ", Ts=" + std::to_string(kTs) +
                  ")");

        Table shape({"Trace", "accesses", "stores", "cache hit rate"});
        shape.addRow({trace->source, std::to_string(trace->size()),
                      std::to_string(stores),
                      fmtDouble(hit_rate, 4)});
        sink.table("--- workload shape (bare-hierarchy replay) ---",
                   shape);
        sink.scalar("trace_accesses",
                    static_cast<double>(trace->size()));
        sink.scalar("trace_store_fraction", store_frac);
        sink.scalar("replay_hit_rate", hit_rate);

        // ----- the leakage sweep: one flat trial grid, policy-major.
        const std::uint32_t n_policies =
            static_cast<std::uint32_t>(policies.size());
        struct TrialTrace
        {
            Bits sent;
            Bits decoded;
            double kbps = 0.0;
        };
        const auto traces = core::runTrials(
            n_policies * trials, seed,
            [&](std::uint32_t idx, sim::Xoshiro256 &) {
                const std::uint32_t pol = idx / trials;

                SessionConfig cfg;
                cfg.channel = ChannelId::XCoreLruAlg2;
                cfg.mode = SharingMode::CrossCore;
                cfg.uarch = uarch;
                cfg.tr = kTr;
                cfg.ts = kTs;
                cfg.message = message;
                cfg.repeats = params.getUint32("repeats");
                cfg.collect_symbols = true;
                cfg.seed = seed + idx;
                cfg.llc_policy = policies[pol];
                cfg.noise_cores = noise_cores;
                cfg.noise_trace = trace;
                const auto res = runSession(cfg);
                return TrialTrace{res.sent, res.decoded_symbols,
                                  res.kbps};
            });

        Table table({"Carrier policy", "bits/use", "95% CI", "bits/s",
                     "pairs"});
        for (std::uint32_t p = 0; p < n_policies; ++p) {
            leakage::Report::Config rc;
            rc.resamples = resamples;
            rc.seed = 0x7ace + p;
            leakage::Report report(rc);
            for (std::uint32_t t = 0; t < trials; ++t) {
                const TrialTrace &tr = traces[p * trials + t];
                report.addTrial(tr.sent, tr.decoded, tr.kbps * 1000.0);
            }
            const auto a = report.aggregate();
            const std::string pol =
                std::string(sim::replPolicyName(policies[p]));
            table.addRow(
                {pol, fmtDouble(a.pooled.corrected_bits_per_use, 4),
                 "[" + fmtDouble(a.bits_per_use_ci.lo, 4) + ", " +
                     fmtDouble(a.bits_per_use_ci.hi, 4) + "]",
                 fmtDouble(a.pooled.bits_per_second, 0),
                 std::to_string(a.pairs)});
            sink.scalar("bpu_" + pol, a.pooled.corrected_bits_per_use);
            sink.scalar("bps_" + pol, a.pooled.bits_per_second);
        }
        sink.table("--- leakage beside the replayed trace, per carrier "
                   "policy ---",
                   table);

        sink.note("\nReading it: the channel's bits/use under REAL "
                  "workload pressure, not the synthetic\nnoise model — "
                  "a trace with high LLC pressure displaces the "
                  "carrier lines and erodes\nthe channel, a cache-"
                  "friendly trace leaves it intact.  Swap `trace=` for "
                  "a captured\nfile (or `lruleak trace-gen` output) to "
                  "score leakage beside any workload.");
    }
};

LRULEAK_REGISTER_EXPERIMENT(TraceReplay)

} // namespace

} // namespace lruleak::experiments
