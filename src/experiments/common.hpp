/**
 * @file
 * Shared helpers for the experiment registrations: common ParamSpec
 * builders (seed, CPU model, channel lists) and small conversion
 * utilities used by many run() bodies.
 */

#ifndef LRULEAK_EXPERIMENTS_COMMON_HPP
#define LRULEAK_EXPERIMENTS_COMMON_HPP

#include <string>
#include <vector>

#include "channel/channel_factory.hpp"
#include "channel/decoder.hpp"
#include "core/experiment.hpp"
#include "timing/uarch.hpp"

namespace lruleak::experiments {

/** The standard RNG-seed parameter. */
inline core::ParamSpec
seedParam(std::int64_t def)
{
    return core::ParamSpec::integer("seed", def,
                                    "RNG seed for the measurement");
}

/**
 * CPU-model parameter over the paper's Table III machines.  A Str (not
 * Choice) spec so the aliases timing::uarchFromName documents
 * ("skylake", "zen", case-insensitive) work from the CLI; validation
 * happens in uarchFromParams.
 */
inline core::ParamSpec
uarchParam(const std::string &def)
{
    std::string valid;
    for (const auto &t : timing::uarchTokens()) {
        if (!valid.empty())
            valid += ", ";
        valid += t;
    }
    return core::ParamSpec::str("uarch", def,
                                "CPU model to simulate (" + valid +
                                    "; microarch aliases like skylake/"
                                    "zen also accepted)");
}

/** Parse the uarchParam value; throws ParamError on a bad name. */
timing::Uarch uarchFromParams(const core::ParamMap &params);

/** Comma-separated channel list parameter (see channelIdFromName). */
inline core::ParamSpec
channelsParam(const std::string &def)
{
    std::string valid;
    for (auto id : channel::allChannelIds()) {
        if (!valid.empty())
            valid += ", ";
        valid += channel::channelIdToken(id);
    }
    return core::ParamSpec::str("channels", def,
                                "comma-separated channel list (" + valid +
                                    ")");
}

/** Parse the channelsParam value; throws ParamError on a bad name. */
std::vector<channel::ChannelId> parseChannels(const std::string &list);

/** First @p limit sample latencies as a plottable series. */
std::vector<double> sampleLatencies(const std::vector<channel::Sample> &s,
                                    std::size_t limit);

} // namespace lruleak::experiments

#endif // LRULEAK_EXPERIMENTS_COMMON_HPP
