/**
 * @file
 * Address types and set/tag decomposition for set-associative caches.
 *
 * The simulator carries both a virtual and a physical address on every
 * memory reference: L1 caches are virtually-indexed physically-tagged
 * (VIPT), which is what lets Algorithm 2 of the paper target a set without
 * shared memory (bits 6..11 are identical in VA and PA for 4 KiB pages),
 * and the AMD way-predictor model needs the virtual address to compute its
 * linear-address utag.
 */

#ifndef LRULEAK_SIM_ADDRESS_HPP
#define LRULEAK_SIM_ADDRESS_HPP

#include <cstdint>

namespace lruleak::sim {

/** Raw address type used throughout the simulator. */
using Addr = std::uint64_t;

/** Identifier of a hardware thread / process issuing an access. */
using ThreadId = std::uint32_t;

/**
 * A single memory reference as seen by the cache hierarchy.
 *
 * @c vaddr is the program's virtual address (used for VIPT indexing and
 * the AMD utag); @c paddr is the translated physical address (used for tag
 * match).  For same-address-space accesses the two are typically equal.
 */
struct MemRef
{
    Addr vaddr = 0;          //!< virtual address
    Addr paddr = 0;          //!< physical address
    ThreadId thread = 0;     //!< issuing hardware thread
    bool is_write = false;   //!< store (true) or load (false)

    /** Convenience factory for a same-VA/PA load. */
    static constexpr MemRef
    load(Addr addr, ThreadId thread = 0)
    {
        return MemRef{addr, addr, thread, false};
    }

    /** Convenience factory for a load with distinct VA and PA. */
    static constexpr MemRef
    loadVaPa(Addr vaddr, Addr paddr, ThreadId thread = 0)
    {
        return MemRef{vaddr, paddr, thread, false};
    }

    /** Convenience factory for a same-VA/PA store. */
    static constexpr MemRef
    store(Addr addr, ThreadId thread = 0)
    {
        return MemRef{addr, addr, thread, true};
    }
};

/**
 * Bit-level geometry of one cache level.  Decomposes addresses into
 * {offset, set index, tag}.
 */
class AddressLayout
{
  public:
    /**
     * @param line_size line size in bytes (power of two)
     * @param num_sets number of sets (power of two)
     */
    constexpr AddressLayout(std::uint32_t line_size, std::uint32_t num_sets)
        : line_bits_(log2i(line_size)), set_bits_(log2i(num_sets)),
          num_sets_(num_sets)
    {}

    /** Set index of an address (uses the *virtual* address: VIPT). */
    constexpr std::uint32_t
    setIndex(Addr vaddr) const
    {
        return static_cast<std::uint32_t>(
            (vaddr >> line_bits_) & (num_sets_ - 1));
    }

    /** Tag of an address (uses the *physical* address). */
    constexpr Addr
    tag(Addr paddr) const
    {
        return paddr >> (line_bits_ + set_bits_);
    }

    /** Line-aligned base of an address. */
    constexpr Addr
    lineBase(Addr addr) const
    {
        return addr & ~((Addr{1} << line_bits_) - 1);
    }

    /** Reconstruct a line base address from (tag, set). */
    constexpr Addr
    compose(Addr tag, std::uint32_t set) const
    {
        return (tag << (line_bits_ + set_bits_)) |
               (static_cast<Addr>(set) << line_bits_);
    }

    constexpr std::uint32_t lineBits() const { return line_bits_; }
    constexpr std::uint32_t setBits() const { return set_bits_; }
    constexpr std::uint32_t numSets() const { return num_sets_; }
    constexpr std::uint32_t lineSize() const { return 1u << line_bits_; }

    /** Integer log2 for powers of two. */
    static constexpr std::uint32_t
    log2i(std::uint64_t value)
    {
        std::uint32_t bits = 0;
        while (value > 1) {
            value >>= 1;
            ++bits;
        }
        return bits;
    }

  private:
    std::uint32_t line_bits_;
    std::uint32_t set_bits_;
    std::uint32_t num_sets_;
};

/**
 * Helper used by channel code and tests: build the address of the i-th
 * distinct cache line mapping to a given set (same set index, different
 * tags).  Address space base separates different owners (sender versus
 * receiver in Algorithm 2).
 */
constexpr Addr
lineInSet(const AddressLayout &layout, std::uint32_t set, std::uint32_t i,
          Addr base = 0)
{
    return base + layout.compose(i + 1, set);
}

} // namespace lruleak::sim

#endif // LRULEAK_SIM_ADDRESS_HPP
