/**
 * @file
 * CacheSet implementation: the paper's Fig. 10 flow chart lives here.
 */

#include "sim/cache_set.hpp"

#include <bit>

namespace lruleak::sim {

CacheSet::CacheSet(std::uint32_t ways, ReplState state, PlMode pl_mode,
                   WriteHitPolicy write_hit, WriteMissPolicy write_miss)
    : ways_(ways), pl_mode_(pl_mode), write_hit_(write_hit),
      write_miss_(write_miss), tags_(ways, 0), utags_(ways, 0),
      filled_by_(ways, 0), owners_(ways, kNoOwner), repl_(std::move(state))
{
}

CacheSet::CacheSet(std::uint32_t ways,
                   std::unique_ptr<ReplacementPolicy> policy, PlMode pl_mode)
    : CacheSet(ways, policy->state(), pl_mode)
{
}

std::optional<std::uint32_t>
CacheSet::probe(Addr tag) const
{
    const Addr *tags = tags_.data();
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (((valid_mask_ >> w) & 1u) && tags[w] == tag)
            return w;
    }
    return std::nullopt;
}

void
CacheSet::fill(std::uint32_t way, Addr tag, bool lock, std::uint16_t utag,
               ThreadId thread, bool dirty)
{
    tags_[way] = tag;
    valid_mask_ |= 1u << way;
    if (lock)
        locked_mask_ |= 1u << way;
    else
        locked_mask_ &= ~(1u << way);
    if (dirty)
        dirty_mask_ |= 1u << way;
    else
        dirty_mask_ &= ~(1u << way);
    utags_[way] = utag;
    filled_by_[way] = thread;
    owners_[way] = kNoOwner; // plain fills install unowned lines;
                             // accessSharp re-stamps after filling
}

SetAccessResult
CacheSet::access(Addr tag, std::uint16_t utag, bool check_utag,
                 LockReq lock_req, ThreadId thread, bool is_write)
{
    SetAccessResult res;
    // A store leaves the line dirty only under write-back; under
    // write-through the data goes downstream immediately and the cached
    // copy stays clean.
    const bool mark_dirty =
        is_write && write_hit_ == WriteHitPolicy::WriteBack;

    if (auto way = probe(tag)) {
        // ----- Cache hit path of Fig. 10.
        const std::uint32_t w = *way;
        res.hit = true;
        res.way = w;

        if (check_utag && utags_[w] != utag) {
            // AMD way predictor: the load matched the physical tag but the
            // stored linear-address utag disagrees, so the hardware first
            // misses in the predicted way and retrains the utag.  The
            // caller charges miss-like latency for this access.
            res.utag_mismatch = true;
            utags_[w] = utag;
        }

        const bool locked_hit = ((locked_mask_ >> w) & 1u) != 0;
        if (pl_mode_ == PlMode::FixedLruLock && locked_hit) {
            // Blue box: "Normal hit; Do not update replacement state".
        } else {
            repl_.touch(w);
        }

        if (mark_dirty)
            dirty_mask_ |= 1u << w;

        if (lock_req == LockReq::Lock && pl_mode_ != PlMode::Disabled)
            locked_mask_ |= 1u << w;
        else if (lock_req == LockReq::Unlock)
            locked_mask_ &= ~(1u << w);
        return res;
    }

    if (is_write && write_miss_ == WriteMissPolicy::NoWriteAllocate) {
        // No-write-allocate: the store bypasses this level entirely —
        // no fill, no replacement-state update.
        res.write_no_alloc = true;
        return res;
    }

    // ----- Cache miss path of Fig. 10: choose a victim.
    // Invalid ways are filled first (lowest index), as in real caches;
    // the replacement policy only arbitrates between valid lines.
    const bool lock =
        lock_req == LockReq::Lock && pl_mode_ != PlMode::Disabled;
    const std::uint32_t first_invalid =
        std::countr_one(valid_mask_); // index of the lowest clear bit
    if (first_invalid < ways_) {
        fill(first_invalid, tag, lock, utag, thread, mark_dirty);
        repl_.onFill(first_invalid);
        res.hit = false;
        res.way = first_invalid;
        res.filled = true;
        return res;
    }

    std::uint32_t victim_way;
    if (pl_mode_ == PlMode::FixedLruLock) {
        // Blue behaviour: locked ways are excluded from victim selection
        // so the replacement decision is independent of locked lines.
        victim_way = repl_.selectVictimUnlocked(locked_mask_);
        if (victim_way == kNoWay) {
            res.bypassed = true; // whole set locked: handle uncached
            return res;
        }
    } else {
        victim_way = repl_.selectVictim();
        if (pl_mode_ == PlMode::Original &&
            ((locked_mask_ >> victim_way) & 1u)) {
            // White box: "victim locked? -> ld/st without replacement".
            res.bypassed = true;
            return res;
        }
    }

    res.evicted = true;
    res.evicted_tag = tags_[victim_way];
    res.dirty_writeback = ((dirty_mask_ >> victim_way) & 1u) != 0;
    fill(victim_way, tag, lock, utag, thread, mark_dirty);
    repl_.onFill(victim_way);

    res.hit = false;
    res.way = victim_way;
    res.filled = true;
    return res;
}

SetAccessResult
CacheSet::accessSharp(Addr tag, ThreadId thread, bool is_write,
                      std::uint32_t domain, bool flagged, SharpSetEvents &ev)
{
    SetAccessResult res;
    const bool mark_dirty =
        is_write && write_hit_ == WriteHitPolicy::WriteBack;

    if (auto way = probe(tag)) {
        // Hit: identical to the plain path, plus an ownership transfer —
        // the accessor's private caches now hold the freshest copy.
        const std::uint32_t w = *way;
        res.hit = true;
        res.way = w;
        repl_.touch(w);
        if (mark_dirty)
            dirty_mask_ |= 1u << w;
        owners_[w] = domain;
        return res;
    }

    if (is_write && write_miss_ == WriteMissPolicy::NoWriteAllocate) {
        res.write_no_alloc = true;
        return res;
    }

    const std::uint32_t first_invalid = std::countr_one(valid_mask_);
    if (first_invalid < ways_) {
        fill(first_invalid, tag, false, 0, thread, mark_dirty);
        repl_.onFill(first_invalid);
        owners_[first_invalid] = domain;
        res.way = first_invalid;
        res.filled = true;
        return res;
    }

    // Victim filtering: preview what the replacement state would evict
    // (victim() is guaranteed to preview the exact way selectVictim()
    // commits).  A foreign-owned choice is a refusal event.
    std::uint32_t foreign = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (owners_[w] != kNoOwner && owners_[w] != domain)
            foreign |= 1u << w;
    }

    std::uint32_t victim_way;
    if ((foreign >> repl_.victim()) & 1u) {
        ++ev.alarms;
        if (foreign == fullMask()) {
            // Every way belongs to someone else: nothing safe to evict.
            if (flagged) {
                // The requester has alarmed too often already — deny the
                // fill outright.  Nothing (including the replacement
                // state) changes; the access is served uncached.
                ev.denied = true;
                res.bypassed = true;
                return res;
            }
            ev.forced = true;
            victim_way = repl_.selectVictim();
        } else {
            // Re-victimize like the SHARP paper: prefer a line nobody
            // holds privately (unowned) before sacrificing one of the
            // requester's own lines — evicting the requester's own
            // recently-touched data would let any cross-core miss stream
            // degrade an innocent core's working set.
            std::uint32_t unowned = kNoWay;
            for (std::uint32_t w = 0; w < ways_; ++w) {
                if (owners_[w] == kNoOwner) {
                    unowned = w;
                    break;
                }
            }
            victim_way = unowned != kNoWay
                             ? unowned
                             : repl_.selectVictimUnlocked(foreign);
        }
    } else {
        victim_way = repl_.selectVictim();
    }

    res.evicted = true;
    res.evicted_tag = tags_[victim_way];
    res.dirty_writeback = ((dirty_mask_ >> victim_way) & 1u) != 0;
    fill(victim_way, tag, false, 0, thread, mark_dirty);
    repl_.onFill(victim_way);
    owners_[victim_way] = domain;
    res.way = victim_way;
    res.filled = true;
    return res;
}

bool
CacheSet::releaseOwner(Addr tag, std::uint32_t domain)
{
    if (auto way = probe(tag)) {
        if (owners_[*way] == domain) {
            owners_[*way] = kNoOwner;
            return true;
        }
    }
    return false;
}

namespace {

/**
 * The specialised batch inner loop, shared by the results-collecting
 * accessBatch and the stats-only replayBatch (@p kCollect selects at
 * compile time).  @p kWays = 0 keeps the way count a runtime value; a
 * non-zero kWays makes it a compile-time constant so the probe loop
 * fully unrolls.  @p kWrites enables the store path (@p writes runs
 * parallel to @p tags); read-only instantiations still maintain the
 * dirty mask, because a read fill can evict a line dirtied earlier.
 */
template <std::uint32_t kWays, bool kCollect, bool kWrites, typename St>
inline SetBatchStats
runBatchLoop(St &st, Addr *const set_tags, std::uint16_t *const utags,
             ThreadId *const filled_by, std::uint32_t &valid_ref,
             std::uint32_t &dirty_ref, std::uint32_t runtime_ways,
             std::uint32_t full, std::span<const Addr> tags,
             const std::uint8_t *const writes, bool wb_hits, bool allocate,
             SetAccessResult *const results, ThreadId thread)
{
    const std::uint32_t ways = kWays != 0 ? kWays : runtime_ways;
    // Work on register-resident copies: the POD state and the masks stay
    // out of memory for the whole batch (the tag stores in the loop
    // could otherwise alias them and force reloads).
    St local = st;
    std::uint32_t valid = valid_ref;
    std::uint32_t dirty = dirty_ref;
    SetBatchStats stats;
    stats.accesses = tags.size();
    const std::size_t n = tags.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Addr tag = tags[i];
        SetAccessResult res;
        bool is_write = false;
        if constexpr (kWrites)
            is_write = writes[i] != 0;
        const bool mark_dirty = is_write && wb_hits;

        std::uint32_t way = kNoWay;
        if (valid == full) {
            // Steady state: every way valid, skip the per-way bit test.
            for (std::uint32_t w = 0; w < ways; ++w) {
                if (set_tags[w] == tag) {
                    way = w;
                    break;
                }
            }
        } else {
            for (std::uint32_t w = 0; w < ways; ++w) {
                if (((valid >> w) & 1u) && set_tags[w] == tag) {
                    way = w;
                    break;
                }
            }
        }

        if (way != kNoWay) {
            local.touch(way);
            if constexpr (kWrites) {
                if (mark_dirty)
                    dirty |= 1u << way;
            }
            if constexpr (kCollect) {
                res.hit = true;
                res.way = way;
            } else {
                ++stats.hits;
            }
        } else if (kWrites && is_write && !allocate) {
            // No-write-allocate: the store bypasses this level.
            if constexpr (kCollect)
                res.write_no_alloc = true;
        } else {
            std::uint32_t victim;
            bool dirty_wb = false;
            if (valid != full) {
                victim = static_cast<std::uint32_t>(
                    std::countr_one(valid)); // lowest invalid way
                valid |= 1u << victim;
            } else {
                victim = local.selectVictim();
                dirty_wb = ((dirty >> victim) & 1u) != 0;
                if constexpr (kCollect) {
                    res.evicted = true;
                    res.evicted_tag = set_tags[victim];
                    res.dirty_writeback = dirty_wb;
                } else {
                    ++stats.evictions;
                }
            }
            stats.dirty_writebacks += dirty_wb ? 1 : 0;
            if (mark_dirty)
                dirty |= 1u << victim;
            else
                dirty &= ~(1u << victim);
            set_tags[victim] = tag;
            utags[victim] = 0;
            filled_by[victim] = thread;
            local.onFill(victim);
            if constexpr (kCollect) {
                res.way = victim;
                res.filled = true;
            } else {
                ++stats.fills;
            }
        }
        if constexpr (kCollect)
            results[i] = res;
    }
    st = local;
    valid_ref = valid;
    dirty_ref = dirty;
    return stats;
}

/** Dispatch the batch loop over (state alternative, common way count). */
template <bool kCollect, bool kWrites>
inline SetBatchStats
dispatchBatch(ReplState &repl, Addr *set_tags, std::uint16_t *utags,
              ThreadId *filled_by, std::uint32_t &valid_ref,
              std::uint32_t &dirty_ref, std::uint32_t ways,
              std::uint32_t full, std::span<const Addr> tags,
              const std::uint8_t *writes, bool wb_hits, bool allocate,
              SetAccessResult *results, ThreadId thread)
{
    return repl.visitState([&](auto &st) {
        switch (ways) {
          case 8:
            return runBatchLoop<8, kCollect, kWrites>(
                st, set_tags, utags, filled_by, valid_ref, dirty_ref,
                ways, full, tags, writes, wb_hits, allocate, results,
                thread);
          case 16:
            return runBatchLoop<16, kCollect, kWrites>(
                st, set_tags, utags, filled_by, valid_ref, dirty_ref,
                ways, full, tags, writes, wb_hits, allocate, results,
                thread);
          default:
            return runBatchLoop<0, kCollect, kWrites>(
                st, set_tags, utags, filled_by, valid_ref, dirty_ref,
                ways, full, tags, writes, wb_hits, allocate, results,
                thread);
        }
    });
}

} // namespace

void
CacheSet::accessBatch(std::span<const Addr> tags,
                      std::span<SetAccessResult> results, ThreadId thread)
{
    if (pl_mode_ != PlMode::Disabled) {
        // Lock bits in play: take the general per-access path.
        for (std::size_t i = 0; i < tags.size(); ++i)
            results[i] = access(tags[i], 0, false, LockReq::None, thread);
        return;
    }

    // One dispatch for the whole batch: the loop is instantiated per
    // concrete replacement state (and per common way count), so
    // touch/onFill/selectVictim are direct, inlinable calls on a
    // register-resident state machine.
    dispatchBatch<true, false>(repl_, tags_.data(), utags_.data(),
                               filled_by_.data(), valid_mask_, dirty_mask_,
                               ways_, fullMask(), tags, nullptr,
                               write_hit_ == WriteHitPolicy::WriteBack,
                               write_miss_ == WriteMissPolicy::WriteAllocate,
                               results.data(), thread);
}

void
CacheSet::accessBatch(std::span<const Addr> tags,
                      std::span<const std::uint8_t> writes,
                      std::span<SetAccessResult> results, ThreadId thread)
{
    if (pl_mode_ != PlMode::Disabled) {
        for (std::size_t i = 0; i < tags.size(); ++i)
            results[i] = access(tags[i], 0, false, LockReq::None, thread,
                                writes[i] != 0);
        return;
    }
    dispatchBatch<true, true>(repl_, tags_.data(), utags_.data(),
                              filled_by_.data(), valid_mask_, dirty_mask_,
                              ways_, fullMask(), tags, writes.data(),
                              write_hit_ == WriteHitPolicy::WriteBack,
                              write_miss_ == WriteMissPolicy::WriteAllocate,
                              results.data(), thread);
}

SetBatchStats
CacheSet::replayBatch(std::span<const Addr> tags, ThreadId thread)
{
    if (pl_mode_ != PlMode::Disabled) {
        SetBatchStats stats;
        stats.accesses = tags.size();
        for (const Addr tag : tags) {
            const auto res =
                access(tag, 0, false, LockReq::None, thread);
            stats.hits += res.hit ? 1 : 0;
            stats.fills += res.filled ? 1 : 0;
            stats.evictions += res.evicted ? 1 : 0;
            stats.dirty_writebacks += res.dirty_writeback ? 1 : 0;
        }
        return stats;
    }
    return dispatchBatch<false, false>(
        repl_, tags_.data(), utags_.data(), filled_by_.data(), valid_mask_,
        dirty_mask_, ways_, fullMask(), tags, nullptr,
        write_hit_ == WriteHitPolicy::WriteBack,
        write_miss_ == WriteMissPolicy::WriteAllocate, nullptr, thread);
}

SetBatchStats
CacheSet::replayBatch(std::span<const Addr> tags,
                      std::span<const std::uint8_t> writes, ThreadId thread)
{
    if (pl_mode_ != PlMode::Disabled) {
        SetBatchStats stats;
        stats.accesses = tags.size();
        for (std::size_t i = 0; i < tags.size(); ++i) {
            const auto res = access(tags[i], 0, false, LockReq::None,
                                    thread, writes[i] != 0);
            stats.hits += res.hit ? 1 : 0;
            stats.fills += res.filled ? 1 : 0;
            stats.evictions += res.evicted ? 1 : 0;
            stats.dirty_writebacks += res.dirty_writeback ? 1 : 0;
        }
        return stats;
    }
    return dispatchBatch<false, true>(
        repl_, tags_.data(), utags_.data(), filled_by_.data(), valid_mask_,
        dirty_mask_, ways_, fullMask(), tags, writes.data(),
        write_hit_ == WriteHitPolicy::WriteBack,
        write_miss_ == WriteMissPolicy::WriteAllocate, nullptr, thread);
}

bool
CacheSet::invalidate(Addr tag)
{
    return flushLine(tag).present;
}

SetFlushResult
CacheSet::flushLine(Addr tag)
{
    SetFlushResult res;
    if (auto way = probe(tag)) {
        const std::uint32_t bit = 1u << *way;
        res.present = true;
        res.dirty = (dirty_mask_ & bit) != 0;
        valid_mask_ &= ~bit;
        locked_mask_ &= ~bit;
        dirty_mask_ &= ~bit;
        tags_[*way] = 0;
        utags_[*way] = 0;
        filled_by_[*way] = 0;
        owners_[*way] = kNoOwner;
    }
    return res;
}

bool
CacheSet::markDirty(Addr tag)
{
    if (auto way = probe(tag)) {
        dirty_mask_ |= 1u << *way;
        return true;
    }
    return false;
}

SetAccessResult
CacheSet::prefetchFill(Addr tag, std::uint16_t utag, ThreadId thread)
{
    SetAccessResult res;
    if (auto way = probe(tag)) {
        // Already present: hardware prefetchers still promote the line.
        res.hit = true;
        res.way = *way;
        repl_.touch(*way);
        return res;
    }
    return access(tag, utag, false, LockReq::None, thread);
}

std::uint32_t
CacheSet::occupancy() const
{
    return static_cast<std::uint32_t>(std::popcount(valid_mask_));
}

void
CacheSet::reset()
{
    valid_mask_ = 0;
    locked_mask_ = 0;
    dirty_mask_ = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        tags_[w] = 0;
        utags_[w] = 0;
        filled_by_[w] = 0;
        owners_[w] = kNoOwner;
    }
    repl_.reset();
}

} // namespace lruleak::sim
