/**
 * @file
 * CacheSet implementation: the paper's Fig. 10 flow chart lives here.
 */

#include "sim/cache_set.hpp"

namespace lruleak::sim {

CacheSet::CacheSet(std::uint32_t ways,
                   std::unique_ptr<ReplacementPolicy> policy, PlMode pl_mode)
    : ways_(ways), pl_mode_(pl_mode), lines_(ways),
      policy_(std::move(policy))
{
}

CacheSet::CacheSet(const CacheSet &other)
    : ways_(other.ways_), pl_mode_(other.pl_mode_), lines_(other.lines_),
      policy_(other.policy_->clone())
{
}

std::optional<std::uint32_t>
CacheSet::probe(Addr tag) const
{
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (lines_[w].valid && lines_[w].tag == tag)
            return w;
    }
    return std::nullopt;
}

std::vector<bool>
CacheSet::lockedMask() const
{
    std::vector<bool> mask(ways_);
    for (std::uint32_t w = 0; w < ways_; ++w)
        mask[w] = lines_[w].valid && lines_[w].locked;
    return mask;
}

SetAccessResult
CacheSet::access(Addr tag, std::uint16_t utag, bool check_utag,
                 LockReq lock_req, ThreadId thread)
{
    SetAccessResult res;

    if (auto way = probe(tag)) {
        // ----- Cache hit path of Fig. 10.
        res.hit = true;
        res.way = *way;
        LineState &line = lines_[*way];

        if (check_utag && line.utag != utag) {
            // AMD way predictor: the load matched the physical tag but the
            // stored linear-address utag disagrees, so the hardware first
            // misses in the predicted way and retrains the utag.  The
            // caller charges miss-like latency for this access.
            res.utag_mismatch = true;
            line.utag = utag;
        }

        const bool locked_hit = line.locked;
        if (pl_mode_ == PlMode::FixedLruLock && locked_hit) {
            // Blue box: "Normal hit; Do not update replacement state".
        } else {
            policy_->touch(*way);
        }

        if (lock_req == LockReq::Lock && pl_mode_ != PlMode::Disabled)
            line.locked = true;
        else if (lock_req == LockReq::Unlock)
            line.locked = false;
        return res;
    }

    // ----- Cache miss path of Fig. 10: choose a victim.
    // Invalid ways are filled first (lowest index), as in real caches;
    // the replacement policy only arbitrates between valid lines.
    std::uint32_t victim_way = ReplacementPolicy::kNoVictim;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!lines_[w].valid) {
            victim_way = w;
            break;
        }
    }
    if (victim_way != ReplacementPolicy::kNoVictim) {
        LineState &line = lines_[victim_way];
        line.tag = tag;
        line.valid = true;
        line.locked =
            (lock_req == LockReq::Lock && pl_mode_ != PlMode::Disabled);
        line.utag = utag;
        line.filled_by = thread;
        policy_->onFill(victim_way);
        res.hit = false;
        res.way = victim_way;
        res.filled = true;
        return res;
    }

    if (pl_mode_ == PlMode::FixedLruLock) {
        // Blue behaviour: locked ways are excluded from victim selection
        // so the replacement decision is independent of locked lines.
        victim_way = policy_->victimUnlocked(lockedMask());
        if (victim_way == ReplacementPolicy::kNoVictim) {
            res.bypassed = true; // whole set locked: handle uncached
            return res;
        }
    } else {
        victim_way = policy_->victim();
        if (pl_mode_ == PlMode::Original && lines_[victim_way].valid &&
            lines_[victim_way].locked) {
            // White box: "victim locked? -> ld/st without replacement".
            res.bypassed = true;
            return res;
        }
    }

    LineState &line = lines_[victim_way];
    if (line.valid)
        res.evicted_tag = line.tag;
    line.tag = tag;
    line.valid = true;
    line.locked = (lock_req == LockReq::Lock && pl_mode_ != PlMode::Disabled);
    line.utag = utag;
    line.filled_by = thread;

    policy_->onFill(victim_way);

    res.hit = false;
    res.way = victim_way;
    res.filled = true;
    return res;
}

bool
CacheSet::invalidate(Addr tag)
{
    if (auto way = probe(tag)) {
        lines_[*way] = LineState{};
        return true;
    }
    return false;
}

SetAccessResult
CacheSet::prefetchFill(Addr tag, std::uint16_t utag, ThreadId thread)
{
    SetAccessResult res;
    if (auto way = probe(tag)) {
        // Already present: hardware prefetchers still promote the line.
        res.hit = true;
        res.way = *way;
        policy_->touch(*way);
        return res;
    }
    return access(tag, utag, false, LockReq::None, thread);
}

std::uint32_t
CacheSet::occupancy() const
{
    std::uint32_t n = 0;
    for (const auto &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

void
CacheSet::reset()
{
    for (auto &line : lines_)
        line = LineState{};
    policy_->reset();
}

} // namespace lruleak::sim
