/**
 * @file
 * Secure-cache designs evaluated in the paper's Section IX-B beyond the
 * PL cache:
 *
 *  - DawgCache: DAWG-style way partitioning (Kiriansky et al., MICRO'18)
 *    — the one design the paper credits with partitioning the Tree-PLRU
 *    state between protection domains.  Each domain owns a fixed way
 *    range with its *own* replacement state machine; lookups, fills and
 *    metadata updates never cross domains, so the LRU channel dies.
 *
 *  - RandomFillCache: Random Fill cache (Liu & Lee, MICRO'14) — on a
 *    miss, the demanded line is returned uncached and a random
 *    neighbourhood line is filled instead.  The paper points out that a
 *    cache *hit* still updates the replacement state, so the LRU channel
 *    (whose sender encodes with hits) still works.
 */

#ifndef LRULEAK_SIM_SECURE_CACHES_HPP
#define LRULEAK_SIM_SECURE_CACHES_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/address.hpp"
#include "sim/cache_config.hpp"
#include "sim/random.hpp"
#include "sim/repl_state.hpp"

namespace lruleak::sim {

/** Protection domain identifier for DAWG. */
using DomainId = std::uint32_t;

/** Outcome of a secure-cache access. */
struct SecureAccessResult
{
    bool hit = false;
    bool filled = false;
    std::optional<Addr> evicted_line;
};

/**
 * DAWG-style way-partitioned L1: the way range and the replacement
 * state are split per domain.
 */
class DawgCache
{
  public:
    /**
     * @param config cache geometry (ways are split evenly)
     * @param domains number of protection domains (power of two,
     *        dividing the associativity)
     */
    explicit DawgCache(const CacheConfig &config = CacheConfig::intelL1d(),
                       std::uint32_t domains = 2);

    /** Access by @p domain; misses fill only that domain's ways. */
    SecureAccessResult access(const MemRef &ref, DomainId domain);

    /** Presence within the domain's partition (no state change). */
    bool contains(const MemRef &ref, DomainId domain) const;

    /** Raw replacement-state bits of one (set, domain) — for tests. */
    std::vector<std::uint8_t> replacementState(std::uint32_t set,
                                               DomainId domain) const;

    std::uint32_t waysPerDomain() const { return ways_per_domain_; }
    const AddressLayout &layout() const { return layout_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
    };

    struct DomainSet
    {
        std::vector<Way> ways;
        ReplState repl;
    };

    /** sets_[set * domains + domain] */
    DomainSet &domainSet(std::uint32_t set, DomainId domain);
    const DomainSet &domainSet(std::uint32_t set, DomainId domain) const;

    CacheConfig config_;
    AddressLayout layout_;
    std::uint32_t domains_;
    std::uint32_t ways_per_domain_;
    std::vector<DomainSet> sets_;
};

/**
 * Random Fill L1: hits behave normally (including the replacement-state
 * update!); misses return the data uncached and install a random line
 * from a window around the demanded address instead.
 */
class RandomFillCache
{
  public:
    explicit RandomFillCache(const CacheConfig &config =
                                 CacheConfig::intelL1d(),
                             std::uint32_t fill_window_lines = 64,
                             std::uint64_t seed = 1);

    /** @return hit=true only if the demanded line was already cached. */
    SecureAccessResult access(const MemRef &ref);

    bool contains(const MemRef &ref) const;

    /** Raw replacement-state bits of one set — for tests. */
    std::vector<std::uint8_t> replacementState(std::uint32_t set) const;

    const AddressLayout &layout() const { return layout_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
    };

    struct Set
    {
        std::vector<Way> ways;
        ReplState repl;
    };

    CacheConfig config_;
    AddressLayout layout_;
    std::uint32_t fill_window_lines_;
    Xoshiro256 rng_;
    std::vector<Set> sets_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_SECURE_CACHES_HPP
