/**
 * @file
 * Value-semantic replacement-state core.
 *
 * The replacement state of a cache set is the leak surface this repo
 * exists to study: it is updated on *every* access, hit or miss, which
 * is why every experiment is a Monte-Carlo loop hammering it millions of
 * times.  The seed design put that state behind a heap-allocated
 * `ReplacementPolicy` virtual interface (one indirection + one virtual
 * dispatch per access); this header replaces it with small, trivially
 * copyable POD state machines wrapped in a `std::variant`:
 *
 *   TrueLruState   - per-way age counters (exact recency order)
 *   TreePlruState  - N-1 tree bits packed into one word
 *   BitPlruState   - N MRU bits packed into one word
 *   FifoState      - fill-order queue in a fixed array
 *   RandomState    - a private Xoshiro256 stream
 *   SrripState     - 2-bit RRPVs in a fixed array
 *
 * `ReplState` dispatches non-virtually via `std::visit`; batch code can
 * hoist the dispatch out of its loop entirely (one visit around the
 * whole loop, see CacheSet::accessBatch) so the compiler specialises the
 * hot path per concrete policy.  Everything is value-semantic: a
 * `CacheSet` holding a `ReplState` is cheaply copyable and lives in one
 * contiguous allocation.
 *
 * The victim query is split to fix the seed contract lie ("Does not
 * modify state" while Random advanced its RNG and SRRIP aged RRPVs):
 *
 *   victim() const  - pure preview of the way that WOULD be evicted;
 *                     never modifies state (Random peeks a copy of its
 *                     stream, SRRIP simulates the aging).
 *   selectVictim()  - commits the choice on the actual miss path; MAY
 *                     mutate (Random advances its stream, SRRIP ages
 *                     every RRPV).  For LRU/Tree-PLRU/Bit-PLRU/FIFO it
 *                     is identical to victim().
 *
 * The legacy virtual `sim::ReplacementPolicy` hierarchy still exists
 * (see sim/replacement.hpp) as the white-box-testable reference
 * implementation and migration adapter; new code should use ReplState.
 */

#ifndef LRULEAK_SIM_REPL_STATE_HPP
#define LRULEAK_SIM_REPL_STATE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sim/random.hpp"

namespace lruleak::sim {

/** Which replacement algorithm a cache uses. */
enum class ReplPolicyKind
{
    TrueLru,
    TreePlru,
    BitPlru,
    Fifo,
    Random,
    Srrip,
};

/** Human-readable policy name ("TreePLRU", "FIFO", ...). */
std::string_view replPolicyName(ReplPolicyKind kind);

/** Parse a policy name (case-insensitive); throws std::invalid_argument. */
ReplPolicyKind replPolicyFromName(std::string_view name);

/** All kinds, in declaration order (for sweeps and the bench). */
const std::vector<ReplPolicyKind> &allReplPolicyKinds();

/** Sentinel "no way" value shared by the whole sim layer. */
inline constexpr std::uint32_t kNoWay = ~0u;

/**
 * Maximum associativity the inline state machines support.  Large enough
 * for every modeled cache (L1D/L2 are 8-way, the LLC slice 16-way) with
 * headroom; the fixed bound is what keeps the states trivially copyable
 * and allocation-free.
 */
inline constexpr std::uint32_t kMaxWays = 32;

/** Throws std::invalid_argument unless 0 < ways <= kMaxWays. */
void checkWays(std::uint32_t ways);

/**
 * Exact LRU as per-way age counters: age 0 = MRU, ways-1 = LRU.
 * Equivalent to the legacy recency list but without the O(N)
 * erase/insert churn on a heap vector.
 */
struct TrueLruState
{
    explicit TrueLruState(std::uint32_t ways);

    void
    touch(std::uint32_t way)
    {
        // Branchless: every way younger than the touched one ages by
        // one — a byte-compare/add loop the compiler can vectorise.
        const std::uint8_t old_age = age[way];
        for (std::uint32_t w = 0; w < ways; ++w)
            age[w] = static_cast<std::uint8_t>(age[w] +
                                               (age[w] < old_age ? 1 : 0));
        age[way] = 0;
    }

    void onFill(std::uint32_t way) { touch(way); }

    std::uint32_t
    victim() const
    {
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (age[w] == ways - 1)
                return w;
        }
        return 0; // unreachable: ages are a permutation of 0..ways-1
    }

    std::uint32_t selectVictim() { return victim(); }
    void reset();

    /** MRU-first recency order, bit-identical to the legacy encoding. */
    std::vector<std::uint8_t> stateBits() const;

    static constexpr ReplPolicyKind kKind = ReplPolicyKind::TrueLru;

    bool operator==(const TrueLruState &) const = default;

    std::uint32_t ways;
    std::array<std::uint8_t, kMaxWays> age{};
};

namespace detail {

/** Precomputed root-to-leaf path of one way: which tree bits an access
 *  clears and which it sets ("point every node away from the way"). */
struct PlruPath
{
    std::uint64_t clear = 0; //!< all nodes on the path
    std::uint64_t set = 0;   //!< path nodes whose bit becomes 1
};

/** Max tree depth: log2(kMaxWays). */
inline constexpr std::uint32_t kMaxPlruLevels = 5;

constexpr std::array<PlruPath, kMaxWays>
makePlruPaths(std::uint32_t levels)
{
    std::array<PlruPath, kMaxWays> out{};
    const std::uint32_t ways = 1u << levels;
    for (std::uint32_t way = 0; way < ways && way < kMaxWays; ++way) {
        PlruPath p;
        std::uint32_t node = 0;
        for (std::uint32_t level = 0; level < levels; ++level) {
            const std::uint32_t go_right =
                (way >> (levels - 1 - level)) & 1u;
            p.clear |= std::uint64_t{1} << node;
            if (!go_right)
                p.set |= std::uint64_t{1} << node;
            node = 2 * node + 1 + go_right;
        }
        out[way] = p;
    }
    return out;
}

/** Path tables indexed by [levels][way]. */
inline constexpr std::array<std::array<PlruPath, kMaxWays>,
                            kMaxPlruLevels + 1>
    kPlruPaths{makePlruPaths(0), makePlruPaths(1), makePlruPaths(2),
               makePlruPaths(3), makePlruPaths(4), makePlruPaths(5)};

constexpr std::uint32_t
plruWalk(std::uint64_t bits, std::uint32_t levels)
{
    std::uint32_t node = 0;
    std::uint32_t way = 0;
    for (std::uint32_t level = 0; level < levels; ++level) {
        const std::uint32_t go_right =
            static_cast<std::uint32_t>((bits >> node) & 1u);
        way = (way << 1) | go_right;
        node = 2 * node + 1 + go_right;
    }
    return way;
}

constexpr std::array<std::uint8_t, 128>
makePlruVictims(std::uint32_t levels)
{
    std::array<std::uint8_t, 128> out{};
    for (std::uint32_t bits = 0; bits < 128; ++bits)
        out[bits] =
            static_cast<std::uint8_t>(plruWalk(bits, levels));
    return out;
}

/** Victim lookup for trees up to 8 ways (<= 7 tree bits). */
inline constexpr std::array<std::array<std::uint8_t, 128>, 4>
    kPlruVictims{makePlruVictims(0), makePlruVictims(1),
                 makePlruVictims(2), makePlruVictims(3)};

} // namespace detail

/**
 * Tree-PLRU with the N-1 node bits packed into one word.  Node layout is
 * the implicit heap of the legacy class: node i has children 2i+1/2i+2,
 * bit 0 = victim in the LEFT subtree.  Updates and (for trees up to 8
 * ways) victim selection are table lookups instead of root-to-leaf
 * walks — this is the Intel L1D policy, the hottest state machine in
 * the repo.
 */
struct TreePlruState
{
    /** @p ways must be a power of two in [2, kMaxWays]. */
    explicit TreePlruState(std::uint32_t ways);

    void
    touch(std::uint32_t way)
    {
        const detail::PlruPath &p = detail::kPlruPaths[levels][way];
        bits = (bits & ~p.clear) | p.set;
    }

    void onFill(std::uint32_t way) { touch(way); }

    std::uint32_t
    victim() const
    {
        if (levels <= 3)
            return detail::kPlruVictims[levels][bits & 0x7f];
        return detail::plruWalk(bits, levels);
    }

    std::uint32_t selectVictim() { return victim(); }
    void reset() { bits = 0; }

    bool nodeBit(std::uint32_t node) const { return (bits >> node) & 1u; }

    void
    setNodeBit(std::uint32_t node, bool v)
    {
        const std::uint64_t mask = std::uint64_t{1} << node;
        bits = v ? (bits | mask) : (bits & ~mask);
    }

    /** One byte per tree node, bit-identical to the legacy encoding. */
    std::vector<std::uint8_t> stateBits() const;

    static constexpr ReplPolicyKind kKind = ReplPolicyKind::TreePlru;

    bool operator==(const TreePlruState &) const = default;

    std::uint32_t ways;
    std::uint32_t levels;     //!< log2(ways)
    std::uint64_t bits = 0;   //!< ways-1 tree bits, node i at bit i
};

/**
 * Bit-PLRU (MRU replacement) with the per-way MRU bits packed into one
 * word.  Hits set the way's bit (clearing all others on saturation);
 * fills leave the bit clear (the Table I behaviour); the victim is the
 * lowest-indexed clear bit.
 */
struct BitPlruState
{
    explicit BitPlruState(std::uint32_t ways);

    void
    touch(std::uint32_t way)
    {
        const std::uint64_t full =
            ways >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << ways) - 1;
        mru |= std::uint64_t{1} << way;
        if (mru == full)
            mru = std::uint64_t{1} << way;
    }

    void onFill(std::uint32_t) {}

    std::uint32_t
    victim() const
    {
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!((mru >> w) & 1u))
                return w;
        }
        return 0; // unreachable given the saturation rule
    }

    std::uint32_t selectVictim() { return victim(); }
    void reset() { mru = 0; }

    bool mruBit(std::uint32_t way) const { return (mru >> way) & 1u; }

    /** One byte per way, bit-identical to the legacy encoding. */
    std::vector<std::uint8_t> stateBits() const;

    static constexpr ReplPolicyKind kKind = ReplPolicyKind::BitPlru;

    bool operator==(const BitPlruState &) const = default;

    std::uint32_t ways;
    std::uint64_t mru = 0;
};

/**
 * FIFO (round-robin): a fill-order queue in a fixed array.  Hits are
 * invisible — the security property the paper's defense relies on.
 */
struct FifoState
{
    explicit FifoState(std::uint32_t ways);

    void touch(std::uint32_t) {}

    void
    onFill(std::uint32_t way)
    {
        // Remove `way` from the queue, re-append as newest.
        std::uint32_t pos = 0;
        while (pos < ways && order[pos] != way)
            ++pos;
        for (std::uint32_t i = pos; i + 1 < ways; ++i)
            order[i] = order[i + 1];
        order[ways - 1] = static_cast<std::uint8_t>(way);
    }

    std::uint32_t victim() const { return order[0]; }
    std::uint32_t selectVictim() { return victim(); }
    void reset();

    /** Oldest-first fill order, bit-identical to the legacy encoding. */
    std::vector<std::uint8_t> stateBits() const;

    static constexpr ReplPolicyKind kKind = ReplPolicyKind::Fifo;

    bool operator==(const FifoState &) const = default;

    std::uint32_t ways;
    std::array<std::uint8_t, kMaxWays> order{}; //!< order[0] = next victim
};

/**
 * Random replacement over a private deterministic stream.  The only
 * state is the RNG itself: victim() peeks a copy of the stream (pure),
 * selectVictim() advances it.
 */
struct RandomState
{
    RandomState(std::uint32_t ways, std::uint64_t seed)
        : ways(ways), seed(seed), rng(seed)
    {
        checkWays(ways);
    }

    void touch(std::uint32_t) {}
    void onFill(std::uint32_t) {}

    std::uint32_t
    victim() const
    {
        Xoshiro256 peek = rng;
        return static_cast<std::uint32_t>(peek.below(ways));
    }

    std::uint32_t
    selectVictim()
    {
        return static_cast<std::uint32_t>(rng.below(ways));
    }

    void reset() { rng = Xoshiro256(seed); }

    std::vector<std::uint8_t> stateBits() const { return {}; }

    static constexpr ReplPolicyKind kKind = ReplPolicyKind::Random;

    bool operator==(const RandomState &) const = default;

    std::uint32_t ways;
    std::uint64_t seed;
    Xoshiro256 rng;
};

/**
 * SRRIP-HP with 2-bit RRPVs.  victim() previews the way aging would
 * choose without applying it; selectVictim() ages every RRPV so the
 * chosen way sits at the maximum, exactly like the legacy loop.
 */
struct SrripState
{
    explicit SrripState(std::uint32_t ways);

    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr std::uint8_t kInsertRrpv = 2;

    void touch(std::uint32_t way) { rrpv[way] = 0; }
    void onFill(std::uint32_t way) { rrpv[way] = kInsertRrpv; }

    std::uint32_t
    victim() const
    {
        // Aging raises everyone uniformly, so the first way to reach the
        // max RRPV is the first way already holding the max value.
        std::uint8_t max = 0;
        std::uint32_t first = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (rrpv[w] > max) {
                max = rrpv[w];
                first = w;
            }
        }
        return first;
    }

    std::uint32_t
    selectVictim()
    {
        const std::uint32_t first = victim();
        const std::uint8_t delta =
            static_cast<std::uint8_t>(kMaxRrpv - rrpv[first]);
        if (delta != 0) {
            for (std::uint32_t w = 0; w < ways; ++w)
                rrpv[w] = static_cast<std::uint8_t>(rrpv[w] + delta);
        }
        return first;
    }

    void reset();

    /** Raw RRPVs, bit-identical to the legacy encoding. */
    std::vector<std::uint8_t> stateBits() const;

    static constexpr ReplPolicyKind kKind = ReplPolicyKind::Srrip;

    bool operator==(const SrripState &) const = default;

    std::uint32_t ways;
    std::array<std::uint8_t, kMaxWays> rrpv{};
};

/**
 * The per-set replacement state: a variant over the six POD machines
 * with non-virtual dispatch.  Copy/assign are the trivial member-wise
 * operations, which is what makes CacheSet value-semantic.
 *
 * Hot loops should prefer `visitState` (one dispatch around the whole
 * loop) over per-call `touch`/`onFill` (one dispatch per call).
 */
class ReplState
{
  public:
    using Variant = std::variant<TrueLruState, TreePlruState, BitPlruState,
                                 FifoState, RandomState, SrripState>;

    /* implicit */ ReplState(Variant state) : state_(std::move(state)) {}

    /** Factory. @p seed feeds the Random policy's private stream. */
    static ReplState make(ReplPolicyKind kind, std::uint32_t ways,
                          std::uint64_t seed = 0);

    /** Record an access (hit) to @p way. */
    void
    touch(std::uint32_t way)
    {
        std::visit([way](auto &s) { s.touch(way); }, state_);
    }

    /** Record that a new line was installed into @p way. */
    void
    onFill(std::uint32_t way)
    {
        std::visit([way](auto &s) { s.onFill(way); }, state_);
    }

    /** Pure preview of the way that would be evicted (never mutates). */
    std::uint32_t
    victim() const
    {
        return std::visit([](const auto &s) { return s.victim(); },
                          state_);
    }

    /** Commit a victim choice; may mutate (Random, SRRIP). */
    std::uint32_t
    selectVictim()
    {
        return std::visit([](auto &s) { return s.selectVictim(); },
                          state_);
    }

    /**
     * Commit a victim choice skipping locked ways (bit w of
     * @p locked_mask set = way w locked).  Falls back to a linear scan
     * when the preferred way is locked; kNoWay when all ways are locked.
     */
    std::uint32_t
    selectVictimUnlocked(std::uint32_t locked_mask)
    {
        const std::uint32_t preferred = selectVictim();
        if (!((locked_mask >> preferred) & 1u))
            return preferred;
        const std::uint32_t n = ways();
        for (std::uint32_t w = 0; w < n; ++w) {
            if (!((locked_mask >> w) & 1u))
                return w;
        }
        return kNoWay;
    }

    /** Reset to the power-on state. */
    void
    reset()
    {
        std::visit([](auto &s) { s.reset(); }, state_);
    }

    /** Raw state bits, policy-defined encoding (for tests/dumps). */
    std::vector<std::uint8_t>
    stateBits() const
    {
        return std::visit([](const auto &s) { return s.stateBits(); },
                          state_);
    }

    ReplPolicyKind
    kind() const
    {
        return std::visit([](const auto &s) { return s.kKind; }, state_);
    }

    std::string_view name() const { return replPolicyName(kind()); }

    std::uint32_t
    ways() const
    {
        return std::visit([](const auto &s) { return s.ways; }, state_);
    }

    /**
     * Dispatch ONCE and run @p f with the concrete state type — the hook
     * batch loops use to hoist dispatch out of their inner loop.
     */
    template <typename F>
    decltype(auto)
    visitState(F &&f)
    {
        return std::visit(static_cast<F &&>(f), state_);
    }

    template <typename F>
    decltype(auto)
    visitState(F &&f) const
    {
        return std::visit(static_cast<F &&>(f), state_);
    }

    /** Concrete-state access for white-box tests; nullptr on mismatch. */
    template <typename T> T *get() { return std::get_if<T>(&state_); }
    template <typename T> const T *get() const
    {
        return std::get_if<T>(&state_);
    }

    bool operator==(const ReplState &) const = default;

  private:
    Variant state_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_REPL_STATE_HPP
