/**
 * @file
 * Configuration of one cache level.
 */

#ifndef LRULEAK_SIM_CACHE_CONFIG_HPP
#define LRULEAK_SIM_CACHE_CONFIG_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/replacement.hpp"
#include "sim/write_policy.hpp"

namespace lruleak::sim {

/**
 * Secure-cache operating mode of one level (Section IX-B designs,
 * integrated so whole hierarchies — and therefore channel::Session —
 * can run them end to end; the standalone DawgCache/RandomFillCache in
 * sim/secure_caches.hpp remain the single-set reference models):
 *
 *  - Dawg: DAWG-style way partitioning.  The ways and the replacement
 *    state of every set are split into `secure_domains` partitions;
 *    thread t operates entirely inside partition t % domains, so
 *    lookups, fills and metadata updates never cross domains.
 *  - RandomFill: Random Fill cache.  A demand miss is served uncached
 *    and a random line from the +-`fill_window` neighbourhood is
 *    installed instead; hits (including their replacement-state
 *    update) behave normally.
 *  - Sharp: SHARP-style protected cache (Yan et al.).  Every line
 *    tracks the protection domain that currently owns it (the core
 *    whose private caches hold the line, for a shared LLC); a miss
 *    whose replacement-chosen victim belongs to *another* domain is
 *    refused and re-victimized among unowned/self-owned ways, and the
 *    requester's per-domain alarm counter increments.  When every way
 *    is foreign-owned the eviction is forced (still alarmed) — unless
 *    the requester's alarms already crossed `sharp_alarm_threshold`,
 *    in which case the fill itself is denied and the access is served
 *    uncached.  Threshold 0 = never deny (detection only).
 */
enum class SecureMode : std::uint8_t
{
    None,
    Dawg,
    RandomFill,
    Sharp,
};

/** Stable token: "none", "dawg", "randomfill", "sharp". */
constexpr std::string_view
secureModeName(SecureMode mode)
{
    switch (mode) {
      case SecureMode::None:       return "none";
      case SecureMode::Dawg:       return "dawg";
      case SecureMode::RandomFill: return "randomfill";
      case SecureMode::Sharp:      return "sharp";
    }
    return "unknown";
}

/**
 * Geometry and policy of one cache level.  All counts must be powers of
 * two; @c validate() enforces this so misconfiguration fails loudly at
 * construction instead of corrupting index math later.
 */
struct CacheConfig
{
    std::string name = "L1D";              //!< label used in stats dumps
    std::uint32_t size_bytes = 32 * 1024;  //!< total capacity
    std::uint32_t ways = 8;                //!< associativity
    std::uint32_t line_size = 64;          //!< bytes per line
    ReplPolicyKind policy = ReplPolicyKind::TreePlru;
    std::uint64_t seed = 0;                //!< Random-policy seed

    // Write-path behaviour (orthogonal axes; defaults match the
    // evaluated CPUs, whose data caches are write-back/write-allocate).
    WriteHitPolicy write_hit = WriteHitPolicy::WriteBack;
    WriteMissPolicy write_miss = WriteMissPolicy::WriteAllocate;

    // Secure-cache mode of this level (None = plain cache).
    SecureMode secure = SecureMode::None;
    std::uint32_t secure_domains = 2; //!< DAWG/SHARP protection domains
    std::uint32_t fill_window = 64;   //!< RandomFill neighbourhood (lines)
    /**
     * SHARP only: alarms a domain may raise before its forced evictions
     * are denied outright (the fill is refused, the access served
     * uncached).  0 = never deny — the alarm counters still count, so
     * SHARP degrades to a pure detector.
     */
    std::uint32_t sharp_alarm_threshold = 0;

    /** Member-wise equality (drives the session topology reuse pool). */
    bool operator==(const CacheConfig &) const = default;

    std::uint32_t
    numSets() const
    {
        return size_bytes / (ways * line_size);
    }

    void
    validate() const
    {
        auto pow2 = [](std::uint64_t v) { return v && !(v & (v - 1)); };
        if (!pow2(size_bytes) || !pow2(ways) || !pow2(line_size))
            throw std::invalid_argument(name +
                ": size, ways and line size must be powers of two");
        if (size_bytes < ways * line_size)
            throw std::invalid_argument(name + ": capacity below one set");
    }

    /** 32 KiB, 8-way, 64-set L1D as on all three evaluated CPUs. */
    static CacheConfig
    intelL1d(ReplPolicyKind policy = ReplPolicyKind::TreePlru)
    {
        return CacheConfig{"L1D", 32 * 1024, 8, 64, policy, 0};
    }

    /** 256 KiB, 8-way private L2. */
    static CacheConfig
    intelL2()
    {
        return CacheConfig{"L2", 256 * 1024, 8, 64,
                           ReplPolicyKind::TreePlru, 0};
    }

    /** 2 MiB 16-way LLC slice (scaled down to keep simulation fast). */
    static CacheConfig
    intelLlc()
    {
        return CacheConfig{"LLC", 2 * 1024 * 1024, 16, 64,
                           ReplPolicyKind::Srrip, 0};
    }
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_CACHE_CONFIG_HPP
