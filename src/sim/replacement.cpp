/**
 * @file
 * Reference implementations of the legacy replacement-policy classes
 * (the oracle the ReplState equivalence tests compare against).
 */

#include "sim/replacement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lruleak::sim {

std::uint32_t
ReplacementPolicy::victimUnlocked(const std::vector<bool> &locked)
{
    const std::uint32_t preferred = selectVictim();
    if (preferred < locked.size() && !locked[preferred])
        return preferred;
    if (preferred < locked.size()) {
        // Preferred way is locked: scan for any unlocked way, preferring
        // the policy's notion of oldest where it has one.  A plain scan is
        // what hardware PL-cache proposals do (the incoming line is then
        // handled uncached if everything is locked).
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (!locked[w])
                return w;
        }
        return kNoVictim;
    }
    return preferred;
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::uint32_t ways,
                      std::uint64_t seed)
{
    switch (kind) {
      case ReplPolicyKind::TrueLru:
        return std::make_unique<TrueLru>(ways);
      case ReplPolicyKind::TreePlru:
        return std::make_unique<TreePlru>(ways);
      case ReplPolicyKind::BitPlru:
        return std::make_unique<BitPlru>(ways);
      case ReplPolicyKind::Fifo:
        return std::make_unique<Fifo>(ways);
      case ReplPolicyKind::Random:
        return std::make_unique<RandomRepl>(ways, seed);
      case ReplPolicyKind::Srrip:
        return std::make_unique<Srrip>(ways);
    }
    throw std::invalid_argument("bad ReplPolicyKind");
}

// ---------------------------------------------------------------- TrueLru

TrueLru::TrueLru(std::uint32_t ways) : ReplacementPolicy(ways)
{
    reset();
}

void
TrueLru::reset()
{
    order_.resize(ways_);
    // Power-on order: way 0 is MRU, way N-1 is LRU.
    std::iota(order_.begin(), order_.end(), 0u);
}

void
TrueLru::touch(std::uint32_t way)
{
    auto it = std::find(order_.begin(), order_.end(), way);
    if (it != order_.end())
        order_.erase(it);
    order_.insert(order_.begin(), way);
}

std::uint32_t
TrueLru::victim() const
{
    return order_.back();
}

std::uint32_t
TrueLru::age(std::uint32_t way) const
{
    auto it = std::find(order_.begin(), order_.end(), way);
    return static_cast<std::uint32_t>(it - order_.begin());
}

std::vector<std::uint8_t>
TrueLru::stateBits() const
{
    std::vector<std::uint8_t> out;
    out.reserve(order_.size());
    for (auto w : order_)
        out.push_back(static_cast<std::uint8_t>(w));
    return out;
}

std::unique_ptr<ReplacementPolicy>
TrueLru::clone() const
{
    return std::make_unique<TrueLru>(*this);
}

ReplState
TrueLru::state() const
{
    TrueLruState s(ways_);
    for (std::uint32_t pos = 0; pos < ways_; ++pos)
        s.age[order_[pos]] = static_cast<std::uint8_t>(pos);
    return ReplState(s);
}

// --------------------------------------------------------------- TreePlru

namespace {

/** Integer log2 for powers of two. */
std::uint32_t
log2u(std::uint32_t value)
{
    std::uint32_t bits = 0;
    while (value > 1) {
        value >>= 1;
        ++bits;
    }
    return bits;
}

} // namespace

TreePlru::TreePlru(std::uint32_t ways)
    : ReplacementPolicy(ways), levels_(log2u(ways))
{
    if (ways < 2 || (ways & (ways - 1)) != 0)
        throw std::invalid_argument("TreePlru requires power-of-two ways");
    reset();
}

void
TreePlru::reset()
{
    bits_.assign(ways_ - 1, false);
}

void
TreePlru::touch(std::uint32_t way)
{
    // Walk from root to the leaf for `way`; at each node set the bit to
    // point away from the subtree containing `way`.
    std::uint32_t node = 0;
    for (std::uint32_t level = 0; level < levels_; ++level) {
        const std::uint32_t shift = levels_ - 1 - level;
        const bool go_right = (way >> shift) & 1u;
        // bit semantics: 0 => victim on the left, 1 => victim on the right.
        // Accessed the left child => victim should be right => bit = 1.
        bits_[node] = !go_right;
        node = 2 * node + 1 + (go_right ? 1u : 0u);
    }
}

std::uint32_t
TreePlru::victim() const
{
    std::uint32_t node = 0;
    std::uint32_t way = 0;
    for (std::uint32_t level = 0; level < levels_; ++level) {
        const bool go_right = bits_[node];
        way = (way << 1) | (go_right ? 1u : 0u);
        node = 2 * node + 1 + (go_right ? 1u : 0u);
    }
    return way;
}

std::vector<std::uint8_t>
TreePlru::stateBits() const
{
    std::vector<std::uint8_t> out;
    out.reserve(bits_.size());
    for (bool b : bits_)
        out.push_back(b ? 1 : 0);
    return out;
}

std::unique_ptr<ReplacementPolicy>
TreePlru::clone() const
{
    return std::make_unique<TreePlru>(*this);
}

ReplState
TreePlru::state() const
{
    TreePlruState s(ways_);
    for (std::uint32_t i = 0; i < ways_ - 1; ++i)
        s.setNodeBit(i, bits_[i]);
    return ReplState(s);
}

// ---------------------------------------------------------------- BitPlru

BitPlru::BitPlru(std::uint32_t ways) : ReplacementPolicy(ways)
{
    reset();
}

void
BitPlru::reset()
{
    mru_.assign(ways_, false);
}

void
BitPlru::touch(std::uint32_t way)
{
    mru_[way] = true;
    if (std::all_of(mru_.begin(), mru_.end(), [](bool b) { return b; })) {
        mru_.assign(ways_, false);
        mru_[way] = true;
    }
}

void
BitPlru::onFill(std::uint32_t)
{
    // Fills leave the MRU bit clear; see the class comment.
}

std::uint32_t
BitPlru::victim() const
{
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!mru_[w])
            return w;
    }
    return 0; // unreachable given the saturation rule, kept for safety
}

std::vector<std::uint8_t>
BitPlru::stateBits() const
{
    std::vector<std::uint8_t> out;
    out.reserve(mru_.size());
    for (bool b : mru_)
        out.push_back(b ? 1 : 0);
    return out;
}

std::unique_ptr<ReplacementPolicy>
BitPlru::clone() const
{
    return std::make_unique<BitPlru>(*this);
}

ReplState
BitPlru::state() const
{
    BitPlruState s(ways_);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (mru_[w])
            s.mru |= std::uint64_t{1} << w;
    }
    return ReplState(s);
}

// ------------------------------------------------------------------- Fifo

Fifo::Fifo(std::uint32_t ways) : ReplacementPolicy(ways)
{
    reset();
}

void
Fifo::reset()
{
    fifo_.resize(ways_);
    std::iota(fifo_.begin(), fifo_.end(), 0u);
}

void
Fifo::touch(std::uint32_t)
{
    // Hits are invisible to FIFO: this is the security property the
    // paper's defense relies on.
}

void
Fifo::onFill(std::uint32_t way)
{
    auto it = std::find(fifo_.begin(), fifo_.end(), way);
    if (it != fifo_.end())
        fifo_.erase(it);
    fifo_.push_back(way); // newest at the back
}

std::uint32_t
Fifo::victim() const
{
    return fifo_.front();
}

std::vector<std::uint8_t>
Fifo::stateBits() const
{
    std::vector<std::uint8_t> out;
    out.reserve(fifo_.size());
    for (auto w : fifo_)
        out.push_back(static_cast<std::uint8_t>(w));
    return out;
}

std::unique_ptr<ReplacementPolicy>
Fifo::clone() const
{
    return std::make_unique<Fifo>(*this);
}

ReplState
Fifo::state() const
{
    FifoState s(ways_);
    for (std::uint32_t i = 0; i < ways_; ++i)
        s.order[i] = static_cast<std::uint8_t>(fifo_[i]);
    return ReplState(s);
}

// ------------------------------------------------------------- RandomRepl

RandomRepl::RandomRepl(std::uint32_t ways, std::uint64_t seed)
    : ReplacementPolicy(ways), seed_(seed), rng_(seed)
{
}

void
RandomRepl::touch(std::uint32_t)
{
    // Stateless by design.
}

std::uint32_t
RandomRepl::victim() const
{
    Xoshiro256 peek = rng_;
    return static_cast<std::uint32_t>(peek.below(ways_));
}

std::uint32_t
RandomRepl::selectVictim()
{
    return static_cast<std::uint32_t>(rng_.below(ways_));
}

void
RandomRepl::reset()
{
    rng_ = Xoshiro256(seed_);
}

std::vector<std::uint8_t>
RandomRepl::stateBits() const
{
    return {};
}

std::unique_ptr<ReplacementPolicy>
RandomRepl::clone() const
{
    return std::make_unique<RandomRepl>(*this);
}

ReplState
RandomRepl::state() const
{
    RandomState s(ways_, seed_);
    s.rng = rng_; // preserve the mid-stream position
    return ReplState(s);
}

// ------------------------------------------------------------------ Srrip

Srrip::Srrip(std::uint32_t ways) : ReplacementPolicy(ways)
{
    reset();
}

void
Srrip::reset()
{
    rrpv_.assign(ways_, kMaxRrpv);
}

void
Srrip::touch(std::uint32_t way)
{
    rrpv_[way] = 0; // hit priority: promote to "near-immediate"
}

void
Srrip::onFill(std::uint32_t way)
{
    rrpv_[way] = kInsertRrpv;
}

std::uint32_t
Srrip::victim() const
{
    // Preview of the aging loop: uniform aging saturates the way already
    // holding the maximum RRPV first (lowest index on ties).
    std::uint8_t max = 0;
    std::uint32_t first = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (rrpv_[w] > max) {
            max = rrpv_[w];
            first = w;
        }
    }
    return first;
}

std::uint32_t
Srrip::selectVictim()
{
    // Age until some way reaches the max RRPV; pick the lowest index.
    while (true) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[w] == kMaxRrpv)
                return w;
        }
        for (auto &v : rrpv_)
            ++v;
    }
}

std::vector<std::uint8_t>
Srrip::stateBits() const
{
    return rrpv_;
}

std::unique_ptr<ReplacementPolicy>
Srrip::clone() const
{
    return std::make_unique<Srrip>(*this);
}

ReplState
Srrip::state() const
{
    SrripState s(ways_);
    for (std::uint32_t w = 0; w < ways_; ++w)
        s.rrpv[w] = rrpv_[w];
    return ReplState(s);
}

} // namespace lruleak::sim
