/**
 * @file
 * Write-policy surface of one cache level: what a store does on a hit
 * (write-back vs write-through) and on a miss (write-allocate vs
 * no-write-allocate).  The two axes are orthogonal, exactly as in real
 * controllers — all four combinations are legal, and the differential
 * fuzz suite exercises every one.
 */

#ifndef LRULEAK_SIM_WRITE_POLICY_HPP
#define LRULEAK_SIM_WRITE_POLICY_HPP

#include <stdexcept>
#include <string>
#include <string_view>

namespace lruleak::sim {

/** What a store hit does with the cached copy. */
enum class WriteHitPolicy
{
    WriteBack,    //!< mark the line dirty; memory is updated lazily on
                  //!< eviction (the latency the dirty-state channels key
                  //!< on)
    WriteThrough, //!< forward the store downstream immediately; the
                  //!< line never becomes dirty at this level
};

/** What a store miss does with the missing line. */
enum class WriteMissPolicy
{
    WriteAllocate,   //!< fetch and install the line, then apply the hit
                     //!< policy to it
    NoWriteAllocate, //!< send the store downstream without installing
                     //!< the line (replacement state untouched)
};

constexpr const char *
writeHitPolicyName(WriteHitPolicy policy)
{
    return policy == WriteHitPolicy::WriteBack ? "writeback"
                                               : "writethrough";
}

constexpr const char *
writeMissPolicyName(WriteMissPolicy policy)
{
    return policy == WriteMissPolicy::WriteAllocate ? "allocate"
                                                    : "noallocate";
}

inline WriteHitPolicy
writeHitPolicyFromName(std::string_view name)
{
    if (name == "writeback" || name == "wb")
        return WriteHitPolicy::WriteBack;
    if (name == "writethrough" || name == "wt")
        return WriteHitPolicy::WriteThrough;
    throw std::invalid_argument("unknown write-hit policy '" +
                                std::string(name) +
                                "' (expected writeback|writethrough)");
}

inline WriteMissPolicy
writeMissPolicyFromName(std::string_view name)
{
    if (name == "allocate" || name == "wa")
        return WriteMissPolicy::WriteAllocate;
    if (name == "noallocate" || name == "nwa")
        return WriteMissPolicy::NoWriteAllocate;
    throw std::invalid_argument("unknown write-miss policy '" +
                                std::string(name) +
                                "' (expected allocate|noallocate)");
}

} // namespace lruleak::sim

#endif // LRULEAK_SIM_WRITE_POLICY_HPP
