/**
 * @file
 * Partition-Locked (PL) cache facade (paper Section IX-B, Fig. 10/11).
 *
 * PL cache [Wang & Lee, ISCA'07] extends every line with a lock bit: a
 * locked line is never evicted; if the replacement policy picks a locked
 * victim, the incoming access is handled uncached.  The paper shows the
 * *original* design still leaks through the LRU state (accesses to locked
 * lines update it) and proposes the fix of locking the LRU state too.
 *
 * The actual flow chart is implemented in CacheSet::access; this class is
 * the user-facing handle that issues lock/unlock requests and toggles the
 * original/fixed behaviour.
 */

#ifndef LRULEAK_SIM_PLCACHE_HPP
#define LRULEAK_SIM_PLCACHE_HPP

#include "sim/hierarchy.hpp"

namespace lruleak::sim {

/**
 * A cache hierarchy whose L1D is a PL cache.
 */
class PlCache
{
  public:
    /**
     * @param mode PlMode::Original reproduces the vulnerable design;
     *        PlMode::FixedLruLock adds the paper's blue-box fix.
     * @param config base hierarchy geometry (the L1 PL mode is overriden)
     */
    explicit PlCache(PlMode mode, HierarchyConfig config = {})
        : hierarchy_((config.l1_pl_mode = mode, config))
    {}

    /** Load @p ref and set its lock bit (fetching it if absent). */
    HierarchyAccessResult
    lock(const MemRef &ref)
    {
        return hierarchy_.access(ref, LockReq::Lock);
    }

    /** Load @p ref and clear its lock bit. */
    HierarchyAccessResult
    unlock(const MemRef &ref)
    {
        return hierarchy_.access(ref, LockReq::Unlock);
    }

    /** Plain access through the PL L1. */
    HierarchyAccessResult
    access(const MemRef &ref)
    {
        return hierarchy_.access(ref);
    }

    /** Is the line currently locked in L1? */
    bool
    isLocked(const MemRef &ref) const
    {
        const auto &l1 = hierarchy_.l1();
        const auto set = l1.layout().setIndex(ref.vaddr);
        const auto tag = l1.layout().tag(ref.paddr);
        if (auto way = l1.cacheSet(set).probe(tag))
            return l1.cacheSet(set).line(*way).locked;
        return false;
    }

    PlMode mode() const { return hierarchy_.l1().plMode(); }
    CacheHierarchy &hierarchy() { return hierarchy_; }
    const CacheHierarchy &hierarchy() const { return hierarchy_; }

  private:
    CacheHierarchy hierarchy_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_PLCACHE_HPP
