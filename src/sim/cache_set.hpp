/**
 * @file
 * One set of a set-associative cache: tags, valid/lock bits, utags, and
 * the per-set replacement state machine.
 */

#ifndef LRULEAK_SIM_CACHE_SET_HPP
#define LRULEAK_SIM_CACHE_SET_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/address.hpp"
#include "sim/replacement.hpp"

namespace lruleak::sim {

/** Lock request carried by an access (PL cache, Section IX-B). */
enum class LockReq
{
    None,   //!< plain load/store
    Lock,   //!< set the lock bit of the accessed line
    Unlock, //!< clear the lock bit of the accessed line
};

/** How lock bits interact with the replacement state. */
enum class PlMode
{
    Disabled,     //!< lock bits ignored entirely (plain cache)
    Original,     //!< paper Fig. 10 white boxes: locked lines are never
                  //!< evicted but still update the LRU state on access
    FixedLruLock, //!< + blue boxes: locked lines neither update the LRU
                  //!< state nor participate in victim selection
};

/** Per-way metadata. */
struct LineState
{
    Addr tag = 0;               //!< physical tag
    bool valid = false;
    bool locked = false;        //!< PL-cache lock bit
    std::uint16_t utag = 0;     //!< AMD linear-address micro-tag
    ThreadId filled_by = 0;     //!< thread that installed the line
};

/** Outcome of a set access. */
struct SetAccessResult
{
    bool hit = false;
    std::uint32_t way = ReplacementPolicy::kNoVictim;
    bool filled = false;          //!< a new line was installed
    bool bypassed = false;        //!< miss on a fully/victim-locked set,
                                  //!< handled uncached (PL cache)
    bool utag_mismatch = false;   //!< hit whose utag did not match (AMD)
    std::optional<Addr> evicted_tag; //!< tag displaced by the fill
};

/**
 * A single cache set.  The cache decomposes addresses; the set works in
 * tag space only.
 */
class CacheSet
{
  public:
    CacheSet(std::uint32_t ways, std::unique_ptr<ReplacementPolicy> policy,
             PlMode pl_mode = PlMode::Disabled);

    CacheSet(const CacheSet &other);
    CacheSet &operator=(const CacheSet &other) = delete;
    CacheSet(CacheSet &&) noexcept = default;
    CacheSet &operator=(CacheSet &&) noexcept = default;

    /** Find the way holding @p tag without touching any state. */
    std::optional<std::uint32_t> probe(Addr tag) const;

    /**
     * Perform an access: hit updates replacement state (subject to the
     * PL mode); miss selects a victim, evicts it and installs @p tag.
     *
     * @param tag physical tag being accessed
     * @param utag linear-address micro-tag of the access (AMD model);
     *        pass 0 when the way predictor is disabled
     * @param check_utag when true, a tag hit whose stored utag differs
     *        from @p utag is flagged (and the stored utag is retrained)
     * @param lock_req PL-cache lock/unlock request
     * @param thread issuing thread (recorded on fills)
     */
    SetAccessResult access(Addr tag, std::uint16_t utag, bool check_utag,
                           LockReq lock_req, ThreadId thread);

    /** Invalidate the line holding @p tag (clflush). @return true if hit */
    bool invalidate(Addr tag);

    /**
     * Install @p tag without it being a demand access (prefetch fill).
     * Updates the replacement state like any fill.  No-op if present.
     */
    SetAccessResult prefetchFill(Addr tag, std::uint16_t utag,
                                 ThreadId thread);

    const LineState &line(std::uint32_t way) const { return lines_[way]; }
    const ReplacementPolicy &policy() const { return *policy_; }
    ReplacementPolicy &policy() { return *policy_; }
    std::uint32_t ways() const { return ways_; }
    PlMode plMode() const { return pl_mode_; }
    void setPlMode(PlMode mode) { pl_mode_ = mode; }

    /** Number of valid lines currently in the set. */
    std::uint32_t occupancy() const;

    /** Clear all lines and the replacement state. */
    void reset();

  private:
    std::vector<bool> lockedMask() const;

    std::uint32_t ways_;
    PlMode pl_mode_;
    std::vector<LineState> lines_;
    std::unique_ptr<ReplacementPolicy> policy_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_CACHE_SET_HPP
