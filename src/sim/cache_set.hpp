/**
 * @file
 * One set of a set-associative cache: tags, valid/lock bits, utags, and
 * the per-set replacement state machine.
 *
 * Value-semantic redesign: the replacement state is a `ReplState` stored
 * inline (no heap policy object) and the per-way metadata is kept as
 * structure-of-arrays — the tag array is contiguous (one cache line for
 * an 8-way set) and the valid/lock bits are bitmasks, so the probe loop
 * in the hot path touches a fraction of the memory the old
 * array-of-LineState layout did.  CacheSet is cheaply copyable and
 * copy-assignable.
 *
 * Besides the per-access entry point, `accessBatch` replays a whole tag
 * sequence with the policy dispatch hoisted out of the loop — the hot
 * path Monte-Carlo experiments and `lruleak bench` replay sequences
 * through.
 */

#ifndef LRULEAK_SIM_CACHE_SET_HPP
#define LRULEAK_SIM_CACHE_SET_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sim/address.hpp"
#include "sim/replacement.hpp"
#include "sim/write_policy.hpp"

namespace lruleak::sim {

/** Lock request carried by an access (PL cache, Section IX-B). */
enum class LockReq
{
    None,   //!< plain load/store
    Lock,   //!< set the lock bit of the accessed line
    Unlock, //!< clear the lock bit of the accessed line
};

/** How lock bits interact with the replacement state. */
enum class PlMode
{
    Disabled,     //!< lock bits ignored entirely (plain cache)
    Original,     //!< paper Fig. 10 white boxes: locked lines are never
                  //!< evicted but still update the LRU state on access
    FixedLruLock, //!< + blue boxes: locked lines neither update the LRU
                  //!< state nor participate in victim selection
};

/** Per-way metadata view (assembled from the SoA storage on demand). */
struct LineState
{
    Addr tag = 0;               //!< physical tag
    bool valid = false;
    bool locked = false;        //!< PL-cache lock bit
    std::uint16_t utag = 0;     //!< AMD linear-address micro-tag
    ThreadId filled_by = 0;     //!< thread that installed the line
    bool dirty = false;         //!< modified since fill (write-back)
};

/**
 * Outcome of a set access.  A compact 16-byte POD: the flags share one
 * byte and the displaced tag is a plain field guarded by @c evicted —
 * batch loops write one of these per access, so the layout is part of
 * the hot path.
 */
struct SetAccessResult
{
    std::uint32_t way = kNoWay;
    bool hit : 1 = false;
    bool filled : 1 = false;      //!< a new line was installed
    bool bypassed : 1 = false;    //!< miss on a fully/victim-locked set,
                                  //!< handled uncached (PL cache)
    bool utag_mismatch : 1 = false; //!< hit whose utag did not match (AMD)
    bool evicted : 1 = false;     //!< @c evicted_tag holds a displaced tag
    bool dirty_writeback : 1 = false; //!< the displaced line was dirty:
                                  //!< its data must be written back
    bool write_no_alloc : 1 = false; //!< store miss under
                                  //!< no-write-allocate: nothing installed
    Addr evicted_tag = 0;         //!< tag displaced by the fill (iff
                                  //!< @c evicted)

    /** Convenience view of the displaced tag. */
    std::optional<Addr>
    evictedTag() const
    {
        return evicted ? std::optional<Addr>(evicted_tag) : std::nullopt;
    }
};

/** Aggregate outcome of a stats-only batch replay. */
struct SetBatchStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t fills = 0;     //!< misses that installed a line
    std::uint64_t evictions = 0; //!< fills that displaced a valid line
    std::uint64_t dirty_writebacks = 0; //!< evictions of a dirty line
};

/** Outcome of removing a line (clflush / back-invalidation). */
struct SetFlushResult
{
    bool present = false; //!< the line was held by this set
    bool dirty = false;   //!< ... and was dirty: a write-back is due
};

/** Owner sentinel: the line belongs to no protection domain. */
inline constexpr std::uint32_t kNoOwner = 0xffff'ffffu;

/**
 * What one SHARP access did beyond the plain access outcome.  The cache
 * folds these into its per-domain alarm/forced/denial counters.
 */
struct SharpSetEvents
{
    std::uint32_t alarms = 0; //!< refusals: the replacement-chosen victim
                              //!< was foreign-owned (includes forced)
    bool forced = false;      //!< every way foreign-owned: the proposed
                              //!< victim was evicted anyway
    bool denied = false;      //!< forced eviction refused (requester
                              //!< flagged): the fill was bypassed
};

/**
 * A single cache set.  The cache decomposes addresses; the set works in
 * tag space only.  Value type: copy, assign and move freely.
 */
class CacheSet
{
  public:
    CacheSet(std::uint32_t ways, ReplState state,
             PlMode pl_mode = PlMode::Disabled,
             WriteHitPolicy write_hit = WriteHitPolicy::WriteBack,
             WriteMissPolicy write_miss = WriteMissPolicy::WriteAllocate);

    /**
     * Legacy-compatible constructor: snapshots the virtual policy's
     * state into the value core.  Prefer the ReplState overload.
     */
    CacheSet(std::uint32_t ways, std::unique_ptr<ReplacementPolicy> policy,
             PlMode pl_mode = PlMode::Disabled);

    CacheSet(const CacheSet &) = default;
    CacheSet &operator=(const CacheSet &) = default;
    CacheSet(CacheSet &&) noexcept = default;
    CacheSet &operator=(CacheSet &&) noexcept = default;

    /** Find the way holding @p tag without touching any state. */
    std::optional<std::uint32_t> probe(Addr tag) const;

    /**
     * Perform an access: hit updates replacement state (subject to the
     * PL mode); miss selects a victim, evicts it and installs @p tag.
     *
     * @param tag physical tag being accessed
     * @param utag linear-address micro-tag of the access (AMD model);
     *        pass 0 when the way predictor is disabled
     * @param check_utag when true, a tag hit whose stored utag differs
     *        from @p utag is flagged (and the stored utag is retrained)
     * @param lock_req PL-cache lock/unlock request
     * @param thread issuing thread (recorded on fills)
     * @param is_write store access: applies the set's write policies
     *        (dirty marking, no-allocate bypass)
     */
    SetAccessResult access(Addr tag, std::uint16_t utag, bool check_utag,
                           LockReq lock_req, ThreadId thread,
                           bool is_write = false);

    /**
     * SHARP-protected access (SecureMode::Sharp).  Hits behave exactly
     * like plain access() (and re-stamp the line's owner to @p domain:
     * a cross-domain hit transfers ownership to the accessor).  On a
     * miss, the replacement-chosen victim is previewed first: if it is
     * owned by another domain the eviction is refused — @p ev.alarms
     * increments and the victim is re-selected among ways that are not
     * foreign-owned.  When *every* way is foreign-owned, the original
     * victim is evicted anyway (`ev.forced`), unless @p flagged is set,
     * in which case the fill is denied outright (`ev.denied`,
     * result.bypassed) and no state changes at all.
     *
     * With a single accessing domain no way is ever foreign, so the
     * replacement-state call sequence is identical to access() — plain
     * and SHARP traces are bit-identical in that regime.
     *
     * No utag / way-predictor or PL-lock modelling on this path (the
     * cache rejects those combinations at construction).
     */
    SetAccessResult accessSharp(Addr tag, ThreadId thread, bool is_write,
                                std::uint32_t domain, bool flagged,
                                SharpSetEvents &ev);

    /** Owning domain of @p way (kNoOwner when unowned or invalid). */
    std::uint32_t owner(std::uint32_t way) const { return owners_[way]; }

    /**
     * Drop @p domain's ownership of the line holding @p tag, if it is
     * present *and* currently owned by exactly that domain (a stale
     * release after an ownership transfer is a no-op).  How the
     * hierarchy reflects "the last private copy left this core" down
     * into the shared level.  @return true iff ownership was cleared.
     */
    bool releaseOwner(Addr tag, std::uint32_t domain);

    /**
     * Replay a whole tag sequence (plain loads: no utag checking, no
     * lock requests), writing one result per tag into @p results.  The
     * policy dispatch happens once for the whole batch, so the inner
     * loop is specialised per concrete replacement state — the fast
     * path Monte-Carlo experiments replay sequences through.
     *
     * @pre results.size() >= tags.size()
     */
    void accessBatch(std::span<const Addr> tags,
                     std::span<SetAccessResult> results,
                     ThreadId thread = 0);

    /**
     * Read/write flavour: @p writes runs parallel to @p tags (non-zero
     * = store).  Same specialised inner loop, instantiated with the
     * write path enabled.
     *
     * @pre writes.size() >= tags.size()
     */
    void accessBatch(std::span<const Addr> tags,
                     std::span<const std::uint8_t> writes,
                     std::span<SetAccessResult> results,
                     ThreadId thread = 0);

    /**
     * Stats-only flavour of accessBatch for callers that replay a
     * sequence purely for its state effect (Monte-Carlo warm-ups and
     * measured loops, channel init/decode walks): no per-access results
     * are materialised, only the aggregate tallies.
     */
    SetBatchStats replayBatch(std::span<const Addr> tags,
                              ThreadId thread = 0);

    /** Read/write flavour of the stats-only replay. */
    SetBatchStats replayBatch(std::span<const Addr> tags,
                              std::span<const std::uint8_t> writes,
                              ThreadId thread = 0);

    /** Invalidate the line holding @p tag (clflush). @return true if hit */
    bool invalidate(Addr tag);

    /**
     * Invalidate the line holding @p tag and report whether its data
     * was dirty (the caller owes a write-back in that case).
     */
    SetFlushResult flushLine(Addr tag);

    /**
     * Mark the line holding @p tag dirty without touching the
     * replacement state — how a write-back from the level above lands
     * here.  @return true iff the line is present.
     */
    bool markDirty(Addr tag);

    /**
     * Install @p tag without it being a demand access (prefetch fill).
     * Updates the replacement state like any fill.  No-op if present.
     */
    SetAccessResult prefetchFill(Addr tag, std::uint16_t utag,
                                 ThreadId thread);

    /** Metadata of one way (assembled view). */
    LineState
    line(std::uint32_t way) const
    {
        return LineState{tags_[way],
                         ((valid_mask_ >> way) & 1u) != 0,
                         ((locked_mask_ >> way) & 1u) != 0,
                         utags_[way], filled_by_[way],
                         ((dirty_mask_ >> way) & 1u) != 0};
    }

    /** The value-semantic replacement state of this set. */
    const ReplState &repl() const { return repl_; }
    ReplState &repl() { return repl_; }

    std::uint32_t ways() const { return ways_; }

    /**
     * Valid bits as a mask (bit w = way w holds a line).  Lets audit
     * walks (the multi-core inclusion checker) skip invalid ways without
     * assembling a LineState per way.
     */
    std::uint32_t validMask() const { return valid_mask_; }

    /** Dirty bits as a mask (always a subset of validMask()). */
    std::uint32_t dirtyMask() const { return dirty_mask_; }

    PlMode plMode() const { return pl_mode_; }
    void setPlMode(PlMode mode) { pl_mode_ = mode; }

    WriteHitPolicy writeHitPolicy() const { return write_hit_; }
    WriteMissPolicy writeMissPolicy() const { return write_miss_; }

    /** Number of valid lines currently in the set. */
    std::uint32_t occupancy() const;

    /** Clear all lines and the replacement state. */
    void reset();

  private:
    /** Bitmask with one bit per way. */
    std::uint32_t
    fullMask() const
    {
        return ways_ >= 32 ? ~0u : (1u << ways_) - 1;
    }

    void fill(std::uint32_t way, Addr tag, bool lock,
              std::uint16_t utag, ThreadId thread, bool dirty);

    std::uint32_t ways_;
    PlMode pl_mode_;
    WriteHitPolicy write_hit_;
    WriteMissPolicy write_miss_;
    std::uint32_t valid_mask_ = 0;
    std::uint32_t locked_mask_ = 0;   //!< subset of valid_mask_
    std::uint32_t dirty_mask_ = 0;    //!< subset of valid_mask_
    std::vector<Addr> tags_;
    std::vector<std::uint16_t> utags_;
    std::vector<ThreadId> filled_by_;
    std::vector<std::uint32_t> owners_; //!< SHARP owner per way (kNoOwner
                                        //!< unless stamped by accessSharp)
    ReplState repl_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_CACHE_SET_HPP
