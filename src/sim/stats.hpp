/**
 * @file
 * Access/hit/miss counters, overall and per hardware thread.
 *
 * These mirror what the paper reads out of `perf` hardware counters for
 * Tables VI and VII (L1D / L2 / LLC miss rates of the sender process).
 */

#ifndef LRULEAK_SIM_STATS_HPP
#define LRULEAK_SIM_STATS_HPP

#include <cstdint>
#include <map>

#include "sim/address.hpp"

namespace lruleak::sim {

/** Hit/miss tallies for one cache level (one owner). */
struct LevelStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0; //!< dirty lines drained from this level
                                  //!< (eviction, flush or write-through)

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                        : 0.0;
    }

    void
    record(bool hit)
    {
        ++accesses;
        if (hit)
            ++hits;
        else
            ++misses;
    }

    LevelStats &
    operator+=(const LevelStats &other)
    {
        accesses += other.accesses;
        hits += other.hits;
        misses += other.misses;
        writebacks += other.writebacks;
        return *this;
    }
};

/**
 * Per-thread counters for one cache level, emulating per-process
 * performance counters.  Thread id 0 is conventionally the sender/victim
 * and 1 the receiver/attacker in the channel experiments.
 */
class PerfCounters
{
  public:
    void
    record(ThreadId thread, bool hit)
    {
        total_.record(hit);
        per_thread_[thread].record(hit);
    }

    /** Bulk tally for batched accesses: one map lookup per batch run. */
    void
    recordMany(ThreadId thread, std::uint64_t hits, std::uint64_t accesses)
    {
        total_.accesses += accesses;
        total_.hits += hits;
        total_.misses += accesses - hits;
        LevelStats &s = per_thread_[thread];
        s.accesses += accesses;
        s.hits += hits;
        s.misses += accesses - hits;
    }

    /** One dirty line drained (evicted, flushed or written through). */
    void
    recordWriteback(ThreadId thread)
    {
        ++total_.writebacks;
        ++per_thread_[thread].writebacks;
    }

    const LevelStats &total() const { return total_; }

    /** Stats for one thread (zero-initialised if it never accessed). */
    LevelStats
    forThread(ThreadId thread) const
    {
        auto it = per_thread_.find(thread);
        return it == per_thread_.end() ? LevelStats{} : it->second;
    }

    void
    reset()
    {
        total_ = LevelStats{};
        per_thread_.clear();
    }

  private:
    LevelStats total_;
    std::map<ThreadId, LevelStats> per_thread_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_STATS_HPP
