/**
 * @file
 * Access/hit/miss counters, overall and per hardware thread.
 *
 * These mirror what the paper reads out of `perf` hardware counters for
 * Tables VI and VII (L1D / L2 / LLC miss rates of the sender process).
 */

#ifndef LRULEAK_SIM_STATS_HPP
#define LRULEAK_SIM_STATS_HPP

#include <cstdint>
#include <vector>

#include "sim/address.hpp"

namespace lruleak::sim {

/** Hit/miss tallies for one cache level (one owner). */
struct LevelStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0; //!< dirty lines drained from this level
                                  //!< (eviction, flush or write-through)

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                        : 0.0;
    }

    void
    record(bool hit)
    {
        ++accesses;
        if (hit)
            ++hits;
        else
            ++misses;
    }

    LevelStats &
    operator+=(const LevelStats &other)
    {
        accesses += other.accesses;
        hits += other.hits;
        misses += other.misses;
        writebacks += other.writebacks;
        return *this;
    }
};

/**
 * Per-thread counters for one cache level, emulating per-process
 * performance counters.  Thread id 0 is conventionally the sender/victim
 * and 1 the receiver/attacker in the channel experiments.
 */
class PerfCounters
{
  public:
    void
    record(ThreadId thread, bool hit)
    {
        total_.record(hit);
        slot(thread).record(hit);
    }

    /** Bulk tally for batched accesses: one slot lookup per batch run. */
    void
    recordMany(ThreadId thread, std::uint64_t hits, std::uint64_t accesses)
    {
        total_.accesses += accesses;
        total_.hits += hits;
        total_.misses += accesses - hits;
        LevelStats &s = slot(thread);
        s.accesses += accesses;
        s.hits += hits;
        s.misses += accesses - hits;
    }

    /** One dirty line drained (evicted, flushed or written through). */
    void
    recordWriteback(ThreadId thread)
    {
        ++total_.writebacks;
        ++slot(thread).writebacks;
    }

    const LevelStats &total() const { return total_; }

    /** Stats for one thread (zero-initialised if it never accessed). */
    LevelStats
    forThread(ThreadId thread) const
    {
        for (const Entry &e : per_thread_)
            if (e.thread == thread)
                return e.stats;
        return LevelStats{};
    }

    void
    reset()
    {
        total_ = LevelStats{};
        per_thread_.clear();
        last_ = 0;
    }

  private:
    struct Entry
    {
        ThreadId thread = 0;
        LevelStats stats;
    };

    /**
     * A handful of distinct thread ids ever touch one cache (parties,
     * spies, kernel/background/noise ids), and accesses arrive in long
     * same-thread runs, so a memoized linear scan over a flat vector
     * beats the tree map this used to be — record() sat on the channel
     * hot path.
     */
    LevelStats &
    slot(ThreadId thread)
    {
        if (last_ < per_thread_.size() &&
            per_thread_[last_].thread == thread)
            return per_thread_[last_].stats;
        for (std::size_t i = 0; i < per_thread_.size(); ++i)
            if (per_thread_[i].thread == thread) {
                last_ = i;
                return per_thread_[i].stats;
            }
        last_ = per_thread_.size();
        per_thread_.push_back(Entry{thread, LevelStats{}});
        return per_thread_.back().stats;
    }

    LevelStats total_;
    std::vector<Entry> per_thread_;
    std::size_t last_ = 0;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_STATS_HPP
