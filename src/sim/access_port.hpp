/**
 * @file
 * Hierarchy-agnostic access interface.
 *
 * The execution engine runs thread programs against "whatever memory
 * system the scenario uses": the single-core CacheHierarchy (SMT and
 * time-sliced sharing) or the MultiCoreHierarchy (cross-core scenarios).
 * AccessPort is the narrow waist between the two: a demand access issued
 * from a core, a batched replay of a whole access sequence (the kernel
 * bursts of the time-sliced model), a topology-wide flush, and the
 * optional inclusion audit.  The two adapters below are pass-throughs —
 * they add no behaviour, only erase the concrete topology type — so a
 * scheduler ported from a concrete hierarchy to a port is access-for-
 * access identical.
 */

#ifndef LRULEAK_SIM_ACCESS_PORT_HPP
#define LRULEAK_SIM_ACCESS_PORT_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "sim/hierarchy.hpp"
#include "sim/multicore_hierarchy.hpp"

namespace lruleak::sim {

/**
 * Outcome of a port access: where the data came from, and how many
 * write-back transactions the access triggered along the way (dirty
 * victim evictions, write-through forwards, dirty back-invalidations).
 * The engine charges each transaction the uarch's write-back latency.
 */
struct PortAccess
{
    HitLevel level = HitLevel::Memory;
    std::uint32_t writebacks = 0;
};

/**
 * One memory system as seen by the execution engine: N cores issuing
 * demand accesses, each served at some HitLevel.
 */
class AccessPort
{
  public:
    virtual ~AccessPort() = default;

    /** Number of cores that can issue accesses ([0, cores()) are valid). */
    virtual std::uint32_t cores() const = 0;

    /** Demand access issued by @p core. */
    virtual PortAccess access(std::uint32_t core, const MemRef &ref,
                              LockReq lock_req = LockReq::None) = 0;

    /**
     * Replay a whole access sequence from @p core, recording the level
     * each access was served from (semantically one access() per ref).
     * @pre levels.size() >= refs.size()
     */
    virtual void accessBatch(std::uint32_t core, std::span<const MemRef> refs,
                             std::span<HitLevel> levels) = 0;

    /** Same, for callers that do not need the individual outcomes. */
    virtual void accessBatch(std::uint32_t core,
                             std::span<const MemRef> refs) = 0;

    /**
     * Batched demand run for the engine's AccessRun op: per-ref levels
     * recorded into @p levels, summed write-back transactions returned.
     * @pre levels.size() >= refs.size()
     */
    virtual std::uint64_t accessRun(std::uint32_t core,
                                    std::span<const MemRef> refs,
                                    std::span<HitLevel> levels) = 0;

    /**
     * clflush: remove the line from every cache of every core.  Reports
     * presence and whether any dropped copy was dirty (the flush then
     * stalls on the write-back — the `flush-dirty` channel observable).
     */
    virtual CacheFlushResult flush(const MemRef &ref) = 0;

    /**
     * Walk the topology's inclusion invariant, if it has one.  Returns a
     * description of the first violation, nullopt when the invariant
     * holds or the topology has nothing to audit (single-core).
     */
    virtual std::optional<std::string>
    auditInclusion() const
    {
        return std::nullopt;
    }
};

/**
 * The single-core CacheHierarchy as an AccessPort (one core; the core
 * argument is ignored).  Lock requests reach the PL-cache model.
 */
class SingleCorePort final : public AccessPort
{
  public:
    explicit SingleCorePort(CacheHierarchy &hierarchy)
        : hierarchy_(hierarchy)
    {}

    std::uint32_t cores() const override { return 1; }

    PortAccess
    access(std::uint32_t, const MemRef &ref,
           LockReq lock_req = LockReq::None) override
    {
        const auto res = hierarchy_.access(ref, lock_req);
        return PortAccess{res.level, res.writebacks};
    }

    void
    accessBatch(std::uint32_t, std::span<const MemRef> refs,
                std::span<HitLevel> levels) override
    {
        hierarchy_.accessBatch(refs, levels);
    }

    void
    accessBatch(std::uint32_t, std::span<const MemRef> refs) override
    {
        hierarchy_.accessBatch(refs);
    }

    std::uint64_t
    accessRun(std::uint32_t, std::span<const MemRef> refs,
              std::span<HitLevel> levels) override
    {
        return hierarchy_.accessRun(refs, levels);
    }

    CacheFlushResult
    flush(const MemRef &ref) override
    {
        return hierarchy_.flush(ref);
    }

    CacheHierarchy &hierarchy() { return hierarchy_; }

  private:
    CacheHierarchy &hierarchy_;
};

/**
 * The MultiCoreHierarchy as an AccessPort.  Lock requests are ignored
 * (PL locking is a single-core-only feature); the inclusion audit is
 * live.
 */
class MultiCorePort final : public AccessPort
{
  public:
    explicit MultiCorePort(MultiCoreHierarchy &hierarchy)
        : hierarchy_(hierarchy)
    {}

    std::uint32_t cores() const override { return hierarchy_.cores(); }

    PortAccess
    access(std::uint32_t core, const MemRef &ref,
           LockReq = LockReq::None) override
    {
        const auto res = hierarchy_.access(core, ref);
        return PortAccess{res.level, res.writebacks};
    }

    void
    accessBatch(std::uint32_t core, std::span<const MemRef> refs,
                std::span<HitLevel> levels) override
    {
        hierarchy_.accessBatch(core, refs, levels);
    }

    void
    accessBatch(std::uint32_t core, std::span<const MemRef> refs) override
    {
        hierarchy_.accessBatch(core, refs);
    }

    std::uint64_t
    accessRun(std::uint32_t core, std::span<const MemRef> refs,
              std::span<HitLevel> levels) override
    {
        return hierarchy_.accessRun(core, refs, levels);
    }

    CacheFlushResult
    flush(const MemRef &ref) override
    {
        return hierarchy_.flush(ref);
    }

    std::optional<std::string>
    auditInclusion() const override
    {
        return hierarchy_.auditInclusion();
    }

    MultiCoreHierarchy &hierarchy() { return hierarchy_; }

  private:
    MultiCoreHierarchy &hierarchy_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_ACCESS_PORT_HPP
