/**
 * @file
 * Cache level implementation.
 */

#include "sim/cache.hpp"

#include <algorithm>

#include "sim/way_predictor.hpp"

namespace lruleak::sim {

Cache::Cache(const CacheConfig &config, PlMode pl_mode, bool way_predictor)
    : config_(config), layout_(config.line_size, config.numSets()),
      pl_mode_(pl_mode), way_predictor_(way_predictor),
      fill_rng_(config.seed ^ 0xf177ed5ecULL)
{
    config_.validate();

    // DAWG partitions the ways of every address set into secure_domains
    // independent slices, each with its own replacement state.
    std::uint32_t per_set = 1;
    std::uint32_t ways = config_.ways;
    if (config_.secure == SecureMode::Dawg) {
        if (config_.secure_domains == 0 ||
            config_.ways % config_.secure_domains != 0)
            throw std::invalid_argument(config_.name +
                ": DAWG domains must evenly divide the ways");
        per_set = config_.secure_domains;
        ways = config_.ways / config_.secure_domains;
    }
    if (config_.secure == SecureMode::RandomFill &&
        config_.fill_window == 0)
        throw std::invalid_argument(config_.name +
            ": RandomFill window must be non-zero");
    if (config_.secure == SecureMode::Sharp) {
        if (config_.secure_domains == 0)
            throw std::invalid_argument(config_.name +
                ": SHARP needs at least one protection domain");
        if (way_predictor_ || pl_mode_ != PlMode::Disabled)
            throw std::invalid_argument(config_.name +
                ": SHARP composes with neither the way predictor nor "
                "PL lock bits");
        sharp_alarms_.assign(config_.secure_domains, 0);
        sharp_forced_.assign(config_.secure_domains, 0);
        sharp_denied_.assign(config_.secure_domains, 0);
    }

    sets_.reserve(static_cast<std::size_t>(layout_.numSets()) * per_set);
    for (std::uint32_t s = 0; s < layout_.numSets() * per_set; ++s) {
        // Give each Random-policy set its own derived seed so sets do not
        // evict in lockstep.
        sets_.emplace_back(ways,
                           ReplState::make(config_.policy, ways,
                                           config_.seed + s),
                           pl_mode, config_.write_hit, config_.write_miss);
    }
}

SetAccessResult
Cache::randomFill(const MemRef &ref, std::uint32_t &fill_set)
{
    // Deterministic random neighbour within +-fill_window lines of the
    // missing address (never the missing line itself).  Line-base
    // arithmetic wraps mod 2^64, which keeps the draw well-defined near
    // address zero.
    const std::int64_t offset =
        fill_rng_.range(1, config_.fill_window) *
        (fill_rng_.chance(0.5) ? 1 : -1);
    const Addr delta = static_cast<Addr>(
        offset * static_cast<std::int64_t>(config_.line_size));
    const Addr line_mask = ~static_cast<Addr>(config_.line_size - 1);
    const Addr fill_vaddr = (ref.vaddr & line_mask) + delta;
    const Addr fill_paddr = (ref.paddr & line_mask) + delta;

    fill_set = layout_.setIndex(fill_vaddr);
    const std::uint16_t utag =
        way_predictor_ ? WayPredictor::utag(fill_vaddr) : 0;
    return routeSet(fill_set, ref.thread)
        .prefetchFill(layout_.tag(fill_paddr), utag, ref.thread);
}

CacheAccessResult
Cache::accessSharpImpl(std::uint32_t domain, const MemRef &ref)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    domain %= config_.secure_domains;

    // A domain whose alarm count already crossed the threshold gets its
    // forced evictions denied outright (threshold 0 = pure detector).
    const bool flagged =
        config_.sharp_alarm_threshold > 0 &&
        sharp_alarms_[domain] >= config_.sharp_alarm_threshold;

    SharpSetEvents ev;
    const SetAccessResult sr = sets_[set].accessSharp(
        tag, ref.thread, ref.is_write, domain, flagged, ev);
    sharp_alarms_[domain] += ev.alarms;
    sharp_forced_[domain] += ev.forced ? 1 : 0;
    sharp_denied_[domain] += ev.denied ? 1 : 0;

    CacheAccessResult res;
    res.hit = sr.hit;
    res.set = set;
    res.way = sr.way;
    res.filled = sr.filled;
    res.bypassed = sr.bypassed;
    res.dirty_writeback = sr.dirty_writeback;
    res.write_no_alloc = sr.write_no_alloc;
    if (sr.evicted)
        res.evicted_line = layout_.compose(sr.evicted_tag, set);

    counters_.record(ref.thread, sr.hit);
    if (sr.dirty_writeback)
        counters_.recordWriteback(ref.thread);
    return res;
}

CacheAccessResult
Cache::accessFrom(std::uint32_t domain, const MemRef &ref, LockReq lock_req)
{
    if (config_.secure == SecureMode::Sharp)
        return accessSharpImpl(domain, ref);
    return access(ref, lock_req);
}

void
Cache::releaseOwner(std::uint32_t domain, Addr line_base)
{
    if (config_.secure != SecureMode::Sharp)
        return;
    const MemRef ref = MemRef::load(line_base);
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    sets_[set].releaseOwner(layout_.tag(ref.paddr),
                            domain % config_.secure_domains);
}

std::uint64_t
Cache::sharpAlarmsTotal() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t v : sharp_alarms_)
        total += v;
    return total;
}

std::uint64_t
Cache::sharpForcedTotal() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t v : sharp_forced_)
        total += v;
    return total;
}

std::uint64_t
Cache::sharpDeniedTotal() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t v : sharp_denied_)
        total += v;
    return total;
}

CacheAccessResult
Cache::access(const MemRef &ref, LockReq lock_req)
{
    if (config_.secure == SecureMode::Sharp) {
        // No explicit domain: fall back to the thread id, which matches
        // the core on single-core topologies (and keeps standalone
        // SHARP caches usable without a hierarchy).
        return accessSharpImpl(
            static_cast<std::uint32_t>(ref.thread), ref);
    }

    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    const std::uint16_t utag =
        way_predictor_ ? WayPredictor::utag(ref.vaddr) : 0;

    CacheSet &target = routeSet(set, ref.thread);

    if (config_.secure == SecureMode::RandomFill && !target.probe(tag)) {
        // Demand miss: serve it uncached and install a random
        // neighbourhood line instead, decoupling the fill address from
        // the access address.
        std::uint32_t fill_set = 0;
        const SetAccessResult fr = randomFill(ref, fill_set);

        CacheAccessResult res;
        res.set = set;
        res.bypassed = true;
        res.write_no_alloc = ref.is_write;
        res.dirty_writeback = fr.dirty_writeback;
        if (fr.evicted)
            res.evicted_line = layout_.compose(fr.evicted_tag, fill_set);

        counters_.record(ref.thread, false);
        if (fr.dirty_writeback)
            counters_.recordWriteback(ref.thread);
        return res;
    }

    SetAccessResult sr = target.access(tag, utag, way_predictor_,
                                       lock_req, ref.thread,
                                       ref.is_write);

    CacheAccessResult res;
    res.hit = sr.hit;
    res.set = set;
    res.way = sr.way;
    res.filled = sr.filled;
    res.bypassed = sr.bypassed;
    res.utag_mismatch = sr.utag_mismatch;
    res.dirty_writeback = sr.dirty_writeback;
    res.write_no_alloc = sr.write_no_alloc;
    if (sr.evicted)
        res.evicted_line = layout_.compose(sr.evicted_tag, set);

    counters_.record(ref.thread, sr.hit);
    if (sr.dirty_writeback)
        counters_.recordWriteback(ref.thread);
    return res;
}

void
Cache::accessBatch(std::span<const MemRef> refs,
                   std::span<CacheAccessResult> results)
{
    // Secure modes take the general per-access path: DAWG routes by
    // thread and RandomFill redirects fills, neither of which the
    // single-set fast loop models.
    if (config_.secure != SecureMode::None) {
        for (std::size_t i = 0; i < refs.size(); ++i)
            results[i] = access(refs[i]);
        return;
    }

    // Per-thread counter tallies are flushed once per thread run instead
    // of per access (batches are almost always single-thread).
    ThreadId run_thread = refs.empty() ? 0 : refs[0].thread;
    std::uint64_t run_hits = 0;
    std::uint64_t run_accesses = 0;

    for (std::size_t i = 0; i < refs.size(); ++i) {
        const MemRef &ref = refs[i];
        const std::uint32_t set = layout_.setIndex(ref.vaddr);
        const Addr tag = layout_.tag(ref.paddr);
        const std::uint16_t utag =
            way_predictor_ ? WayPredictor::utag(ref.vaddr) : 0;

        SetAccessResult sr = sets_[set].access(tag, utag, way_predictor_,
                                               LockReq::None, ref.thread,
                                               ref.is_write);

        CacheAccessResult &res = results[i];
        res = CacheAccessResult{};
        res.hit = sr.hit;
        res.set = set;
        res.way = sr.way;
        res.filled = sr.filled;
        res.bypassed = sr.bypassed;
        res.utag_mismatch = sr.utag_mismatch;
        res.dirty_writeback = sr.dirty_writeback;
        res.write_no_alloc = sr.write_no_alloc;
        if (sr.evicted)
            res.evicted_line = layout_.compose(sr.evicted_tag, set);

        if (sr.dirty_writeback)
            counters_.recordWriteback(ref.thread);
        if (ref.thread != run_thread) {
            counters_.recordMany(run_thread, run_hits, run_accesses);
            run_thread = ref.thread;
            run_hits = 0;
            run_accesses = 0;
        }
        ++run_accesses;
        run_hits += sr.hit ? 1 : 0;
    }
    if (run_accesses > 0)
        counters_.recordMany(run_thread, run_hits, run_accesses);
}

CacheAccessResult
Cache::prefetch(const MemRef &ref)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    const std::uint16_t utag =
        way_predictor_ ? WayPredictor::utag(ref.vaddr) : 0;

    SetAccessResult sr =
        routeSet(set, ref.thread).prefetchFill(tag, utag, ref.thread);

    CacheAccessResult res;
    res.hit = sr.hit;
    res.set = set;
    res.way = sr.way;
    res.filled = sr.filled;
    if (sr.evicted)
        res.evicted_line = layout_.compose(sr.evicted_tag, set);
    return res;
}

bool
Cache::contains(const MemRef &ref) const
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    return routeSet(set, ref.thread)
        .probe(layout_.tag(ref.paddr))
        .has_value();
}

CacheFlushResult
Cache::flush(const MemRef &ref)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);

    // Coherence reaches across DAWG partitions even though visibility
    // does not: clflush and back-invalidations must remove the line no
    // matter which domain installed it.
    if (config_.secure == SecureMode::Dawg) {
        for (std::uint32_t d = 0; d < config_.secure_domains; ++d) {
            const std::size_t idx =
                static_cast<std::size_t>(set) * config_.secure_domains + d;
            const SetFlushResult sr = sets_[idx].flushLine(tag);
            if (sr.present) {
                if (sr.dirty)
                    counters_.recordWriteback(ref.thread);
                return CacheFlushResult{sr.present, sr.dirty};
            }
        }
        return CacheFlushResult{};
    }

    const SetFlushResult sr = sets_[set].flushLine(tag);
    if (sr.dirty)
        counters_.recordWriteback(ref.thread);
    return CacheFlushResult{sr.present, sr.dirty};
}

bool
Cache::markDirtyLine(Addr line_base)
{
    const MemRef ref = MemRef::load(line_base);
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);

    if (config_.secure == SecureMode::Dawg) {
        for (std::uint32_t d = 0; d < config_.secure_domains; ++d) {
            const std::size_t idx =
                static_cast<std::size_t>(set) * config_.secure_domains + d;
            if (sets_[idx].markDirty(tag))
                return true;
        }
        return false;
    }

    return sets_[set].markDirty(tag);
}

void
Cache::reset()
{
    for (auto &set : sets_)
        set.reset();
    counters_.reset();
    fill_rng_ = Xoshiro256(config_.seed ^ 0xf177ed5ecULL);
    std::fill(sharp_alarms_.begin(), sharp_alarms_.end(), 0);
    std::fill(sharp_forced_.begin(), sharp_forced_.end(), 0);
    std::fill(sharp_denied_.begin(), sharp_denied_.end(), 0);
}

void
Cache::setPlMode(PlMode mode)
{
    pl_mode_ = mode;
    for (auto &set : sets_)
        set.setPlMode(mode);
}

} // namespace lruleak::sim
