/**
 * @file
 * Cache level implementation.
 */

#include "sim/cache.hpp"

#include "sim/way_predictor.hpp"

namespace lruleak::sim {

Cache::Cache(const CacheConfig &config, PlMode pl_mode, bool way_predictor)
    : config_(config), layout_(config.line_size, config.numSets()),
      pl_mode_(pl_mode), way_predictor_(way_predictor)
{
    config_.validate();
    sets_.reserve(layout_.numSets());
    for (std::uint32_t s = 0; s < layout_.numSets(); ++s) {
        // Give each Random-policy set its own derived seed so sets do not
        // evict in lockstep.
        sets_.emplace_back(config_.ways,
                           ReplState::make(config_.policy, config_.ways,
                                           config_.seed + s),
                           pl_mode, config_.write_hit, config_.write_miss);
    }
}

CacheAccessResult
Cache::access(const MemRef &ref, LockReq lock_req)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    const std::uint16_t utag =
        way_predictor_ ? WayPredictor::utag(ref.vaddr) : 0;

    SetAccessResult sr = sets_[set].access(tag, utag, way_predictor_,
                                           lock_req, ref.thread,
                                           ref.is_write);

    CacheAccessResult res;
    res.hit = sr.hit;
    res.set = set;
    res.way = sr.way;
    res.filled = sr.filled;
    res.bypassed = sr.bypassed;
    res.utag_mismatch = sr.utag_mismatch;
    res.dirty_writeback = sr.dirty_writeback;
    res.write_no_alloc = sr.write_no_alloc;
    if (sr.evicted)
        res.evicted_line = layout_.compose(sr.evicted_tag, set);

    counters_.record(ref.thread, sr.hit);
    if (sr.dirty_writeback)
        counters_.recordWriteback(ref.thread);
    return res;
}

void
Cache::accessBatch(std::span<const MemRef> refs,
                   std::span<CacheAccessResult> results)
{
    // Per-thread counter tallies are flushed once per thread run instead
    // of per access (batches are almost always single-thread).
    ThreadId run_thread = refs.empty() ? 0 : refs[0].thread;
    std::uint64_t run_hits = 0;
    std::uint64_t run_accesses = 0;

    for (std::size_t i = 0; i < refs.size(); ++i) {
        const MemRef &ref = refs[i];
        const std::uint32_t set = layout_.setIndex(ref.vaddr);
        const Addr tag = layout_.tag(ref.paddr);
        const std::uint16_t utag =
            way_predictor_ ? WayPredictor::utag(ref.vaddr) : 0;

        SetAccessResult sr = sets_[set].access(tag, utag, way_predictor_,
                                               LockReq::None, ref.thread,
                                               ref.is_write);

        CacheAccessResult &res = results[i];
        res = CacheAccessResult{};
        res.hit = sr.hit;
        res.set = set;
        res.way = sr.way;
        res.filled = sr.filled;
        res.bypassed = sr.bypassed;
        res.utag_mismatch = sr.utag_mismatch;
        res.dirty_writeback = sr.dirty_writeback;
        res.write_no_alloc = sr.write_no_alloc;
        if (sr.evicted)
            res.evicted_line = layout_.compose(sr.evicted_tag, set);

        if (sr.dirty_writeback)
            counters_.recordWriteback(ref.thread);
        if (ref.thread != run_thread) {
            counters_.recordMany(run_thread, run_hits, run_accesses);
            run_thread = ref.thread;
            run_hits = 0;
            run_accesses = 0;
        }
        ++run_accesses;
        run_hits += sr.hit ? 1 : 0;
    }
    if (run_accesses > 0)
        counters_.recordMany(run_thread, run_hits, run_accesses);
}

CacheAccessResult
Cache::prefetch(const MemRef &ref)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    const std::uint16_t utag =
        way_predictor_ ? WayPredictor::utag(ref.vaddr) : 0;

    SetAccessResult sr = sets_[set].prefetchFill(tag, utag, ref.thread);

    CacheAccessResult res;
    res.hit = sr.hit;
    res.set = set;
    res.way = sr.way;
    res.filled = sr.filled;
    if (sr.evicted)
        res.evicted_line = layout_.compose(sr.evicted_tag, set);
    return res;
}

bool
Cache::contains(const MemRef &ref) const
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    return sets_[set].probe(layout_.tag(ref.paddr)).has_value();
}

CacheFlushResult
Cache::flush(const MemRef &ref)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const SetFlushResult sr = sets_[set].flushLine(layout_.tag(ref.paddr));
    if (sr.dirty)
        counters_.recordWriteback(ref.thread);
    return CacheFlushResult{sr.present, sr.dirty};
}

bool
Cache::markDirtyLine(Addr line_base)
{
    const MemRef ref = MemRef::load(line_base);
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    return sets_[set].markDirty(layout_.tag(ref.paddr));
}

void
Cache::reset()
{
    for (auto &set : sets_)
        set.reset();
    counters_.reset();
}

void
Cache::setPlMode(PlMode mode)
{
    pl_mode_ = mode;
    for (auto &set : sets_)
        set.setPlMode(mode);
}

} // namespace lruleak::sim
