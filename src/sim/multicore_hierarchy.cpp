/**
 * @file
 * MultiCoreHierarchy implementation.
 */

#include "sim/multicore_hierarchy.hpp"

#include <sstream>

namespace lruleak::sim {

namespace {

/** Derive a per-core cache seed so Random-policy sets never run in
 *  lockstep across cores. */
std::uint64_t
coreSeed(std::uint64_t base, std::uint32_t core, std::uint32_t level)
{
    return base + 0x9e3779b97f4a7c15ULL * (core * 4ULL + level + 1);
}

} // namespace

MultiCoreHierarchy::MultiCoreHierarchy(const MultiCoreConfig &config)
    : config_(config)
{
    if (config.cores == 0)
        throw std::invalid_argument(
            "MultiCoreHierarchy needs at least one core");
    l1_.reserve(config.cores);
    l2_.reserve(config.cores);
    for (std::uint32_t c = 0; c < config.cores; ++c) {
        CacheConfig l1 = config.l1;
        l1.seed = coreSeed(config.seed, c, 0);
        CacheConfig l2 = config.l2;
        l2.seed = coreSeed(config.seed, c, 1);
        l1_.push_back(std::make_unique<Cache>(l1));
        l2_.push_back(std::make_unique<Cache>(l2));
    }
    CacheConfig llc = config.llc;
    llc.seed = config.seed + 0x51ed2700'51ed2700ULL;
    if (llc.secure == SecureMode::Sharp) {
        // SHARP protection domains on a shared LLC are the cores.
        llc.secure_domains = config.cores;
    }
    llc_ = std::make_unique<Cache>(llc);
}

void
MultiCoreHierarchy::landPrivateWriteback(std::uint32_t core, int level,
                                         Addr line_base)
{
    if (level < 1 &&
        config_.l2.write_hit == WriteHitPolicy::WriteBack &&
        l2_[core]->markDirtyLine(line_base))
        return;
    // Inclusion guarantees the LLC still holds the line while any
    // private copy exists, so a private dirty victim normally lands
    // here; memory is the fallback for write-through LLC configs.
    if (config_.llc.write_hit == WriteHitPolicy::WriteBack &&
        llc_->markDirtyLine(line_base))
        return;
    ++dirty_writebacks_;
}

MultiCoreAccessResult
MultiCoreHierarchy::access(std::uint32_t core, const MemRef &ref)
{
    MultiCoreAccessResult res;

    const auto l1_res = l1_[core]->access(ref);
    if (l1_res.dirty_writeback && l1_res.evicted_line) {
        landPrivateWriteback(core, 0, *l1_res.evicted_line);
        ++res.writebacks;
    }
    if (l1_res.evicted_line && sharpLlc() &&
        !l2_[core]->contains(MemRef::load(*l1_res.evicted_line))) {
        // The core's last private copy of the victim is gone: its SHARP
        // ownership of the LLC line lapses.
        llc_->releaseOwner(core, *l1_res.evicted_line);
    }
    if (l1_res.hit) {
        // Inclusion invariant: a private hit implies LLC presence, so
        // the shared level is not referenced at all (no LRU update —
        // the paper's cross-core receiver depends on private hits being
        // invisible to the LLC state).
        res.level = HitLevel::L1;
        if (ref.is_write &&
            config_.l1.write_hit == WriteHitPolicy::WriteThrough) {
            // Write-through L1: the store is forwarded downstream.
            landPrivateWriteback(core, 0,
                                 l1_[core]->layout().lineBase(ref.paddr));
            ++res.writebacks;
        }
        return res;
    }

    // A store is absorbed by the innermost write-back level that keeps
    // a copy; below that point the walk is a plain read.
    MemRef down = ref;
    if (down.is_write &&
        config_.l1.write_hit == WriteHitPolicy::WriteBack && l1_res.filled)
        down.is_write = false;

    const auto l2_res = l2_[core]->access(down);
    if (l2_res.dirty_writeback && l2_res.evicted_line) {
        landPrivateWriteback(core, 1, *l2_res.evicted_line);
        ++res.writebacks;
    }
    if (l2_res.evicted_line && sharpLlc() &&
        !l1_[core]->contains(MemRef::load(*l2_res.evicted_line)))
        llc_->releaseOwner(core, *l2_res.evicted_line);
    if (down.is_write && (l2_res.hit || l2_res.filled)) {
        if (config_.l2.write_hit == WriteHitPolicy::WriteBack) {
            down.is_write = false;
        } else {
            landPrivateWriteback(core, 1,
                                 l2_[core]->layout().lineBase(ref.paddr));
            ++res.writebacks;
            down.is_write = false;
        }
    }
    if (l2_res.hit) {
        res.level = HitLevel::L2;
        return res;
    }

    // Private miss: the shared LLC is referenced (hit updates its
    // replacement state; miss installs the line).  The private fills
    // already happened above; inclusion is restored by the LLC fill on
    // the same access, and any LLC victim is back-invalidated out of
    // every core before the access completes — writing its dirty data
    // back first if any copy (LLC or private) was modified.
    const auto llc_res = llc_->accessFrom(core, down);
    res.level = llc_res.hit ? HitLevel::LLC : HitLevel::Memory;
    res.llc_filled = llc_res.filled;
    if (llc_res.bypassed && sharpLlc()) {
        // SHARP denied the fill: the access is served uncached, so the
        // private copies installed above must go too (inclusion).  A
        // store absorbed into one of them drains to memory first.
        const Addr line = llc_->layout().lineBase(down.paddr);
        const auto f1 = l1_[core]->invalidateLine(line);
        const auto f2 = l2_[core]->invalidateLine(line);
        if (f1.dirty || f2.dirty) {
            ++dirty_writebacks_;
            ++res.writebacks;
        }
        return res;
    }
    if (down.is_write && (llc_res.hit || llc_res.filled) &&
        config_.llc.write_hit == WriteHitPolicy::WriteThrough) {
        ++dirty_writebacks_; // passes through the LLC to memory
        ++res.writebacks;
    }
    if (llc_res.evicted_line) {
        const std::uint64_t before = back_invalidations_;
        const bool private_dirty = backInvalidate(*llc_res.evicted_line);
        res.back_invalidated =
            static_cast<std::uint32_t>(back_invalidations_ - before);
        if (llc_res.dirty_writeback || private_dirty) {
            // Exactly one memory write-back per evicted line, no matter
            // how many dirty copies existed.
            ++dirty_writebacks_;
            ++res.writebacks;
        }
    }
    return res;
}

void
MultiCoreHierarchy::accessBatch(std::uint32_t core,
                                std::span<const MemRef> refs,
                                std::span<HitLevel> levels)
{
    for (std::size_t i = 0; i < refs.size(); ++i)
        levels[i] = access(core, refs[i]).level;
}

void
MultiCoreHierarchy::accessBatch(std::uint32_t core,
                                std::span<const MemRef> refs)
{
    for (const MemRef &ref : refs)
        access(core, ref);
}

std::uint64_t
MultiCoreHierarchy::accessRun(std::uint32_t core, std::span<const MemRef> refs,
                              std::span<HitLevel> levels)
{
    std::uint64_t writebacks = 0;
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const auto res = access(core, refs[i]);
        levels[i] = res.level;
        writebacks += res.writebacks;
    }
    return writebacks;
}

bool
MultiCoreHierarchy::backInvalidate(Addr line_base)
{
    bool any_dirty = false;
    for (std::uint32_t c = 0; c < cores(); ++c) {
        const auto f1 = l1_[c]->invalidateLine(line_base);
        if (f1.present)
            ++back_invalidations_;
        const auto f2 = l2_[c]->invalidateLine(line_base);
        if (f2.present)
            ++back_invalidations_;
        any_dirty = any_dirty || f1.dirty || f2.dirty;
    }
    return any_dirty;
}

CacheFlushResult
MultiCoreHierarchy::flush(const MemRef &ref)
{
    CacheFlushResult res;
    for (std::uint32_t c = 0; c < cores(); ++c) {
        const auto f1 = l1_[c]->flush(ref);
        const auto f2 = l2_[c]->flush(ref);
        res.present = res.present || f1.present || f2.present;
        res.dirty = res.dirty || f1.dirty || f2.dirty;
    }
    const auto fl = llc_->flush(ref);
    res.present = res.present || fl.present;
    res.dirty = res.dirty || fl.dirty;
    if (res.dirty)
        ++dirty_writebacks_;
    return res;
}

HitLevel
MultiCoreHierarchy::peekLevel(std::uint32_t core, const MemRef &ref) const
{
    if (l1_[core]->contains(ref))
        return HitLevel::L1;
    if (l2_[core]->contains(ref))
        return HitLevel::L2;
    if (llc_->contains(ref))
        return HitLevel::LLC;
    return HitLevel::Memory;
}

std::optional<std::string>
MultiCoreHierarchy::auditInclusion() const
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        const Cache *levels[2] = {l1_[c].get(), l2_[c].get()};
        for (int lvl = 0; lvl < 2; ++lvl) {
            const Cache &cache = *levels[lvl];
            // Iterate storage sets (one per DAWG partition when the
            // level is partitioned) and compose line bases with the
            // owning *address* set.
            for (std::uint32_t s = 0; s < cache.storageSets(); ++s) {
                const CacheSet &set = cache.cacheSet(s);
                const std::uint32_t addr_set = cache.addressSetOf(s);
                const std::uint32_t valid = set.validMask();
                const std::uint32_t dirty = set.dirtyMask();
                if ((dirty & ~valid) != 0) {
                    std::ostringstream os;
                    os << "dirty-state violation: core " << c << " "
                       << (lvl == 0 ? "L1" : "L2") << " set " << s
                       << " has dirty bits 0x" << std::hex
                       << (dirty & ~valid) << std::dec
                       << " on invalid ways";
                    return os.str();
                }
                for (std::uint32_t w = 0; w < set.ways(); ++w) {
                    if (!((valid >> w) & 1u))
                        continue;
                    const Addr base =
                        cache.layout().compose(set.line(w).tag, addr_set);
                    if (!llc_->contains(MemRef::load(base))) {
                        const bool is_dirty = ((dirty >> w) & 1u) != 0;
                        std::ostringstream os;
                        os << "inclusion violation: "
                           << (is_dirty ? "dirty " : "") << "line 0x"
                           << std::hex << base << std::dec
                           << " valid in core " << c << " "
                           << (lvl == 0 ? "L1" : "L2") << " set " << s
                           << " way " << w << " but absent from the LLC"
                           << (is_dirty ? " (its write-back would be lost)"
                                        : "");
                        return os.str();
                    }
                }
            }
        }
    }
    // The shared level obeys the same dirty-subset-of-valid invariant,
    // and under SHARP its ownership must be coherent: a line owned by
    // core c is a line whose freshest copy sits in c's private caches.
    for (std::uint32_t s = 0; s < llc_->storageSets(); ++s) {
        const CacheSet &set = llc_->cacheSet(s);
        if ((set.dirtyMask() & ~set.validMask()) != 0) {
            std::ostringstream os;
            os << "dirty-state violation: LLC set " << s
               << " has dirty bits 0x" << std::hex
               << (set.dirtyMask() & ~set.validMask()) << std::dec
               << " on invalid ways";
            return os.str();
        }
        if (!sharpLlc())
            continue;
        for (std::uint32_t w = 0; w < set.ways(); ++w) {
            if (!((set.validMask() >> w) & 1u))
                continue;
            const std::uint32_t owner = set.owner(w);
            if (owner == kNoOwner)
                continue;
            const Addr base =
                llc_->layout().compose(set.line(w).tag,
                                       llc_->addressSetOf(s));
            const MemRef probe = MemRef::load(base);
            if (owner >= cores() || (!l1_[owner]->contains(probe) &&
                                     !l2_[owner]->contains(probe))) {
                std::ostringstream os;
                os << "ownership violation: LLC line 0x" << std::hex
                   << base << std::dec << " set " << s << " way " << w
                   << " owned by core " << owner;
                if (owner >= cores())
                    os << " which does not exist";
                else
                    os << " but absent from that core's private caches";
                return os.str();
            }
        }
    }
    return std::nullopt;
}

void
MultiCoreHierarchy::reset()
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        l1_[c]->reset();
        l2_[c]->reset();
    }
    llc_->reset();
    back_invalidations_ = 0;
    dirty_writebacks_ = 0;
}

void
MultiCoreHierarchy::resetCounters()
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        l1_[c]->counters().reset();
        l2_[c]->counters().reset();
    }
    llc_->counters().reset();
}

} // namespace lruleak::sim
