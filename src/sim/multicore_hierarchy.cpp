/**
 * @file
 * MultiCoreHierarchy implementation.
 */

#include "sim/multicore_hierarchy.hpp"

#include <sstream>

namespace lruleak::sim {

namespace {

/** Derive a per-core cache seed so Random-policy sets never run in
 *  lockstep across cores. */
std::uint64_t
coreSeed(std::uint64_t base, std::uint32_t core, std::uint32_t level)
{
    return base + 0x9e3779b97f4a7c15ULL * (core * 4ULL + level + 1);
}

} // namespace

MultiCoreHierarchy::MultiCoreHierarchy(const MultiCoreConfig &config)
    : config_(config)
{
    if (config.cores == 0)
        throw std::invalid_argument(
            "MultiCoreHierarchy needs at least one core");
    l1_.reserve(config.cores);
    l2_.reserve(config.cores);
    for (std::uint32_t c = 0; c < config.cores; ++c) {
        CacheConfig l1 = config.l1;
        l1.seed = coreSeed(config.seed, c, 0);
        CacheConfig l2 = config.l2;
        l2.seed = coreSeed(config.seed, c, 1);
        l1_.push_back(std::make_unique<Cache>(l1));
        l2_.push_back(std::make_unique<Cache>(l2));
    }
    CacheConfig llc = config.llc;
    llc.seed = config.seed + 0x51ed2700'51ed2700ULL;
    llc_ = std::make_unique<Cache>(llc);
}

MultiCoreAccessResult
MultiCoreHierarchy::access(std::uint32_t core, const MemRef &ref)
{
    MultiCoreAccessResult res;

    const auto l1_res = l1_[core]->access(ref);
    if (l1_res.hit) {
        // Inclusion invariant: a private hit implies LLC presence, so
        // the shared level is not referenced at all (no LRU update —
        // the paper's cross-core receiver depends on private hits being
        // invisible to the LLC state).
        res.level = HitLevel::L1;
        return res;
    }

    const auto l2_res = l2_[core]->access(ref);
    if (l2_res.hit) {
        res.level = HitLevel::L2;
        return res;
    }

    // Private miss: the shared LLC is referenced (hit updates its
    // replacement state; miss installs the line).  The private fills
    // already happened above; inclusion is restored by the LLC fill on
    // the same access, and any LLC victim is back-invalidated out of
    // every core before the access completes.
    const auto llc_res = llc_->access(ref);
    res.level = llc_res.hit ? HitLevel::LLC : HitLevel::Memory;
    res.llc_filled = llc_res.filled;
    if (llc_res.evicted_line) {
        const std::uint64_t before = back_invalidations_;
        backInvalidate(*llc_res.evicted_line);
        res.back_invalidated =
            static_cast<std::uint32_t>(back_invalidations_ - before);
    }
    return res;
}

void
MultiCoreHierarchy::accessBatch(std::uint32_t core,
                                std::span<const MemRef> refs,
                                std::span<HitLevel> levels)
{
    for (std::size_t i = 0; i < refs.size(); ++i)
        levels[i] = access(core, refs[i]).level;
}

void
MultiCoreHierarchy::accessBatch(std::uint32_t core,
                                std::span<const MemRef> refs)
{
    for (const MemRef &ref : refs)
        access(core, ref);
}

void
MultiCoreHierarchy::backInvalidate(Addr line_base)
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        if (l1_[c]->invalidateLine(line_base))
            ++back_invalidations_;
        if (l2_[c]->invalidateLine(line_base))
            ++back_invalidations_;
    }
}

void
MultiCoreHierarchy::flush(const MemRef &ref)
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        l1_[c]->flush(ref);
        l2_[c]->flush(ref);
    }
    llc_->flush(ref);
}

HitLevel
MultiCoreHierarchy::peekLevel(std::uint32_t core, const MemRef &ref) const
{
    if (l1_[core]->contains(ref))
        return HitLevel::L1;
    if (l2_[core]->contains(ref))
        return HitLevel::L2;
    if (llc_->contains(ref))
        return HitLevel::LLC;
    return HitLevel::Memory;
}

std::optional<std::string>
MultiCoreHierarchy::auditInclusion() const
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        const Cache *levels[2] = {l1_[c].get(), l2_[c].get()};
        for (int lvl = 0; lvl < 2; ++lvl) {
            const Cache &cache = *levels[lvl];
            for (std::uint32_t s = 0; s < cache.numSets(); ++s) {
                const CacheSet &set = cache.cacheSet(s);
                const std::uint32_t valid = set.validMask();
                for (std::uint32_t w = 0; w < set.ways(); ++w) {
                    if (!((valid >> w) & 1u))
                        continue;
                    const Addr base =
                        cache.layout().compose(set.line(w).tag, s);
                    if (!llc_->contains(MemRef::load(base))) {
                        std::ostringstream os;
                        os << "inclusion violation: line 0x" << std::hex
                           << base << std::dec << " valid in core " << c
                           << " " << (lvl == 0 ? "L1" : "L2") << " set "
                           << s << " way " << w
                           << " but absent from the LLC";
                        return os.str();
                    }
                }
            }
        }
    }
    return std::nullopt;
}

void
MultiCoreHierarchy::reset()
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        l1_[c]->reset();
        l2_[c]->reset();
    }
    llc_->reset();
    back_invalidations_ = 0;
}

void
MultiCoreHierarchy::resetCounters()
{
    for (std::uint32_t c = 0; c < cores(); ++c) {
        l1_[c]->counters().reset();
        l2_[c]->counters().reset();
    }
    llc_->counters().reset();
}

} // namespace lruleak::sim
