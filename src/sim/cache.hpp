/**
 * @file
 * A set-associative cache level built from CacheSet instances.
 */

#ifndef LRULEAK_SIM_CACHE_HPP
#define LRULEAK_SIM_CACHE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/address.hpp"
#include "sim/cache_config.hpp"
#include "sim/cache_set.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace lruleak::sim {

/** Outcome of a cache-level access, in address space. */
struct CacheAccessResult
{
    bool hit = false;
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    bool filled = false;
    bool bypassed = false;
    bool utag_mismatch = false;
    bool dirty_writeback = false;  //!< the victim line was dirty
    bool write_no_alloc = false;   //!< store miss bypassed this level
                                   //!< (no-write-allocate)
    std::optional<Addr> evicted_line; //!< line base address of the victim
};

/**
 * Outcome of removing a line from a level (clflush / back-invalidation).
 * Contextually convertible to bool ("was the line present?") so legacy
 * `if (flush(...))` call sites keep working.
 */
struct CacheFlushResult
{
    bool present = false;
    bool dirty = false; //!< the removed copy was dirty: write-back due

    explicit operator bool() const { return present; }
};

/**
 * One cache level.  VIPT: the set index comes from the virtual address,
 * the tag from the physical address.  Supports PL-cache lock bits and the
 * AMD utag way predictor, both off by default.
 *
 * Secure modes (CacheConfig::secure; see cache_config.hpp): under
 * SecureMode::Dawg every address set is split into `secure_domains`
 * partitions, each with its own ways and its own ReplState; thread t
 * lives entirely in partition t % domains, and only flush /
 * invalidateLine / markDirtyLine reach across partitions (coherence
 * must, visibility must not).  Under SecureMode::RandomFill a demand
 * miss is served uncached and a random neighbourhood line is installed
 * instead (deterministically, from a seed-derived stream); hits —
 * including their replacement-state update — behave normally.  Under
 * SecureMode::Sharp every line carries an owning protection domain and
 * evictions of foreign-owned lines are refused / re-victimized /
 * alarmed (accessFrom names the domain; plain access derives it from
 * ref.thread % secure_domains).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config,
                   PlMode pl_mode = PlMode::Disabled,
                   bool way_predictor = false);

    /** Demand access (load/store), with optional PL lock request. */
    CacheAccessResult access(const MemRef &ref,
                             LockReq lock_req = LockReq::None);

    /**
     * Demand access on behalf of protection domain @p domain (the
     * issuing core, for a SHARP-protected shared LLC — ref.thread is a
     * software thread id and does *not* name the core).  Identical to
     * access() unless this level runs SecureMode::Sharp.
     */
    CacheAccessResult accessFrom(std::uint32_t domain, const MemRef &ref,
                                 LockReq lock_req = LockReq::None);

    /**
     * SHARP: drop @p domain's ownership of @p line_base (the domain's
     * last private copy above this level went away).  Stale calls — the
     * line is absent or owned by someone else by now — are no-ops.
     */
    void releaseOwner(std::uint32_t domain, Addr line_base);

    /** SHARP per-domain refusal alarms (0 when not Sharp). */
    std::uint64_t
    sharpAlarms(std::uint32_t domain) const
    {
        return domain < sharp_alarms_.size() ? sharp_alarms_[domain] : 0;
    }
    /** SHARP per-domain forced evictions (all ways foreign-owned). */
    std::uint64_t
    sharpForced(std::uint32_t domain) const
    {
        return domain < sharp_forced_.size() ? sharp_forced_[domain] : 0;
    }
    /** SHARP per-domain denied fills (forced eviction refused). */
    std::uint64_t
    sharpDenied(std::uint32_t domain) const
    {
        return domain < sharp_denied_.size() ? sharp_denied_[domain] : 0;
    }
    std::uint64_t sharpAlarmsTotal() const;
    std::uint64_t sharpForcedTotal() const;
    std::uint64_t sharpDeniedTotal() const;

    /**
     * Replay a whole access sequence (plain demand loads, no lock
     * requests), writing one result per reference into @p results.
     * Perf counters are tallied in bulk per thread run, so the per-
     * access map lookup disappears from the hot loop.
     *
     * @pre results.size() >= refs.size()
     */
    void accessBatch(std::span<const MemRef> refs,
                     std::span<CacheAccessResult> results);

    /** Prefetch fill: installs the line, updates LRU, no perf counters. */
    CacheAccessResult prefetch(const MemRef &ref);

    /** Presence check without any state change. */
    bool contains(const MemRef &ref) const;

    /**
     * clflush semantics for this level.  The result reports presence
     * and whether the dropped copy was dirty (its data must be written
     * back before the invalidation completes).
     */
    CacheFlushResult flush(const MemRef &ref);

    /**
     * Back-invalidation hook for an inclusive outer level: remove the
     * line with base address @p line_base, no counter activity.  Indexes
     * by the physical line base — exact under the identity VA==PA
     * mappings the multi-core scenarios use (and for any L1, whose set
     * bits sit inside the page offset).
     */
    CacheFlushResult
    invalidateLine(Addr line_base)
    {
        return flush(MemRef::load(line_base));
    }

    /**
     * Land a write-back from the level above: mark the line dirty
     * without touching replacement state or counters.  @return true iff
     * the line is present at this level.
     */
    bool markDirtyLine(Addr line_base);

    /** Clear all contents, replacement state and counters. */
    void reset();

    const CacheConfig &config() const { return config_; }
    const AddressLayout &layout() const { return layout_; }
    const PerfCounters &counters() const { return counters_; }
    PerfCounters &counters() { return counters_; }

    const CacheSet &cacheSet(std::uint32_t index) const
    {
        return sets_[index];
    }
    CacheSet &cacheSet(std::uint32_t index) { return sets_[index]; }

    std::uint32_t numSets() const { return layout_.numSets(); }

    /**
     * Number of CacheSet instances actually stored: numSets() for a
     * plain cache, numSets() * secure_domains under SecureMode::Dawg.
     * Audit walks iterate storage sets and map back to the address set
     * with addressSetOf().
     */
    std::uint32_t
    storageSets() const
    {
        return static_cast<std::uint32_t>(sets_.size());
    }

    /** Address set index a storage index belongs to. */
    std::uint32_t
    addressSetOf(std::uint32_t storage_index) const
    {
        return config_.secure == SecureMode::Dawg
                   ? storage_index / config_.secure_domains
                   : storage_index;
    }

    SecureMode secureMode() const { return config_.secure; }
    bool wayPredictorEnabled() const { return way_predictor_; }
    PlMode plMode() const { return pl_mode_; }

    /** Switch the PL mode for every set (used by the defense study). */
    void setPlMode(PlMode mode);

  private:
    /** Storage set for (address set, issuing thread): the thread's DAWG
     *  partition when partitioned, the plain set otherwise. */
    CacheSet &
    routeSet(std::uint32_t set, ThreadId thread)
    {
        if (config_.secure == SecureMode::Dawg)
            return sets_[static_cast<std::size_t>(set) *
                             config_.secure_domains +
                         thread % config_.secure_domains];
        return sets_[set];
    }
    const CacheSet &
    routeSet(std::uint32_t set, ThreadId thread) const
    {
        return const_cast<Cache *>(this)->routeSet(set, thread);
    }

    /** RandomFill miss handler: install a random neighbourhood line. */
    SetAccessResult randomFill(const MemRef &ref, std::uint32_t &fill_set);

    /** The SHARP access path shared by access() and accessFrom(). */
    CacheAccessResult accessSharpImpl(std::uint32_t domain,
                                      const MemRef &ref);

    CacheConfig config_;
    AddressLayout layout_;
    PlMode pl_mode_;
    bool way_predictor_;
    std::vector<CacheSet> sets_;
    PerfCounters counters_;
    Xoshiro256 fill_rng_; //!< RandomFill neighbourhood stream
    // SHARP per-domain event counters (sized secure_domains iff Sharp).
    std::vector<std::uint64_t> sharp_alarms_;
    std::vector<std::uint64_t> sharp_forced_;
    std::vector<std::uint64_t> sharp_denied_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_CACHE_HPP
