/**
 * @file
 * CacheHierarchy implementation.
 */

#include "sim/hierarchy.hpp"

namespace lruleak::sim {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config),
      l1_(std::make_unique<Cache>(config.l1, config.l1_pl_mode,
                                  config.l1_way_predictor)),
      l2_(std::make_unique<Cache>(config.l2)),
      llc_(std::make_unique<Cache>(config.llc))
{
    if (config.enable_prefetcher)
        prefetcher_ = std::make_unique<StridePrefetcher>(
            config.l1.line_size, 2);
}

void
CacheHierarchy::landWriteback(int from, Addr line_base)
{
    // A write-through level never buffers dirty data, so the write-back
    // passes through it on the way to memory.
    if (from < 1 &&
        config_.l2.write_hit == WriteHitPolicy::WriteBack &&
        l2_->markDirtyLine(line_base))
        return;
    if (from < 2 &&
        config_.llc.write_hit == WriteHitPolicy::WriteBack &&
        llc_->markDirtyLine(line_base))
        return;
    // Reached memory: nothing to track beyond the transaction itself.
}

HierarchyAccessResult
CacheHierarchy::access(const MemRef &ref, LockReq lock_req)
{
    HierarchyAccessResult res;

    res.l1 = l1_->access(ref, lock_req);
    res.l1_utag_mismatch = res.l1.utag_mismatch;
    res.l1_bypassed = res.l1.bypassed;

    if (res.l1.dirty_writeback && res.l1.evicted_line) {
        landWriteback(0, *res.l1.evicted_line);
        ++res.writebacks;
    }

    if (res.l1.hit && !res.l1.utag_mismatch) {
        res.level = HitLevel::L1;
    } else if (res.l1.hit && res.l1.utag_mismatch) {
        // Way-predictor miss: data was in L1 but the access pays (about)
        // an L2-hit latency while the utag retrains.  No lower-level
        // access happens architecturally.
        res.level = HitLevel::L2;
    } else {
        // L1 miss: walk down.  Perf counters of lower levels tick only
        // when the level is actually referenced, as with real HW events.
        // A store is "absorbed" by the innermost write-back level that
        // keeps a copy; below that point the walk is a plain read, so
        // one store never dirties two levels.
        MemRef down = ref;
        if (down.is_write &&
            config_.l1.write_hit == WriteHitPolicy::WriteBack &&
            res.l1.filled)
            down.is_write = false;
        const auto l2_res = l2_->access(down);
        if (l2_res.dirty_writeback && l2_res.evicted_line) {
            landWriteback(1, *l2_res.evicted_line);
            ++res.writebacks;
        }
        if (down.is_write &&
            (l2_res.hit || l2_res.filled)) {
            if (config_.l2.write_hit == WriteHitPolicy::WriteBack) {
                down.is_write = false; // L2 buffered the dirty data
            } else {
                // Write-through L2: the store passes through.
                landWriteback(1, l1_->layout().lineBase(ref.paddr));
                ++res.writebacks;
                down.is_write = false;
            }
        }
        if (l2_res.hit) {
            res.level = HitLevel::L2;
        } else {
            const auto llc_res = llc_->access(down);
            res.level = llc_res.hit ? HitLevel::LLC : HitLevel::Memory;
            if (llc_res.dirty_writeback)
                ++res.writebacks; // LLC victims drain straight to memory
            if (down.is_write && (llc_res.hit || llc_res.filled) &&
                config_.llc.write_hit == WriteHitPolicy::WriteThrough)
                ++res.writebacks; // passes through the LLC to memory
        }
    }

    if (res.l1.hit && ref.is_write &&
        config_.l1.write_hit == WriteHitPolicy::WriteThrough) {
        // Write-through L1: the store is forwarded downstream even on a
        // hit; the miss path above already carried it down.
        landWriteback(0, l1_->layout().lineBase(ref.paddr));
        ++res.writebacks;
    }

    if (prefetcher_) {
        const bool l1_hit = res.level == HitLevel::L1;
        for (Addr pf_vaddr : prefetcher_->observe(ref, l1_hit)) {
            // Prefetches translate with the same VA->PA offset as the
            // triggering access.
            MemRef pf{pf_vaddr, pf_vaddr + (ref.paddr - ref.vaddr),
                      ref.thread, false};
            if (!l1_->contains(pf)) {
                l2_->prefetch(pf);
                l1_->prefetch(pf);
            }
        }
    }

    return res;
}

void
CacheHierarchy::accessBatch(std::span<const MemRef> refs)
{
    for (const MemRef &ref : refs)
        access(ref);
}

void
CacheHierarchy::accessBatch(std::span<const MemRef> refs,
                            std::span<HitLevel> levels)
{
    for (std::size_t i = 0; i < refs.size(); ++i)
        levels[i] = access(refs[i]).level;
}

std::uint64_t
CacheHierarchy::accessRun(std::span<const MemRef> refs,
                          std::span<HitLevel> levels)
{
    std::uint64_t writebacks = 0;
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const auto res = access(refs[i]);
        levels[i] = res.level;
        writebacks += res.writebacks;
    }
    return writebacks;
}

CacheFlushResult
CacheHierarchy::flush(const MemRef &ref)
{
    const auto f1 = l1_->flush(ref);
    const auto f2 = l2_->flush(ref);
    const auto f3 = llc_->flush(ref);
    CacheFlushResult res;
    res.present = f1.present || f2.present || f3.present;
    res.dirty = f1.dirty || f2.dirty || f3.dirty;
    return res;
}

bool
CacheHierarchy::inAnyLevel(const MemRef &ref) const
{
    return l1_->contains(ref) || l2_->contains(ref) || llc_->contains(ref);
}

HitLevel
CacheHierarchy::peekLevel(const MemRef &ref) const
{
    if (l1_->contains(ref))
        return HitLevel::L1;
    if (l2_->contains(ref))
        return HitLevel::L2;
    if (llc_->contains(ref))
        return HitLevel::LLC;
    return HitLevel::Memory;
}

void
CacheHierarchy::reset()
{
    l1_->reset();
    l2_->reset();
    llc_->reset();
    if (prefetcher_)
        prefetcher_->reset();
}

void
CacheHierarchy::resetCounters()
{
    l1_->counters().reset();
    l2_->counters().reset();
    llc_->counters().reset();
}

} // namespace lruleak::sim
