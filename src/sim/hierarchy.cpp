/**
 * @file
 * CacheHierarchy implementation.
 */

#include "sim/hierarchy.hpp"

namespace lruleak::sim {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config),
      l1_(std::make_unique<Cache>(config.l1, config.l1_pl_mode,
                                  config.l1_way_predictor)),
      l2_(std::make_unique<Cache>(config.l2)),
      llc_(std::make_unique<Cache>(config.llc))
{
    if (config.enable_prefetcher)
        prefetcher_ = std::make_unique<StridePrefetcher>(
            config.l1.line_size, 2);
}

HierarchyAccessResult
CacheHierarchy::access(const MemRef &ref, LockReq lock_req)
{
    HierarchyAccessResult res;

    res.l1 = l1_->access(ref, lock_req);
    res.l1_utag_mismatch = res.l1.utag_mismatch;
    res.l1_bypassed = res.l1.bypassed;

    if (res.l1.hit && !res.l1.utag_mismatch) {
        res.level = HitLevel::L1;
    } else if (res.l1.hit && res.l1.utag_mismatch) {
        // Way-predictor miss: data was in L1 but the access pays (about)
        // an L2-hit latency while the utag retrains.  No lower-level
        // access happens architecturally.
        res.level = HitLevel::L2;
    } else {
        // L1 miss: walk down.  Perf counters of lower levels tick only
        // when the level is actually referenced, as with real HW events.
        const auto l2_res = l2_->access(ref);
        if (l2_res.hit) {
            res.level = HitLevel::L2;
        } else {
            const auto llc_res = llc_->access(ref);
            res.level = llc_res.hit ? HitLevel::LLC : HitLevel::Memory;
        }
    }

    if (prefetcher_) {
        const bool l1_hit = res.level == HitLevel::L1;
        for (Addr pf_vaddr : prefetcher_->observe(ref, l1_hit)) {
            // Prefetches translate with the same VA->PA offset as the
            // triggering access.
            MemRef pf{pf_vaddr, pf_vaddr + (ref.paddr - ref.vaddr),
                      ref.thread, false};
            if (!l1_->contains(pf)) {
                l2_->prefetch(pf);
                l1_->prefetch(pf);
            }
        }
    }

    return res;
}

void
CacheHierarchy::accessBatch(std::span<const MemRef> refs)
{
    for (const MemRef &ref : refs)
        access(ref);
}

void
CacheHierarchy::accessBatch(std::span<const MemRef> refs,
                            std::span<HitLevel> levels)
{
    for (std::size_t i = 0; i < refs.size(); ++i)
        levels[i] = access(refs[i]).level;
}

void
CacheHierarchy::flush(const MemRef &ref)
{
    l1_->flush(ref);
    l2_->flush(ref);
    llc_->flush(ref);
}

bool
CacheHierarchy::inAnyLevel(const MemRef &ref) const
{
    return l1_->contains(ref) || l2_->contains(ref) || llc_->contains(ref);
}

HitLevel
CacheHierarchy::peekLevel(const MemRef &ref) const
{
    if (l1_->contains(ref))
        return HitLevel::L1;
    if (l2_->contains(ref))
        return HitLevel::L2;
    if (llc_->contains(ref))
        return HitLevel::LLC;
    return HitLevel::Memory;
}

void
CacheHierarchy::reset()
{
    l1_->reset();
    l2_->reset();
    llc_->reset();
    if (prefetcher_)
        prefetcher_->reset();
}

void
CacheHierarchy::resetCounters()
{
    l1_->counters().reset();
    l2_->counters().reset();
    llc_->counters().reset();
}

} // namespace lruleak::sim
