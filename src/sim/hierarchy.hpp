/**
 * @file
 * Three-level cache hierarchy (L1D / L2 / LLC + memory).
 *
 * The channel itself only needs the L1D replacement state, but the paper's
 * Tables VI and VII report per-level miss rates and its Flush+Reload
 * baselines differ precisely in which level they evict to, so the full
 * hierarchy is modelled.
 */

#ifndef LRULEAK_SIM_HIERARCHY_HPP
#define LRULEAK_SIM_HIERARCHY_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/cache.hpp"
#include "sim/prefetcher.hpp"

namespace lruleak::sim {

/** Where an access was served from. */
enum class HitLevel : std::uint8_t
{
    L1 = 1,
    L2 = 2,
    LLC = 3,
    Memory = 4,
};

/** Outcome of a hierarchy access. */
struct HierarchyAccessResult
{
    HitLevel level = HitLevel::Memory;  //!< level that served the data
    bool l1_utag_mismatch = false;      //!< AMD way-predictor miss
    bool l1_bypassed = false;           //!< PL cache handled it uncached
    std::uint32_t writebacks = 0;       //!< write-back transactions this
                                        //!< access triggered (dirty victim
                                        //!< evictions and write-through
                                        //!< forwards); each one stalls the
                                        //!< access by the uarch's
                                        //!< write-back latency
    CacheAccessResult l1;               //!< detailed L1 outcome
};

/** Configuration of the whole hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1 = CacheConfig::intelL1d();
    CacheConfig l2 = CacheConfig::intelL2();
    CacheConfig llc = CacheConfig::intelLlc();
    PlMode l1_pl_mode = PlMode::Disabled;
    bool l1_way_predictor = false;  //!< AMD utag model
    bool enable_prefetcher = false; //!< attach a stride prefetcher to L1

    /** Member-wise equality (drives the session topology reuse pool). */
    bool operator==(const HierarchyConfig &) const = default;
};

/**
 * The memory system seen by the simulated threads.  Non-inclusive:
 * evicting a *clean* line from a level simply drops it.  Dirty lines
 * are write-back-modelled: a dirty victim (or a write-through store
 * hit) walks down and lands in the first lower write-back level that
 * still holds the line, or in memory otherwise, and each such
 * transaction is reported in HierarchyAccessResult::writebacks so the
 * execution engine can charge its latency — the observable the
 * dirty-state channels (`dirty-evict`, `flush-dirty`) decode.  Each
 * level's write-hit/write-miss policy comes from its CacheConfig.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config = {});

    /**
     * Demand access.  Fills every missed level on the way back (L1 is
     * filled last so its replacement state sees exactly one update).
     */
    HierarchyAccessResult access(const MemRef &ref,
                                 LockReq lock_req = LockReq::None);

    /**
     * Replay a whole access sequence (plain demand loads) whose
     * individual outcomes the caller does not need — the prime/init
     * loops of the channels and the Spectre harness.  Semantically one
     * access() per reference.
     */
    void accessBatch(std::span<const MemRef> refs);

    /**
     * Same, but records the level each access was served from into
     * @p levels (for callers that charge per-access latency, like the
     * schedulers' kernel-noise bursts).  @pre levels.size() >= refs.size()
     */
    void accessBatch(std::span<const MemRef> refs,
                     std::span<HitLevel> levels);

    /**
     * Batched demand run for the engine's AccessRun op: one access()
     * per reference, recording the level each was served from and
     * returning the run's summed write-back transactions (the caller
     * charges per-access latency plus the aggregate write-back stall).
     * @pre levels.size() >= refs.size()
     */
    std::uint64_t accessRun(std::span<const MemRef> refs,
                            std::span<HitLevel> levels);

    /**
     * clflush: remove the line from every level.  Reports whether any
     * level held it and whether any dropped copy was dirty (in which
     * case the flush stalls until the data reaches memory).
     */
    CacheFlushResult flush(const MemRef &ref);

    /** Present in L1? (no state change) */
    bool inL1(const MemRef &ref) const { return l1_->contains(ref); }
    /** Present in any level? (no state change) */
    bool inAnyLevel(const MemRef &ref) const;

    /**
     * Level a demand access *would* hit, without mutating any state.
     * Used by the transient-execution model to decide whether a
     * speculative load completes inside the speculation window before
     * letting its fill land.
     */
    HitLevel peekLevel(const MemRef &ref) const;

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }
    const Cache &llc() const { return *llc_; }

    const HierarchyConfig &config() const { return config_; }

    /** Reset contents, replacement state and counters of all levels. */
    void reset();

    /** Reset only the performance counters (start of a measured region). */
    void resetCounters();

  private:
    /**
     * Land one write-back transaction below level @p from (0 = from
     * L1, 1 = from L2, 2 = from LLC): the first lower write-back level
     * still holding @p line_base absorbs the data; otherwise it reaches
     * memory.  The caller counts the transaction either way.
     */
    void landWriteback(int from, Addr line_base);

    HierarchyConfig config_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<Prefetcher> prefetcher_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_HIERARCHY_HPP
