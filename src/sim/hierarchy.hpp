/**
 * @file
 * Three-level cache hierarchy (L1D / L2 / LLC + memory).
 *
 * The channel itself only needs the L1D replacement state, but the paper's
 * Tables VI and VII report per-level miss rates and its Flush+Reload
 * baselines differ precisely in which level they evict to, so the full
 * hierarchy is modelled.
 */

#ifndef LRULEAK_SIM_HIERARCHY_HPP
#define LRULEAK_SIM_HIERARCHY_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/cache.hpp"
#include "sim/prefetcher.hpp"

namespace lruleak::sim {

/** Where an access was served from. */
enum class HitLevel : std::uint8_t
{
    L1 = 1,
    L2 = 2,
    LLC = 3,
    Memory = 4,
};

/** Outcome of a hierarchy access. */
struct HierarchyAccessResult
{
    HitLevel level = HitLevel::Memory;  //!< level that served the data
    bool l1_utag_mismatch = false;      //!< AMD way-predictor miss
    bool l1_bypassed = false;           //!< PL cache handled it uncached
    CacheAccessResult l1;               //!< detailed L1 outcome
};

/** Configuration of the whole hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1 = CacheConfig::intelL1d();
    CacheConfig l2 = CacheConfig::intelL2();
    CacheConfig llc = CacheConfig::intelLlc();
    PlMode l1_pl_mode = PlMode::Disabled;
    bool l1_way_predictor = false;  //!< AMD utag model
    bool enable_prefetcher = false; //!< attach a stride prefetcher to L1
};

/**
 * The memory system seen by the simulated threads.  Non-inclusive:
 * evictions from a level simply drop (writebacks are not modelled; the
 * channels are read-only).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config = {});

    /**
     * Demand access.  Fills every missed level on the way back (L1 is
     * filled last so its replacement state sees exactly one update).
     */
    HierarchyAccessResult access(const MemRef &ref,
                                 LockReq lock_req = LockReq::None);

    /**
     * Replay a whole access sequence (plain demand loads) whose
     * individual outcomes the caller does not need — the prime/init
     * loops of the channels and the Spectre harness.  Semantically one
     * access() per reference.
     */
    void accessBatch(std::span<const MemRef> refs);

    /**
     * Same, but records the level each access was served from into
     * @p levels (for callers that charge per-access latency, like the
     * schedulers' kernel-noise bursts).  @pre levels.size() >= refs.size()
     */
    void accessBatch(std::span<const MemRef> refs,
                     std::span<HitLevel> levels);

    /** clflush: remove the line from every level. */
    void flush(const MemRef &ref);

    /** Present in L1? (no state change) */
    bool inL1(const MemRef &ref) const { return l1_->contains(ref); }
    /** Present in any level? (no state change) */
    bool inAnyLevel(const MemRef &ref) const;

    /**
     * Level a demand access *would* hit, without mutating any state.
     * Used by the transient-execution model to decide whether a
     * speculative load completes inside the speculation window before
     * letting its fill land.
     */
    HitLevel peekLevel(const MemRef &ref) const;

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }
    const Cache &llc() const { return *llc_; }

    const HierarchyConfig &config() const { return config_; }

    /** Reset contents, replacement state and counters of all levels. */
    void reset();

    /** Reset only the performance counters (start of a measured region). */
    void resetCounters();

  private:
    HierarchyConfig config_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<Prefetcher> prefetcher_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_HIERARCHY_HPP
