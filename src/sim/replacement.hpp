/**
 * @file
 * Cache replacement policies and their per-set state machines.
 *
 * These are the objects the paper attacks: the LRU/PLRU state of a set is
 * updated on *every* access (hit or miss), so a sender that only ever hits
 * in the cache still modulates the state a receiver can later observe
 * through a timed eviction.
 *
 * Implemented policies:
 *  - TrueLru    : exact recency order, log2(N) bits/way equivalent
 *  - TreePlru   : binary-tree PLRU, N-1 bits/set (Intel L1 style)
 *  - BitPlru    : MRU-bit PLRU, N bits/set
 *  - Fifo       : insertion order only; state changes on fills, not hits
 *  - RandomRepl : stateless random victim
 *  - Srrip      : 2-bit re-reference interval prediction (LLC-style
 *                 extension; the paper cites RRIP [34] for LLCs)
 */

#ifndef LRULEAK_SIM_REPLACEMENT_HPP
#define LRULEAK_SIM_REPLACEMENT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"

namespace lruleak::sim {

/** Which replacement algorithm a cache uses. */
enum class ReplPolicyKind
{
    TrueLru,
    TreePlru,
    BitPlru,
    Fifo,
    Random,
    Srrip,
};

/** Human-readable policy name ("TreePLRU", "FIFO", ...). */
std::string_view replPolicyName(ReplPolicyKind kind);

/** Parse a policy name (case-insensitive); throws std::invalid_argument. */
ReplPolicyKind replPolicyFromName(std::string_view name);

/**
 * Per-set replacement state machine.
 *
 * One instance exists per cache set.  The cache calls @c touch on every
 * hit, @c onFill when a line is installed, and @c victim when it needs a
 * way to evict.  @c stateBits exposes the raw state so unit tests can
 * check exact transitions against hand-computed vectors and so
 * experiments can dump the state.
 *
 * Lock support (for the PL-cache fix): ways marked locked via
 * @c setLocked are never returned by @c victimUnlocked, and when
 * @c lru_lock mode is enabled (the "blue boxes" of the paper's Fig. 10),
 * touches to locked ways do not update the state.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record an access (hit) to @p way. */
    virtual void touch(std::uint32_t way) = 0;

    /** Record that a new line was installed into @p way. */
    virtual void onFill(std::uint32_t way) { touch(way); }

    /** Choose the way to evict.  Does not modify state. */
    virtual std::uint32_t victim() = 0;

    /** Reset to the power-on state. */
    virtual void reset() = 0;

    /** Raw state bits, policy-defined encoding (for tests/dumps). */
    virtual std::vector<std::uint8_t> stateBits() const = 0;

    virtual ReplPolicyKind kind() const = 0;
    virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

    std::string_view name() const { return replPolicyName(kind()); }
    std::uint32_t numWays() const { return ways_; }

    /**
     * Choose a victim, skipping locked ways.  Falls back to a linear scan
     * of the policy's preference order; returns @c kNoVictim when every
     * way is locked.
     */
    std::uint32_t victimUnlocked(const std::vector<bool> &locked);

    /** Sentinel returned when no evictable way exists. */
    static constexpr std::uint32_t kNoVictim = ~0u;

  protected:
    explicit ReplacementPolicy(std::uint32_t ways) : ways_(ways) {}

    std::uint32_t ways_;
};

/** Factory. @p rng seeds the Random policy's private stream. */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::uint32_t ways,
                      std::uint64_t seed = 0);

/**
 * Exact LRU: maintains the full recency order of all ways.
 * Victim = least recently used way.
 */
class TrueLru : public ReplacementPolicy
{
  public:
    explicit TrueLru(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    std::uint32_t victim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::TrueLru; }
    std::unique_ptr<ReplacementPolicy> clone() const override;

    /** Age of a way: 0 = MRU, ways-1 = LRU (exposed for tests). */
    std::uint32_t age(std::uint32_t way) const;

  private:
    /** order_[0] is MRU, order_.back() is LRU. */
    std::vector<std::uint32_t> order_;
};

/**
 * Tree-PLRU: a binary tree of N-1 direction bits per set.
 *
 * Node layout is the classic implicit heap: node i has children 2i+1 and
 * 2i+2; the leaves correspond to the ways in order.  A node bit of 0 means
 * "the victim is in the LEFT subtree" (left is older); 1 means the victim
 * is in the right subtree.  On an access, every node on the root-to-leaf
 * path is pointed AWAY from the accessed way.
 */
class TreePlru : public ReplacementPolicy
{
  public:
    /** @p ways must be a power of two >= 2. */
    explicit TreePlru(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    std::uint32_t victim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::TreePlru; }
    std::unique_ptr<ReplacementPolicy> clone() const override;

    /** Direct node access for white-box tests. */
    bool nodeBit(std::uint32_t node) const { return bits_[node]; }
    void setNodeBit(std::uint32_t node, bool v) { bits_[node] = v; }

  private:
    std::uint32_t levels_;       //!< log2(ways)
    std::vector<bool> bits_;     //!< ways-1 tree bits
};

/**
 * Bit-PLRU (a.k.a. MRU replacement): one MRU bit per way.
 *
 * On an access *hit*, the way's bit is set; if that saturates all bits,
 * every bit is cleared and then the accessed way's bit is set again.  The
 * victim is the lowest-indexed way whose MRU bit is clear.  Fills do NOT
 * set the MRU bit (the behaviour the paper's Table I numbers imply: with
 * Sequence 1 the just-filled way keeps being the victim, so line 0 is
 * evicted 100% of the time once the loop reaches steady state).
 */
class BitPlru : public ReplacementPolicy
{
  public:
    explicit BitPlru(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    void onFill(std::uint32_t way) override;
    std::uint32_t victim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::BitPlru; }
    std::unique_ptr<ReplacementPolicy> clone() const override;

    bool mruBit(std::uint32_t way) const { return mru_[way]; }

  private:
    std::vector<bool> mru_;
};

/**
 * FIFO (round-robin): state advances only on fills.  Cache hits do not
 * change the state, which is exactly why the paper proposes it as an
 * LRU-channel defense: a hitting sender becomes invisible.
 */
class Fifo : public ReplacementPolicy
{
  public:
    explicit Fifo(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    void onFill(std::uint32_t way) override;
    std::uint32_t victim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::Fifo; }
    std::unique_ptr<ReplacementPolicy> clone() const override;

  private:
    /** fifo_[0] is the oldest fill (next victim). */
    std::vector<std::uint32_t> fifo_;
};

/**
 * Random replacement: no state at all; the other defense evaluated by the
 * paper.  Uses a private deterministic stream so experiments reproduce.
 */
class RandomRepl : public ReplacementPolicy
{
  public:
    RandomRepl(std::uint32_t ways, std::uint64_t seed);

    void touch(std::uint32_t way) override;
    std::uint32_t victim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::Random; }
    std::unique_ptr<ReplacementPolicy> clone() const override;

  private:
    std::uint64_t seed_;
    Xoshiro256 rng_;
};

/**
 * SRRIP-HP (static re-reference interval prediction, hit priority) with
 * 2-bit RRPVs.  Insert at RRPV=2 ("long"), promote to 0 on hit, victim is
 * the first way at RRPV=3 (aging all ways until one reaches 3).
 */
class Srrip : public ReplacementPolicy
{
  public:
    explicit Srrip(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    void onFill(std::uint32_t way) override;
    std::uint32_t victim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::Srrip; }
    std::unique_ptr<ReplacementPolicy> clone() const override;

    std::uint8_t rrpv(std::uint32_t way) const { return rrpv_[way]; }

    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr std::uint8_t kInsertRrpv = 2;

  private:
    std::vector<std::uint8_t> rrpv_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_REPLACEMENT_HPP
