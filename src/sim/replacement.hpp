/**
 * @file
 * Legacy virtual replacement-policy interface (DEPRECATED for hot paths).
 *
 * The simulator's hot path now runs on the value-semantic `ReplState`
 * core (sim/repl_state.hpp): POD state machines stored inline per set,
 * dispatched non-virtually.  This header keeps the original
 * heap-allocated virtual hierarchy for three jobs:
 *
 *  1. **Reference implementations.**  The six concrete classes keep the
 *     seed's independent vector-based implementations, so the
 *     randomized equivalence tests (tests/test_repl_state.cpp) prove
 *     ReplState bit-for-bit against genuinely separate code — not
 *     against itself.
 *  2. **White-box tests.**  The per-policy accessors (TrueLru::age,
 *     TreePlru::nodeBit, BitPlru::mruBit, Srrip::rrpv) remain available
 *     to the hand-computed transition tests.
 *  3. **Migration adapter.**  `ReplacementPolicy::state()` snapshots any
 *     policy into the equivalent ReplState, and `ReplStatePolicy` wraps
 *     a ReplState behind the virtual interface, so code still written
 *     against this interface keeps working while it migrates.
 *
 * Deprecation path: new code should construct `ReplState` directly (or
 * a `CacheSet`, which owns one).  Once nothing but the tests and the
 * `lruleak bench` legacy lane consume this interface, it moves into the
 * test/bench support code.
 *
 * The victim query contract (fixed from the seed, which claimed
 * "does not modify state" while RandomRepl advanced its RNG and Srrip
 * aged its RRPVs):
 *
 *   victim() const  - pure preview; never modifies state.
 *   selectVictim()  - commits the choice on the miss path; MAY mutate.
 *                     RandomRepl advances its stream and Srrip ages all
 *                     RRPVs here; every other policy is pure.
 */

#ifndef LRULEAK_SIM_REPLACEMENT_HPP
#define LRULEAK_SIM_REPLACEMENT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"
#include "sim/repl_state.hpp"

namespace lruleak::sim {

/**
 * Per-set replacement state machine behind a virtual interface.
 *
 * One instance exists per cache set.  The cache calls @c touch on every
 * hit, @c onFill when a line is installed, and @c selectVictim when it
 * needs a way to evict.  @c stateBits exposes the raw state so unit
 * tests can check exact transitions against hand-computed vectors and
 * so experiments can dump the state.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record an access (hit) to @p way. */
    virtual void touch(std::uint32_t way) = 0;

    /** Record that a new line was installed into @p way. */
    virtual void onFill(std::uint32_t way) { touch(way); }

    /**
     * Pure preview of the way that would be evicted.  Never modifies
     * state: RandomRepl peeks a copy of its stream, Srrip simulates the
     * aging.
     */
    virtual std::uint32_t victim() const = 0;

    /**
     * Choose the way to evict, committing any side effects (RandomRepl
     * advances its RNG stream; Srrip ages every RRPV).  The default
     * forwards to victim() for the policies whose choice is pure.
     */
    virtual std::uint32_t selectVictim() { return victim(); }

    /** Reset to the power-on state. */
    virtual void reset() = 0;

    /** Raw state bits, policy-defined encoding (for tests/dumps). */
    virtual std::vector<std::uint8_t> stateBits() const = 0;

    virtual ReplPolicyKind kind() const = 0;
    virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

    /**
     * Snapshot this policy's current state as the equivalent
     * value-semantic ReplState — the bridge old call sites use to feed
     * the new core.
     */
    virtual ReplState state() const = 0;

    std::string_view name() const { return replPolicyName(kind()); }
    std::uint32_t numWays() const { return ways_; }

    /**
     * Choose a victim, skipping locked ways (committing side effects
     * like selectVictim).  Falls back to a linear scan of the policy's
     * preference order; returns @c kNoVictim when every way is locked.
     */
    std::uint32_t victimUnlocked(const std::vector<bool> &locked);

    /** Sentinel returned when no evictable way exists. */
    static constexpr std::uint32_t kNoVictim = kNoWay;

  protected:
    explicit ReplacementPolicy(std::uint32_t ways) : ways_(ways) {}

    std::uint32_t ways_;
};

/** Factory. @p rng seeds the Random policy's private stream. */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::uint32_t ways,
                      std::uint64_t seed = 0);

/**
 * Generic adapter: any ReplState behind the virtual interface, for code
 * that still wants runtime polymorphism over the value-semantic core.
 */
class ReplStatePolicy : public ReplacementPolicy
{
  public:
    explicit ReplStatePolicy(ReplState state)
        : ReplacementPolicy(state.ways()), state_(std::move(state))
    {}

    void touch(std::uint32_t way) override { state_.touch(way); }
    void onFill(std::uint32_t way) override { state_.onFill(way); }
    std::uint32_t victim() const override { return state_.victim(); }
    std::uint32_t selectVictim() override
    {
        return state_.selectVictim();
    }
    void reset() override { state_.reset(); }
    std::vector<std::uint8_t> stateBits() const override
    {
        return state_.stateBits();
    }
    ReplPolicyKind kind() const override { return state_.kind(); }
    std::unique_ptr<ReplacementPolicy> clone() const override
    {
        return std::make_unique<ReplStatePolicy>(*this);
    }
    ReplState state() const override { return state_; }

  private:
    ReplState state_;
};

/**
 * Exact LRU: maintains the full recency order of all ways.
 * Victim = least recently used way.
 */
class TrueLru : public ReplacementPolicy
{
  public:
    explicit TrueLru(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    std::uint32_t victim() const override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::TrueLru; }
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplState state() const override;

    /** Age of a way: 0 = MRU, ways-1 = LRU (exposed for tests). */
    std::uint32_t age(std::uint32_t way) const;

  private:
    /** order_[0] is MRU, order_.back() is LRU. */
    std::vector<std::uint32_t> order_;
};

/**
 * Tree-PLRU: a binary tree of N-1 direction bits per set.
 *
 * Node layout is the classic implicit heap: node i has children 2i+1 and
 * 2i+2; the leaves correspond to the ways in order.  A node bit of 0 means
 * "the victim is in the LEFT subtree" (left is older); 1 means the victim
 * is in the right subtree.  On an access, every node on the root-to-leaf
 * path is pointed AWAY from the accessed way.
 */
class TreePlru : public ReplacementPolicy
{
  public:
    /** @p ways must be a power of two >= 2. */
    explicit TreePlru(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    std::uint32_t victim() const override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::TreePlru; }
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplState state() const override;

    /** Direct node access for white-box tests. */
    bool nodeBit(std::uint32_t node) const { return bits_[node]; }
    void setNodeBit(std::uint32_t node, bool v) { bits_[node] = v; }

  private:
    std::uint32_t levels_;       //!< log2(ways)
    std::vector<bool> bits_;     //!< ways-1 tree bits
};

/**
 * Bit-PLRU (a.k.a. MRU replacement): one MRU bit per way.
 *
 * On an access *hit*, the way's bit is set; if that saturates all bits,
 * every bit is cleared and then the accessed way's bit is set again.  The
 * victim is the lowest-indexed way whose MRU bit is clear.  Fills do NOT
 * set the MRU bit (the behaviour the paper's Table I numbers imply: with
 * Sequence 1 the just-filled way keeps being the victim, so line 0 is
 * evicted 100% of the time once the loop reaches steady state).
 */
class BitPlru : public ReplacementPolicy
{
  public:
    explicit BitPlru(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    void onFill(std::uint32_t way) override;
    std::uint32_t victim() const override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::BitPlru; }
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplState state() const override;

    bool mruBit(std::uint32_t way) const { return mru_[way]; }

  private:
    std::vector<bool> mru_;
};

/**
 * FIFO (round-robin): state advances only on fills.  Cache hits do not
 * change the state, which is exactly why the paper proposes it as an
 * LRU-channel defense: a hitting sender becomes invisible.
 */
class Fifo : public ReplacementPolicy
{
  public:
    explicit Fifo(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    void onFill(std::uint32_t way) override;
    std::uint32_t victim() const override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::Fifo; }
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplState state() const override;

  private:
    /** fifo_[0] is the oldest fill (next victim). */
    std::vector<std::uint32_t> fifo_;
};

/**
 * Random replacement: no state beyond a private deterministic stream so
 * experiments reproduce.  victim() peeks the stream; selectVictim()
 * advances it (this policy's documented mutation).
 */
class RandomRepl : public ReplacementPolicy
{
  public:
    RandomRepl(std::uint32_t ways, std::uint64_t seed);

    void touch(std::uint32_t way) override;
    std::uint32_t victim() const override;
    std::uint32_t selectVictim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::Random; }
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplState state() const override;

  private:
    std::uint64_t seed_;
    Xoshiro256 rng_;
};

/**
 * SRRIP-HP (static re-reference interval prediction, hit priority) with
 * 2-bit RRPVs.  Insert at RRPV=2 ("long"), promote to 0 on hit; victim
 * is the first way at RRPV=3.  selectVictim() performs the aging (all
 * RRPVs rise until one saturates — this policy's documented mutation);
 * victim() only previews the outcome.
 */
class Srrip : public ReplacementPolicy
{
  public:
    explicit Srrip(std::uint32_t ways);

    void touch(std::uint32_t way) override;
    void onFill(std::uint32_t way) override;
    std::uint32_t victim() const override;
    std::uint32_t selectVictim() override;
    void reset() override;
    std::vector<std::uint8_t> stateBits() const override;
    ReplPolicyKind kind() const override { return ReplPolicyKind::Srrip; }
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplState state() const override;

    std::uint8_t rrpv(std::uint32_t way) const { return rrpv_[way]; }

    static constexpr std::uint8_t kMaxRrpv = SrripState::kMaxRrpv;
    static constexpr std::uint8_t kInsertRrpv = SrripState::kInsertRrpv;

  private:
    std::vector<std::uint8_t> rrpv_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_REPLACEMENT_HPP
