/**
 * @file
 * Cold paths of the value-semantic replacement core: construction, name
 * tables and the stateBits dumps (the hot per-access updates live inline
 * in repl_state.hpp).
 */

#include "sim/repl_state.hpp"

#include <cctype>
#include <stdexcept>

namespace lruleak::sim {

std::string_view
replPolicyName(ReplPolicyKind kind)
{
    switch (kind) {
      case ReplPolicyKind::TrueLru:  return "LRU";
      case ReplPolicyKind::TreePlru: return "TreePLRU";
      case ReplPolicyKind::BitPlru:  return "BitPLRU";
      case ReplPolicyKind::Fifo:     return "FIFO";
      case ReplPolicyKind::Random:   return "Random";
      case ReplPolicyKind::Srrip:    return "SRRIP";
    }
    return "unknown";
}

ReplPolicyKind
replPolicyFromName(std::string_view name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "lru" || lower == "truelru")
        return ReplPolicyKind::TrueLru;
    if (lower == "treeplru" || lower == "plru" || lower == "tree-plru")
        return ReplPolicyKind::TreePlru;
    if (lower == "bitplru" || lower == "mru" || lower == "bit-plru")
        return ReplPolicyKind::BitPlru;
    if (lower == "fifo" || lower == "roundrobin")
        return ReplPolicyKind::Fifo;
    if (lower == "random" || lower == "rand")
        return ReplPolicyKind::Random;
    if (lower == "srrip" || lower == "rrip")
        return ReplPolicyKind::Srrip;
    throw std::invalid_argument("unknown replacement policy: " +
                                std::string(name));
}

const std::vector<ReplPolicyKind> &
allReplPolicyKinds()
{
    static const std::vector<ReplPolicyKind> kinds{
        ReplPolicyKind::TrueLru, ReplPolicyKind::TreePlru,
        ReplPolicyKind::BitPlru, ReplPolicyKind::Fifo,
        ReplPolicyKind::Random,  ReplPolicyKind::Srrip,
    };
    return kinds;
}

void
checkWays(std::uint32_t ways)
{
    if (ways == 0 || ways > kMaxWays)
        throw std::invalid_argument(
            "replacement state supports 1.." + std::to_string(kMaxWays) +
            " ways, got " + std::to_string(ways));
}

// ---------------------------------------------------------------- TrueLru

TrueLruState::TrueLruState(std::uint32_t ways) : ways(ways)
{
    checkWays(ways);
    reset();
}

void
TrueLruState::reset()
{
    // Power-on order: way 0 is MRU, way N-1 is LRU.
    for (std::uint32_t w = 0; w < ways; ++w)
        age[w] = static_cast<std::uint8_t>(w);
}

std::vector<std::uint8_t>
TrueLruState::stateBits() const
{
    std::vector<std::uint8_t> out(ways);
    for (std::uint32_t w = 0; w < ways; ++w)
        out[age[w]] = static_cast<std::uint8_t>(w);
    return out;
}

// --------------------------------------------------------------- TreePlru

namespace {

/** Integer log2 for powers of two. */
std::uint32_t
log2u(std::uint32_t value)
{
    std::uint32_t bits = 0;
    while (value > 1) {
        value >>= 1;
        ++bits;
    }
    return bits;
}

} // namespace

TreePlruState::TreePlruState(std::uint32_t ways)
    : ways(ways), levels(log2u(ways))
{
    checkWays(ways);
    if (ways < 2 || (ways & (ways - 1)) != 0)
        throw std::invalid_argument(
            "TreePlruState requires power-of-two ways");
}

std::vector<std::uint8_t>
TreePlruState::stateBits() const
{
    std::vector<std::uint8_t> out(ways - 1);
    for (std::uint32_t i = 0; i < ways - 1; ++i)
        out[i] = static_cast<std::uint8_t>((bits >> i) & 1u);
    return out;
}

// ---------------------------------------------------------------- BitPlru

BitPlruState::BitPlruState(std::uint32_t ways) : ways(ways)
{
    checkWays(ways);
}

std::vector<std::uint8_t>
BitPlruState::stateBits() const
{
    std::vector<std::uint8_t> out(ways);
    for (std::uint32_t w = 0; w < ways; ++w)
        out[w] = static_cast<std::uint8_t>((mru >> w) & 1u);
    return out;
}

// ------------------------------------------------------------------- Fifo

FifoState::FifoState(std::uint32_t ways) : ways(ways)
{
    checkWays(ways);
    reset();
}

void
FifoState::reset()
{
    for (std::uint32_t w = 0; w < ways; ++w)
        order[w] = static_cast<std::uint8_t>(w);
}

std::vector<std::uint8_t>
FifoState::stateBits() const
{
    return std::vector<std::uint8_t>(order.begin(),
                                     order.begin() + ways);
}

// ------------------------------------------------------------------ Srrip

SrripState::SrripState(std::uint32_t ways) : ways(ways)
{
    checkWays(ways);
    reset();
}

void
SrripState::reset()
{
    for (std::uint32_t w = 0; w < ways; ++w)
        rrpv[w] = kMaxRrpv;
}

std::vector<std::uint8_t>
SrripState::stateBits() const
{
    return std::vector<std::uint8_t>(rrpv.begin(), rrpv.begin() + ways);
}

// -------------------------------------------------------------- ReplState

ReplState
ReplState::make(ReplPolicyKind kind, std::uint32_t ways, std::uint64_t seed)
{
    switch (kind) {
      case ReplPolicyKind::TrueLru:  return ReplState(TrueLruState(ways));
      case ReplPolicyKind::TreePlru: return ReplState(TreePlruState(ways));
      case ReplPolicyKind::BitPlru:  return ReplState(BitPlruState(ways));
      case ReplPolicyKind::Fifo:     return ReplState(FifoState(ways));
      case ReplPolicyKind::Random:
        return ReplState(RandomState(ways, seed));
      case ReplPolicyKind::Srrip:    return ReplState(SrripState(ways));
    }
    throw std::invalid_argument("bad ReplPolicyKind");
}

} // namespace lruleak::sim
