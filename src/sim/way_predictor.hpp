/**
 * @file
 * AMD Zen linear-address utag / way-predictor model (Section VI-B).
 *
 * The Zen L1D predicts the hitting way from a hash ("utag") of the load's
 * *linear* (virtual) address while the TLB translates it.  If the utag
 * stored with the line was trained by a different virtual address, the
 * access behaves like an L1 miss even though the physical tag matches.
 * This is what breaks Algorithm 1 across separate address spaces on AMD
 * while leaving the same-address-space (pthread) variant intact.
 */

#ifndef LRULEAK_SIM_WAY_PREDICTOR_HPP
#define LRULEAK_SIM_WAY_PREDICTOR_HPP

#include <cstdint>

#include "sim/address.hpp"

namespace lruleak::sim {

/**
 * Computes the micro-tag of a virtual address.  The real hash is
 * undocumented; we use a xor-fold of the virtual line address, which has
 * the property the attack cares about: equal VAs collide, distinct VAs
 * almost never do.
 */
class WayPredictor
{
  public:
    /** Hash the linear address of a load into a 8-bit utag. */
    static constexpr std::uint16_t
    utag(Addr vaddr)
    {
        std::uint64_t x = vaddr >> 6; // line address
        x ^= x >> 17;
        x *= 0xed5ad4bbULL;
        x ^= x >> 11;
        x *= 0xac4c1b51ULL;
        x ^= x >> 15;
        return static_cast<std::uint16_t>(x & 0xff);
    }
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_WAY_PREDICTOR_HPP
