/**
 * @file
 * DAWG and Random Fill cache implementations.
 */

#include "sim/secure_caches.hpp"

#include <stdexcept>

namespace lruleak::sim {

// ---------------------------------------------------------------- DAWG

DawgCache::DawgCache(const CacheConfig &config, std::uint32_t domains)
    : config_(config), layout_(config.line_size, config.numSets()),
      domains_(domains), ways_per_domain_(config.ways / domains)
{
    config_.validate();
    if (domains == 0 || config.ways % domains != 0 ||
        (ways_per_domain_ & (ways_per_domain_ - 1)) != 0)
        throw std::invalid_argument(
            "DawgCache: domains must evenly split the ways into "
            "power-of-two partitions");

    const std::size_t n =
        static_cast<std::size_t>(layout_.numSets()) * domains_;
    sets_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        sets_.push_back(DomainSet{
            std::vector<Way>(ways_per_domain_),
            ReplState::make(config.policy, ways_per_domain_, config.seed)});
}

DawgCache::DomainSet &
DawgCache::domainSet(std::uint32_t set, DomainId domain)
{
    return sets_[static_cast<std::size_t>(set) * domains_ + domain];
}

const DawgCache::DomainSet &
DawgCache::domainSet(std::uint32_t set, DomainId domain) const
{
    return sets_[static_cast<std::size_t>(set) * domains_ + domain];
}

SecureAccessResult
DawgCache::access(const MemRef &ref, DomainId domain)
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    DomainSet &ds = domainSet(set, domain % domains_);

    SecureAccessResult res;
    for (std::uint32_t w = 0; w < ways_per_domain_; ++w) {
        if (ds.ways[w].valid && ds.ways[w].tag == tag) {
            // Hit inside the domain: only this domain's state moves.
            ds.repl.touch(w);
            res.hit = true;
            return res;
        }
    }

    // Miss: fill within the domain's partition only.
    std::uint32_t victim = kNoWay;
    for (std::uint32_t w = 0; w < ways_per_domain_; ++w) {
        if (!ds.ways[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == kNoWay)
        victim = ds.repl.selectVictim();
    if (ds.ways[victim].valid)
        res.evicted_line = layout_.compose(ds.ways[victim].tag, set);
    ds.ways[victim].tag = tag;
    ds.ways[victim].valid = true;
    ds.repl.onFill(victim);
    res.filled = true;
    return res;
}

bool
DawgCache::contains(const MemRef &ref, DomainId domain) const
{
    const std::uint32_t set = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    const DomainSet &ds = domainSet(set, domain % domains_);
    for (const auto &way : ds.ways) {
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

std::vector<std::uint8_t>
DawgCache::replacementState(std::uint32_t set, DomainId domain) const
{
    return domainSet(set, domain % domains_).repl.stateBits();
}

// --------------------------------------------------------- Random Fill

RandomFillCache::RandomFillCache(const CacheConfig &config,
                                 std::uint32_t fill_window_lines,
                                 std::uint64_t seed)
    : config_(config), layout_(config.line_size, config.numSets()),
      fill_window_lines_(fill_window_lines ? fill_window_lines : 1),
      rng_(seed)
{
    config_.validate();
    sets_.reserve(layout_.numSets());
    for (std::uint32_t s = 0; s < layout_.numSets(); ++s)
        sets_.push_back(Set{
            std::vector<Way>(config.ways),
            ReplState::make(config.policy, config.ways, config.seed)});
}

SecureAccessResult
RandomFillCache::access(const MemRef &ref)
{
    const std::uint32_t set_idx = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    Set &set = sets_[set_idx];

    SecureAccessResult res;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (set.ways[w].valid && set.ways[w].tag == tag) {
            // The paper's observation: a HIT still updates the
            // replacement state, so the LRU channel survives this
            // defense.
            set.repl.touch(w);
            res.hit = true;
            return res;
        }
    }

    // Miss: the demand load is served uncached.  Fill a random line
    // from the +-window neighbourhood instead (it lands wherever its
    // own set index says).
    const std::int64_t offset =
        rng_.range(1, static_cast<std::int64_t>(fill_window_lines_)) *
        (rng_.chance(0.5) ? 1 : -1);
    const Addr fill_vaddr = static_cast<Addr>(
        static_cast<std::int64_t>(layout_.lineBase(ref.vaddr)) +
        offset * static_cast<std::int64_t>(config_.line_size));
    const Addr fill_paddr = fill_vaddr + (ref.paddr - ref.vaddr);

    const std::uint32_t fill_set = layout_.setIndex(fill_vaddr);
    const Addr fill_tag = layout_.tag(fill_paddr);
    Set &target = sets_[fill_set];

    bool present = false;
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        present |= target.ways[w].valid && target.ways[w].tag == fill_tag;
    if (!present) {
        std::uint32_t victim = kNoWay;
        for (std::uint32_t w = 0; w < config_.ways; ++w) {
            if (!target.ways[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == kNoWay)
            victim = target.repl.selectVictim();
        if (target.ways[victim].valid)
            res.evicted_line =
                layout_.compose(target.ways[victim].tag, fill_set);
        target.ways[victim].tag = fill_tag;
        target.ways[victim].valid = true;
        target.repl.onFill(victim);
        res.filled = true;
    }
    return res;
}

bool
RandomFillCache::contains(const MemRef &ref) const
{
    const std::uint32_t set_idx = layout_.setIndex(ref.vaddr);
    const Addr tag = layout_.tag(ref.paddr);
    for (const auto &way : sets_[set_idx].ways) {
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

std::vector<std::uint8_t>
RandomFillCache::replacementState(std::uint32_t set) const
{
    return sets_[set].repl.stateBits();
}

} // namespace lruleak::sim
