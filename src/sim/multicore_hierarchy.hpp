/**
 * @file
 * Multi-core cache topology: N cores with private L1D/L2 stacks behind
 * one shared *inclusive* LLC.
 *
 * The single-core CacheHierarchy models the paper's hyper-threaded and
 * time-sliced settings, where sender and receiver share a physical core
 * and its L1.  The cross-core scenario family instead communicates
 * through the shared LLC, and its channel relies on one specific piece
 * of coherence machinery: **back-invalidation**.  An inclusive LLC
 * guarantees that every line valid in any private cache is also present
 * in the LLC; to keep that invariant, an LLC eviction must invalidate
 * the victim line in every core's private caches.  That is exactly how
 * a receiver's LLC-set walk reaches across cores and kicks the sender's
 * line out of the sender's own L1 — and how the sender's fills, in
 * turn, disturb the LLC replacement state the receiver decodes.
 *
 * Address-space note: the multi-core scenarios run with identity VA==PA
 * mappings (as all the Algorithm-2 layouts do), so back-invalidation
 * and the inclusion audit index private caches with the physical line
 * base reconstructed from the LLC's (tag, set).  The single-core-only
 * features (PL locking, the AMD way predictor, the stride prefetcher)
 * are not modelled here.
 */

#ifndef LRULEAK_SIM_MULTICORE_HIERARCHY_HPP
#define LRULEAK_SIM_MULTICORE_HIERARCHY_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/hierarchy.hpp"

namespace lruleak::sim {

/** Configuration of the whole multi-core topology. */
struct MultiCoreConfig
{
    std::uint32_t cores = 2;               //!< number of cores (>= 1)
    CacheConfig l1 = CacheConfig::intelL1d();  //!< per-core private L1D
    CacheConfig l2 = CacheConfig::intelL2();   //!< per-core private L2
    CacheConfig llc = CacheConfig::intelLlc(); //!< shared inclusive LLC
    std::uint64_t seed = 0; //!< base seed (per-core caches derive theirs)

    /** Member-wise equality (drives the session topology reuse pool). */
    bool operator==(const MultiCoreConfig &) const = default;
};

/** Outcome of one multi-core access. */
struct MultiCoreAccessResult
{
    HitLevel level = HitLevel::Memory; //!< level that served the data
    bool llc_filled = false;           //!< the access installed an LLC line
    std::uint32_t back_invalidated = 0; //!< private copies removed by the
                                        //!< LLC eviction this fill caused
    std::uint32_t writebacks = 0;      //!< write-back transactions this
                                       //!< access triggered (dirty private
                                       //!< victims, dirty LLC victims and
                                       //!< their back-invalidated copies —
                                       //!< the latter exactly once per line)
};

/**
 * N private L1D/L2 stacks sharing one inclusive LLC.
 *
 * Inclusion invariant: every line valid in any private cache is present
 * in the LLC.  Maintained by (a) installing every demand miss into the
 * LLC on the same access that fills the private caches and (b) back-
 * invalidating LLC eviction victims out of every private cache.
 * auditInclusion() walks the full topology and reports the first
 * violation — the debug-only safety net the multi-core scheduler runs.
 */
class MultiCoreHierarchy
{
  public:
    explicit MultiCoreHierarchy(const MultiCoreConfig &config = {});

    /**
     * Demand access issued by @p core.  Fills every missed level; an LLC
     * fill that displaces a valid victim back-invalidates that line in
     * all cores' private caches.
     */
    MultiCoreAccessResult access(std::uint32_t core, const MemRef &ref);

    /**
     * Replay a whole access sequence from @p core, recording the level
     * each access was served from (semantically one access() per ref).
     * Used by the execution engine's kernel-noise bursts in the
     * time-sliced-over-multicore scenarios.
     * @pre levels.size() >= refs.size()
     */
    void accessBatch(std::uint32_t core, std::span<const MemRef> refs,
                     std::span<HitLevel> levels);

    /** Same, for callers that do not need the individual outcomes. */
    void accessBatch(std::uint32_t core, std::span<const MemRef> refs);

    /**
     * Batched demand run for the engine's AccessRun op: per-ref levels
     * out, summed write-back transactions returned.
     * @pre levels.size() >= refs.size()
     */
    std::uint64_t accessRun(std::uint32_t core, std::span<const MemRef> refs,
                            std::span<HitLevel> levels);

    /**
     * clflush: remove the line from every cache of every core.  Reports
     * whether any copy existed and whether any of them was dirty (the
     * flush then stalls until the data reaches memory).
     */
    CacheFlushResult flush(const MemRef &ref);

    /** Level a demand access by @p core would hit (no state change). */
    HitLevel peekLevel(std::uint32_t core, const MemRef &ref) const;

    /** Present in the shared LLC? (no state change) */
    bool inLlc(const MemRef &ref) const { return llc_->contains(ref); }

    Cache &l1(std::uint32_t core) { return *l1_[core]; }
    Cache &l2(std::uint32_t core) { return *l2_[core]; }
    Cache &llc() { return *llc_; }
    const Cache &l1(std::uint32_t core) const { return *l1_[core]; }
    const Cache &l2(std::uint32_t core) const { return *l2_[core]; }
    const Cache &llc() const { return *llc_; }

    std::uint32_t cores() const
    {
        return static_cast<std::uint32_t>(l1_.size());
    }

    const MultiCoreConfig &config() const { return config_; }

    /** Total private-cache lines removed by back-invalidation so far. */
    std::uint64_t backInvalidations() const { return back_invalidations_; }

    /** Total memory write-back transactions performed so far (dirty
     *  evictions, dirty back-invalidations, dirty flushes). */
    std::uint64_t dirtyWritebacks() const { return dirty_writebacks_; }

    /**
     * Inclusion audit: walk every valid private-cache line and probe the
     * LLC for it, and check dirty-state coherence (a dirty bit may only
     * annotate a valid line, at every level including the LLC).  Returns
     * a description of the first violating line, or nullopt when the
     * invariants hold.  Read-only; cost is proportional to the
     * private-cache capacity, so callers sample it (see the multi-core
     * scheduler's audit_every knob).
     */
    std::optional<std::string> auditInclusion() const;

    /** Reset contents, replacement state and counters of every cache. */
    void reset();

    /** Reset only the performance counters (start of a measured region). */
    void resetCounters();

  private:
    /**
     * Remove @p line_base from every core's private caches.  @return
     * true iff any removed copy was dirty — the caller must then issue
     * exactly one memory write-back for the line (the dirty data is
     * drained before the invalidation completes).
     */
    bool backInvalidate(Addr line_base);

    /** Land a dirty victim evicted from @p core's cache at @p level
     *  (0 = L1, 1 = L2) in the next write-back level holding the line,
     *  or in memory. */
    void landPrivateWriteback(std::uint32_t core, int level,
                              Addr line_base);

    /** Is the shared level a SHARP-protected cache? */
    bool
    sharpLlc() const
    {
        return config_.llc.secure == SecureMode::Sharp;
    }

    MultiCoreConfig config_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;
    std::uint64_t back_invalidations_ = 0;
    std::uint64_t dirty_writebacks_ = 0;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_MULTICORE_HIERARCHY_HPP
