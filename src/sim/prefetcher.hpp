/**
 * @file
 * Hardware prefetcher models (Appendix C noise source).
 *
 * During the Spectre experiments the attacker scans many sets with
 * regular strides, which real L1 prefetchers latch onto; the prefetched
 * fills perturb the LRU state of neighbouring sets.  The paper defeats
 * this by scanning sets in a fresh random order each round.  These models
 * create exactly that noise.
 */

#ifndef LRULEAK_SIM_PREFETCHER_HPP
#define LRULEAK_SIM_PREFETCHER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/address.hpp"

namespace lruleak::sim {

/**
 * Prefetcher interface: observes demand accesses and proposes line
 * addresses to prefetch into L1.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe a demand access.
     * @param ref the access
     * @param l1_hit whether it hit in L1
     * @return virtual line addresses to prefetch (may be empty)
     */
    virtual std::vector<Addr> observe(const MemRef &ref, bool l1_hit) = 0;

    /** Forget all training state. */
    virtual void reset() = 0;
};

/** Fetches line+1 on every L1 miss (DCU next-line prefetcher). */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(std::uint32_t line_size = 64)
        : line_size_(line_size)
    {}

    std::vector<Addr>
    observe(const MemRef &ref, bool l1_hit) override
    {
        if (l1_hit)
            return {};
        return {(ref.vaddr & ~(Addr{line_size_} - 1)) + line_size_};
    }

    void reset() override {}

  private:
    std::uint32_t line_size_;
};

/**
 * Per-thread stride detector (IP-stride style): after two accesses with
 * the same line-granular stride it prefetches @c degree lines ahead.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(std::uint32_t line_size = 64,
                              std::uint32_t degree = 2)
        : line_size_(line_size), degree_(degree)
    {}

    std::vector<Addr>
    observe(const MemRef &ref, bool) override
    {
        const Addr line = ref.vaddr & ~(Addr{line_size_} - 1);
        auto &st = streams_[ref.thread];
        std::vector<Addr> out;
        if (st.valid) {
            const std::int64_t stride =
                static_cast<std::int64_t>(line) -
                static_cast<std::int64_t>(st.last_line);
            if (stride != 0 && stride == st.last_stride) {
                ++st.confidence;
                if (st.confidence >= 2) {
                    for (std::uint32_t i = 1; i <= degree_; ++i)
                        out.push_back(static_cast<Addr>(
                            static_cast<std::int64_t>(line) +
                            stride * static_cast<std::int64_t>(i)));
                }
            } else {
                st.confidence = 0;
            }
            st.last_stride = stride;
        }
        st.last_line = line;
        st.valid = true;
        return out;
    }

    void reset() override { streams_.clear(); }

  private:
    struct Stream
    {
        bool valid = false;
        Addr last_line = 0;
        std::int64_t last_stride = 0;
        std::uint32_t confidence = 0;
    };

    std::uint32_t line_size_;
    std::uint32_t degree_;
    std::map<ThreadId, Stream> streams_;
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_PREFETCHER_HPP
