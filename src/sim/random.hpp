/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component of lruleak (interleaving jitter, timing noise,
 * random replacement, kernel noise) draws from an explicitly seeded
 * Xoshiro256** stream so that every experiment is reproducible
 * bit-for-bit.  std::mt19937_64 is avoided because its seeding and
 * distribution behaviour is not identical across standard libraries.
 */

#ifndef LRULEAK_SIM_RANDOM_HPP
#define LRULEAK_SIM_RANDOM_HPP

#include <cstdint>

namespace lruleak::sim {

/** SplitMix64 step, used to expand a single seed into a full state. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Xoshiro256** generator (Blackman & Vigna).  Small, fast, and with a
 * well-understood state layout; good enough for simulation noise, never
 * used for cryptography.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit constexpr Xoshiro256(std::uint64_t seed = 0x1ee7c0ffeeULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    constexpr result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire-style rejection-free
     *  multiply-shift (bias negligible for simulation purposes). */
    constexpr std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // 128-bit multiply-high keeps the value uniform over [0, bound).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    constexpr std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    constexpr double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    constexpr bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Approximately normal deviate (mean 0, stddev 1) via the sum of
     * twelve uniforms (Irwin-Hall).  Cheap, deterministic, and more than
     * accurate enough for timing-noise modelling within +-3 sigma.
     */
    constexpr double
    gaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += uniform();
        return acc - 6.0;
    }

    /** Fork an independent stream (for per-component sub-generators). */
    constexpr Xoshiro256
    fork()
    {
        return Xoshiro256((*this)() ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Streams compare equal iff their next outputs are identical. */
    constexpr bool operator==(const Xoshiro256 &) const = default;

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace lruleak::sim

#endif // LRULEAK_SIM_RANDOM_HPP
