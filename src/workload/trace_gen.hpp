/**
 * @file
 * Synthetic workload generators standing in for SPEC CPU2006 (Fig. 9).
 *
 * SPEC and GEM5 are not available offline, so the defense-performance
 * study runs over ten synthetic workloads spanning the locality classes
 * that drive L1 replacement behaviour: pure streaming, random pointer
 * chasing, hot loops with zipf reuse, blocked array walks, stencils, two
 * concurrent streams, and mixtures.  Fig. 9's claim is relative (FIFO /
 * Random vs Tree-PLRU changes L1D miss rate a little and CPI < 2 %), so
 * covering the locality classes reproduces the shape.
 */

#ifndef LRULEAK_WORKLOAD_TRACE_GEN_HPP
#define LRULEAK_WORKLOAD_TRACE_GEN_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/address.hpp"
#include "sim/random.hpp"

namespace lruleak::workload {

/**
 * A stream of data addresses plus the fraction of instructions that
 * reference memory (used by the CPI model).
 */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Next data address (line-granular behaviour emerges naturally). */
    virtual sim::Addr next(sim::Xoshiro256 &rng) = 0;

    /** Workload label used in tables. */
    virtual std::string name() const = 0;

    /** Fraction of instructions that are loads/stores. */
    virtual double memFraction() const { return 0.35; }

    /** Restart the stream. */
    virtual void reset() {}
};

/** The full synthetic suite, in a stable order. */
std::vector<std::unique_ptr<TraceGenerator>> makeWorkloadSuite();

/** Construct one workload by name (throws std::invalid_argument). */
std::unique_ptr<TraceGenerator> makeWorkload(const std::string &name);

/** Names of the suite's workloads in order. */
std::vector<std::string> workloadNames();

} // namespace lruleak::workload

#endif // LRULEAK_WORKLOAD_TRACE_GEN_HPP
