/**
 * @file
 * The synthetic workload suite.
 */

#include "workload/trace_gen.hpp"

#include <cmath>
#include <stdexcept>

namespace lruleak::workload {

namespace {

constexpr sim::Addr kHeapBase = 0x0900'0000'0000ULL;

/** Zipf-ish rank sampler: rank ~ floor(n * u^theta). */
std::uint64_t
zipfRank(sim::Xoshiro256 &rng, std::uint64_t n, double theta = 2.0)
{
    const double u = rng.uniform();
    const double r = std::pow(u, theta) * static_cast<double>(n);
    const auto rank = static_cast<std::uint64_t>(r);
    return rank >= n ? n - 1 : rank;
}

/** Sequential walk over a large array (libquantum-like). */
class Streaming : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &) override
    {
        const sim::Addr a = kHeapBase + (pos_ % kSpan);
        pos_ += 8; // element-granular stream
        return a;
    }

    std::string name() const override { return "stream"; }
    double memFraction() const override { return 0.40; }
    void reset() override { pos_ = 0; }

  private:
    static constexpr std::uint64_t kSpan = 4ULL << 20;
    std::uint64_t pos_ = 0;
};

/** Random pointer chasing over a big working set (mcf-like). */
class PointerChase : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &rng) override
    {
        return kHeapBase + rng.below(kSpan / 64) * 64;
    }

    std::string name() const override { return "ptrchase"; }
    double memFraction() const override { return 0.42; }

  private:
    static constexpr std::uint64_t kSpan = 8ULL << 20;
};

/** Small hot loop with zipf reuse and rare cold misses (perl-like). */
class HotLoop : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &rng) override
    {
        if (rng.chance(0.05))
            return kHeapBase + (1ULL << 24) + rng.below(1ULL << 22);
        return kHeapBase + zipfRank(rng, kHotLines) * 64;
    }

    std::string name() const override { return "hotloop"; }
    double memFraction() const override { return 0.30; }

  private:
    static constexpr std::uint64_t kHotLines = 256; // 16 KiB hot set
};

/** Blocked 2-D array walk (bwaves-like). */
class BlockedWalk : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &) override
    {
        const std::uint64_t row = (step_ / kBlock) % kBlock;
        const std::uint64_t col = step_ % kBlock;
        const std::uint64_t block = (step_ / (kBlock * kBlock)) % kBlocks;
        ++step_;
        return kHeapBase + block * kBlock * kRowBytes + row * kRowBytes +
               col * 8;
    }

    std::string name() const override { return "blocked"; }
    double memFraction() const override { return 0.45; }
    void reset() override { step_ = 0; }

  private:
    static constexpr std::uint64_t kBlock = 64;
    static constexpr std::uint64_t kBlocks = 24;
    static constexpr std::uint64_t kRowBytes = 2048;
    std::uint64_t step_ = 0;
};

/** 7-point stencil over a 3-D grid (milc-like). */
class Stencil3d : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &) override
    {
        static constexpr std::int64_t offsets[7] = {
            0, -8, 8,
            -static_cast<std::int64_t>(kRow),
            static_cast<std::int64_t>(kRow),
            -static_cast<std::int64_t>(kPlane),
            static_cast<std::int64_t>(kPlane)};
        const std::int64_t off = offsets[point_ % 7];
        if (point_ % 7 == 6)
            center_ = (center_ + 8) % kGrid;
        ++point_;
        std::int64_t a = static_cast<std::int64_t>(center_) + off;
        if (a < 0)
            a += kGrid;
        return kHeapBase +
               static_cast<std::uint64_t>(a) % kGrid;
    }

    std::string name() const override { return "stencil3d"; }
    double memFraction() const override { return 0.44; }
    void reset() override { center_ = kPlane; point_ = 0; }

  private:
    static constexpr std::uint64_t kRow = 4096;
    static constexpr std::uint64_t kPlane = kRow * 64;
    static constexpr std::uint64_t kGrid = kPlane * 8; // 2 MiB
    std::uint64_t center_ = kPlane;
    std::uint64_t point_ = 0;
};

/** Sequential build side + random probe side (hash-join-like). */
class HashJoin : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &rng) override
    {
        if ((toggle_++ & 1) == 0) {
            const sim::Addr a = kHeapBase + (build_ % kBuildSpan);
            build_ += 8;
            return a;
        }
        return kHeapBase + (8ULL << 20) + rng.below(kTableLines) * 64;
    }

    std::string name() const override { return "hashjoin"; }
    double memFraction() const override { return 0.38; }
    void reset() override { build_ = 0; toggle_ = 0; }

  private:
    static constexpr std::uint64_t kBuildSpan = 2ULL << 20;
    static constexpr std::uint64_t kTableLines = 16384; // 1 MiB table
    std::uint64_t build_ = 0;
    std::uint64_t toggle_ = 0;
};

/** Zipf object graph over a medium heap (xalancbmk-like). */
class ZipfObjects : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &rng) override
    {
        const std::uint64_t obj = zipfRank(rng, kObjects, 1.6);
        const std::uint64_t field = rng.below(4) * 16;
        return kHeapBase + obj * 128 + field;
    }

    std::string name() const override { return "zipfobj"; }
    double memFraction() const override { return 0.33; }

  private:
    static constexpr std::uint64_t kObjects = 4096; // 512 KiB heap
};

/** Mixture of hot/medium/cold regions (gcc-like). */
class GccMix : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &rng) override
    {
        const double u = rng.uniform();
        if (u < 0.60)
            return kHeapBase + rng.below(512) * 64; // 32 KiB hot
        if (u < 0.90)
            return kHeapBase + (1ULL << 20) + rng.below(4096) * 64;
        return kHeapBase + (16ULL << 20) + rng.below(65536) * 64;
    }

    std::string name() const override { return "gccmix"; }
    double memFraction() const override { return 0.33; }
};

/** Tiny working set with heavy reuse (sjeng-like). */
class StackHeavy : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &rng) override
    {
        if (rng.chance(0.02))
            return kHeapBase + (4ULL << 20) + rng.below(1ULL << 20);
        return kHeapBase + rng.below(128) * 64; // 8 KiB
    }

    std::string name() const override { return "stackheavy"; }
    double memFraction() const override { return 0.25; }
};

/** Two interleaved sequential streams (hmmer-like). */
class DualStream : public TraceGenerator
{
  public:
    sim::Addr
    next(sim::Xoshiro256 &) override
    {
        const bool second = (toggle_++ & 1) != 0;
        std::uint64_t &pos = second ? pos_b_ : pos_a_;
        const sim::Addr base = second ? kHeapBase + (32ULL << 20)
                                      : kHeapBase;
        const sim::Addr a = base + (pos % (2ULL << 20));
        pos += 8;
        return a;
    }

    std::string name() const override { return "dualstream"; }
    double memFraction() const override { return 0.38; }
    void reset() override { pos_a_ = pos_b_ = 0; toggle_ = 0; }

  private:
    std::uint64_t pos_a_ = 0;
    std::uint64_t pos_b_ = 0;
    std::uint64_t toggle_ = 0;
};

} // namespace

std::vector<std::unique_ptr<TraceGenerator>>
makeWorkloadSuite()
{
    std::vector<std::unique_ptr<TraceGenerator>> suite;
    suite.push_back(std::make_unique<Streaming>());
    suite.push_back(std::make_unique<PointerChase>());
    suite.push_back(std::make_unique<HotLoop>());
    suite.push_back(std::make_unique<BlockedWalk>());
    suite.push_back(std::make_unique<Stencil3d>());
    suite.push_back(std::make_unique<HashJoin>());
    suite.push_back(std::make_unique<ZipfObjects>());
    suite.push_back(std::make_unique<GccMix>());
    suite.push_back(std::make_unique<StackHeavy>());
    suite.push_back(std::make_unique<DualStream>());
    return suite;
}

std::unique_ptr<TraceGenerator>
makeWorkload(const std::string &name)
{
    for (auto &w : makeWorkloadSuite()) {
        if (w->name() == name)
            return std::move(w);
    }
    throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : makeWorkloadSuite())
        names.push_back(w->name());
    return names;
}

} // namespace lruleak::workload
