/**
 * @file
 * Simple in-order CPI model for the defense-performance study (Fig. 9)
 * plus ThreadProgram adapters so workloads can co-run with channel
 * parties (Table VI's "sender & gcc" baseline).
 *
 * Every instruction costs one base cycle; a memory instruction that
 * misses L1 additionally stalls for the difference between the serving
 * level's latency and the L1 latency.  This is deliberately simpler than
 * the paper's out-of-order GEM5 core; since Fig. 9 reports *normalized*
 * CPI, the relative effect of the L1 replacement policy survives (an
 * in-order core actually upper-bounds the CPI impact, making our < 2 %
 * check conservative).
 */

#ifndef LRULEAK_WORKLOAD_CPU_MODEL_HPP
#define LRULEAK_WORKLOAD_CPU_MODEL_HPP

#include <cstdint>
#include <string>

#include "exec/op.hpp"
#include "sim/hierarchy.hpp"
#include "sim/random.hpp"
#include "timing/uarch.hpp"
#include "workload/trace_gen.hpp"

namespace lruleak::workload {

/** Result of one workload x policy run. */
struct CpuRunResult
{
    std::string workload;
    std::string policy;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double l1d_miss_rate = 0.0;
    double l2_miss_rate = 0.0;
    double cpi = 0.0;
};

/** Knobs of the CPI model. */
struct CpuModelConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    std::uint64_t instructions = 1'000'000;
    std::uint64_t warmup_instructions = 100'000; //!< not counted
    std::uint64_t seed = 11;
};

/**
 * Run @p workload over a hierarchy whose L1D uses @p policy and account
 * cycles with the in-order model.
 */
CpuRunResult runCpuModel(TraceGenerator &workload,
                         sim::ReplPolicyKind policy,
                         const CpuModelConfig &config = {});

/**
 * ThreadProgram adapter: replays a workload forever (the benign
 * co-runner of Table VI).  Issues one access per "instruction window",
 * with short spins standing in for non-memory work.
 */
class WorkloadProgram : public exec::ThreadProgram
{
  public:
    WorkloadProgram(std::unique_ptr<TraceGenerator> gen, std::uint64_t seed,
                    sim::ThreadId thread = 0, std::uint32_t spin_gap = 20)
        : gen_(std::move(gen)), rng_(seed), thread_(thread),
          spin_gap_(spin_gap)
    {}

    exec::Op
    next(std::uint64_t now) override
    {
        if (spin_next_) {
            spin_next_ = false;
            return exec::Op::spinUntil(now + spin_gap_);
        }
        spin_next_ = !rng_.chance(gen_->memFraction());
        const sim::Addr a = gen_->next(rng_);
        return exec::Op::access(sim::MemRef{a, a, thread_, false});
    }

  private:
    std::unique_ptr<TraceGenerator> gen_;
    sim::Xoshiro256 rng_;
    sim::ThreadId thread_;
    std::uint32_t spin_gap_;
    bool spin_next_ = false;
};

/** A program that only spins: the "sender only" co-runner. */
class IdleProgram : public exec::ThreadProgram
{
  public:
    explicit IdleProgram(std::uint32_t gap = 1000) : gap_(gap) {}

    exec::Op
    next(std::uint64_t now) override
    {
        return exec::Op::spinUntil(now + gap_);
    }

  private:
    std::uint32_t gap_;
};

} // namespace lruleak::workload

#endif // LRULEAK_WORKLOAD_CPU_MODEL_HPP
