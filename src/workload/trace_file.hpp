/**
 * @file
 * Memory-access trace files: load, store, generate.
 *
 * A trace is the fleet-mode answer to "what does the victim's traffic
 * look like?": instead of wiring a synthetic generator into every
 * scenario, a workload is captured ONCE into a file and replayed
 * anywhere an AccessPort exists — noise cores beside a covert Session,
 * the bench harness, or a bare hierarchy in a test.  Two formats share
 * one in-memory representation:
 *
 *   text    one access per line, `R <addr>` / `W <addr>` (addresses in
 *           decimal or 0x hex), `#` comments and blank lines ignored —
 *           trivially hand-editable and diffable;
 *
 *   binary  "LRUT" magic, a version byte, a record count, then one
 *           little-endian u64 per access with the write flag in bit 63
 *           (simulator addresses stay far below it) — 8 bytes per
 *           access for traces with millions of records.
 *
 * Loading sniffs the magic, so callers never pass a format flag.  Both
 * loaders reject malformed input with error messages naming the
 * offending line/offset; round-tripping either format preserves the
 * record sequence exactly.
 */

#ifndef LRULEAK_WORKLOAD_TRACE_FILE_HPP
#define LRULEAK_WORKLOAD_TRACE_FILE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/address.hpp"

namespace lruleak::workload {

/** One replayable access: an address and a load/store direction. */
struct TraceRecord
{
    sim::Addr addr = 0;
    bool is_write = false;

    /** As a MemRef issued by @p thread (same VA/PA, like the synthetic
     *  generators). */
    constexpr sim::MemRef
    ref(sim::ThreadId thread = 0) const
    {
        return sim::MemRef{addr, addr, thread, is_write};
    }

    friend constexpr bool
    operator==(const TraceRecord &a, const TraceRecord &b)
    {
        return a.addr == b.addr && a.is_write == b.is_write;
    }
};

/** An ordered access sequence plus where it came from. */
struct TraceFile
{
    std::vector<TraceRecord> records;
    std::string source; //!< path or generator label, for messages

    bool empty() const { return records.empty(); }
    std::size_t size() const { return records.size(); }
};

/** Highest address the binary format can carry (bit 63 is the write
 *  flag). */
inline constexpr sim::Addr kTraceAddrMax = ~(sim::Addr{1} << 63);

/** Parse the text format from a stream.  @p source names the input in
 *  error messages.  Throws std::runtime_error on malformed lines. */
TraceFile parseTextTrace(std::istream &in, const std::string &source);

/** Parse the binary format ("LRUT") from a stream.  Throws
 *  std::runtime_error on bad magic/version, truncation or trailing
 *  bytes. */
TraceFile parseBinaryTrace(std::istream &in, const std::string &source);

/**
 * Load a trace from @p path, sniffing the format from the first bytes
 * (binary magic wins, anything else is text).  Throws
 * std::runtime_error on an unreadable file or malformed content.
 */
TraceFile loadTrace(const std::string &path);

/** Write the text format.  Throws std::runtime_error on I/O failure. */
void saveTextTrace(const TraceFile &trace, const std::string &path);

/** Write the binary format.  Throws std::runtime_error on I/O failure
 *  or an address above kTraceAddrMax. */
void saveBinaryTrace(const TraceFile &trace, const std::string &path);

/**
 * Materialize @p count accesses of a synthetic workload (trace_gen
 * suite name) into a trace.  The generators produce load addresses;
 * each access is independently promoted to a store with probability
 * @p write_fraction, so one trace exercises the write path too.
 * Deterministic in (workload, count, seed, write_fraction).  Throws
 * std::invalid_argument on an unknown workload name or a
 * write_fraction outside [0, 1].
 */
TraceFile generateTrace(const std::string &workload, std::size_t count,
                        std::uint64_t seed, double write_fraction);

} // namespace lruleak::workload

#endif // LRULEAK_WORKLOAD_TRACE_FILE_HPP
