/**
 * @file
 * CPI model implementation.
 */

#include "workload/cpu_model.hpp"

#include <string>

namespace lruleak::workload {

CpuRunResult
runCpuModel(TraceGenerator &workload, sim::ReplPolicyKind policy,
            const CpuModelConfig &config)
{
    sim::HierarchyConfig h;
    h.l1 = sim::CacheConfig::intelL1d(policy);
    h.l1.seed = config.seed;
    sim::CacheHierarchy hierarchy(h);

    sim::Xoshiro256 rng(config.seed);
    workload.reset();

    const auto run_phase = [&](std::uint64_t instructions,
                               std::uint64_t &cycles) {
        for (std::uint64_t i = 0; i < instructions; ++i) {
            cycles += 1; // base cost of any instruction
            if (!rng.chance(workload.memFraction()))
                continue;
            const sim::Addr a = workload.next(rng);
            const auto res = hierarchy.access(sim::MemRef{a, a, 0, false});
            // L1 hits are pipelined away; misses stall for the extra
            // latency of the serving level.
            const std::uint32_t lat = config.uarch.latency(res.level);
            if (lat > config.uarch.l1_latency)
                cycles += lat - config.uarch.l1_latency;
        }
    };

    std::uint64_t warmup_cycles = 0;
    run_phase(config.warmup_instructions, warmup_cycles);
    hierarchy.resetCounters();

    std::uint64_t cycles = 0;
    run_phase(config.instructions, cycles);

    CpuRunResult res;
    res.workload = workload.name();
    res.policy = std::string(sim::replPolicyName(policy));
    res.instructions = config.instructions;
    res.cycles = cycles;
    res.l1d_miss_rate = hierarchy.l1().counters().total().missRate();
    res.l2_miss_rate = hierarchy.l2().counters().total().missRate();
    res.cpi = config.instructions
        ? static_cast<double>(cycles) /
          static_cast<double>(config.instructions)
        : 0.0;
    return res;
}

} // namespace lruleak::workload
