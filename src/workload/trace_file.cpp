/**
 * @file
 * Trace file parsing, serialization and synthetic generation.
 */

#include "workload/trace_file.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "sim/random.hpp"
#include "workload/trace_gen.hpp"

namespace lruleak::workload {

namespace {

constexpr char kMagic[4] = {'L', 'R', 'U', 'T'};
constexpr std::uint8_t kVersion = 1;
constexpr sim::Addr kWriteBit = sim::Addr{1} << 63;

[[noreturn]] void
badTrace(const std::string &source, const std::string &why)
{
    throw std::runtime_error("malformed trace " + source + ": " + why);
}

std::uint64_t
readLe64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
writeLe64(std::ostream &out, std::uint64_t v)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>(v >> (8 * i));
    out.write(bytes, 8);
}

} // namespace

TraceFile
parseTextTrace(std::istream &in, const std::string &source)
{
    TraceFile trace;
    trace.source = source;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const auto begin = line.find_first_not_of(" \t");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        std::istringstream fields(line.substr(begin));
        std::string op, addr_text, extra;
        fields >> op >> addr_text;
        if (op != "R" && op != "W") {
            badTrace(source, "line " + std::to_string(lineno) +
                                 ": opcode must be R or W, got '" + op +
                                 "'");
        }
        if (addr_text.empty()) {
            badTrace(source, "line " + std::to_string(lineno) +
                                 ": missing address");
        }
        if (fields >> extra) {
            badTrace(source, "line " + std::to_string(lineno) +
                                 ": trailing text '" + extra + "'");
        }
        sim::Addr addr = 0;
        try {
            std::size_t used = 0;
            addr = std::stoull(addr_text, &used, 0);
            if (used != addr_text.size())
                throw std::invalid_argument(addr_text);
        } catch (const std::exception &) {
            badTrace(source, "line " + std::to_string(lineno) +
                                 ": bad address '" + addr_text + "'");
        }
        trace.records.push_back(TraceRecord{addr, op == "W"});
    }
    return trace;
}

TraceFile
parseBinaryTrace(std::istream &in, const std::string &source)
{
    unsigned char header[16];
    in.read(reinterpret_cast<char *>(header), sizeof(header));
    if (in.gcount() != sizeof(header))
        badTrace(source, "truncated header");
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        badTrace(source, "bad magic (not an LRUT trace)");
    if (header[4] != kVersion) {
        badTrace(source, "unsupported version " +
                             std::to_string(header[4]) + " (expected " +
                             std::to_string(kVersion) + ")");
    }
    if (header[5] != 0 || header[6] != 0 || header[7] != 0)
        badTrace(source, "nonzero header padding");
    const std::uint64_t count = readLe64(header + 8);

    TraceFile trace;
    trace.source = source;
    trace.records.reserve(static_cast<std::size_t>(count));
    unsigned char word[8];
    for (std::uint64_t i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char *>(word), sizeof(word));
        if (in.gcount() != sizeof(word)) {
            badTrace(source, "truncated at record " + std::to_string(i) +
                                 " of " + std::to_string(count));
        }
        const std::uint64_t packed = readLe64(word);
        trace.records.push_back(
            TraceRecord{packed & ~kWriteBit, (packed & kWriteBit) != 0});
    }
    if (in.peek() != std::istream::traits_type::eof())
        badTrace(source, "trailing bytes after the last record");
    return trace;
}

TraceFile
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    const bool binary = in.gcount() == sizeof(magic) &&
                        std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
    in.clear();
    in.seekg(0);
    return binary ? parseBinaryTrace(in, path) : parseTextTrace(in, path);
}

void
saveTextTrace(const TraceFile &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot write trace file: " + path);
    for (const TraceRecord &r : trace.records) {
        out << (r.is_write ? 'W' : 'R') << " 0x" << std::hex << r.addr
            << std::dec << "\n";
    }
    if (!out.good())
        throw std::runtime_error("write failed: " + path);
}

void
saveBinaryTrace(const TraceFile &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot write trace file: " + path);
    out.write(kMagic, sizeof(kMagic));
    const char version_pad[4] = {static_cast<char>(kVersion), 0, 0, 0};
    out.write(version_pad, sizeof(version_pad));
    writeLe64(out, trace.records.size());
    for (const TraceRecord &r : trace.records) {
        if (r.addr > kTraceAddrMax) {
            throw std::runtime_error(
                "address does not fit the binary trace format: 0x" +
                [&] {
                    std::ostringstream os;
                    os << std::hex << r.addr;
                    return os.str();
                }());
        }
        writeLe64(out, r.addr | (r.is_write ? kWriteBit : 0));
    }
    if (!out.good())
        throw std::runtime_error("write failed: " + path);
}

TraceFile
generateTrace(const std::string &workload, std::size_t count,
              std::uint64_t seed, double write_fraction)
{
    if (!(write_fraction >= 0.0 && write_fraction <= 1.0)) {
        throw std::invalid_argument(
            "write fraction must be in [0, 1], got " +
            std::to_string(write_fraction));
    }
    const auto generator = makeWorkload(workload); // throws on bad name
    sim::Xoshiro256 addr_rng(seed);
    // Separate stream for the store promotion so the address sequence
    // is identical across write fractions.
    sim::Xoshiro256 write_rng(seed ^ 0x57524954'45532121ULL);

    TraceFile trace;
    trace.source = workload;
    trace.records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const sim::Addr addr = generator->next(addr_rng);
        const bool is_write =
            write_fraction > 0.0 &&
            write_rng.uniform() < write_fraction;
        trace.records.push_back(TraceRecord{addr, is_write});
    }
    return trace;
}

} // namespace lruleak::workload
