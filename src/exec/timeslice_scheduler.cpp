/**
 * @file
 * Deprecated TimeSliceScheduler shim implementation.
 */

#include "exec/timeslice_scheduler.hpp"

namespace lruleak::exec {

namespace {

EngineConfig
engineConfigFrom(const TimeSliceConfig &config)
{
    EngineConfig ec;
    ec.max_cycles = config.max_cycles;
    ec.op_overhead = config.op_overhead;
    ec.jitter = config.jitter;
    ec.seed = config.seed;
    return ec;
}

TimeSlicePolicyConfig
policyConfigFrom(const TimeSliceConfig &config)
{
    TimeSlicePolicyConfig pc;
    pc.quantum = config.quantum;
    pc.quantum_jitter = config.quantum_jitter;
    pc.switch_cost = config.switch_cost;
    pc.kernel_noise_lines = config.kernel_noise_lines;
    pc.background_prob = config.background_prob;
    pc.background_lines = config.background_lines;
    pc.tick_period = config.tick_period;
    pc.tick_lines = config.tick_lines;
    pc.kernel_thread = TimeSliceScheduler::kKernelThread;
    pc.background_thread = TimeSliceScheduler::kBackgroundThread;
    return pc;
}

} // namespace

TimeSliceScheduler::TimeSliceScheduler(sim::CacheHierarchy &hierarchy,
                                       const timing::Uarch &uarch,
                                       TimeSliceConfig config)
    : port_(hierarchy), policy_(policyConfigFrom(config)),
      engine_(port_, uarch, policy_, engineConfigFrom(config))
{
}

std::uint64_t
TimeSliceScheduler::run(ThreadProgram &thread0, ThreadProgram &thread1,
                        unsigned primary)
{
    return engine_.run(thread0, thread1, primary);
}

} // namespace lruleak::exec
