/**
 * @file
 * Time-sliced scheduler implementation.
 */

#include "exec/timeslice_scheduler.hpp"

#include <algorithm>

namespace lruleak::exec {

namespace {

/** Base of the simulated kernel's cache footprint. */
constexpr sim::Addr kKernelBase = 0x7f00'0000'0000ULL;
/** Base of the background process's footprint. */
constexpr sim::Addr kBackgroundBase = 0x6e00'0000'0000ULL;
/** Kernel working set in lines (spread uniformly over all sets). */
constexpr std::uint64_t kKernelLines = 4096;

} // namespace

TimeSliceScheduler::TimeSliceScheduler(sim::CacheHierarchy &hierarchy,
                                       const timing::Uarch &uarch,
                                       TimeSliceConfig config)
    : hierarchy_(hierarchy), uarch_(uarch), model_(uarch), config_(config),
      rng_(config.seed)
{
}

std::uint64_t
TimeSliceScheduler::executeOp(ThreadProgram &prog, const Op &op,
                              std::uint64_t start)
{
    const std::uint64_t jitter = config_.jitter ? rng_.below(config_.jitter)
                                                : 0;
    switch (op.kind) {
      case OpKind::Access: {
        const auto res = hierarchy_.access(op.ref, op.lock_req);
        OpResult out;
        out.kind = OpKind::Access;
        out.level = res.level;
        out.tsc = start;
        prog.onResult(out);
        return uarch_.latency(res.level) + config_.op_overhead + jitter;
      }
      case OpKind::Measure: {
        const auto res = hierarchy_.access(op.ref, op.lock_req);
        OpResult out;
        out.kind = OpKind::Measure;
        out.level = res.level;
        out.measured = model_.chase(op.chain_levels, res.level, rng_);
        out.tsc = start;
        prog.onResult(out);
        return uarch_.latency(res.level) + config_.op_overhead + jitter;
      }
      case OpKind::Flush: {
        hierarchy_.flush(op.ref);
        OpResult out;
        out.kind = OpKind::Flush;
        out.tsc = start;
        prog.onResult(out);
        return uarch_.mem_latency + config_.op_overhead + jitter;
      }
      case OpKind::SpinUntil:
      case OpKind::Done:
        return 0;
    }
    return 0;
}

void
TimeSliceScheduler::kernelBurst(std::uint64_t mean_lines)
{
    if (mean_lines == 0)
        return;
    // The kernel touches a variable number of lines from its working
    // set; the mean is mean_lines.  The whole burst is one batched
    // replay — only the summed latency matters.
    const std::uint64_t count = mean_lines / 2 + rng_.below(mean_lines + 1);
    burst_refs_.resize(count);
    burst_levels_.resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const sim::Addr line = kKernelBase + rng_.below(kKernelLines) * 64;
        burst_refs_[i] = sim::MemRef{line, line, kKernelThread, false};
    }
    hierarchy_.accessBatch(burst_refs_, burst_levels_);
    for (std::uint64_t i = 0; i < count; ++i)
        now_ += uarch_.latency(burst_levels_[i]);
}

void
TimeSliceScheduler::contextSwitchNoise()
{
    kernelBurst(config_.kernel_noise_lines);
}

void
TimeSliceScheduler::serviceTicks()
{
    if (config_.tick_period == 0)
        return;
    if (next_tick_ == 0)
        next_tick_ = now_ + config_.tick_period;
    while (now_ >= next_tick_) {
        kernelBurst(config_.tick_lines);
        next_tick_ += config_.tick_period;
    }
}

void
TimeSliceScheduler::backgroundSlice(std::uint64_t slice_end)
{
    for (std::uint32_t i = 0; i < config_.background_lines; ++i) {
        const sim::Addr line = kBackgroundBase +
            rng_.below(config_.background_lines * 4) * 64;
        sim::MemRef ref{line, line, kBackgroundThread, false};
        const auto res = hierarchy_.access(ref);
        now_ += uarch_.latency(res.level) + config_.op_overhead;
        if (now_ >= slice_end)
            break;
    }
    now_ = std::max(now_, slice_end);
}

std::uint64_t
TimeSliceScheduler::run(ThreadProgram &thread0, ThreadProgram &thread1,
                        unsigned primary)
{
    ThreadProgram *threads[2] = {&thread0, &thread1};
    threads[0]->setThreadId(0);
    threads[1]->setThreadId(1);

    bool done[2] = {false, false};
    std::uint64_t spin_until[2] = {0, 0};
    unsigned active = 0;

    while (now_ < config_.max_cycles && !done[primary]) {
        const std::uint64_t slice_end = now_ + config_.quantum +
            (config_.quantum_jitter ? rng_.below(config_.quantum_jitter)
                                    : 0);

        if (rng_.chance(config_.background_prob)) {
            // Another process won this slice.
            backgroundSlice(slice_end);
            now_ += config_.switch_cost;
            contextSwitchNoise();
            continue;
        }

        ThreadProgram &prog = *threads[active];
        while (now_ < slice_end && !done[active]) {
            serviceTicks();
            if (spin_until[active] > now_) {
                // Busy-waiting burns the slice without cache traffic;
                // fast-forward no further than the next timer tick.
                std::uint64_t stop = std::min(spin_until[active], slice_end);
                if (config_.tick_period != 0)
                    stop = std::min(stop, next_tick_);
                now_ = std::max(now_ + 1, stop);
                if (spin_until[active] > now_ && now_ >= slice_end)
                    break; // still spinning when the slice expires
                continue;
            }
            const Op op = prog.next(now_);
            if (op.kind == OpKind::Done) {
                done[active] = true;
            } else if (op.kind == OpKind::SpinUntil) {
                spin_until[active] = op.until;
            } else {
                now_ += executeOp(prog, op, now_);
            }
        }

        if (done[primary])
            break;

        // Context switch to the sibling (or keep running if it is done).
        now_ += config_.switch_cost;
        contextSwitchNoise();
        const unsigned other = active ^ 1u;
        if (!done[other])
            active = other;
    }
    return now_;
}

} // namespace lruleak::exec
