/**
 * @file
 * SMT scheduler implementation.
 */

#include "exec/smt_scheduler.hpp"

#include <algorithm>

namespace lruleak::exec {

SmtScheduler::SmtScheduler(sim::CacheHierarchy &hierarchy,
                           const timing::Uarch &uarch, SmtConfig config)
    : hierarchy_(hierarchy), uarch_(uarch), model_(uarch), config_(config),
      rng_(config.seed)
{
}

std::uint64_t
SmtScheduler::executeOp(ThreadProgram &prog, const Op &op,
                        std::uint64_t start)
{
    const std::uint64_t jitter = config_.jitter ? rng_.below(config_.jitter)
                                                : 0;
    switch (op.kind) {
      case OpKind::Access: {
        const auto res = hierarchy_.access(op.ref, op.lock_req);
        OpResult out;
        out.kind = OpKind::Access;
        out.level = res.level;
        out.tsc = start;
        prog.onResult(out);
        return uarch_.latency(res.level) + config_.op_overhead + jitter;
      }
      case OpKind::Measure: {
        const auto res = hierarchy_.access(op.ref, op.lock_req);
        OpResult out;
        out.kind = OpKind::Measure;
        out.level = res.level;
        out.measured = model_.chase(op.chain_levels, res.level, rng_);
        out.tsc = start;
        prog.onResult(out);
        return uarch_.latency(res.level) + config_.op_overhead + jitter;
      }
      case OpKind::Flush: {
        hierarchy_.flush(op.ref);
        OpResult out;
        out.kind = OpKind::Flush;
        out.tsc = start;
        prog.onResult(out);
        // clflush drains to memory: charge a memory round trip.
        return uarch_.mem_latency + config_.op_overhead + jitter;
      }
      case OpKind::SpinUntil:
      case OpKind::Done:
        return 0; // handled by the caller
    }
    return 0;
}

std::uint64_t
SmtScheduler::run(ThreadProgram &thread0, ThreadProgram &thread1,
                  unsigned primary)
{
    ThreadProgram *threads[2] = {&thread0, &thread1};
    threads[0]->setThreadId(0);
    threads[1]->setThreadId(1);

    std::uint64_t clock[2] = {now_, now_};
    bool done[2] = {false, false};

    while (now_ < config_.max_cycles) {
        // Step whichever live thread is furthest behind in time.
        unsigned idx;
        if (done[0] && done[1])
            break;
        if (done[0])
            idx = 1;
        else if (done[1])
            idx = 0;
        else
            idx = clock[0] <= clock[1] ? 0 : 1;

        ThreadProgram &prog = *threads[idx];
        const Op op = prog.next(clock[idx]);

        if (op.kind == OpKind::Done) {
            done[idx] = true;
            if (idx == primary)
                break;
            continue;
        }
        if (op.kind == OpKind::SpinUntil) {
            // Busy wait: consume time, no cache traffic.  Always make
            // forward progress even for a stale deadline.
            clock[idx] = std::max(clock[idx] + 1, op.until);
        } else {
            clock[idx] += executeOp(prog, op, clock[idx]);
        }
        now_ = std::max(now_, clock[idx]);

        if (done[primary])
            break;
    }
    return now_;
}

} // namespace lruleak::exec
