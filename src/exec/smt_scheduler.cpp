/**
 * @file
 * Deprecated SmtScheduler shim implementation.
 */

#include "exec/smt_scheduler.hpp"

namespace lruleak::exec {

namespace {

EngineConfig
engineConfigFrom(const SmtConfig &config)
{
    EngineConfig ec;
    ec.max_cycles = config.max_cycles;
    ec.op_overhead = config.op_overhead;
    ec.jitter = config.jitter;
    ec.seed = config.seed;
    return ec;
}

} // namespace

SmtScheduler::SmtScheduler(sim::CacheHierarchy &hierarchy,
                           const timing::Uarch &uarch, SmtConfig config)
    : port_(hierarchy), engine_(port_, uarch, policy_,
                                engineConfigFrom(config))
{
}

std::uint64_t
SmtScheduler::run(ThreadProgram &thread0, ThreadProgram &thread1,
                  unsigned primary)
{
    return engine_.run(thread0, thread1, primary);
}

} // namespace lruleak::exec
