/**
 * @file
 * The operation vocabulary of simulated threads.
 *
 * Sender and receiver are modelled as state machines that yield one
 * operation at a time; the scheduler executes the operation against the
 * shared cache hierarchy, charges its latency to the thread's clock and
 * reports the outcome back.  This makes the interleaving of the two
 * parties explicit, reproducible and schedulable under both sharing
 * models.
 */

#ifndef LRULEAK_EXEC_OP_HPP
#define LRULEAK_EXEC_OP_HPP

#include <cstdint>
#include <span>

#include "sim/address.hpp"
#include "sim/cache_set.hpp"
#include "sim/hierarchy.hpp"

namespace lruleak::exec {

/** What a thread wants to do next. */
enum class OpKind
{
    Access,       //!< one load/store through the hierarchy
    AccessRun,    //!< a span of loads/stores as ONE engine event; each
                  //!< access is charged exactly like a lone Access op
                  //!< (per-access latency, overhead and jitter draw), but
                  //!< other threads cannot interleave inside the run and
                  //!< the program gets one aggregated OpResult.  Opt-in
                  //!< for throughput paths (SessionConfig::batch_walks).
    Measure,      //!< timed load of @c ref using the pointer-chase readout
    Flush,        //!< clflush @c ref from all levels
    MeasureFlush, //!< timed clflush of @c ref: the readout depends on
                  //!< whether a dirty copy had to be written back
                  //!< (Flushgeist-style flush-latency decoding)
    SpinUntil,    //!< busy-wait until the TSC reaches @c until
    Done,         //!< thread finished
};

/** One operation yielded by a ThreadProgram. */
struct Op
{
    OpKind kind = OpKind::Done;
    sim::MemRef ref;                     //!< Access/Measure/Flush target
    sim::LockReq lock_req = sim::LockReq::None;
    std::uint64_t until = 0;             //!< SpinUntil deadline (TSC)

    /**
     * For Measure: the observed hit levels of the preceding chase-chain
     * accesses (the receiver issues those as ordinary Access ops and
     * collects their levels via onResult).  A view into program-owned
     * storage: the engine consumes the op before the program's next()
     * runs again, so the program may reuse one buffer across samples
     * instead of allocating a fresh vector per measurement.
     */
    std::span<const sim::HitLevel> chain_levels;

    /**
     * For AccessRun: the accesses, in issue order.  A view into
     * program-owned storage, like chain_levels.
     */
    std::span<const sim::MemRef> run_refs;

    /**
     * For Measure: write-back transactions the preceding chain accesses
     * triggered (collected from their OpResults).  Each one stalled the
     * timed walk by the uarch's write-back latency, so the engine adds
     * them to the readout — the `dirty-evict` channel's signal.
     */
    std::uint32_t chain_writebacks = 0;

    static Op
    access(const sim::MemRef &ref)
    {
        Op op;
        op.kind = OpKind::Access;
        op.ref = ref;
        return op;
    }

    static Op
    accessLock(const sim::MemRef &ref, sim::LockReq req)
    {
        Op op = access(ref);
        op.lock_req = req;
        return op;
    }

    static Op
    accessRun(std::span<const sim::MemRef> refs)
    {
        Op op;
        op.kind = OpKind::AccessRun;
        op.run_refs = refs;
        return op;
    }

    static Op
    measure(const sim::MemRef &ref, std::span<const sim::HitLevel> chain,
            std::uint32_t chain_writebacks = 0)
    {
        Op op;
        op.kind = OpKind::Measure;
        op.ref = ref;
        op.chain_levels = chain;
        op.chain_writebacks = chain_writebacks;
        return op;
    }

    static Op
    flush(const sim::MemRef &ref)
    {
        Op op;
        op.kind = OpKind::Flush;
        op.ref = ref;
        return op;
    }

    static Op
    measureFlush(const sim::MemRef &ref)
    {
        Op op;
        op.kind = OpKind::MeasureFlush;
        op.ref = ref;
        return op;
    }

    static Op
    spinUntil(std::uint64_t tsc)
    {
        Op op;
        op.kind = OpKind::SpinUntil;
        op.until = tsc;
        return op;
    }

    static Op
    done()
    {
        return Op{};
    }
};

/** Outcome of an executed Access/AccessRun/Measure/Flush op. */
struct OpResult
{
    OpKind kind = OpKind::Access;
    sim::HitLevel level = sim::HitLevel::Memory; //!< where it was served
                                  //!< (AccessRun: the run's FIRST access
                                  //!< — senders put the encode access
                                  //!< first so its level survives)
    std::uint32_t measured = 0;   //!< latency readout (Measure kinds only)
    std::uint32_t writebacks = 0; //!< write-back transactions triggered
                                  //!< (Access/Measure; AccessRun: summed
                                  //!< over the run; receivers fold these
                                  //!< into the next timed readout)
    std::uint64_t tsc = 0;        //!< completion time
};

/**
 * A simulated thread.  @c next is called whenever the thread is runnable;
 * @c onResult delivers the outcome of the op that just executed.
 */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** Yield the next operation. @p now is the current TSC. */
    virtual Op next(std::uint64_t now) = 0;

    /** Outcome of the last Access/Measure/Flush. */
    virtual void onResult(const OpResult &result) { (void)result; }

    /** The scheduler's thread id for this program's accesses. */
    sim::ThreadId threadId() const { return thread_id_; }
    void setThreadId(sim::ThreadId id) { thread_id_ = id; }

  private:
    sim::ThreadId thread_id_ = 0;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_OP_HPP
