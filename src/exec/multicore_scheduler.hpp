/**
 * @file
 * DEPRECATED shim: MultiCoreScheduler is now a thin wrapper over
 * exec::Engine + exec::LowestClock; NoiseProgram/NoiseConfig moved to
 * exec/engine.hpp and are re-exported here.
 *
 * The hand-rolled lowest-private-clock loop moved into the execution
 * engine's LowestClock arbitration policy (see exec/engine.hpp); this
 * header survives for one release so out-of-tree callers keep
 * compiling.  New code should build the engine directly:
 *
 *   sim::MultiCorePort port(hierarchy);
 *   exec::LowestClock policy;           // optionally policy.nest(...)
 *   exec::Engine engine(port, uarch, policy, config);
 *   engine.run(specs, primary);         // specs bind threads to cores
 *
 * Behaviour is bit-identical to the retired scheduler (same stepping
 * order, same RNG draw sequence, same sampled inclusion audit).
 */

#ifndef LRULEAK_EXEC_MULTICORE_SCHEDULER_HPP
#define LRULEAK_EXEC_MULTICORE_SCHEDULER_HPP

#include <cstdint>
#include <span>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/multicore_hierarchy.hpp"

namespace lruleak::exec {

/** Knobs of the multi-core model (deprecated spelling of EngineConfig). */
struct MultiCoreSchedulerConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL; //!< safety stop
    std::uint32_t op_overhead = 10; //!< non-memory work per op
    std::uint32_t jitter = 4;       //!< uniform extra cycles per op
    std::uint64_t seed = 42;
    /**
     * Run the inclusion audit every N executed operations; 0 disables
     * it.  A violation throws std::logic_error naming the line.
     */
    std::uint32_t audit_every = kDefaultAuditEvery;
};

/**
 * DEPRECATED: use exec::Engine with exec::LowestClock.
 * Runs one ThreadProgram per core over a shared MultiCoreHierarchy.
 */
class MultiCoreScheduler
{
  public:
    MultiCoreScheduler(sim::MultiCoreHierarchy &hierarchy,
                       const timing::Uarch &uarch,
                       MultiCoreSchedulerConfig config = {});

    /**
     * Run until @p primary yields Done (or max_cycles elapse).  One
     * program per core, in core order; programs that yield Done are no
     * longer stepped.  @pre programs.size() == hierarchy.cores()
     *
     * @return the final TSC value.
     */
    std::uint64_t run(std::span<ThreadProgram *const> programs,
                      unsigned primary);

    /** TSC after the last run. */
    std::uint64_t now() const { return engine_.now(); }

  private:
    sim::MultiCorePort port_;
    LowestClock policy_;
    Engine engine_;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_MULTICORE_SCHEDULER_HPP
