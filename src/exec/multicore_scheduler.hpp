/**
 * @file
 * Multi-core execution of N thread programs over one MultiCoreHierarchy.
 *
 * One program per core, each with a private clock; operations are
 * applied to the shared LLC in global-time order by always stepping the
 * live core whose clock is furthest behind (ties break toward the
 * lowest core id).  This is the cross-core analogue of the SMT
 * scheduler: every core makes progress at hardware speed, the
 * interleaving at the shared level is fine-grained and phase-drifting,
 * and the whole run is deterministic for a given seed.
 *
 * The scheduler also carries the inclusion safety net: every
 * `audit_every` executed operations it walks the hierarchy's inclusion
 * invariant (no line valid in a private cache may be absent from the
 * LLC) and throws on violation.  The walk is debug-only by default —
 * release builds ship with it off, debug builds sample it — and tests
 * pin audit_every = 1 to check the property after every step.
 */

#ifndef LRULEAK_EXEC_MULTICORE_SCHEDULER_HPP
#define LRULEAK_EXEC_MULTICORE_SCHEDULER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "exec/op.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "sim/random.hpp"
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

namespace lruleak::exec {

/** Default inclusion-audit sampling period: debug builds sample, release
 *  builds skip (the walk costs a private-cache capacity scan). */
#ifdef NDEBUG
inline constexpr std::uint32_t kDefaultAuditEvery = 0;
#else
inline constexpr std::uint32_t kDefaultAuditEvery = 1024;
#endif

/** Knobs of the multi-core model. */
struct MultiCoreSchedulerConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL; //!< safety stop
    std::uint32_t op_overhead = 10; //!< non-memory work per op
    std::uint32_t jitter = 4;       //!< uniform extra cycles per op
    std::uint64_t seed = 42;
    /**
     * Run the inclusion audit every N executed operations; 0 disables
     * it.  A violation throws std::logic_error naming the line.
     */
    std::uint32_t audit_every = kDefaultAuditEvery;
};

/**
 * Runs one ThreadProgram per core over a shared MultiCoreHierarchy.
 */
class MultiCoreScheduler
{
  public:
    MultiCoreScheduler(sim::MultiCoreHierarchy &hierarchy,
                       const timing::Uarch &uarch,
                       MultiCoreSchedulerConfig config = {});

    /**
     * Run until @p primary yields Done (or max_cycles elapse).  One
     * program per core, in core order; programs that yield Done are no
     * longer stepped.  @pre programs.size() == hierarchy.cores()
     *
     * @return the final TSC value.
     */
    std::uint64_t run(std::span<ThreadProgram *const> programs,
                      unsigned primary);

    /** TSC after the last run. */
    std::uint64_t now() const { return now_; }

  private:
    /** Execute one op on @p core; returns its cycle cost. */
    std::uint64_t executeOp(unsigned core, ThreadProgram &prog,
                            const Op &op, std::uint64_t start);
    void maybeAudit();

    sim::MultiCoreHierarchy &hierarchy_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    MultiCoreSchedulerConfig config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
    std::uint64_t ops_since_audit_ = 0;
};

/** Knobs of a background-noise core. */
struct NoiseConfig
{
    /**
     * The footprint is a rectangle of cache sets x tags: accesses pick a
     * random set within `footprint_sets` consecutive LLC sets from
     * `base` and a random one of `lines_per_set` distinct tags mapping
     * to it (`set_stride` apart = one full LLC wrap).  The per-set depth
     * matters: more tags per set than the private associativity keeps
     * the core missing privately and streaming through the shared LLC,
     * where it contends for ways.  A flat footprint that fits the
     * private caches goes quiet after warm-up and perturbs nothing.
     */
    std::uint32_t footprint_sets = 128;   //!< consecutive sets covered
    std::uint32_t lines_per_set = 24;     //!< distinct tags per set
    sim::Addr set_stride = 2048 * 64;     //!< bytes between same-set tags
                                          //!< (LLC sets x line size)
    std::uint32_t burst = 32;             //!< accesses per burst
    std::uint64_t gap = 100;              //!< spin between bursts (cycles)
    std::uint64_t seed = 1;
    sim::Addr base = 0x6000'0000'0000ULL; //!< footprint base address
};

/**
 * A background process pinned to its own core: bursts of uniformly
 * random accesses over a private sets-x-tags footprint, separated by
 * short spins.  Every covered set sees contention for LLC ways, so the
 * core both ages replacement state and causes LLC evictions (hence
 * back-invalidations) at a rate set by its knobs.  Never yields Done;
 * deterministic for a given seed.
 */
class NoiseProgram : public ThreadProgram
{
  public:
    explicit NoiseProgram(NoiseConfig config);

    Op next(std::uint64_t now) override;

  private:
    NoiseConfig config_;
    sim::Xoshiro256 rng_;
    std::uint32_t in_burst_ = 0;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_MULTICORE_SCHEDULER_HPP
