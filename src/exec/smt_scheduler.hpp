/**
 * @file
 * Hyper-threaded (SMT) execution of two thread programs.
 *
 * Each hardware thread owns a private clock; operations are applied to
 * the shared L1 in global-time order by always stepping the thread whose
 * clock is behind.  This produces the fine-grained, phase-drifting
 * interleaving that real SMT co-residency gives the paper's Section V-A
 * experiments, while staying fully deterministic for a given seed.
 */

#ifndef LRULEAK_EXEC_SMT_SCHEDULER_HPP
#define LRULEAK_EXEC_SMT_SCHEDULER_HPP

#include <cstdint>

#include "exec/op.hpp"
#include "sim/random.hpp"
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

namespace lruleak::exec {

/** Knobs of the SMT model. */
struct SmtConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL; //!< safety stop
    std::uint32_t op_overhead = 10; //!< non-memory work per op (address
                                    //!< arithmetic, loop control)
    std::uint32_t jitter = 4;       //!< uniform extra cycles per op,
                                    //!< models pipeline/port contention
    std::uint64_t seed = 42;
};

/**
 * Runs two programs as sibling hyper-threads over one shared hierarchy.
 */
class SmtScheduler
{
  public:
    SmtScheduler(sim::CacheHierarchy &hierarchy, const timing::Uarch &uarch,
                 SmtConfig config = {});

    /**
     * Run until @p primary yields Done (or max_cycles elapse).  The other
     * program keeps being scheduled as long as it has work; a program
     * that yields Done is simply no longer stepped.
     *
     * @return the final TSC value.
     */
    std::uint64_t run(ThreadProgram &thread0, ThreadProgram &thread1,
                      unsigned primary = 1);

    /** TSC after the last run. */
    std::uint64_t now() const { return now_; }

  private:
    /** Execute one op for the given program; returns its cycle cost. */
    std::uint64_t executeOp(ThreadProgram &prog, const Op &op,
                            std::uint64_t start);

    sim::CacheHierarchy &hierarchy_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    SmtConfig config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_SMT_SCHEDULER_HPP
