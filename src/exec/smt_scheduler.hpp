/**
 * @file
 * DEPRECATED shim: SmtScheduler is now a thin wrapper over
 * exec::Engine + exec::RoundRobinSmt.
 *
 * The hand-rolled SMT stepping loop moved into the execution engine
 * (see exec/engine.hpp); this header survives for one release so
 * out-of-tree callers keep compiling.  New code should build the engine
 * directly:
 *
 *   sim::SingleCorePort port(hierarchy);
 *   exec::RoundRobinSmt policy;
 *   exec::Engine engine(port, uarch, policy, config);
 *   engine.run(sender, receiver, 1);
 *
 * Behaviour is bit-identical to the retired scheduler (same stepping
 * order, same RNG draw sequence).
 */

#ifndef LRULEAK_EXEC_SMT_SCHEDULER_HPP
#define LRULEAK_EXEC_SMT_SCHEDULER_HPP

#include <cstdint>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"

namespace lruleak::exec {

/** Knobs of the SMT model (deprecated spelling of EngineConfig). */
struct SmtConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL; //!< safety stop
    std::uint32_t op_overhead = 10; //!< non-memory work per op (address
                                    //!< arithmetic, loop control)
    std::uint32_t jitter = 4;       //!< uniform extra cycles per op,
                                    //!< models pipeline/port contention
    std::uint64_t seed = 42;
};

/**
 * DEPRECATED: use exec::Engine with exec::RoundRobinSmt.
 * Runs two programs as sibling hyper-threads over one shared hierarchy.
 */
class SmtScheduler
{
  public:
    SmtScheduler(sim::CacheHierarchy &hierarchy, const timing::Uarch &uarch,
                 SmtConfig config = {});

    /**
     * Run until @p primary yields Done (or max_cycles elapse).  The other
     * program keeps being scheduled as long as it has work; a program
     * that yields Done is simply no longer stepped.
     *
     * @return the final TSC value.
     */
    std::uint64_t run(ThreadProgram &thread0, ThreadProgram &thread1,
                      unsigned primary = 1);

    /** TSC after the last run. */
    std::uint64_t now() const { return engine_.now(); }

  private:
    sim::SingleCorePort port_;
    RoundRobinSmt policy_;
    Engine engine_;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_SMT_SCHEDULER_HPP
