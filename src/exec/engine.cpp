/**
 * @file
 * Execution engine implementation.
 *
 * Behaviour contract: with the matching arbitration policy, the engine
 * replays the exact operation order and RNG draw sequence of the
 * scheduler it replaced (SmtScheduler / TimeSliceScheduler /
 * MultiCoreScheduler), so every pre-existing golden snapshot stays
 * byte-identical.  Anything that would change a draw order — jitter
 * before the access, measurement noise after it, kernel-burst sizing
 * before its lines — is deliberately kept in the legacy sequence.
 */

#include "exec/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace lruleak::exec {

// --------------------------------------------------------------- engine

Engine::Engine(sim::AccessPort &port, const timing::Uarch &uarch,
               ArbitrationPolicy &policy, EngineConfig config)
    : port_(port), uarch_(uarch), model_(uarch), policy_(policy),
      config_(config), rng_(config.seed)
{
}

void
Engine::maybeAudit()
{
    if (config_.audit_every == 0)
        return;
    if (++ops_since_audit_ < config_.audit_every)
        return;
    ops_since_audit_ = 0;
    if (auto violation = port_.auditInclusion())
        throw std::logic_error(*violation);
}

std::uint64_t
Engine::executeOp(unsigned idx, const Op &op, std::uint64_t start)
{
    Thread &t = threads_[idx];
    const std::uint64_t jitter = config_.jitter ? rng_.below(config_.jitter)
                                                : 0;
    switch (op.kind) {
      case OpKind::Access: {
        const auto pa = port_.access(t.core, op.ref, op.lock_req);
        OpResult out;
        out.kind = OpKind::Access;
        out.level = pa.level;
        out.writebacks = pa.writebacks;
        out.tsc = start;
        t.program->onResult(out);
        ++t.stats.accesses;
        maybeAudit();
        // Write-back stalls are deterministic and added after the
        // existing jitter draw, so read-only traces keep the exact RNG
        // sequence (and costs) of the pre-write-path engine.
        const std::uint64_t cost =
            uarch_.latency(pa.level) + config_.op_overhead + jitter +
            std::uint64_t{pa.writebacks} * uarch_.wb_latency;
        t.stats.busy_cycles += cost;
        return cost;
      }
      case OpKind::AccessRun: {
        const std::size_t n = op.run_refs.size();
        if (n == 0)
            return 0;
        run_levels_.resize(n);
        const std::uint64_t wbs =
            port_.accessRun(t.core, op.run_refs, run_levels_);
        // Charge exactly what n individual Access ops would have cost:
        // per-access latency, overhead and one jitter draw each (the
        // draw at the top of this function covers the first access).
        std::uint64_t cost = uarch_.latency(run_levels_[0]) +
                             config_.op_overhead + jitter;
        for (std::size_t i = 1; i < n; ++i)
            cost += uarch_.latency(run_levels_[i]) + config_.op_overhead +
                    (config_.jitter ? rng_.below(config_.jitter) : 0);
        cost += wbs * uarch_.wb_latency;
        OpResult out;
        out.kind = OpKind::AccessRun;
        out.level = run_levels_[0];
        out.writebacks = static_cast<std::uint32_t>(wbs);
        out.tsc = start;
        t.program->onResult(out);
        t.stats.accesses += n;
        maybeAudit();
        t.stats.busy_cycles += cost;
        return cost;
      }
      case OpKind::Measure: {
        const auto pa = port_.access(t.core, op.ref, op.lock_req);
        OpResult out;
        out.kind = OpKind::Measure;
        out.level = pa.level;
        out.writebacks = pa.writebacks;
        out.tsc = start;
        const std::uint32_t wb_stall =
            (op.chain_writebacks + pa.writebacks) * uarch_.wb_latency;
        out.measured =
            model_.chase(op.chain_levels, pa.level, rng_) + wb_stall;
        t.program->onResult(out);
        ++t.stats.measures;
        maybeAudit();
        const std::uint64_t cost = uarch_.latency(pa.level) +
                                   config_.op_overhead + jitter +
                                   std::uint64_t{pa.writebacks} *
                                       uarch_.wb_latency;
        t.stats.busy_cycles += cost;
        return cost;
      }
      case OpKind::Flush: {
        const auto fr = port_.flush(op.ref);
        OpResult out;
        out.kind = OpKind::Flush;
        out.tsc = start;
        t.program->onResult(out);
        ++t.stats.flushes;
        maybeAudit();
        // clflush drains to memory: charge a memory round trip, plus
        // the write-back when the dropped copy was dirty.
        const std::uint64_t cost =
            uarch_.mem_latency + config_.op_overhead + jitter +
            (fr.dirty ? uarch_.wb_latency : 0);
        t.stats.busy_cycles += cost;
        return cost;
      }
      case OpKind::MeasureFlush: {
        const auto fr = port_.flush(op.ref);
        OpResult out;
        out.kind = OpKind::MeasureFlush;
        out.level = fr.dirty ? sim::HitLevel::Memory : sim::HitLevel::L1;
        out.measured = model_.flushMeasure(fr.dirty, rng_);
        out.tsc = start;
        t.program->onResult(out);
        ++t.stats.measures;
        ++t.stats.flushes;
        maybeAudit();
        const std::uint64_t cost =
            uarch_.mem_latency + config_.op_overhead + jitter +
            (fr.dirty ? uarch_.wb_latency : 0);
        t.stats.busy_cycles += cost;
        return cost;
      }
      case OpKind::SpinUntil:
      case OpKind::Done:
        return 0; // handled by the arbitration policy
    }
    return 0;
}

void
Engine::stepClockThread(unsigned idx)
{
    Thread &t = threads_[idx];
    const Op op = t.program->next(t.clock);

    if (op.kind == OpKind::Done) {
        t.done = true;
        return;
    }
    if (op.kind == OpKind::SpinUntil) {
        // Busy wait: consume time, no cache traffic.  Always make
        // forward progress even for a stale deadline.
        t.clock = std::max(t.clock + 1, op.until);
        ++t.stats.spins;
    } else {
        t.clock += executeOp(idx, op, t.clock);
    }
    noteTime(t.clock);
}

std::uint64_t
Engine::kernelBurst(std::uint32_t core, sim::ThreadId tid, sim::Addr base,
                    std::uint64_t footprint_lines, std::uint64_t mean_lines)
{
    if (mean_lines == 0)
        return 0;
    // The kernel touches a variable number of lines from its working
    // set; the mean is mean_lines.  The whole burst is one batched
    // replay — only the summed latency matters.
    const std::uint64_t count = mean_lines / 2 + rng_.below(mean_lines + 1);
    burst_refs_.resize(count);
    burst_levels_.resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const sim::Addr line = base + rng_.below(footprint_lines) * 64;
        burst_refs_[i] = sim::MemRef{line, line, tid, false};
    }
    port_.accessBatch(core, burst_refs_, burst_levels_);
    std::uint64_t cycles = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        cycles += uarch_.latency(burst_levels_[i]);
    return cycles;
}

std::uint64_t
Engine::run(std::span<const ThreadSpec> specs, unsigned primary)
{
    if (specs.empty())
        throw std::invalid_argument("Engine: at least one thread required");
    if (primary >= specs.size())
        throw std::invalid_argument("Engine: bad primary thread");

    threads_.clear();
    threads_.reserve(specs.size());
    std::vector<unsigned> indices(specs.size());
    for (unsigned i = 0; i < specs.size(); ++i) {
        const ThreadSpec &spec = specs[i];
        if (spec.program == nullptr)
            throw std::invalid_argument("Engine: null thread program");
        if (spec.core >= port_.cores())
            throw std::invalid_argument(
                "Engine: thread bound to a core the port does not have");
        Thread t;
        t.program = spec.program;
        t.core = spec.core;
        t.clock = now_;
        threads_.push_back(t);
        spec.program->setThreadId(i);
        indices[i] = i;
    }
    primary_ = primary;
    policy_.begin(*this, indices);

    while (!threads_[primary_].done) {
        if (!policy_.step(*this))
            break;
    }
    return now_;
}

std::uint64_t
Engine::run(ThreadProgram &thread0, ThreadProgram &thread1, unsigned primary)
{
    const ThreadSpec specs[2] = {{&thread0, 0}, {&thread1, 0}};
    return run(specs, primary);
}

// -------------------------------------------------------- RoundRobinSmt

void
RoundRobinSmt::begin(Engine &, std::span<const unsigned> threads)
{
    threads_.assign(threads.begin(), threads.end());
}

unsigned
RoundRobinSmt::pick(const Engine &engine) const
{
    // Step whichever live thread is furthest behind in time (ties break
    // toward the lowest index).
    unsigned best = static_cast<unsigned>(engine.threadCount());
    for (unsigned t : threads_) {
        const auto &ctx = engine.thread(t);
        if (ctx.done)
            continue;
        if (best == engine.threadCount() ||
            ctx.clock < engine.thread(best).clock)
            best = t;
    }
    return best;
}

std::optional<std::uint64_t>
RoundRobinSmt::nextEventTime(const Engine &engine) const
{
    if (engine.now() >= engine.config().max_cycles)
        return std::nullopt;
    const unsigned t = pick(engine);
    if (t == engine.threadCount())
        return std::nullopt;
    return engine.thread(t).clock;
}

bool
RoundRobinSmt::step(Engine &engine)
{
    if (engine.now() >= engine.config().max_cycles)
        return false;
    const unsigned t = pick(engine);
    if (t == engine.threadCount())
        return false;
    engine.stepClockThread(t);
    return true;
}

// ------------------------------------------------------------ TimeSlice

void
TimeSlice::begin(Engine &engine, std::span<const unsigned> threads)
{
    if (threads.empty())
        throw std::invalid_argument(
            "TimeSlice: at least one thread required");
    threads_.assign(threads.begin(), threads.end());
    core_ = engine.thread(threads_[0]).core;
    for (unsigned t : threads_) {
        if (engine.thread(t).core != core_)
            throw std::invalid_argument(
                "TimeSlice: all threads must share one core (nest under "
                "LowestClock for multi-core time-slicing)");
    }
    state_ = State::NeedSlice;
    active_ = 0;
    now_ = engine.now();
    slice_end_ = 0;
    next_tick_ = 0;
}

bool
TimeSlice::anyLive(const Engine &engine) const
{
    for (unsigned t : threads_) {
        if (!engine.thread(t).done)
            return true;
    }
    return false;
}

std::optional<std::uint64_t>
TimeSlice::nextEventTime(const Engine &engine) const
{
    if (!anyLive(engine))
        return std::nullopt;
    // max_cycles is checked at slice boundaries only, exactly like the
    // seed scheduler: a slice that has started runs to its end.
    if (state_ == State::NeedSlice &&
        now_ >= engine.config().max_cycles)
        return std::nullopt;
    return now_;
}

void
TimeSlice::serviceTicks(Engine &engine)
{
    if (config_.tick_period == 0)
        return;
    if (next_tick_ == 0)
        next_tick_ = now_ + config_.tick_period;
    while (now_ >= next_tick_) {
        now_ += engine.kernelBurst(core_, config_.kernel_thread,
                                   config_.kernel_base,
                                   config_.kernel_footprint_lines,
                                   config_.tick_lines);
        next_tick_ += config_.tick_period;
    }
}

void
TimeSlice::contextSwitchNoise(Engine &engine)
{
    now_ += engine.kernelBurst(core_, config_.kernel_thread,
                               config_.kernel_base,
                               config_.kernel_footprint_lines,
                               config_.kernel_noise_lines);
}

void
TimeSlice::backgroundSlice(Engine &engine, std::uint64_t slice_end)
{
    for (std::uint32_t i = 0; i < config_.background_lines; ++i) {
        const sim::Addr line = config_.background_base +
            engine.rng().below(config_.background_lines * 4) * 64;
        const sim::MemRef ref{line, line, config_.background_thread, false};
        const auto pa = engine.port().access(core_, ref);
        now_ += engine.uarch().latency(pa.level) +
                engine.config().op_overhead +
                std::uint64_t{pa.writebacks} * engine.uarch().wb_latency;
        if (now_ >= slice_end)
            break;
    }
    now_ = std::max(now_, slice_end);
}

void
TimeSlice::openSlice(Engine &engine)
{
    slice_end_ = now_ + config_.quantum +
        (config_.quantum_jitter ? engine.rng().below(config_.quantum_jitter)
                                : 0);

    if (engine.rng().chance(config_.background_prob)) {
        // Another process won this slice.
        backgroundSlice(engine, slice_end_);
        now_ += config_.switch_cost;
        contextSwitchNoise(engine);
        engine.noteTime(now_);
        return; // state stays NeedSlice
    }
    state_ = State::InSlice;
}

void
TimeSlice::closeSlice(Engine &engine)
{
    // Context switch to the next live sibling (or keep running if none).
    now_ += config_.switch_cost;
    contextSwitchNoise(engine);
    engine.noteTime(now_);
    const std::size_t n = threads_.size();
    for (std::size_t k = 1; k <= n; ++k) {
        const std::size_t cand = (active_ + k) % n;
        if (!engine.thread(threads_[cand]).done) {
            active_ = cand;
            break;
        }
    }
    state_ = State::NeedSlice;
}

void
TimeSlice::runInSlice(Engine &engine)
{
    const unsigned idx = threads_[active_];
    auto &t = engine.thread(idx);

    serviceTicks(engine);
    if (t.spin_until > now_) {
        // Busy-waiting burns the slice without cache traffic;
        // fast-forward no further than the next timer tick.
        std::uint64_t stop = std::min(t.spin_until, slice_end_);
        if (config_.tick_period != 0)
            stop = std::min(stop, next_tick_);
        now_ = std::max(now_ + 1, stop);
        engine.noteTime(now_);
        return;
    }

    const Op op = t.program->next(now_);
    if (op.kind == OpKind::Done) {
        t.done = true;
    } else if (op.kind == OpKind::SpinUntil) {
        t.spin_until = op.until;
        ++t.stats.spins;
    } else {
        now_ += engine.executeOp(idx, op, now_);
    }
    t.clock = now_;
    engine.noteTime(now_);
}

bool
TimeSlice::step(Engine &engine)
{
    if (!anyLive(engine))
        return false;
    if (state_ == State::NeedSlice) {
        if (now_ >= engine.config().max_cycles)
            return false;
        openSlice(engine);
        if (state_ == State::InSlice && config_.slice_events && !nested_) {
            // Slice-event fast path (root policy only): within a slice
            // no other actor has events — only the resident thread runs
            // and ticks/background work are serviced inside runInSlice —
            // so looping here executes the exact per-op sequence without
            // a step()/nextEventTime() round trip per op.  When the
            // primary finishes, stop before closeSlice: per-op stepping
            // never reaches the switch either (the run loop exits
            // first), and the switch's RNG draws must not happen.
            const auto &t = engine.thread(threads_[active_]);
            while (now_ < slice_end_ && !t.done)
                runInSlice(engine);
            if (!engine.thread(engine.primary()).done)
                closeSlice(engine);
        }
        return true;
    }
    if (now_ >= slice_end_ ||
        engine.thread(threads_[active_]).done) {
        closeSlice(engine);
        return true;
    }
    runInSlice(engine);
    return true;
}

// ---------------------------------------------------------- LowestClock

void
LowestClock::nest(std::uint32_t core,
                  std::unique_ptr<ArbitrationPolicy> child)
{
    for (const auto &[c, policy] : nested_) {
        if (c == core)
            throw std::logic_error(
                "LowestClock: core already has a nested policy");
    }
    nested_.emplace_back(core, std::move(child));
}

void
LowestClock::begin(Engine &engine, std::span<const unsigned> threads)
{
    // Partition the thread set by core, ascending core id, preserving
    // spec order within a core.
    children_.clear();
    leaves_.clear();
    std::vector<std::uint32_t> core_ids;
    for (unsigned t : threads) {
        const std::uint32_t core = engine.thread(t).core;
        if (std::find(core_ids.begin(), core_ids.end(), core) ==
            core_ids.end())
            core_ids.push_back(core);
    }
    std::sort(core_ids.begin(), core_ids.end());

    // A nested policy for a core no thread is bound to would silently
    // never run; that is a wiring bug, fail like the other binding
    // errors do.
    for (const auto &[core, policy] : nested_) {
        if (std::find(core_ids.begin(), core_ids.end(), core) ==
            core_ids.end())
            throw std::invalid_argument(
                "LowestClock: nested policy for a core with no bound "
                "threads");
    }

    for (std::uint32_t core : core_ids) {
        std::vector<unsigned> group;
        for (unsigned t : threads) {
            if (engine.thread(t).core == core)
                group.push_back(t);
        }

        ArbitrationPolicy *child = nullptr;
        for (const auto &[c, policy] : nested_) {
            if (c == core) {
                child = policy.get();
                break;
            }
        }
        if (child == nullptr) {
            leaves_.push_back(std::make_unique<RoundRobinSmt>());
            child = leaves_.back().get();
        }
        child->onNested();
        child->begin(engine, group);
        children_.push_back(Child{core, child});
    }
}

LowestClock::Pick
LowestClock::pick(const Engine &engine) const
{
    // Step the core whose next event is earliest (ties toward the
    // lowest core id).
    Pick best{children_.size(), 0};
    for (std::size_t i = 0; i < children_.size(); ++i) {
        const auto t = children_[i].policy->nextEventTime(engine);
        if (!t)
            continue;
        if (best.index == children_.size() || *t < best.time)
            best = Pick{i, *t};
    }
    return best;
}

std::optional<std::uint64_t>
LowestClock::nextEventTime(const Engine &engine) const
{
    const Pick best = pick(engine);
    if (best.index == children_.size())
        return std::nullopt;
    return best.time;
}

bool
LowestClock::step(Engine &engine)
{
    const Pick best = pick(engine);
    if (best.index == children_.size())
        return false;
    return children_[best.index].policy->step(engine);
}

// ---------------------------------------------------------------- noise

NoiseProgram::NoiseProgram(NoiseConfig config)
    : config_(config), rng_(config.seed)
{
}

Op
NoiseProgram::next(std::uint64_t now)
{
    if (in_burst_ >= config_.burst) {
        in_burst_ = 0;
        return Op::spinUntil(now + config_.gap);
    }
    ++in_burst_;
    const sim::Addr line = config_.base +
        rng_.below(config_.footprint_sets) * 64 +
        rng_.below(config_.lines_per_set) * config_.set_stride;
    return Op::access(sim::MemRef::load(line, threadId()));
}

} // namespace lruleak::exec
