/**
 * @file
 * The execution engine: N thread programs, one memory system, one
 * pluggable arbitration policy.
 *
 * The paper's attack variants differ only in *how attacker and victim
 * interleave* — SMT hyperthreads sharing an L1, time-sliced sharing of
 * one context, and cross-core sharing of an inclusive LLC.  The engine
 * factors the part those settings share (program stepping, per-thread
 * clocks and telemetry, latency charging, deterministic seeding,
 * batched kernel bursts, the inclusion audit) out of the interleaving
 * itself, which becomes a pluggable ArbitrationPolicy:
 *
 *   RoundRobinSmt — per-op interleave of one core's hardware contexts
 *                   by lowest private clock (replaces SmtScheduler);
 *   TimeSlice     — quantum rotation on one core with OS context-switch
 *                   effects: kernel noise bursts, timer ticks and
 *                   background-process slices (replaces
 *                   TimeSliceScheduler);
 *   LowestClock   — cross-core arbitration: steps the core whose local
 *                   clock is furthest behind, serializing all shared-
 *                   level traffic on one deterministic global timeline
 *                   (replaces MultiCoreScheduler).
 *
 * Policies nest: LowestClock arbitrates *cores* and delegates each
 * core's intra-core schedule to a child policy — a RoundRobinSmt child
 * models a hyperthread pair on one core of a multi-core system, a
 * TimeSlice child models an OS time-slicing that core.  Cores without
 * an explicit child get a single-context leaf.  That composability is
 * what opens the combined-scenario matrix (`xcore_timesliced`,
 * `smt_multicore_traces`) without a fourth hand-rolled scheduler.
 *
 * Determinism: one engine-owned Xoshiro256 stream drives op jitter,
 * measurement noise and kernel bursts; the stepping order is a pure
 * function of thread clocks.  A given (programs, port, policy, seed)
 * tuple replays bit-identically.
 */

#ifndef LRULEAK_EXEC_ENGINE_HPP
#define LRULEAK_EXEC_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "exec/op.hpp"
#include "exec/thread_stats.hpp"
#include "sim/access_port.hpp"
#include "sim/random.hpp"
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

namespace lruleak::exec {

/** Default inclusion-audit sampling period: debug builds sample, release
 *  builds skip (the walk costs a private-cache capacity scan).  Only
 *  ports with an inclusion invariant (multi-core) audit anything. */
#ifdef NDEBUG
inline constexpr std::uint32_t kDefaultAuditEvery = 0;
#else
inline constexpr std::uint32_t kDefaultAuditEvery = 1024;
#endif

/** Engine-level knobs shared by every arbitration policy. */
struct EngineConfig
{
    std::uint64_t max_cycles = 2'000'000'000ULL; //!< safety stop
    std::uint32_t op_overhead = 10; //!< non-memory work per op (address
                                    //!< arithmetic, loop control)
    std::uint32_t jitter = 4;       //!< uniform extra cycles per op,
                                    //!< models pipeline/port contention
    std::uint64_t seed = 42;
    /**
     * Run the port's inclusion audit every N executed operations; 0
     * disables it.  A violation throws std::logic_error naming the line.
     */
    std::uint32_t audit_every = kDefaultAuditEvery;
};

/** One thread program and the core its accesses are issued from. */
struct ThreadSpec
{
    ThreadProgram *program = nullptr;
    std::uint32_t core = 0;
};

class Engine;

/**
 * Decides which thread runs next and what the passage of time costs.
 * A policy is handed the subset of engine threads it schedules (the
 * whole set for a top-level policy, one core's group when nested under
 * LowestClock) and advances them through the engine's shared stepping
 * primitives.
 */
class ArbitrationPolicy
{
  public:
    virtual ~ArbitrationPolicy() = default;

    virtual std::string_view name() const = 0;

    /** Bind to a run.  @p threads are engine thread indices. */
    virtual void begin(Engine &engine,
                       std::span<const unsigned> threads) = 0;

    /**
     * Called by a nesting parent (LowestClock) before begin().  A
     * nested policy must keep step() one bounded event so the parent
     * can re-arbitrate between its children after every shared-level
     * access; a root policy is free to batch (TimeSlice's slice-event
     * fast path).  Default: nothing to adjust.
     */
    virtual void onNested() {}

    /**
     * Earliest time this policy could execute its next event, or
     * nullopt when it has nothing left to run (all threads done, or the
     * policy's stop condition — e.g. max_cycles at a slice boundary —
     * holds).  Used by a nesting parent to order its children; the
     * engine's run loop only calls step().
     */
    virtual std::optional<std::uint64_t>
    nextEventTime(const Engine &engine) const = 0;

    /**
     * Execute one bounded scheduling step.  Returns false — with no
     * side effects — when nextEventTime() would be nullopt, so the
     * run loop needs no separate probe per step.
     */
    virtual bool step(Engine &engine) = 0;
};

/**
 * The shared execution core.  Owns thread contexts (program, core
 * binding, private clock, spin state, telemetry), the RNG stream and
 * the measurement model; delegates *which thread advances when* to the
 * arbitration policy.
 */
class Engine
{
  public:
    Engine(sim::AccessPort &port, const timing::Uarch &uarch,
           ArbitrationPolicy &policy, EngineConfig config = {});

    /**
     * Run until thread @p primary yields Done (or the policy stops:
     * max_cycles elapsed, everything done).  Threads keep their spec
     * order as engine indices and scheduler thread ids.
     *
     * @return the final TSC value (global high-water clock).
     */
    std::uint64_t run(std::span<const ThreadSpec> threads,
                      unsigned primary);

    /** Classic two-program single-core shape (both on core 0). */
    std::uint64_t run(ThreadProgram &thread0, ThreadProgram &thread1,
                      unsigned primary = 1);

    /** TSC after the last run (subsequent runs continue from here). */
    std::uint64_t now() const { return now_; }

    // ----- state and primitives shared by arbitration policies -----

    /** One simulated thread's execution context. */
    struct Thread
    {
        ThreadProgram *program = nullptr;
        std::uint32_t core = 0;
        std::uint64_t clock = 0;      //!< private clock
        std::uint64_t spin_until = 0; //!< pending SpinUntil deadline
                                      //!< (TimeSlice bookkeeping)
        bool done = false;
        ThreadStats stats;
    };

    std::size_t threadCount() const { return threads_.size(); }
    Thread &thread(unsigned idx) { return threads_[idx]; }
    const Thread &thread(unsigned idx) const { return threads_[idx]; }
    /**
     * Telemetry of thread @p idx of the most recent run() — run()
     * rebuilds the thread contexts, so stats reset per run (unlike
     * now(), which persists).  Throws on an out-of-range index.
     */
    const ThreadStats &stats(unsigned idx) const
    {
        return threads_.at(idx).stats;
    }

    unsigned primary() const { return primary_; }
    const EngineConfig &config() const { return config_; }
    const timing::Uarch &uarch() const { return uarch_; }
    sim::AccessPort &port() { return port_; }
    sim::Xoshiro256 &rng() { return rng_; }

    /** Raise the global high-water clock to @p tsc (never lowers it). */
    void
    noteTime(std::uint64_t tsc)
    {
        if (tsc > now_)
            now_ = tsc;
    }

    /**
     * Execute one Access/Measure/Flush op of thread @p idx starting at
     * @p start: jitter draw, port access, result delivery, telemetry,
     * sampled inclusion audit.  Returns the op's cycle cost (latency +
     * op_overhead + jitter).  SpinUntil/Done are the policy's business.
     */
    std::uint64_t executeOp(unsigned idx, const Op &op,
                            std::uint64_t start);

    /**
     * One clock-arbitrated step of thread @p idx: yield the next op at
     * the thread's private clock, then either finish it (Done), busy-
     * wait (clock = max(clock + 1, until)) or execute and charge the
     * cost.  The shared stepping body of RoundRobinSmt and LowestClock.
     */
    void stepClockThread(unsigned idx);

    /**
     * Batched kernel-noise burst issued from @p core under thread id
     * @p tid: touches mean_lines on average (uniform in
     * [mean/2, 3*mean/2]) out of a footprint_lines working set starting
     * at @p base, through the port's batch interface.  Returns the
     * summed access latency; the caller charges it to its timeline.
     */
    std::uint64_t kernelBurst(std::uint32_t core, sim::ThreadId tid,
                              sim::Addr base, std::uint64_t footprint_lines,
                              std::uint64_t mean_lines);

  private:
    void maybeAudit();

    sim::AccessPort &port_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    ArbitrationPolicy &policy_;
    EngineConfig config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
    std::uint64_t ops_since_audit_ = 0;
    std::vector<Thread> threads_;
    unsigned primary_ = 0;
    std::vector<sim::MemRef> burst_refs_;     //!< reused burst buffer
    std::vector<sim::HitLevel> burst_levels_; //!< reused burst buffer
    std::vector<sim::HitLevel> run_levels_;   //!< reused AccessRun buffer
};

// ------------------------------------------------- arbitration policies

/**
 * Per-op interleave of one core's hardware contexts: always step the
 * live thread whose private clock is furthest behind (ties toward the
 * lowest index).  With two threads this is the fine-grained, phase-
 * drifting interleaving real SMT co-residency gives the paper's
 * Section V-A experiments.
 */
class RoundRobinSmt final : public ArbitrationPolicy
{
  public:
    std::string_view name() const override { return "rr-smt"; }
    void begin(Engine &engine,
               std::span<const unsigned> threads) override;
    std::optional<std::uint64_t>
    nextEventTime(const Engine &engine) const override;
    bool step(Engine &engine) override;

  private:
    /** Live thread with the lowest clock, or threadCount() if none. */
    unsigned pick(const Engine &engine) const;

    std::vector<unsigned> threads_;
};

/** Knobs of the time-sliced (OS scheduling) model. */
struct TimeSlicePolicyConfig
{
    /**
     * Scheduling quantum in cycles (~40 ms at 3.8 GHz).  Two CPU-bound
     * tasks on CFS get long slices; crucially the quantum is *larger*
     * than the paper's Tr values (up to 4.5e8), so several receiver
     * measurements run inside one slice and only the first one after a
     * sender slice reflects the sender — the mechanism behind Fig. 6's
     * ~30% ceiling.
     */
    std::uint64_t quantum = 150'000'000;
    std::uint64_t quantum_jitter = 80'000'000; //!< uniform extra per slice
    std::uint32_t switch_cost = 3'000;     //!< direct context-switch cost
    std::uint32_t kernel_noise_lines = 48; //!< mean kernel lines touched
                                           //!< per switch (spread over
                                           //!< all sets)
    double background_prob = 0.25; //!< chance a third process takes a
                                   //!< slice instead of the threads
    std::uint32_t background_lines = 1024; //!< its cache footprint
    /**
     * OS timer tick: every tick_period cycles the kernel interrupts the
     * running task and touches a few lines (timer/RCU/softirq work).
     * This is what ages the sender's imprint on the LRU state while the
     * receiver spins — the decay that caps Fig. 6's curves.
     */
    std::uint64_t tick_period = 4'000'000; //!< ~1 ms at ~4 GHz
    std::uint32_t tick_lines = 24;         //!< mean lines per tick

    /**
     * Slice-event fast path: when TimeSlice is the ROOT policy (not
     * nested under LowestClock), one step() call advances the whole
     * slice — open, run the resident thread to the slice end, close —
     * instead of one op per step.  Within a slice only the resident
     * thread ever runs, so the op order, every RNG draw and every
     * latency are identical to per-op stepping (the differential suite
     * in tests/test_slice_events.cpp proves it); only the step()/
     * nextEventTime() call cadence changes.  Nested instances ignore
     * this and stay per-op: the parent must be able to interleave
     * other cores' shared-LLC traffic between ops.
     */
    bool slice_events = true;

    /** Kernel working set in lines (spread uniformly over all sets). */
    std::uint64_t kernel_footprint_lines = 4096;
    sim::Addr kernel_base = 0x7f00'0000'0000ULL;
    sim::Addr background_base = 0x6e00'0000'0000ULL;
    /** Thread ids for kernel / background accesses in perf counters. */
    sim::ThreadId kernel_thread = 1000;
    sim::ThreadId background_thread = 1001;
};

/**
 * Quantum rotation of one core's threads with OS context-switch
 * effects.  Only one thread runs at a time; every switch executes
 * kernel scheduler code whose cache footprint sprays lines across
 * random sets — the pollution that limits the time-sliced channel in
 * the paper.  Works for any thread count (the seed scheduler was
 * hard-wired to two) and, nested under LowestClock, for any core.
 */
class TimeSlice final : public ArbitrationPolicy
{
  public:
    explicit TimeSlice(TimeSlicePolicyConfig config = {})
        : config_(config)
    {}

    std::string_view name() const override { return "timeslice"; }
    void begin(Engine &engine,
               std::span<const unsigned> threads) override;
    void onNested() override { nested_ = true; }
    std::optional<std::uint64_t>
    nextEventTime(const Engine &engine) const override;
    bool step(Engine &engine) override;

    /** This core's local timeline. */
    std::uint64_t coreNow() const { return now_; }

    const TimeSlicePolicyConfig &config() const { return config_; }

  private:
    bool anyLive(const Engine &engine) const;
    void serviceTicks(Engine &engine);
    void contextSwitchNoise(Engine &engine);
    void backgroundSlice(Engine &engine, std::uint64_t slice_end);
    void openSlice(Engine &engine);
    void closeSlice(Engine &engine);
    void runInSlice(Engine &engine);

    enum class State
    {
        NeedSlice, //!< next step opens a slice (or a background one)
        InSlice,   //!< next step runs one iteration of the active thread
    };

    TimeSlicePolicyConfig config_;
    std::vector<unsigned> threads_;
    std::uint32_t core_ = 0;
    bool nested_ = false; //!< under LowestClock: slice events disabled
    State state_ = State::NeedSlice;
    std::size_t active_ = 0;        //!< index into threads_
    std::uint64_t now_ = 0;         //!< core-local clock
    std::uint64_t slice_end_ = 0;
    std::uint64_t next_tick_ = 0;
};

/**
 * Cross-core arbitration: each core runs its threads under a child
 * policy (explicitly nested, or a single-context RoundRobinSmt leaf by
 * default), and the engine always steps the core whose next event is
 * earliest (ties toward the lowest core id).  Every core makes progress
 * at hardware speed, the interleaving at the shared level is fine-
 * grained and phase-drifting, and the whole run is deterministic for a
 * given seed.
 */
class LowestClock final : public ArbitrationPolicy
{
  public:
    LowestClock() = default;

    /**
     * Nest a child policy for one core's thread group.  Cores without
     * an explicit child get a RoundRobinSmt leaf (for a single bound
     * thread that degenerates to plain private-clock stepping).
     */
    void nest(std::uint32_t core,
              std::unique_ptr<ArbitrationPolicy> child);

    std::string_view name() const override { return "lowest-clock"; }
    void begin(Engine &engine,
               std::span<const unsigned> threads) override;
    std::optional<std::uint64_t>
    nextEventTime(const Engine &engine) const override;
    bool step(Engine &engine) override;

  private:
    /** Child with the earliest next event (and that time), or
     *  index == children_.size() when nothing is runnable. */
    struct Pick
    {
        std::size_t index = 0;
        std::uint64_t time = 0;
    };
    Pick pick(const Engine &engine) const;

    struct Child
    {
        std::uint32_t core = 0;
        ArbitrationPolicy *policy = nullptr;
    };

    /** Explicitly nested per-core policies, in nest() order. */
    std::vector<std::pair<std::uint32_t,
                          std::unique_ptr<ArbitrationPolicy>>> nested_;
    std::vector<std::unique_ptr<ArbitrationPolicy>> leaves_; //!< implicit
    std::vector<Child> children_; //!< active groups, ascending core id
};

// ------------------------------------------------------ noise programs

/** Knobs of a background-noise core. */
struct NoiseConfig
{
    /**
     * The footprint is a rectangle of cache sets x tags: accesses pick a
     * random set within `footprint_sets` consecutive LLC sets from
     * `base` and a random one of `lines_per_set` distinct tags mapping
     * to it (`set_stride` apart = one full LLC wrap).  The per-set depth
     * matters: more tags per set than the private associativity keeps
     * the core missing privately and streaming through the shared LLC,
     * where it contends for ways.  A flat footprint that fits the
     * private caches goes quiet after warm-up and perturbs nothing.
     */
    std::uint32_t footprint_sets = 128;   //!< consecutive sets covered
    std::uint32_t lines_per_set = 24;     //!< distinct tags per set
    sim::Addr set_stride = 2048 * 64;     //!< bytes between same-set tags
                                          //!< (LLC sets x line size)
    std::uint32_t burst = 32;             //!< accesses per burst
    std::uint64_t gap = 100;              //!< spin between bursts (cycles)
    std::uint64_t seed = 1;
    sim::Addr base = 0x6000'0000'0000ULL; //!< footprint base address
};

/**
 * A background process pinned to its own core: bursts of uniformly
 * random accesses over a private sets-x-tags footprint, separated by
 * short spins.  Every covered set sees contention for LLC ways, so the
 * core both ages replacement state and causes LLC evictions (hence
 * back-invalidations) at a rate set by its knobs.  Never yields Done;
 * deterministic for a given seed.
 */
class NoiseProgram : public ThreadProgram
{
  public:
    explicit NoiseProgram(NoiseConfig config);

    Op next(std::uint64_t now) override;

  private:
    NoiseConfig config_;
    sim::Xoshiro256 rng_;
    std::uint32_t in_burst_ = 0;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_ENGINE_HPP
