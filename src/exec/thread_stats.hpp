/**
 * @file
 * The one per-thread telemetry record of the execution layer.
 *
 * Every scheduler used to be one ad-hoc tally away from growing its own
 * stats struct; exec::ThreadStats is the single shared shape.  The
 * engine maintains one per simulated thread (program ops it executed and
 * the cycles it charged); anything cache-level (hits, misses, evictions)
 * stays in sim::PerfCounters, keyed by sim::ThreadId as before.
 */

#ifndef LRULEAK_EXEC_THREAD_STATS_HPP
#define LRULEAK_EXEC_THREAD_STATS_HPP

#include <cstdint>

namespace lruleak::exec {

/** Per-thread execution telemetry, maintained by exec::Engine. */
struct ThreadStats
{
    std::uint64_t accesses = 0;    //!< Access ops executed
    std::uint64_t measures = 0;    //!< Measure ops executed
    std::uint64_t flushes = 0;     //!< Flush ops executed
    std::uint64_t spins = 0;       //!< SpinUntil ops honoured
    std::uint64_t busy_cycles = 0; //!< cycles charged for executed ops
                                   //!< (spin time not included)

    /** Ops that reached the memory system. */
    std::uint64_t
    memoryOps() const
    {
        return accesses + measures + flushes;
    }

    /** Every op the engine consumed from the program. */
    std::uint64_t
    totalOps() const
    {
        return memoryOps() + spins;
    }
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_THREAD_STATS_HPP
