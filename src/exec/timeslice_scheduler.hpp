/**
 * @file
 * DEPRECATED shim: TimeSliceScheduler is now a thin wrapper over
 * exec::Engine + exec::TimeSlice.
 *
 * The hand-rolled slice loop (quantum rotation, kernel bursts, timer
 * ticks, background slices) moved into the execution engine's TimeSlice
 * arbitration policy (see exec/engine.hpp); this header survives for
 * one release so out-of-tree callers keep compiling.  New code should
 * build the engine directly:
 *
 *   sim::SingleCorePort port(hierarchy);
 *   exec::TimeSlice policy(tslice_config);
 *   exec::Engine engine(port, uarch, policy, engine_config);
 *   engine.run(sender, receiver, 1);
 *
 * Behaviour is bit-identical to the retired scheduler (same slice
 * structure, same RNG draw sequence).
 */

#ifndef LRULEAK_EXEC_TIMESLICE_SCHEDULER_HPP
#define LRULEAK_EXEC_TIMESLICE_SCHEDULER_HPP

#include <cstdint>

#include "exec/engine.hpp"
#include "sim/access_port.hpp"

namespace lruleak::exec {

/** Knobs of the time-sliced model (deprecated spelling of
 *  EngineConfig + TimeSlicePolicyConfig). */
struct TimeSliceConfig
{
    std::uint64_t quantum = 150'000'000;       //!< see TimeSlicePolicyConfig
    std::uint64_t quantum_jitter = 80'000'000; //!< uniform extra per slice
    std::uint32_t switch_cost = 3'000;     //!< direct context-switch cost
    std::uint32_t kernel_noise_lines = 48; //!< mean kernel lines per switch
    double background_prob = 0.25; //!< chance a third process takes a slice
    std::uint32_t background_lines = 1024; //!< its cache footprint
    std::uint64_t tick_period = 4'000'000; //!< OS timer tick period
    std::uint32_t tick_lines = 24;         //!< mean lines per tick

    std::uint64_t max_cycles = 4'000'000'000'000ULL;
    std::uint32_t op_overhead = 10;
    std::uint32_t jitter = 4;
    std::uint64_t seed = 42;
};

/**
 * DEPRECATED: use exec::Engine with exec::TimeSlice.
 * Runs two programs time-sharing one core over one hierarchy.
 */
class TimeSliceScheduler
{
  public:
    TimeSliceScheduler(sim::CacheHierarchy &hierarchy,
                       const timing::Uarch &uarch,
                       TimeSliceConfig config = {});

    /**
     * Run until @p primary yields Done (or max_cycles elapse).
     * @return the final TSC value.
     */
    std::uint64_t run(ThreadProgram &thread0, ThreadProgram &thread1,
                      unsigned primary = 1);

    std::uint64_t now() const { return engine_.now(); }

    /** Thread id used for kernel-noise accesses in perf counters. */
    static constexpr sim::ThreadId kKernelThread = 1000;
    /** Thread id used for background-process accesses. */
    static constexpr sim::ThreadId kBackgroundThread = 1001;

  private:
    sim::SingleCorePort port_;
    TimeSlice policy_;
    Engine engine_;
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_TIMESLICE_SCHEDULER_HPP
