/**
 * @file
 * Time-sliced (single hardware context) execution of two thread programs,
 * with OS context-switch effects (Section V-B, Figures 6 and 8).
 *
 * Only one program runs at a time; the scheduler rotates them with a
 * jittered quantum.  Every context switch executes kernel scheduler code
 * whose cache footprint sprays lines across random sets — this pollution
 * is what limits the time-sliced channel in the paper (the receiver sees
 * the sender's signal only when its sleep window ends shortly after a
 * sender slice, before the kernel noise has scrubbed the target set).
 */

#ifndef LRULEAK_EXEC_TIMESLICE_SCHEDULER_HPP
#define LRULEAK_EXEC_TIMESLICE_SCHEDULER_HPP

#include <cstdint>
#include <vector>

#include "exec/op.hpp"
#include "sim/random.hpp"
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

namespace lruleak::exec {

/** Knobs of the time-sliced model. */
struct TimeSliceConfig
{
    /**
     * Scheduling quantum in cycles (~40 ms at 3.8 GHz).  Two CPU-bound
     * tasks on CFS get long slices; crucially the quantum is *larger*
     * than the paper's Tr values (up to 4.5e8), so several receiver
     * measurements run inside one slice and only the first one after a
     * sender slice reflects the sender — the mechanism behind Fig. 6's
     * ~30% ceiling.
     */
    std::uint64_t quantum = 150'000'000;
    std::uint64_t quantum_jitter = 80'000'000; //!< uniform extra per slice
    std::uint32_t switch_cost = 3'000;     //!< direct context-switch cost
    std::uint32_t kernel_noise_lines = 48; //!< mean kernel lines touched
                                           //!< per switch (spread over
                                           //!< all sets)
    double background_prob = 0.25; //!< chance a third process takes a
                                   //!< slice instead of sender/receiver
    std::uint32_t background_lines = 1024; //!< its cache footprint
    /**
     * OS timer tick: every tick_period cycles the kernel interrupts the
     * running task and touches a few lines (timer/RCU/softirq work).
     * This is what ages the sender's imprint on the LRU state while the
     * receiver spins — the decay that caps Fig. 6's curves.
     */
    std::uint64_t tick_period = 4'000'000; //!< ~1 ms at ~4 GHz
    std::uint32_t tick_lines = 24;         //!< mean lines per tick

    std::uint64_t max_cycles = 4'000'000'000'000ULL;
    std::uint32_t op_overhead = 10;
    std::uint32_t jitter = 4;
    std::uint64_t seed = 42;
};

/**
 * Runs two programs time-sharing one core over one hierarchy.
 */
class TimeSliceScheduler
{
  public:
    TimeSliceScheduler(sim::CacheHierarchy &hierarchy,
                       const timing::Uarch &uarch,
                       TimeSliceConfig config = {});

    /**
     * Run until @p primary yields Done (or max_cycles elapse).
     * @return the final TSC value.
     */
    std::uint64_t run(ThreadProgram &thread0, ThreadProgram &thread1,
                      unsigned primary = 1);

    std::uint64_t now() const { return now_; }

    /** Thread id used for kernel-noise accesses in perf counters. */
    static constexpr sim::ThreadId kKernelThread = 1000;
    /** Thread id used for background-process accesses. */
    static constexpr sim::ThreadId kBackgroundThread = 1001;

  private:
    std::uint64_t executeOp(ThreadProgram &prog, const Op &op,
                            std::uint64_t start);
    void contextSwitchNoise();
    void backgroundSlice(std::uint64_t slice_end);
    void kernelBurst(std::uint64_t mean_lines);
    void serviceTicks();

    sim::CacheHierarchy &hierarchy_;
    timing::Uarch uarch_;
    timing::MeasurementModel model_;
    TimeSliceConfig config_;
    sim::Xoshiro256 rng_;
    std::uint64_t now_ = 0;
    std::uint64_t next_tick_ = 0;
    std::vector<sim::MemRef> burst_refs_;     //!< reused burst buffer
    std::vector<sim::HitLevel> burst_levels_; //!< reused burst buffer
};

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_TIMESLICE_SCHEDULER_HPP
