/**
 * @file
 * Multi-core scheduler implementation.
 */

#include "exec/multicore_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace lruleak::exec {

MultiCoreScheduler::MultiCoreScheduler(sim::MultiCoreHierarchy &hierarchy,
                                       const timing::Uarch &uarch,
                                       MultiCoreSchedulerConfig config)
    : hierarchy_(hierarchy), uarch_(uarch), model_(uarch), config_(config),
      rng_(config.seed)
{
}

void
MultiCoreScheduler::maybeAudit()
{
    if (config_.audit_every == 0)
        return;
    if (++ops_since_audit_ < config_.audit_every)
        return;
    ops_since_audit_ = 0;
    if (auto violation = hierarchy_.auditInclusion())
        throw std::logic_error(*violation);
}

std::uint64_t
MultiCoreScheduler::executeOp(unsigned core, ThreadProgram &prog,
                              const Op &op, std::uint64_t start)
{
    const std::uint64_t jitter = config_.jitter ? rng_.below(config_.jitter)
                                                : 0;
    switch (op.kind) {
      case OpKind::Access: {
        const auto res = hierarchy_.access(core, op.ref);
        OpResult out;
        out.kind = OpKind::Access;
        out.level = res.level;
        out.tsc = start;
        prog.onResult(out);
        maybeAudit();
        return uarch_.latency(res.level) + config_.op_overhead + jitter;
      }
      case OpKind::Measure: {
        const auto res = hierarchy_.access(core, op.ref);
        OpResult out;
        out.kind = OpKind::Measure;
        out.level = res.level;
        out.measured = model_.chase(op.chain_levels, res.level, rng_);
        out.tsc = start;
        prog.onResult(out);
        maybeAudit();
        return uarch_.latency(res.level) + config_.op_overhead + jitter;
      }
      case OpKind::Flush: {
        hierarchy_.flush(op.ref);
        OpResult out;
        out.kind = OpKind::Flush;
        out.tsc = start;
        prog.onResult(out);
        maybeAudit();
        return uarch_.mem_latency + config_.op_overhead + jitter;
      }
      case OpKind::SpinUntil:
      case OpKind::Done:
        return 0; // handled by the caller
    }
    return 0;
}

std::uint64_t
MultiCoreScheduler::run(std::span<ThreadProgram *const> programs,
                        unsigned primary)
{
    const unsigned n = static_cast<unsigned>(programs.size());
    if (n != hierarchy_.cores())
        throw std::invalid_argument(
            "MultiCoreScheduler: one program per core required");
    if (primary >= n)
        throw std::invalid_argument("MultiCoreScheduler: bad primary core");

    for (unsigned c = 0; c < n; ++c)
        programs[c]->setThreadId(c);

    std::vector<std::uint64_t> clock(n, now_);
    std::vector<bool> done(n, false);

    while (now_ < config_.max_cycles) {
        // Step the live core furthest behind in time (ties -> lowest id).
        unsigned idx = n;
        for (unsigned c = 0; c < n; ++c) {
            if (!done[c] && (idx == n || clock[c] < clock[idx]))
                idx = c;
        }
        if (idx == n)
            break; // every core finished

        ThreadProgram &prog = *programs[idx];
        const Op op = prog.next(clock[idx]);

        if (op.kind == OpKind::Done) {
            done[idx] = true;
            if (idx == primary)
                break;
            continue;
        }
        if (op.kind == OpKind::SpinUntil) {
            // Busy wait: consume time, no cache traffic.  Always make
            // forward progress even for a stale deadline.
            clock[idx] = std::max(clock[idx] + 1, op.until);
        } else {
            clock[idx] += executeOp(idx, prog, op, clock[idx]);
        }
        now_ = std::max(now_, clock[idx]);
    }
    return now_;
}

// ---------------------------------------------------------------- noise

NoiseProgram::NoiseProgram(NoiseConfig config)
    : config_(config), rng_(config.seed)
{
}

Op
NoiseProgram::next(std::uint64_t now)
{
    if (in_burst_ >= config_.burst) {
        in_burst_ = 0;
        return Op::spinUntil(now + config_.gap);
    }
    ++in_burst_;
    const sim::Addr line = config_.base +
        rng_.below(config_.footprint_sets) * 64 +
        rng_.below(config_.lines_per_set) * config_.set_stride;
    return Op::access(sim::MemRef::load(line, threadId()));
}

} // namespace lruleak::exec
