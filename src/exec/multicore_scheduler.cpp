/**
 * @file
 * Deprecated MultiCoreScheduler shim implementation.
 */

#include "exec/multicore_scheduler.hpp"

#include <stdexcept>
#include <vector>

namespace lruleak::exec {

namespace {

EngineConfig
engineConfigFrom(const MultiCoreSchedulerConfig &config)
{
    EngineConfig ec;
    ec.max_cycles = config.max_cycles;
    ec.op_overhead = config.op_overhead;
    ec.jitter = config.jitter;
    ec.seed = config.seed;
    ec.audit_every = config.audit_every;
    return ec;
}

} // namespace

MultiCoreScheduler::MultiCoreScheduler(sim::MultiCoreHierarchy &hierarchy,
                                       const timing::Uarch &uarch,
                                       MultiCoreSchedulerConfig config)
    : port_(hierarchy), engine_(port_, uarch, policy_,
                                engineConfigFrom(config))
{
}

std::uint64_t
MultiCoreScheduler::run(std::span<ThreadProgram *const> programs,
                        unsigned primary)
{
    const unsigned n = static_cast<unsigned>(programs.size());
    if (n != port_.cores())
        throw std::invalid_argument(
            "MultiCoreScheduler: one program per core required");
    if (primary >= n)
        throw std::invalid_argument("MultiCoreScheduler: bad primary core");

    std::vector<ThreadSpec> specs;
    specs.reserve(n);
    for (unsigned c = 0; c < n; ++c)
        specs.push_back(ThreadSpec{programs[c], c});
    return engine_.run(specs, primary);
}

} // namespace lruleak::exec
