/**
 * @file
 * Replaying a trace file through the execution engine.
 *
 * TraceProgram turns a workload::TraceFile into a ThreadProgram: each
 * record becomes one Access op (loads and stores, so the PR-6 write
 * path — dirty bits, write-backs, write-allocate policy — is exercised
 * exactly as the live generators exercise it).  The program can start
 * at any offset and either stop at the end of the trace or loop
 * forever, which is what noise cores need: N cores replaying one trace
 * at staggered offsets approximate N concurrent phases of the same
 * victim.
 *
 * replayTrace() is the engine-free fast path: it pumps the records
 * through AccessPort::accessBatch in chunks, for benchmarks and tests
 * that want the cache-state effect of a trace without scheduling
 * overhead.
 */

#ifndef LRULEAK_EXEC_TRACE_PROGRAM_HPP
#define LRULEAK_EXEC_TRACE_PROGRAM_HPP

#include <cstdint>
#include <memory>

#include "exec/op.hpp"
#include "sim/access_port.hpp"
#include "workload/trace_file.hpp"

namespace lruleak::exec {

/** A ThreadProgram that replays a trace's records in order. */
class TraceProgram final : public ThreadProgram
{
  public:
    /**
     * @param trace the records to replay (shared: noise cores replay
     *        one loaded trace without copying it per core)
     * @param start_offset record index of the first access (modulo the
     *        trace length; staggers looping replicas)
     * @param loop wrap around at the end instead of yielding Done
     */
    TraceProgram(std::shared_ptr<const workload::TraceFile> trace,
                 std::size_t start_offset = 0, bool loop = false)
        : trace_(std::move(trace)), loop_(loop)
    {
        const std::size_t n = trace_ ? trace_->size() : 0;
        position_ = n > 0 ? start_offset % n : 0;
    }

    Op
    next(std::uint64_t) override
    {
        if (!trace_ || trace_->empty())
            return Op::done();
        if (position_ >= trace_->size()) {
            if (!loop_)
                return Op::done();
            position_ = 0;
        }
        const workload::TraceRecord &record =
            trace_->records[position_++];
        ++replayed_;
        return Op::access(record.ref(threadId()));
    }

    /** Total accesses issued (past the end counts loops). */
    std::uint64_t replayed() const { return replayed_; }

  private:
    std::shared_ptr<const workload::TraceFile> trace_;
    std::size_t position_ = 0;
    std::uint64_t replayed_ = 0;
    bool loop_;
};

/** Cache-state outcome of an engine-free replay. */
struct TraceReplayStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;    //!< served by any cache level
    std::uint64_t misses = 0;  //!< served by memory
};

/**
 * Replay a whole trace from @p core through @p port using chunked
 * accessBatch calls (no engine, no clocks).  Returns hit/miss totals.
 */
TraceReplayStats replayTrace(sim::AccessPort &port, std::uint32_t core,
                             const workload::TraceFile &trace,
                             std::size_t chunk = 4096);

} // namespace lruleak::exec

#endif // LRULEAK_EXEC_TRACE_PROGRAM_HPP
