/**
 * @file
 * Engine-free trace replay through an AccessPort.
 */

#include "exec/trace_program.hpp"

#include <algorithm>
#include <vector>

namespace lruleak::exec {

TraceReplayStats
replayTrace(sim::AccessPort &port, std::uint32_t core,
            const workload::TraceFile &trace, std::size_t chunk)
{
    chunk = std::max<std::size_t>(chunk, 1);
    std::vector<sim::MemRef> refs(std::min(chunk, trace.size()));
    std::vector<sim::HitLevel> levels(refs.size());

    TraceReplayStats stats;
    std::size_t at = 0;
    while (at < trace.size()) {
        const std::size_t n = std::min(chunk, trace.size() - at);
        for (std::size_t i = 0; i < n; ++i)
            refs[i] = trace.records[at + i].ref(core);
        port.accessBatch(core, std::span(refs.data(), n),
                         std::span(levels.data(), n));
        for (std::size_t i = 0; i < n; ++i) {
            ++stats.accesses;
            if (levels[i] == sim::HitLevel::Memory)
                ++stats.misses;
            else
                ++stats.hits;
        }
        at += n;
    }
    return stats;
}

} // namespace lruleak::exec
