/**
 * @file
 * `lruleak` — the single driver binary over the experiment registry.
 *
 *   lruleak list                          all registered experiments
 *   lruleak describe <name>               description + parameters
 *   lruleak run <name> [--param=value...] one experiment
 *               [--format=table|json|csv] [--seed=N]
 *   lruleak run-all [--format=...]        every experiment, defaults
 *
 * Any `--x=y` pair (or `--x y`) is an override of the experiment's
 * declared parameter `x` — `--seed=N` is simply the conventional RNG
 * parameter most experiments declare.  Unknown parameters, type errors
 * and bad choice values are rejected before the experiment starts,
 * with a message listing the valid options.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "channel/session.hpp"
#include "core/bench.hpp"
#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/result_cache.hpp"
#include "util/hash.hpp"
#include "workload/trace_file.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace lruleak;
using core::Experiment;
using core::Registry;

int
usage(std::ostream &os, int code)
{
    os << "usage:\n"
          "  lruleak list\n"
          "  lruleak describe <experiment|channel>\n"
          "  lruleak run <experiment> [--format=table|json|csv] "
          "[--smoke] [--seed=N]\n"
          "              [--cache-dir=DIR] [--<param>=<value> ...]\n"
          "  lruleak run-all [--format=table|json|csv] [--smoke] "
          "[--seed=N]\n"
          "              [--shard=i/N] [--cache-dir=DIR]\n"
          "  lruleak merge <out.json|-> <shard.json> "
          "[<shard.json> ...]\n"
          "  lruleak trace-gen <workload> <out-file> [--accesses=N] "
          "[--writes=F]\n"
          "              [--seed=N] [--format=text|binary]\n"
          "  lruleak bench [--accesses=N] [--policies=a,b,...] "
          "[--out=FILE] [--smoke] [--check]\n"
          "\n"
          "`--smoke` applies the experiment's reduced-scale parameter "
          "set (the same one\nthe CI golden-snapshot suite runs); "
          "explicit --param overrides still win.\n"
          "`--seed=N` overrides the RNG seed of every experiment that "
          "declares one (all\nbut the purely deterministic ones do; the "
          "per-experiment defaults shown by\n`describe` keep golden "
          "runs reproducible).  On `run-all` it applies to each\n"
          "seed-taking experiment and is ignored by the rest.\n"
          "`--shard=i/N` runs shard i of an N-way split of the catalog "
          "(a stable hash of\nthe experiment name, so N workers cover "
          "every experiment exactly once);\n`lruleak merge` unions the "
          "workers' --format=json outputs back into the exact\nbytes "
          "of an unsharded run.  `--cache-dir=DIR` (or the "
          "LRULEAK_CACHE env var)\nenables the content-addressed "
          "result cache: runs keyed on (binary, experiment,\nresolved "
          "parameters, format) are served from the store instead of "
          "executing;\nthe run summary on stderr reports hit/miss/skip "
          "counts.\n"
          "`lruleak list` shows every registered experiment; "
          "`lruleak describe <name>`\nshows its parameters and their "
          "defaults.  `lruleak trace-gen` exports a\nsynthetic "
          "workload as a replayable access trace (see the "
          "trace_replay\nexperiment).  `lruleak bench` times the "
          "batched value-semantic simulator path\nagainst the legacy "
          "virtual per-access path (accesses/sec per replacement\n"
          "policy), runs the macro subsystem lanes, and writes "
          "BENCH_sim.json.\n";
    return code;
}

int
cmdList()
{
    const auto all = Registry::instance().all();
    std::size_t width = 0;
    for (const Experiment *e : all)
        width = std::max(width, e->name().size());
    for (const Experiment *e : all) {
        std::cout << "  " << e->name();
        for (std::size_t p = e->name().size(); p < width + 2; ++p)
            std::cout << ' ';
        std::cout << e->description() << "\n";
    }
    std::cout << "\n" << all.size()
              << " experiments registered; `lruleak describe <name>` "
                 "shows parameters.\n";
    return 0;
}

const char *
hitLevelName(sim::HitLevel level)
{
    switch (level) {
      case sim::HitLevel::L1:     return "L1";
      case sim::HitLevel::L2:     return "L2";
      case sim::HitLevel::LLC:    return "LLC";
      case sim::HitLevel::Memory: return "memory";
    }
    return "?";
}

/**
 * The capability card of one channel design, driven entirely by the
 * factory capability query and the calibration table — which sharing
 * modes it runs in (all of them, since the Session refactor), which
 * cache level carries it there and which latency pair it decodes.
 */
void
describeChannel(channel::ChannelId id)
{
    const auto &caps = channel::channelCaps(id);
    std::cout << channel::channelIdToken(id) << "  ("
              << channel::channelDisplayName(id) << ")\n"
              << "  sender protocol:  "
              << (caps.sender_alg == channel::LruAlgorithm::Alg1Shared
                      ? "Algorithm 1 (shared line)"
                      : "Algorithm 2 (disjoint address spaces)")
              << "\n"
              << "  shared memory:    "
              << (caps.shared_memory ? "required" : "not required") << "\n"
              << "  uses clflush:     " << (caps.uses_flush ? "yes" : "no")
              << "\n"
              << "  decode polarity:  1 bit = "
              << (caps.invert ? "slow sample (eviction)"
                              : "fast sample (hit)")
              << "\n"
              << "  modulated state:  "
              << (caps.dirty_state
                      ? "dirty bit (write-polarity sender; needs a "
                        "write-back cache)"
                      : "presence / replacement state")
              << "\n"
              << "  sharing modes:\n";
    for (channel::SharingMode mode : channel::allSharingModes()) {
        channel::SessionConfig probe;
        probe.channel = id;
        probe.mode = mode;
        const channel::Carrier carrier = channel::sessionCarrier(probe);
        const auto levels = channel::carrierLevels(id, carrier);
        std::cout << "    " << std::left << std::setw(15)
                  << channel::sharingModeToken(mode)
                  << (carrier == channel::Carrier::L1 ? "L1" : "shared-LLC")
                  << " carrier, decodes " << hitLevelName(levels.fast)
                  << " vs " << hitLevelName(levels.slow) << "\n";
    }
    std::cout << "\nRun any mode through the `channel_matrix` experiment "
                 "or channel::Session.\n";
}

int
cmdDescribe(const std::string &name)
{
    const Experiment *e = Registry::instance().find(name);
    if (!e) {
        // Not an experiment — maybe a channel ("lruleak describe
        // lru-alg1" prints its topology/sharing-mode capabilities).
        try {
            describeChannel(channel::channelIdFromName(name));
            return 0;
        } catch (const std::invalid_argument &) {
        }
        std::cerr << "unknown experiment or channel '" << name
                  << "'; see `lruleak list` (experiments) or `lruleak "
                     "describe lru-alg1` (channels)\n";
        return 2;
    }
    std::cout << e->name() << "\n  " << e->description() << "\n";
    const auto specs = e->params();
    if (specs.empty()) {
        std::cout << "\n  (no parameters)\n";
        return 0;
    }
    std::cout << "\n  parameters:\n";
    for (const auto &spec : specs) {
        std::cout << "    --" << spec.name << "=<"
                  << core::paramTypeName(spec.type) << ">  default "
                  << (spec.default_value.empty() ? "\"\""
                                                 : spec.default_value)
                  << "\n        " << spec.description << "\n";
        if (!spec.choices.empty()) {
            std::cout << "        choices:";
            for (const auto &c : spec.choices)
                std::cout << " " << c;
            std::cout << "\n";
        }
    }
    return 0;
}

/**
 * Split `--name=value` / `--name value` style args after the command.
 * The valueless `--smoke` flag is consumed here so every subcommand
 * shares one spelling.
 */
bool
parseOverrides(const std::vector<std::string> &args,
               std::map<std::string, std::string> &overrides,
               std::string &format, bool *smoke = nullptr)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (smoke && arg == "--smoke") {
            *smoke = true;
            continue;
        }
        if (arg.rfind("--", 0) != 0) {
            std::cerr << "unexpected argument '" << arg
                      << "' (parameters look like --name=value)\n";
            return false;
        }
        std::string name = arg.substr(2);
        std::string value;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (i + 1 < args.size()) {
            value = args[++i];
        } else {
            std::cerr << "parameter '--" << name << "' needs a value\n";
            return false;
        }
        if (name == "format")
            format = value;
        else
            overrides[name] = value;
    }
    return true;
}

/**
 * Run one experiment into a buffer and return the rendered output.
 * Buffering keeps the machine-readable formats well-formed: a failure
 * mid-run throws before anything (e.g. an unclosed JSON document)
 * reaches stdout.
 */
std::string
renderOne(const Experiment &experiment,
          const std::map<std::string, std::string> &overrides,
          core::OutputFormat format)
{
    std::ostringstream os;
    const auto sink = core::makeSink(format, os);
    core::runExperiment(experiment, overrides, *sink);
    return os.str();
}

/** Does the experiment declare a parameter with this name? */
bool
declaresParam(const Experiment &experiment, const std::string &name)
{
    for (const auto &spec : experiment.params()) {
        if (spec.name == name)
            return true;
    }
    return false;
}

int
cmdRun(const std::string &name, const std::vector<std::string> &args)
{
    const Experiment *e = Registry::instance().find(name);
    if (!e) {
        std::cerr << "unknown experiment '" << name
                  << "'; see `lruleak list`\n";
        return 2;
    }
    std::map<std::string, std::string> overrides;
    std::string format = "table";
    bool smoke = false;
    if (!parseOverrides(args, overrides, format, &smoke))
        return 2;
    std::string cache_dir_flag;
    if (const auto it = overrides.find("cache-dir");
        it != overrides.end()) {
        cache_dir_flag = it->second;
        overrides.erase(it);
    }
    if (smoke) {
        // Smoke scale first, explicit --param overrides on top.
        auto merged = e->smokeParams();
        for (const auto &[k, v] : overrides)
            merged[k] = v;
        overrides = std::move(merged);
    }
    if (overrides.count("seed") && !declaresParam(*e, "seed")) {
        std::cerr << "experiment '" << e->name()
                  << "' is deterministic (no seed parameter); --seed "
                     "does not apply\n";
        return 2;
    }
    const auto fmt = core::outputFormatFromName(format);
    const std::string cache_dir = core::resolveCacheDir(cache_dir_flag);
    if (!cache_dir.empty()) {
        const core::ResultCache cache(cache_dir,
                                      util::selfBinaryHashHex());
        const core::ParamMap resolved =
            core::resolveParams(e->params(), overrides);
        const std::string key =
            cache.keyFor(e->name(), resolved.values(), format);
        if (const auto artifact = cache.fetch(key)) {
            std::cout << *artifact;
            std::cerr << "cache: 1 hit, 0 miss, 0 skip\n";
            return 0;
        }
        const std::string rendered = renderOne(*e, overrides, fmt);
        cache.store(key, rendered);
        std::cout << rendered;
        std::cerr << "cache: 0 hit, 1 miss, 0 skip\n";
        return 0;
    }
    std::cout << renderOne(*e, overrides, fmt);
    return 0;
}

int
cmdRunAll(const std::vector<std::string> &args)
{
    std::map<std::string, std::string> overrides;
    std::string format = "table";
    bool smoke = false;
    if (!parseOverrides(args, overrides, format, &smoke))
        return 2;
    core::RunAllOptions options;
    options.smoke = smoke;
    // --seed is first-class: it fans out to every experiment that
    // declares the conventional seed parameter.
    if (const auto it = overrides.find("seed"); it != overrides.end()) {
        options.seed = it->second;
        overrides.erase(it);
    }
    std::string cache_dir_flag;
    if (const auto it = overrides.find("cache-dir");
        it != overrides.end()) {
        cache_dir_flag = it->second;
        overrides.erase(it);
    }
    if (const auto it = overrides.find("shard"); it != overrides.end()) {
        try {
            options.shard = core::parseShardSpec(it->second);
        } catch (const std::invalid_argument &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
        overrides.erase(it);
    }
    if (!overrides.empty()) {
        // Anything else is experiment-specific (`lruleak run` takes
        // those); show the whole usage block rather than a stale list.
        std::cerr << "run-all does not take '--"
                  << overrides.begin()->first
                  << "' (per-experiment parameters go through `lruleak "
                     "run`)\n\n";
        return usage(std::cerr, 2);
    }
    options.format = core::outputFormatFromName(format);

    const std::string cache_dir = core::resolveCacheDir(cache_dir_flag);
    std::optional<core::ResultCache> cache;
    if (!cache_dir.empty())
        cache.emplace(cache_dir, util::selfBinaryHashHex());
    options.cache = cache ? &*cache : nullptr;

    const auto outcome =
        core::runAllCatalog(options, std::cout, std::cerr);
    std::cerr << core::runAllSummary(options, outcome) << "\n";
    return outcome.failures == 0 ? 0 : 1;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    if (args.size() < 2) {
        std::cerr << "merge wants an output path ('-' for stdout) and "
                     "at least one shard document:\n  lruleak merge "
                     "<out.json|-> <shard.json> [<shard.json> ...]\n";
        return 2;
    }
    std::vector<std::string> documents;
    for (std::size_t i = 1; i < args.size(); ++i) {
        std::ifstream in(args[i], std::ios::binary);
        if (!in) {
            std::cerr << "cannot read shard document " << args[i]
                      << "\n";
            return 2;
        }
        std::ostringstream os;
        os << in.rdbuf();
        documents.push_back(os.str());
    }
    std::string merged;
    try {
        merged = core::mergeRunAllJson(documents);
    } catch (const std::invalid_argument &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    if (args[0] == "-") {
        std::cout << merged;
        return 0;
    }
    std::ofstream out(args[0], std::ios::binary | std::ios::trunc);
    if (!out) {
        std::cerr << "cannot write " << args[0] << "\n";
        return 1;
    }
    out << merged;
    if (!out.good()) {
        std::cerr << "write failed: " << args[0] << "\n";
        return 1;
    }
    std::cerr << "merged " << (args.size() - 1) << " document(s) into "
              << args[0] << "\n";
    return 0;
}

int
cmdTraceGen(const std::vector<std::string> &args)
{
    if (args.size() < 2 || args[0].rfind("--", 0) == 0 ||
        args[1].rfind("--", 0) == 0) {
        std::cerr << "trace-gen wants a workload and an output path:\n"
                     "  lruleak trace-gen <workload> <out-file> "
                     "[--accesses=N] [--writes=F]\n"
                     "                    [--seed=N] "
                     "[--format=text|binary]\nworkloads:";
        for (const auto &w : workload::workloadNames())
            std::cerr << " " << w;
        std::cerr << "\n";
        return 2;
    }
    const std::string &name = args[0];
    const std::string &out_path = args[1];
    std::map<std::string, std::string> overrides;
    std::string format = "text";
    if (!parseOverrides({args.begin() + 2, args.end()}, overrides,
                        format))
        return 2;
    std::size_t accesses = 100'000;
    std::uint64_t seed = 1;
    double writes = 0.0;
    for (const auto &[key, value] : overrides) {
        try {
            if (key == "accesses")
                accesses = std::stoull(value);
            else if (key == "seed")
                seed = std::stoull(value);
            else if (key == "writes")
                writes = std::stod(value);
            else {
                std::cerr << "unknown trace-gen option '--" << key
                          << "' (valid: --accesses --writes --seed "
                             "--format)\n";
                return 2;
            }
        } catch (const std::exception &) {
            std::cerr << "--" << key << " got unparsable value '"
                      << value << "'\n";
            return 2;
        }
    }
    if (format != "text" && format != "binary") {
        std::cerr << "trace-gen --format must be text or binary, got '"
                  << format << "'\n";
        return 2;
    }
    const auto trace =
        workload::generateTrace(name, accesses, seed, writes);
    if (format == "binary")
        workload::saveBinaryTrace(trace, out_path);
    else
        workload::saveTextTrace(trace, out_path);
    std::cerr << "wrote " << trace.size() << " accesses of '" << name
              << "' to " << out_path << " (" << format << ")\n";
    return 0;
}

int
cmdBench(const std::vector<std::string> &args)
{
    core::SimBenchConfig cfg;
    std::string out_path = "BENCH_sim.json";

    std::map<std::string, std::string> overrides;
    std::string format = "table";
    // --smoke has no value; expand it before the generic parser.
    std::vector<std::string> expanded;
    bool smoke = false;
    bool check = false;
    for (const auto &arg : args) {
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--check")
            check = true;
        else
            expanded.push_back(arg);
    }
    if (!parseOverrides(expanded, overrides, format))
        return 2;
    if (format != "table") {
        std::cerr << "bench does not take --format (it prints a table "
                     "and writes JSON to --out)\n";
        return 2;
    }

    // Positive integer option parser: stoull accepts "-1" (wrapping to
    // 2^64-1, i.e. a run that never ends) and garbage input throws an
    // opaque std::invalid_argument, so validate here with the option
    // name in the message.
    auto parseCount = [](const std::string &name, const std::string &value,
                         std::uint64_t &out, bool min_one = true) {
        std::size_t used = 0;
        std::uint64_t parsed = 0;
        try {
            parsed = std::stoull(value, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != value.size() || value.empty() || value[0] == '-' ||
            (min_one && parsed == 0)) {
            std::cerr << "--" << name << " needs a "
                      << (min_one ? "positive" : "non-negative")
                      << " integer, got '" << value << "'\n";
            return false;
        }
        out = parsed;
        return true;
    };

    for (const auto &[name, value] : overrides) {
        if (name == "accesses") {
            if (!parseCount(name, value, cfg.accesses))
                return 2;
        } else if (name == "batch") {
            std::uint64_t batch = 0;
            if (!parseCount(name, value, batch))
                return 2;
            cfg.batch = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(batch, 1u << 20));
        } else if (name == "seed") {
            if (!parseCount(name, value, cfg.seed, /*min_one=*/false))
                return 2;
        } else if (name == "out") {
            out_path = value;
        } else if (name == "policies") {
            std::stringstream ss(value);
            std::string token;
            while (std::getline(ss, token, ','))
                cfg.policies.push_back(sim::replPolicyFromName(token));
        } else {
            std::cerr << "unknown bench option '--" << name
                      << "' (valid: --accesses --batch --seed "
                         "--policies --out --smoke --check)\n";
            return 2;
        }
    }
    if (smoke)
        cfg.accesses = std::min<std::uint64_t>(cfg.accesses, 200'000);

    const auto rows = core::runSimBench(cfg);
    const auto macro = core::runMacroBench(cfg);

    std::cout << "sim access throughput (" << cfg.accesses
              << " accesses/lane, " << cfg.ways << "-way set)\n\n"
              << std::left << std::setw(11) << "workload" << std::setw(10)
              << "policy" << std::right << std::setw(14) << "legacy (a/s)"
              << std::setw(14) << "value (a/s)" << std::setw(14)
              << "batch (a/s)" << std::setw(14) << "replay (a/s)"
              << std::setw(14) << "replay/legacy" << "\n";
    for (const auto &row : rows) {
        std::cout << std::left << std::setw(11)
                  << core::benchWorkloadName(row.workload) << std::setw(10)
                  << sim::replPolicyName(row.policy) << std::right
                  << std::fixed << std::setprecision(0) << std::setw(14)
                  << row.legacy_aps << std::setw(14) << row.value_aps
                  << std::setw(14) << row.batch_aps << std::setw(14)
                  << row.replay_aps << std::setprecision(2)
                  << std::setw(13) << row.replayOverLegacy() << "x\n";
    }

    std::cout << "\nmacro lanes (whole-subsystem hot paths)\n\n"
              << std::left << std::setw(22) << "lane" << std::right
              << std::setw(14) << "items" << std::setw(16) << "items/sec"
              << "\n";
    for (const auto &row : macro) {
        std::cout << std::left << std::setw(22) << row.name << std::right
                  << std::setw(14) << row.items << std::fixed
                  << std::setprecision(0) << std::setw(16)
                  << row.items_per_sec << "\n";
    }

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    core::writeSimBenchJson(cfg, rows, macro, out);
    std::cout << "\nwrote " << out_path << "\n";

    if (check) {
        // The CI perf gate: replay must beat the legacy per-access path
        // in every cell (the hot_mix lane regressed once) and the
        // Session fast path must hold its post-overhaul floors.
        if (!core::checkSimBench(core::BenchCheckConfig{}, rows, macro,
                                 std::cerr))
            return 1;
        std::cout << "check passed: replay_over_legacy >= 1.0 in every "
                     "cell; channel-bit lanes above floor\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(std::cerr, 2);

    const std::string cmd = args[0];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "describe") {
            if (args.size() != 2)
                return usage(std::cerr, 2);
            return cmdDescribe(args[1]);
        }
        if (cmd == "run") {
            if (args.size() < 2)
                return usage(std::cerr, 2);
            return cmdRun(args[1], {args.begin() + 2, args.end()});
        }
        if (cmd == "run-all")
            return cmdRunAll({args.begin() + 1, args.end()});
        if (cmd == "merge")
            return cmdMerge({args.begin() + 1, args.end()});
        if (cmd == "trace-gen")
            return cmdTraceGen({args.begin() + 1, args.end()});
        if (cmd == "bench")
            return cmdBench({args.begin() + 1, args.end()});
        if (cmd == "help" || cmd == "--help" || cmd == "-h")
            return usage(std::cout, 0);
    } catch (const core::ParamError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
}
