/**
 * @file
 * Uarch presets.  Latencies from Table II; calibration values chosen so
 * the measurement histograms reproduce Fig. 3 / Fig. 13 shapes.
 */

#include "timing/uarch.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace lruleak::timing {

Uarch
Uarch::intelXeonE52690()
{
    Uarch u;
    u.name = "Intel Xeon E5-2690";
    u.microarch = "Sandy Bridge";
    u.ghz = 3.8;
    u.l1_latency = 4;
    u.l2_latency = 12;
    u.llc_latency = 40;
    u.mem_latency = 300;
    u.tsc_granularity = 1;
    u.tsc_noise_stddev = 1.0;
    u.chase_overhead = 3;    // hit ~ 3 + 7*4 + 4 = 35, miss ~ 43 (Fig. 3)
    u.single_overhead = 8;
    u.serialize_floor = 16;  // both L1(4) and L2(12) report 8+16 = 24
    u.single_noise_stddev = 2.5;
    u.way_predictor = false;
    u.encode_addr_calc = 17; // Table V: LRU encode = 17 + 10 + 4 = 31
    u.wb_latency = 64;       // dirty drain to the next level / memory
    return u;
}

Uarch
Uarch::intelXeonE31245v5()
{
    Uarch u;
    u.name = "Intel Xeon E3-1245 v5";
    u.microarch = "Skylake";
    u.ghz = 3.9;
    u.l1_latency = 4;
    u.l2_latency = 12;
    u.llc_latency = 42;
    u.mem_latency = 260;
    u.tsc_granularity = 1;
    u.tsc_noise_stddev = 1.2;
    u.chase_overhead = 12;   // Fig. 14: hits ~ 44, misses ~ 52
    u.single_overhead = 10;
    u.serialize_floor = 18;
    u.single_noise_stddev = 2.5;
    u.way_predictor = false;
    u.encode_addr_calc = 21; // Table V: LRU encode = 21 + 10 + 4 = 35
    u.wb_latency = 64;
    return u;
}

Uarch
Uarch::amdEpyc7571()
{
    Uarch u;
    u.name = "AMD EPYC 7571";
    u.microarch = "Zen";
    u.ghz = 2.5;
    u.l1_latency = 4;
    u.l2_latency = 17;
    u.llc_latency = 40;
    u.mem_latency = 205;
    u.tsc_granularity = 16;  // coarse readout: Section VI-A
    u.tsc_noise_stddev = 8.0;
    u.chase_overhead = 25;   // Fig. 3 right: hit ~ 57, miss ~ 70,
                             // heavily overlapping distributions
    u.single_overhead = 30;
    u.serialize_floor = 20;
    u.single_noise_stddev = 10.0;
    u.way_predictor = true;
    u.encode_addr_calc = 38; // Table V: LRU encode = 38 + 10 + 4 = 52
    u.wb_latency = 96;       // must clear the 16-cycle tsc granule
    return u;
}

const std::vector<std::string> &
uarchTokens()
{
    static const std::vector<std::string> tokens{"e5-2690", "e3-1245v5",
                                                 "epyc-7571"};
    return tokens;
}

Uarch
uarchFromName(std::string_view name)
{
    const std::string n = util::normalizeToken(name);

    if (n == "e5-2690" || n == "intel-xeon-e5-2690" || n == "sandy-bridge")
        return Uarch::intelXeonE52690();
    if (n == "e3-1245v5" || n == "e3-1245-v5" ||
        n == "intel-xeon-e3-1245-v5" || n == "skylake")
        return Uarch::intelXeonE31245v5();
    if (n == "epyc-7571" || n == "amd-epyc-7571" || n == "zen" ||
        n == "amd")
        return Uarch::amdEpyc7571();

    std::string msg = "unknown CPU model '" + std::string(name) +
                      "'; valid models:";
    for (const auto &t : uarchTokens())
        msg += " " + t;
    throw std::invalid_argument(msg);
}

} // namespace lruleak::timing
