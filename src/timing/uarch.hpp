/**
 * @file
 * Microarchitecture descriptors for the three CPUs the paper evaluates
 * (Table II / Table III), plus the timing parameters of the measurement
 * primitives calibrated to reproduce Figures 3 and 13.
 */

#ifndef LRULEAK_TIMING_UARCH_HPP
#define LRULEAK_TIMING_UARCH_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/hierarchy.hpp"

namespace lruleak::timing {

/**
 * Everything the timing model needs to know about a CPU.
 *
 * The cache latencies come straight from the paper's Table II; the
 * overheads/noise/granularity values are calibrated so the simulated
 * measurement histograms match the shapes of Fig. 3 (pointer chase) and
 * Fig. 13 (single rdtscp access) on each machine.
 */
struct Uarch
{
    std::string name;            //!< e.g. "Intel Xeon E5-2690"
    std::string microarch;       //!< e.g. "Sandy Bridge"
    double ghz = 3.8;            //!< nominal core frequency

    // Cache access latencies in cycles (Table II).
    std::uint32_t l1_latency = 4;
    std::uint32_t l2_latency = 12;
    std::uint32_t llc_latency = 40;
    std::uint32_t mem_latency = 200;

    // Timestamp-counter behaviour.
    std::uint32_t tsc_granularity = 1;   //!< readout quantum in cycles
    double tsc_noise_stddev = 1.0;       //!< per-measurement jitter

    // Measurement-primitive calibration.
    std::uint32_t chase_overhead = 3;    //!< rdtscp pair cost amortised
                                         //!< over the 8-access chain
    std::uint32_t single_overhead = 8;   //!< rdtscp pair cost for a
                                         //!< single timed access
    std::uint32_t serialize_floor = 16;  //!< min cycles between the two
                                         //!< rdtscp of a single access:
                                         //!< hides the L1/L2 difference
    double single_noise_stddev = 2.5;

    /**
     * Stall charged per write-back transaction (a dirty line drained to
     * the next level or memory).  This is the observable behind both
     * dirty-state channels: a dirty victim delays the eviction that
     * displaced it, and clflush of a modified line stalls until the data
     * leaves the cache (Cui et al.; Flushgeist).
     */
    std::uint32_t wb_latency = 64;

    // Platform quirks.
    bool way_predictor = false;          //!< AMD linear-address utag

    /**
     * Fixed non-memory cost of one encode iteration (victim-address
     * arithmetic etc.), calibrated against the paper's Table V.
     */
    std::uint32_t encode_addr_calc = 17;

    /** Latency of a demand access served at @p level. */
    std::uint32_t
    latency(sim::HitLevel level) const
    {
        switch (level) {
          case sim::HitLevel::L1:     return l1_latency;
          case sim::HitLevel::L2:     return l2_latency;
          case sim::HitLevel::LLC:    return llc_latency;
          case sim::HitLevel::Memory: return mem_latency;
        }
        return mem_latency;
    }

    /** Convert a cycle count to seconds. */
    double
    cyclesToSeconds(std::uint64_t cycles) const
    {
        return static_cast<double>(cycles) / (ghz * 1e9);
    }

    /** Convert cycles to a bit rate in kbit/s given bits transferred. */
    double
    kbps(std::uint64_t bits, std::uint64_t cycles) const
    {
        const double secs = cyclesToSeconds(cycles);
        return secs > 0 ? static_cast<double>(bits) / secs / 1e3 : 0.0;
    }

    /** A hierarchy config matching this CPU's cache geometry. */
    sim::HierarchyConfig
    hierarchyConfig() const
    {
        sim::HierarchyConfig cfg;
        cfg.l1_way_predictor = way_predictor;
        return cfg;
    }

    // ----- Presets for the paper's Table III machines.

    /** Intel Xeon E5-2690, Sandy Bridge, 3.8 GHz. */
    static Uarch intelXeonE52690();
    /** Intel Xeon E3-1245 v5, Skylake, 3.9 GHz. */
    static Uarch intelXeonE31245v5();
    /** AMD EPYC 7571, Zen, 2.5 GHz (AWS EC2 part). */
    static Uarch amdEpyc7571();
};

/** CLI tokens of the modeled CPUs, in Table III order. */
const std::vector<std::string> &uarchTokens();

/**
 * Look a CPU model up by CLI token ("e5-2690", "e3-1245v5",
 * "epyc-7571"; microarch aliases "sandy-bridge", "skylake", "zen" also
 * accepted, case-insensitive).  Throws std::invalid_argument listing
 * the valid tokens.
 */
Uarch uarchFromName(std::string_view name);

} // namespace lruleak::timing

#endif // LRULEAK_TIMING_UARCH_HPP
